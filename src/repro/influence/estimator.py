"""RR-based influence estimation and influence ranking.

Theorem 1: ``sigma_g(q) = p_g(q) * |V|`` where ``p_g(q)`` is the
probability that ``q`` appears in a random RR set. The estimators here
count RR-set occurrences and expose both the scaled influence values and
the derived *influence ranks* (``rank_C(q)`` = 1 + number of nodes with
strictly larger influence; the paper's top-``k`` condition is
``rank <= k`` in this 1-based convention).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.errors import InfluenceError
from repro.graph.graph import AttributedGraph
from repro.influence.arena import sample_arena
from repro.influence.models import InfluenceModel
from repro.utils.rng import ensure_rng


@dataclass(frozen=True)
class InfluenceEstimate:
    """RR-occurrence counts plus the scaling context.

    Attributes
    ----------
    counts:
        ``counts[v]`` = number of sampled RR sets containing ``v``. Nodes
        absent from every sample are omitted (count 0).
    n_samples:
        Number of RR graphs drawn.
    population:
        The source population size (``|V|`` of the sampled graph); the
        Theorem-1 scaling factor.
    """

    counts: Mapping[int, int]
    n_samples: int
    population: int

    def influence(self, node: int) -> float:
        """Estimated expected spread of ``node``."""
        if self.n_samples == 0:
            raise InfluenceError("no samples were drawn; influence is undefined")
        return self.counts.get(node, 0) * self.population / self.n_samples

    def rank(self, node: int) -> int:
        """1-based influence rank of ``node`` (count ties share a rank)."""
        return rank_of(self.counts, node)

    def top_k(self, k: int) -> list[int]:
        """Nodes with rank <= k (may exceed ``k`` entries under ties)."""
        if k <= 0:
            raise InfluenceError(f"k must be positive, got {k}")
        if not self.counts:
            return []
        ordered = sorted(self.counts.values(), reverse=True)
        threshold = ordered[min(k, len(ordered)) - 1]
        return sorted(v for v, c in self.counts.items() if c >= threshold)


def estimate_influences(
    graph: AttributedGraph,
    n_samples: int,
    model: InfluenceModel | None = None,
    rng: "int | np.random.Generator | None" = None,
) -> InfluenceEstimate:
    """Estimate every node's influence on ``graph`` with ``n_samples`` RR sets."""
    if n_samples <= 0:
        raise InfluenceError(f"n_samples must be positive, got {n_samples}")
    arena = sample_arena(graph, n_samples, model=model, rng=ensure_rng(rng))
    return InfluenceEstimate(
        counts=arena.influence_counts(), n_samples=n_samples, population=graph.n
    )


def estimate_influences_in_community(
    graph: AttributedGraph,
    members: Sequence[int],
    n_samples: int,
    model: InfluenceModel | None = None,
    rng: "int | np.random.Generator | None" = None,
    budget: "object | None" = None,
) -> InfluenceEstimate:
    """Estimate influences *within* the community induced by ``members``.

    RR sets are sampled with sources uniform in the community and the
    diffusion confined to it, while edge probabilities remain those of the
    original graph — the semantics of ``sigma_C`` in Theorem 2's proof
    (possible world on ``g``, reachability restricted to ``C``). This is
    what the Independent baseline of Section V-C and the top-k precision
    oracle compute per community.
    """
    if n_samples <= 0:
        raise InfluenceError(f"n_samples must be positive, got {n_samples}")
    allowed = set(int(v) for v in members)
    arena = sample_arena(
        graph, n_samples, model=model, rng=ensure_rng(rng), allowed=allowed,
        budget=budget,
    )
    return InfluenceEstimate(
        counts=arena.influence_counts(), n_samples=n_samples, population=len(allowed)
    )


def influence_ranks(counts: Mapping[int, int]) -> dict[int, int]:
    """1-based rank of every node appearing in ``counts``."""
    ordered = sorted(counts.values(), reverse=True)
    return {v: 1 + _count_strictly_larger(ordered, c) for v, c in counts.items()}


def rank_of(counts: Mapping[int, int], node: int) -> int:
    """1-based influence rank of ``node`` under ``counts``.

    Nodes missing from ``counts`` have count 0 and rank below every node
    with a positive count.
    """
    target = counts.get(node, 0)
    return 1 + sum(1 for c in counts.values() if c > target)


def _count_strictly_larger(sorted_desc: list[int], value: int) -> int:
    """Number of entries in a descending-sorted list strictly above value."""
    lo, hi = 0, len(sorted_desc)
    while lo < hi:
        mid = (lo + hi) // 2
        if sorted_desc[mid] > value:
            lo = mid + 1
        else:
            hi = mid
    return lo
