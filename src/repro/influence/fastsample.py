"""Vectorized batch RR sampling — the explicitly stream-incompatible fast path.

:func:`repro.influence.arena.sample_arena` is *stream-compatible* with the
legacy per-dict sampler: it consumes the RNG one explored node at a time so
a seed reproduces the historical sample stream bit for bit. That contract
costs it the whole win of the flat arena — ``BENCH_arena.json`` showed raw
sampling at 0.91x while pooled evaluation ran 3.96x. This module drops the
contract and generates whole batches at once:

* **batched frontier expansion** — all in-flight samples of a chunk advance
  one BFS level per step; every per-level operation (neighbor gather,
  Bernoulli trials, activation dedup, CSR bookkeeping) is one numpy call
  over the concatenated frontier, never a per-node Python loop;
* **geometric-skip edge trials** — weighted-cascade probabilities are
  constant within a degree class, so the frontier is grouped by degree and
  successes are located by skipping ``Geometric(p)`` slots instead of
  drawing one uniform per incident edge (``O(hits)`` draws instead of
  ``O(vol)``); uniform-IC gets the same treatment with a single class;
* **CSR writes into preallocated arrays** — chunks land directly in an
  :class:`ArenaWriter` whose arrays double in capacity as needed, so memory
  stays bounded by the chunk working set plus the (exact) output size.

Because draw *order* and draw *count* both differ from the compatible
sampler, a seed does **not** reproduce the legacy stream. The correctness
story is statistical instead: every sampler here draws from exactly the
same RR-graph distribution as the compatible one (each directed edge
``v -> u`` fires independently with ``p(v)`` when ``v`` is explored; the
activation set is order-invariant percolation), and ``tests/oracle/``
pins fast-vs-compatible agreement with two-sample cross-checks plus
per-seed output digests. The compatible sampler remains the oracle.

:func:`sample_arena_seeded_fast` is the seeded-repair variant. It cannot
share one RNG stream across samples (repair redraws arbitrary subsets), so
every Bernoulli trial is a *pure hash* of ``(base_seed, sample_index,
explored_node, trial_slot)`` (splitmix64 mixing). Sample ``i`` therefore
depends only on ``(base_seed, i)`` and the adjacency it actually explores —
the exact self-consistency :func:`repro.influence.arena.repair_arena`
needs — while trials still evaluate as one vectorized hash over the whole
frontier.
"""

from __future__ import annotations

import math
from contextlib import nullcontext
from typing import Sequence

import numpy as np

from repro.errors import InfluenceError
from repro.graph.graph import AttributedGraph
from repro.influence.arena import RRArena, _EMPTY
from repro.influence.models import InfluenceModel, UniformIC, WeightedCascade
from repro.utils.faults import maybe_fail
from repro.utils.rng import ensure_rng

#: Below this per-class slot count the geometric skip is not worth its
#: bookkeeping; draw one uniform per slot instead. Keeping tiny spans on
#: the direct path also keeps small-graph digests free of libm ``log``
#: calls (integer-exact across platforms).
_GEOM_MIN_SLOTS = 64

#: Above this probability a geometric skip saves too few draws to matter.
_GEOM_MAX_P = 0.25

_U64 = np.uint64
_MIX_1 = _U64(0xBF58476D1CE4E5B9)
_MIX_2 = _U64(0x94D049BB133111EB)
_GOLDEN = _U64(0x9E3779B97F4A7C15)
#: Domain tags keeping source draws and edge trials in disjoint hash input
#: spaces (a node id can never collide with the source sentinel).
_TAG_SOURCE = _U64(0xD1B54A32D192ED03)
_TAG_TRIAL = _U64(0x8BB84B93962EACC9)
_INV_2_53 = float(2.0 ** -53)


def _mix64(x: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 finalizer (bijective on uint64)."""
    x = (x ^ (x >> _U64(30))) * _MIX_1
    x = (x ^ (x >> _U64(27))) * _MIX_2
    return x ^ (x >> _U64(31))


def _mix64_int(x: int) -> int:
    """Scalar splitmix64 finalizer on Python ints (no numpy scalar ops —
    numpy warns on scalar uint64 overflow where array ops wrap silently)."""
    mask = 0xFFFFFFFFFFFFFFFF
    x &= mask
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & mask
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & mask
    return x ^ (x >> 31)


def _hash_u01(base: int, tag: np.uint64, a, b, c) -> np.ndarray:
    """Uniforms in ``[0, 1)`` as a pure function of ``(base, tag, a, b, c)``.

    Chained splitmix64 mixing: each input is folded in through a full
    finalizer round, so nearby counters decorrelate completely. Quality is
    far beyond what the statistical oracle can resolve; the point is not
    cryptography but *functional determinism* — the same inputs give the
    same trial no matter which batch, chunk, or repair pass asks.
    """
    seed0 = _U64(_mix64_int(base ^ int(tag)))
    h = _mix64(seed0 ^ (np.asarray(a, dtype=np.uint64) + _GOLDEN))
    h = _mix64(h ^ (np.asarray(b, dtype=np.uint64) + _GOLDEN))
    h = _mix64(h ^ (np.asarray(c, dtype=np.uint64) + _GOLDEN))
    return (h >> _U64(11)).astype(np.float64) * _INV_2_53


def _geometric_hits(rng: np.random.Generator, total: int, p: float) -> np.ndarray:
    """Indices of successes among ``total`` i.i.d. Bernoulli(``p``) trials.

    For dense ``p`` (or tiny spans) this is one uniform draw per slot; for
    sparse ``p`` it walks the slots with geometric skips
    (``1 + floor(log(U) / log(1 - p))``), drawing ``O(successes)`` numbers
    instead of ``O(total)``. Both branches sample the exact same product
    law; only the RNG consumption differs, which is the licence the fast
    path's stream-incompatibility buys.
    """
    if total <= 0 or p <= 0.0:
        return _EMPTY
    if p >= 1.0:
        return np.arange(total, dtype=np.int64)
    if p >= _GEOM_MAX_P or total < _GEOM_MIN_SLOTS:
        return np.flatnonzero(rng.random(total) < p)
    log1mp = math.log1p(-p)
    hits: list[np.ndarray] = []
    pos = 0  # first untried slot
    while pos < total:
        expect = (total - pos) * p
        batch = int(expect + 4.0 * math.sqrt(expect + 1.0)) + 8
        u = rng.random(batch)
        # log(0) -> -inf would overflow the int cast; clamp skips to "past
        # the end", which terminates the walk exactly like a miss tail.
        skips = np.minimum(
            np.floor(np.log(u) / log1mp), float(total) + 1.0
        ).astype(np.int64) + 1
        run = np.cumsum(skips) + (pos - 1)
        hits.append(run[run < total])
        last = int(run[-1])
        if last >= total:
            break
        pos = last + 1
    return np.concatenate(hits) if hits else _EMPTY


class ArenaWriter:
    """Preallocated arena arrays with capacity doubling.

    The chunked kernels reserve space per chunk and write CSR rows in
    place; arrays double (never shrink) so total allocation work is
    amortized ``O(output)``. ``finish`` trims to the exact size and wires
    an :class:`~repro.influence.arena.RRArena` without copying again.
    """

    __slots__ = (
        "n",
        "nodes",
        "edge_start",
        "edge_count",
        "edge_dst_entry",
        "n_entries",
        "n_edges",
        "grows",
    )

    def __init__(
        self, n: int, node_capacity: int = 1024, edge_capacity: int = 1024
    ) -> None:
        if node_capacity < 1 or edge_capacity < 1:
            raise InfluenceError("writer capacities must be positive")
        self.n = int(n)
        self.nodes = np.empty(int(node_capacity), dtype=np.int64)
        self.edge_start = np.empty(int(node_capacity), dtype=np.int64)
        self.edge_count = np.empty(int(node_capacity), dtype=np.int64)
        self.edge_dst_entry = np.empty(int(edge_capacity), dtype=np.int64)
        self.n_entries = 0
        self.n_edges = 0
        #: Capacity-doubling events, for growth-path tests and diagnostics.
        self.grows = 0

    @property
    def node_capacity(self) -> int:
        return len(self.nodes)

    @property
    def edge_capacity(self) -> int:
        return len(self.edge_dst_entry)

    @staticmethod
    def _grown(array: np.ndarray, needed: int) -> np.ndarray:
        capacity = len(array)
        while capacity < needed:
            capacity *= 2
        grown = np.empty(capacity, dtype=array.dtype)
        grown[: len(array)] = array
        return grown

    def reserve_entries(self, extra: int) -> int:
        """Make room for ``extra`` entries; return their base offset."""
        base = self.n_entries
        needed = base + int(extra)
        if needed > len(self.nodes):
            self.nodes = self._grown(self.nodes, needed)
            self.edge_start = self._grown(self.edge_start, needed)
            self.edge_count = self._grown(self.edge_count, needed)
            self.grows += 1
        self.n_entries = needed
        return base

    def reserve_edges(self, extra: int) -> int:
        """Make room for ``extra`` edges; return their base offset."""
        base = self.n_edges
        needed = base + int(extra)
        if needed > len(self.edge_dst_entry):
            self.edge_dst_entry = self._grown(self.edge_dst_entry, needed)
            self.grows += 1
        self.n_edges = needed
        return base

    def finish(self, sources: np.ndarray, node_offsets: np.ndarray) -> RRArena:
        """Trim to the written extent and assemble the arena."""
        return RRArena(
            n=self.n,
            sources=sources,
            node_offsets=node_offsets,
            nodes=self.nodes[: self.n_entries],
            edge_start=self.edge_start[: self.n_entries],
            edge_count=self.edge_count[: self.n_entries],
            edge_dst_entry=self.edge_dst_entry[: self.n_edges],
        )


#: Degree classes whose slot span is at least this long get the geometric
#: skip; shorter (or denser-than-``_GEOM_MAX_P``) spans are batched into
#: one per-slot draw — per-class call overhead beats the saved draws there.
_GEOM_SPAN = 4096


class _StreamTrials:
    """Edge trials drawn from one shared RNG stream (geometric skips)."""

    __slots__ = ("rng", "wc", "p")

    def __init__(self, rng: np.random.Generator, wc: bool, p: float) -> None:
        self.rng = rng
        self.wc = wc
        self.p = float(p)

    def reorder(self, deg: np.ndarray) -> "np.ndarray | None":
        # Weighted cascade: group the frontier by degree so each class has
        # one constant probability and one contiguous slot span.
        if self.wc and len(deg) > 1:
            return np.argsort(deg, kind="stable")
        return None

    def fired(
        self,
        sample_g: np.ndarray,
        frontier_v: np.ndarray,
        deg: np.ndarray,
        total: int,
    ) -> np.ndarray:
        if not self.wc:
            return _geometric_hits(self.rng, total, self.p)
        # `deg` is sorted ascending (see reorder). Each equal-degree run is
        # a constant-probability slot span: long sparse spans take the
        # geometric skip, everything else accumulates into contiguous
        # dense segments drawn with one uniform block per segment.
        bounds = np.flatnonzero(np.diff(deg)) + 1
        starts = np.concatenate(([0], bounds))
        ends = np.concatenate((bounds, [len(deg)]))
        hits: list[np.ndarray] = []
        dense_p: list[float] = []
        dense_span: list[int] = []
        dense_start = 0
        base = 0

        def flush(upto: int) -> None:
            nonlocal dense_start
            if upto > dense_start:
                u = self.rng.random(upto - dense_start)
                thresh = np.repeat(dense_p, dense_span)
                h = np.flatnonzero(u < thresh)
                if len(h):
                    hits.append(h + dense_start)
            dense_p.clear()
            dense_span.clear()
            dense_start = upto

        for s, e in zip(starts, ends):
            d = int(deg[s])
            span = d * int(e - s)
            if span == 0:
                continue
            p = 1.0 / d
            if span >= _GEOM_SPAN and p < _GEOM_MAX_P:
                flush(base)
                h = _geometric_hits(self.rng, span, p)
                if len(h):
                    hits.append(h + base)
                dense_start = base + span
            else:
                dense_p.append(p)
                dense_span.append(span)
            base += span
        flush(base)
        if not hits:
            return _EMPTY
        out = np.concatenate(hits)
        out.sort()
        return out


class _HashedTrials:
    """Edge trials as pure hashes of ``(base, sample, node, slot)``."""

    __slots__ = ("base", "wc", "p")

    def __init__(self, base: int, wc: bool, p: float) -> None:
        self.base = int(base)
        self.wc = wc
        self.p = float(p)

    def reorder(self, deg: np.ndarray) -> "np.ndarray | None":
        return None

    def fired(
        self,
        sample_g: np.ndarray,
        frontier_v: np.ndarray,
        deg: np.ndarray,
        total: int,
    ) -> np.ndarray:
        slot_sample = np.repeat(sample_g, deg)
        slot_node = np.repeat(frontier_v, deg)
        slot_j = np.arange(total, dtype=np.int64) - np.repeat(
            np.cumsum(deg) - deg, deg
        )
        u = _hash_u01(self.base, _TAG_TRIAL, slot_sample, slot_node, slot_j)
        if self.wc:
            thresh = np.repeat(1.0 / np.maximum(deg, 1), deg)
        else:
            thresh = self.p
        return np.flatnonzero(u < thresh)


def _hashed_sources(base: int, index_arr: np.ndarray, n: int) -> np.ndarray:
    """Per-sample sources as pure hashes of ``(base, sample_index)``."""
    u = _hash_u01(base, _TAG_SOURCE, index_arr, 0, 0)
    return np.minimum((u * n).astype(np.int64), n - 1)


def _graph_csr(graph: AttributedGraph) -> tuple[np.ndarray, np.ndarray]:
    indptr = np.zeros(graph.n + 1, dtype=np.int64)
    np.cumsum(graph.degrees, out=indptr[1:])
    indices = (
        np.concatenate([graph.neighbors(v) for v in range(graph.n)])
        if graph.m > 0
        else _EMPTY
    )
    return indptr, indices


def _default_chunk(n: int, count: int) -> int:
    # Bound the (chunk, n) scratch matrix to ~64 MiB of int32 while keeping
    # enough samples in flight to amortize per-level numpy call overhead —
    # the scratch is calloc-backed, so untouched pages are never faulted in
    # and the budget is an upper bound, not a working-set size.
    if count <= 0:
        return 1
    return max(64, min(count, 16_777_216 // max(n, 1), 16_384))


def _run_chunk(
    writer: ArenaWriter,
    sample_g: np.ndarray,
    sources_chunk: np.ndarray,
    indptr: np.ndarray,
    indices: np.ndarray,
    degs: np.ndarray,
    trials,
    allowed_mask: "np.ndarray | None",
    entry_local: np.ndarray,
) -> np.ndarray:
    """Advance one chunk of samples to completion, writing into ``writer``.

    ``sample_g`` are the chunk's *global* sample ids (hashed trials key on
    them); ``entry_local`` is the reusable flat ``(chunk, n)`` scratch map
    from (sample-local, node) to the node's local entry id **plus one**
    (0 = unvisited — a calloc-backed zero fill is effectively free where a
    ``-1`` fill pays a full memset), kept at 0 outside this call (touched
    cells are reset before returning). Returns the chunk's per-sample
    entry counts.
    """
    n = writer.n
    m = len(sources_chunk)
    counts = np.ones(m, dtype=np.int64)  # the source is entry 0

    frontier_s = np.arange(m, dtype=np.int64)
    frontier_v = sources_chunk.astype(np.int64, copy=True)
    frontier_local = np.zeros(m, dtype=np.int64)
    entry_local[frontier_s * n + frontier_v] = 1

    ent_s = [frontier_s]
    ent_node = [frontier_v]
    ent_local = [frontier_local]
    expl_s: list[np.ndarray] = []
    expl_local: list[np.ndarray] = []
    expl_cnt: list[np.ndarray] = []
    edge_s: list[np.ndarray] = []
    edge_dst_local: list[np.ndarray] = []

    while len(frontier_s):
        deg = degs[frontier_v]
        perm = trials.reorder(deg)
        if perm is not None:
            frontier_s = frontier_s[perm]
            frontier_v = frontier_v[perm]
            frontier_local = frontier_local[perm]
            deg = deg[perm]
        total = int(deg.sum())
        if total:
            fired = trials.fired(sample_g[frontier_s], frontier_v, deg, total)
            # Map fired *slot* indices back to (frontier entry, neighbor)
            # without materializing the O(total) slot arrays: under
            # weighted cascade only ~1/deg of slots fire, so gathering
            # just the hits is the dominant saving of the fast path.
            cum = np.cumsum(deg)
            f_src = np.searchsorted(cum, fired, side="right")
            f_off = fired - (cum[f_src] - deg[f_src])
            f_dst = indices[indptr[frontier_v[f_src]] + f_off]
            if allowed_mask is not None and len(f_dst):
                keep = allowed_mask[f_dst]
                f_src = f_src[keep]
                f_dst = f_dst[keep]
        else:
            f_src = _EMPTY
            f_dst = _EMPTY

        # Exploration records: one per frontier entry, in frontier order —
        # the same order its fired-edge block lands in storage below.
        expl_s.append(frontier_s)
        expl_local.append(frontier_local)
        expl_cnt.append(np.bincount(f_src, minlength=len(frontier_v)))

        if not len(f_dst):
            break

        f_sample = frontier_s[f_src]
        key = f_sample * n + f_dst
        fresh = entry_local[key] == 0
        if fresh.any():
            # First-occurrence dedup of new (sample, node) activations,
            # then per-sample local ids in one grouped rank pass.
            uk = np.unique(key[fresh])
            ns = uk // n
            nv = uk - ns * n
            rank = np.arange(len(ns), dtype=np.int64) - np.searchsorted(
                ns, ns, side="left"
            )
            local_new = counts[ns] + rank
            counts += np.bincount(ns, minlength=m)
            entry_local[uk] = local_new + 1
            ent_s.append(ns)
            ent_node.append(nv)
            ent_local.append(local_new)
            frontier_s, frontier_v, frontier_local = ns, nv, local_new
        else:
            frontier_s = _EMPTY

        edge_s.append(f_sample)
        edge_dst_local.append(entry_local[key].astype(np.int64) - 1)

    # ------------------------------------------------ chunk CSR assembly
    node_off_local = np.zeros(m + 1, dtype=np.int64)
    np.cumsum(counts, out=node_off_local[1:])
    a_s = np.concatenate(ent_s)
    a_node = np.concatenate(ent_node)
    a_local = np.concatenate(ent_local)

    entry_base = writer.reserve_entries(int(node_off_local[-1]))
    writer.nodes[entry_base + node_off_local[a_s] + a_local] = a_node

    e_s = np.concatenate(expl_s)
    e_local = np.concatenate(expl_local)
    e_cnt = np.concatenate(expl_cnt)
    entry_idx = entry_base + node_off_local[e_s] + e_local
    writer.edge_count[entry_idx] = e_cnt

    if edge_s:
        g_s = np.concatenate(edge_s)
        g_dst = np.concatenate(edge_dst_local)
    else:
        g_s = _EMPTY
        g_dst = _EMPTY
    edge_base = writer.reserve_edges(len(g_s))
    if len(g_s):
        # Storage order: stable sort by sample keeps each sample's edges in
        # one contiguous block while preserving exploration order inside
        # it — the invariant RRArena.take/restrict lean on.
        eorder = np.argsort(g_s, kind="stable")
        writer.edge_dst_entry[edge_base: edge_base + len(g_s)] = (
            entry_base + node_off_local[g_s[eorder]] + g_dst[eorder]
        )
    # Exploration records sorted the same way give each entry's slice
    # start: the exclusive running total over (sample, exploration order)
    # is exactly its slice's storage position.
    xorder = np.argsort(e_s, kind="stable")
    run = np.cumsum(e_cnt[xorder]) - e_cnt[xorder]
    writer.edge_start[entry_idx[xorder]] = edge_base + run

    entry_local[a_s * n + a_node] = 0  # reset only touched scratch cells
    return counts


def _fast_supported(model: InfluenceModel) -> "tuple[bool, float] | None":
    """``(is_weighted_cascade, p)`` when the kernel handles ``model``."""
    if type(model) is WeightedCascade:
        return True, 0.0
    if type(model) is UniformIC:
        return False, float(model.p)
    return None


def sample_arena_fast(
    graph: AttributedGraph,
    count: int,
    model: "InfluenceModel | None" = None,
    rng: "int | np.random.Generator | None" = None,
    sources: "Sequence[int] | None" = None,
    allowed: "set[int] | None" = None,
    budget: "object | None" = None,
    trace: "object | None" = None,
    chunk_size: "int | None" = None,
) -> RRArena:
    """Draw ``count`` RR graphs with the vectorized batch kernel.

    Same signature and RR-graph *distribution* as
    :func:`repro.influence.arena.sample_arena`, but **not** the same RNG
    stream: trials run batched (geometric skips, level-synchronous
    frontier), so a given seed yields different — equally valid — samples.
    Use it wherever samples are consumed statistically (pools, serving,
    estimators); keep the compatible sampler where a pinned stream
    matters (golden digests, resume-equals-fresh replay).

    ``budget.tick(k)`` and the ``rr_sampling`` fault site fire once per
    *chunk* of ``k`` samples rather than once per sample — same total
    accounting, coarser checkpoints. Models other than weighted-cascade /
    uniform-IC fall back to the compatible sampler (their
    ``reverse_sample`` contract is inherently per-node).
    """
    if count < 0:
        raise InfluenceError(f"count must be non-negative, got {count}")
    model = model or WeightedCascade()
    kind = _fast_supported(model)
    if kind is None:
        from repro.influence.arena import sample_arena

        return sample_arena(
            graph, count, model=model, rng=rng, sources=sources,
            allowed=allowed, budget=budget, trace=trace,
        )
    wc, p = kind
    rng = ensure_rng(rng)
    n = graph.n

    allowed_mask: "np.ndarray | None" = None
    allowed_arr = _EMPTY
    if allowed is not None:
        allowed_mask = np.zeros(n, dtype=bool)
        allowed_arr = np.asarray(sorted(allowed), dtype=np.int64)
        if len(allowed_arr) and not (
            0 <= int(allowed_arr[0]) and int(allowed_arr[-1]) < n
        ):
            raise InfluenceError("allowed contains nodes outside the graph")
        allowed_mask[allowed_arr] = True

    if sources is None:
        if allowed is not None:
            source_arr = allowed_arr[
                rng.integers(0, len(allowed_arr), size=count)
            ]
        else:
            source_arr = rng.integers(0, n, size=count)
    else:
        if len(sources) != count:
            raise InfluenceError(
                f"got {len(sources)} sources for count={count}"
            )
        source_arr = np.asarray(sources, dtype=np.int64)
        if count and not ((source_arr >= 0) & (source_arr < n)).all():
            bad = int(source_arr[(source_arr < 0) | (source_arr >= n)][0])
            raise InfluenceError(f"source {bad} is not a node of the graph")
        if allowed_mask is not None and count and not allowed_mask[source_arr].all():
            bad = int(source_arr[~allowed_mask[source_arr]][0])
            raise InfluenceError(f"source {bad} is outside the allowed node set")

    trials = _StreamTrials(rng, wc, p)
    return _sample_chunked(
        graph, source_arr,
        sample_g=np.arange(count, dtype=np.int64),
        trials=trials, allowed_mask=allowed_mask,
        budget=budget, trace=trace, chunk_size=chunk_size,
    )


def sample_arena_seeded_fast(
    graph: AttributedGraph,
    count: "int | None" = None,
    base_seed: int = 0,
    model: "InfluenceModel | None" = None,
    indices: "Sequence[int] | np.ndarray | None" = None,
    budget: "object | None" = None,
    trace: "object | None" = None,
    chunk_size: "int | None" = None,
) -> RRArena:
    """Vectorized counterpart of :func:`~repro.influence.arena.sample_arena_seeded`.

    Sample ``i``'s source and every one of its edge trials are pure hashes
    of ``(base_seed, i, ...)`` — no sequential stream at all — so:

    * drawing ``indices=[i, ...]`` is bit-identical to the corresponding
      slice of a full ``count=`` draw (any batch, any chunking);
    * a sample that never activates a node with changed adjacency is
      bit-identical across graph versions (trials key on the explored
      node and its slot; exploration consults adjacency only at activated
      nodes).

    Those are the two properties incremental repair
    (:func:`~repro.influence.arena.repair_arena` with ``fast=True``)
    needs; the repaired arena equals a from-scratch seeded-fast draw on
    the new graph, bit for bit. The hash stream is distinct from both the
    compatible seeded sampler's and :func:`sample_arena_fast`'s — pools
    must pick one contract and keep it.

    Only weighted-cascade and uniform-IC models are supported (hash-keyed
    trials need the closed-form per-edge probability); others raise.
    """
    if (count is None) == (indices is None):
        raise InfluenceError("pass exactly one of count= or indices=")
    if indices is None:
        if count < 0:
            raise InfluenceError(f"count must be non-negative, got {count}")
        index_arr = np.arange(count, dtype=np.int64)
    else:
        index_arr = np.asarray(indices, dtype=np.int64)
        if len(index_arr) and int(index_arr.min()) < 0:
            raise InfluenceError("sample indices must be non-negative")
    model = model or WeightedCascade()
    kind = _fast_supported(model)
    if kind is None:
        raise InfluenceError(
            f"the fast seeded sampler supports weighted-cascade and "
            f"uniform-IC models only, got {type(model).__name__}"
        )
    wc, p = kind
    source_arr = _hashed_sources(int(base_seed), index_arr, graph.n)
    trials = _HashedTrials(int(base_seed), wc, p)
    return _sample_chunked(
        graph, source_arr, sample_g=index_arr, trials=trials,
        allowed_mask=None, budget=budget, trace=trace, chunk_size=chunk_size,
    )


def _sample_chunked(
    graph: AttributedGraph,
    source_arr: np.ndarray,
    sample_g: np.ndarray,
    trials,
    allowed_mask: "np.ndarray | None",
    budget: "object | None",
    trace: "object | None",
    chunk_size: "int | None",
) -> RRArena:
    n = graph.n
    count = len(source_arr)
    indptr, indices = _graph_csr(graph)
    degs = graph.degrees

    chunk = int(chunk_size) if chunk_size else _default_chunk(n, count)
    if chunk < 1:
        raise InfluenceError(f"chunk_size must be positive, got {chunk}")
    chunk = min(chunk, max(count, 1))

    writer = ArenaWriter(n)
    # calloc-backed zero fill: pages materialize lazily on first touch, so
    # the scratch map costs its *touched* cells, not its full extent.
    entry_local = np.zeros(chunk * n, dtype=np.int32)
    node_offsets = np.empty(count + 1, dtype=np.int64)
    node_offsets[0] = 0

    span_cm = trace.span("sampling") if trace is not None else nullcontext()
    with span_cm as span:
        for lo in range(0, count, chunk):
            hi = min(lo + chunk, count)
            if budget is not None:
                budget.tick(hi - lo)
            maybe_fail("rr_sampling")
            counts = _run_chunk(
                writer,
                sample_g[lo:hi],
                source_arr[lo:hi],
                indptr,
                indices,
                degs,
                trials,
                allowed_mask,
                entry_local,
            )
            np.cumsum(counts, out=node_offsets[lo + 1: hi + 1])
            node_offsets[lo + 1: hi + 1] += node_offsets[lo]
        if span is not None:
            span.note(
                samples=count,
                arena_nodes=writer.n_entries,
                arena_edges=writer.n_edges,
                fast=True,
            )
    return writer.finish(source_arr.astype(np.int64), node_offsets)
