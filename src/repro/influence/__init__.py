"""Influence substrate: diffusion models, RR graphs, estimators."""

from repro.influence.arena import (
    RRArena,
    RRView,
    concatenate_arenas,
    sample_arena,
)
from repro.influence.fastsample import (
    ArenaWriter,
    sample_arena_fast,
    sample_arena_seeded_fast,
)
from repro.influence.estimator import (
    InfluenceEstimate,
    estimate_influences,
    influence_ranks,
    rank_of,
)
from repro.influence.models import (
    InfluenceModel,
    LinearThreshold,
    UniformIC,
    WeightedCascade,
)
from repro.influence.montecarlo import simulate_influence
from repro.influence.rr import RRGraph, sample_rr_graph, sample_rr_graphs

__all__ = [
    "InfluenceModel",
    "WeightedCascade",
    "UniformIC",
    "LinearThreshold",
    "RRGraph",
    "RRArena",
    "RRView",
    "sample_rr_graph",
    "sample_rr_graphs",
    "sample_arena",
    "sample_arena_fast",
    "sample_arena_seeded_fast",
    "ArenaWriter",
    "concatenate_arenas",
    "simulate_influence",
    "InfluenceEstimate",
    "estimate_influences",
    "influence_ranks",
    "rank_of",
]
