"""Diffusion models compatible with RR-set influence estimation.

The paper's experiments use the independent cascade (IC) model with
weighted-cascade probabilities ``p(u, v) = 1 / |N(v)|`` (Section V-A). The
framework also claims support for any model whose influence admits RR-set
estimation; we provide uniform-probability IC and the linear threshold
model as well.

A model's single obligation here is :meth:`InfluenceModel.reverse_sample`:
given a just-activated node ``v`` during *reverse* diffusion, return the
neighbors ``u`` whose edge ``(u -> v)`` fires. Sampling every incident
reverse edge of every explored node — including edges toward nodes that are
already active — is what couples the RR graph to a single possible world,
the property Theorem 2 (induced RR graphs) rests on.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InfluenceError
from repro.graph.graph import AttributedGraph


class InfluenceModel:
    """Base class for RR-compatible diffusion models."""

    #: Identifier used by CLI / experiment configuration.
    name = "abstract"

    def reverse_sample(
        self, graph: AttributedGraph, v: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Neighbors of ``v`` reverse-activated when ``v`` is explored.

        Must flip *every* incident reverse edge of ``v`` exactly once per
        RR-graph generation, independent of the activation status of the
        other endpoint.
        """
        raise NotImplementedError

    def forward_probability(self, graph: AttributedGraph, u: int, v: int) -> float:
        """``p(u, v)``: probability that active ``u`` activates ``v``.

        Used by the forward Monte-Carlo simulator, which serves as a
        model-agnostic ground truth in tests.
        """
        raise NotImplementedError


class WeightedCascade(InfluenceModel):
    """IC with ``p(u, v) = 1 / deg(v)`` — the paper's default ([37], [56]).

    Under reverse diffusion from ``v``, every incident edge fires with the
    same probability ``1 / deg(v)``, so one vectorized Bernoulli draw per
    explored node suffices.
    """

    name = "weighted_cascade"

    def reverse_sample(
        self, graph: AttributedGraph, v: int, rng: np.random.Generator
    ) -> np.ndarray:
        neighbors = graph.neighbors(v)
        if len(neighbors) == 0:
            return neighbors
        p = 1.0 / len(neighbors)
        mask = rng.random(len(neighbors)) < p
        return neighbors[mask]

    def forward_probability(self, graph: AttributedGraph, u: int, v: int) -> float:
        return 1.0 / graph.degree(v)


class UniformIC(InfluenceModel):
    """IC with one global edge probability ``p``."""

    name = "uniform_ic"

    def __init__(self, p: float = 0.1) -> None:
        if not 0.0 < p <= 1.0:
            raise InfluenceError(f"uniform IC probability must be in (0, 1], got {p}")
        self.p = float(p)

    def reverse_sample(
        self, graph: AttributedGraph, v: int, rng: np.random.Generator
    ) -> np.ndarray:
        neighbors = graph.neighbors(v)
        if len(neighbors) == 0:
            return neighbors
        mask = rng.random(len(neighbors)) < self.p
        return neighbors[mask]

    def forward_probability(self, graph: AttributedGraph, u: int, v: int) -> float:
        return self.p


class LinearThreshold(InfluenceModel):
    """LT with uniform edge weights ``b(u, v) = 1 / deg(v)``.

    Under the triggering-set view ([35]), an RR step from ``v`` selects
    exactly one incoming neighbor uniformly at random (the weights sum to
    one). The forward simulator handles LT separately because its forward
    process is threshold-based rather than per-edge Bernoulli.
    """

    name = "linear_threshold"

    def reverse_sample(
        self, graph: AttributedGraph, v: int, rng: np.random.Generator
    ) -> np.ndarray:
        neighbors = graph.neighbors(v)
        if len(neighbors) == 0:
            return neighbors
        pick = int(rng.integers(0, len(neighbors)))
        return neighbors[pick: pick + 1]

    def forward_probability(self, graph: AttributedGraph, u: int, v: int) -> float:
        # The LT "weight" of the edge; the forward simulator interprets it
        # as a threshold contribution, not a Bernoulli probability.
        return 1.0 / graph.degree(v)


_REGISTRY = {
    WeightedCascade.name: WeightedCascade,
    UniformIC.name: UniformIC,
    LinearThreshold.name: LinearThreshold,
}


def model_by_name(name: str, **kwargs: float) -> InfluenceModel:
    """Instantiate a model from its :attr:`InfluenceModel.name`."""
    try:
        return _REGISTRY[name](**kwargs)  # type: ignore[arg-type]
    except KeyError:
        raise InfluenceError(
            f"unknown influence model {name!r}; expected one of {sorted(_REGISTRY)}"
        ) from None
