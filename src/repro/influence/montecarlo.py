"""Forward Monte-Carlo influence simulation.

The RR machinery is the production estimator; this module simulates the
diffusion *forward* from a seed, which provides an independent ground truth
for tests (Theorem 1: the two must agree in expectation) and for reporting
``I(q)`` exactly on tiny worked examples.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import InfluenceError
from repro.graph.graph import AttributedGraph
from repro.influence.models import InfluenceModel, LinearThreshold, WeightedCascade
from repro.utils.rng import ensure_rng


def simulate_influence(
    graph: AttributedGraph,
    seed_node: int,
    trials: int = 1000,
    model: InfluenceModel | None = None,
    rng: "int | np.random.Generator | None" = None,
    restrict_to: Sequence[int] | None = None,
) -> float:
    """Expected spread of ``seed_node`` by forward simulation.

    Parameters
    ----------
    restrict_to:
        When given, diffusion is confined to this node set (the community),
        matching the paper's ``sigma_C(q)``.
    """
    if trials <= 0:
        raise InfluenceError(f"trials must be positive, got {trials}")
    model = model or WeightedCascade()
    rng = ensure_rng(rng)
    allowed: set[int] | None = None
    if restrict_to is not None:
        allowed = set(int(v) for v in restrict_to)
        if seed_node not in allowed:
            raise InfluenceError("seed_node must belong to restrict_to")
    if not (0 <= seed_node < graph.n):
        raise InfluenceError(f"seed_node {seed_node} is not a node of the graph")

    if isinstance(model, LinearThreshold):
        run = _run_linear_threshold
    else:
        run = _run_cascade
    total = 0
    for _ in range(trials):
        total += run(graph, seed_node, model, rng, allowed)
    return total / trials


def _run_cascade(
    graph: AttributedGraph,
    seed_node: int,
    model: InfluenceModel,
    rng: np.random.Generator,
    allowed: set[int] | None,
) -> int:
    """One forward IC cascade; returns the number of activated nodes."""
    active = {seed_node}
    frontier = [seed_node]
    while frontier:
        next_frontier: list[int] = []
        for u in frontier:
            for v in graph.neighbors(u):
                v = int(v)
                if v in active:
                    continue
                if allowed is not None and v not in allowed:
                    continue
                if rng.random() < model.forward_probability(graph, u, v):
                    active.add(v)
                    next_frontier.append(v)
        frontier = next_frontier
    return len(active)


def _run_linear_threshold(
    graph: AttributedGraph,
    seed_node: int,
    model: InfluenceModel,
    rng: np.random.Generator,
    allowed: set[int] | None,
) -> int:
    """One forward LT diffusion with uniform weights and random thresholds."""
    thresholds: dict[int, float] = {}
    active = {seed_node}
    frontier = [seed_node]
    while frontier:
        next_frontier: list[int] = []
        candidates: set[int] = set()
        for u in frontier:
            for v in graph.neighbors(u):
                v = int(v)
                if v in active:
                    continue
                if allowed is not None and v not in allowed:
                    continue
                candidates.add(v)
        for v in candidates:
            if v not in thresholds:
                thresholds[v] = float(rng.random())
            weight = sum(
                model.forward_probability(graph, int(u), v)
                for u in graph.neighbors(v)
                if int(u) in active
            )
            if weight >= thresholds[v]:
                active.add(v)
                next_frontier.append(v)
        frontier = next_frontier
    return len(active)
