"""Reverse-reachable (RR) sets and RR graphs (Definitions 2-3).

An RR *set* is the classic Borgs et al. sampling primitive: the nodes that
would have influenced a uniformly random source in one random possible
world. The paper augments it into an RR *graph* that also remembers which
edges fired, so one sample can be *induced* onto any community (Theorem 2)
— the enabling observation behind compressed COD evaluation and HIMOR.

Design note: when a node ``v`` is explored, every incident reverse edge is
flipped exactly once, including edges toward already-active nodes. Dropping
those flips (as a naive RR-set sampler does) would leave the induced graphs
under-connected and bias community-level influence estimates downward; see
``tests/influence/test_rr.py`` for the coupling checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.errors import InfluenceError
from repro.graph.graph import AttributedGraph
from repro.influence.models import InfluenceModel, WeightedCascade
from repro.utils.faults import maybe_fail
from repro.utils.rng import ensure_rng


def _normalize_allowed(allowed: "set[int] | frozenset[int] | np.ndarray") -> "set[int] | frozenset[int]":
    """Normalize a community's node collection to one hashed set.

    Sets and frozensets pass through untouched (no per-call copy); arrays
    and other iterables are converted element-wise to Python ints exactly
    once. Probing an ``np.ndarray`` directly with ``in`` would be an O(n)
    scan per probe — and, for ``float`` or mixed dtypes, a silent
    wrong-answer hazard — so every membership test in the RR evaluators
    goes through this helper first.
    """
    if isinstance(allowed, (set, frozenset)):
        return allowed
    return set(int(v) for v in allowed)


@dataclass
class RRGraph:
    """One sampled RR graph.

    Attributes
    ----------
    source:
        The uniformly sampled source node (the RR set's "root").
    adjacency:
        ``adjacency[v]`` lists the nodes ``u`` whose reverse edge
        ``(v -> u)`` fired while ``v`` was explored. Every key is a member
        of the RR set; traversal from :attr:`source` over ``adjacency``
        reaches every member.
    """

    source: int
    adjacency: dict[int, list[int]]

    @property
    def nodes(self) -> list[int]:
        """The RR set (all activated nodes)."""
        return list(self.adjacency)

    @property
    def n_nodes(self) -> int:
        """RR set size, the ``|R|`` term of the complexity analyses."""
        return len(self.adjacency)

    @property
    def n_edges(self) -> int:
        """Activated edge count, the ``vol(R)`` term."""
        return sum(len(targets) for targets in self.adjacency.values())

    def reachable_within(self, allowed: "set[int] | np.ndarray") -> set[int]:
        """Nodes reachable from the source inside the induced RR graph.

        ``allowed`` is the community's node set; this realizes Definition 3
        directly and is the reference implementation the fast evaluators
        are tested against. Arrays are normalized to a set once up front;
        passing a set avoids even that copy.
        """
        allowed_set = _normalize_allowed(allowed)
        if self.source not in allowed_set:
            return set()
        seen = {self.source}
        stack = [self.source]
        while stack:
            v = stack.pop()
            for u in self.adjacency.get(v, ()):
                if u in allowed_set and u not in seen:
                    seen.add(u)
                    stack.append(u)
        return seen


def sample_rr_graph(
    graph: AttributedGraph,
    model: InfluenceModel | None = None,
    rng: "int | np.random.Generator | None" = None,
    source: int | None = None,
    allowed: "set[int] | None" = None,
) -> RRGraph:
    """Sample one RR graph from a uniform (or given) source node.

    Parameters
    ----------
    allowed:
        When given, the diffusion is confined to this node set while
        keeping the *original graph's* probabilities (edges of ``v`` still
        fire with ``p(u, v)`` defined on ``g``). This realizes an RR
        generation "on community C w.r.t. the possible world of g" exactly
        as Theorem 2's proof describes, and is what the Independent
        baseline and the top-k precision oracle sample. The source must lie
        in ``allowed``.
    """
    maybe_fail("rr_sampling")
    model = model or WeightedCascade()
    rng = ensure_rng(rng)
    if source is None:
        if allowed is not None:
            pool = sorted(allowed)
            source = int(pool[int(rng.integers(0, len(pool)))])
        else:
            source = int(rng.integers(0, graph.n))
    elif not (0 <= source < graph.n):
        raise InfluenceError(f"source {source} is not a node of the graph")
    if allowed is not None and source not in allowed:
        raise InfluenceError(f"source {source} is outside the allowed node set")

    adjacency: dict[int, list[int]] = {source: []}
    frontier = [source]
    while frontier:
        v = frontier.pop()
        fired = model.reverse_sample(graph, v, rng)
        targets: list[int] = []
        for u in fired:
            u = int(u)
            if allowed is not None and u not in allowed:
                continue
            targets.append(u)
            if u not in adjacency:
                adjacency[u] = []
                frontier.append(u)
        adjacency[v] = targets
    return RRGraph(source=source, adjacency=adjacency)


def sample_rr_graphs(
    graph: AttributedGraph,
    count: int,
    model: InfluenceModel | None = None,
    rng: "int | np.random.Generator | None" = None,
    sources: Sequence[int] | None = None,
    allowed: "set[int] | None" = None,
    budget: "object | None" = None,
) -> Iterator[RRGraph]:
    """Yield ``count`` independent RR graphs.

    Pre-draws all sources in one vectorized call when none are supplied;
    yields lazily so callers processing samples one at a time (HFS) never
    hold the whole collection. See :func:`sample_rr_graph` for ``allowed``.

    ``budget`` is an optional cooperative checkpoint (duck-typed; see
    :class:`repro.serving.budget.ExecutionBudget`): ``budget.tick()`` runs
    before each draw, so a spent deadline or sample budget stops the
    stream within one sample.
    """
    if count < 0:
        raise InfluenceError(f"count must be non-negative, got {count}")
    model = model or WeightedCascade()
    rng = ensure_rng(rng)
    if sources is None:
        if allowed is not None:
            pool = np.asarray(sorted(allowed), dtype=np.int64)
            source_arr = pool[rng.integers(0, len(pool), size=count)]
        else:
            source_arr = rng.integers(0, graph.n, size=count)
    else:
        if len(sources) != count:
            raise InfluenceError(f"got {len(sources)} sources for count={count}")
        source_arr = np.asarray(sources, dtype=np.int64)
    for s in source_arr:
        if budget is not None:
            budget.tick()
        yield sample_rr_graph(graph, model=model, rng=rng, source=int(s), allowed=allowed)
