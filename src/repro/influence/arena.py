"""Flat CSR arena for batches of RR graphs — the sampling engine.

One COD evaluation touches thousands of RR graphs; storing each as a
Python ``dict`` of lists (:class:`repro.influence.rr.RRGraph`) makes the
``|R|``/``vol(R)`` hot paths of Section III allocation-bound. The
:class:`RRArena` stores a whole batch in shared CSR-style arrays instead:

* ``nodes`` — every activated node of every sample, concatenated in
  discovery order; ``node_offsets[i]:node_offsets[i+1]`` is sample ``i``'s
  RR set, and each position in ``nodes`` is an *entry* (a (sample, node)
  pair with a global integer id).
* ``edge_start``/``edge_count`` — per entry, the contiguous slice of its
  fired reverse edges inside ``edge_dst_entry``.
* ``edge_dst_entry`` — edge targets stored as *entry ids* (not node ids),
  so evaluation never needs a per-sample hash lookup.
* an inverted view (``entry_samples``, lazily derived) mapping entries
  back to their sample — the node→samples index behind the batched
  evaluators.

:func:`sample_arena` draws a batch directly into these arrays. It is
*stream-compatible* with the legacy per-dict sampler: for the same seed it
consumes the RNG in exactly the same order and therefore produces
bit-identical samples — the property the differential oracle suite
(``tests/oracle``) pins. Evaluation (:meth:`RRArena.hfs_levels`,
:meth:`RRArena.influence_counts`) is vectorized over the flat arrays; the
minimax level assignment of Algorithm 1's HFS is computed by fixpoint
relaxation over all edges of all samples at once instead of one
heap-Dijkstra per sample.

:class:`RRView` keeps the old ``RRGraph`` surface alive as a lazy,
zero-copy window into the arena, so code (and tests) written against
``.source`` / ``.adjacency`` / ``.reachable_within`` keeps working.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Iterator, Sequence

import numpy as np

from repro.errors import InfluenceError
from repro.graph.graph import AttributedGraph
from repro.influence.models import InfluenceModel, UniformIC, WeightedCascade
from repro.influence.rr import _normalize_allowed
from repro.utils.faults import maybe_fail
from repro.utils.rng import ensure_rng

_EMPTY = np.empty(0, dtype=np.int64)


def _group_by_value(items: np.ndarray, values: np.ndarray):
    """Yield ``(value, items_with_that_value)`` pairs (one sort, no dicts)."""
    if not len(items):
        return
    order = np.argsort(values, kind="stable")
    sorted_values = values[order]
    sorted_items = items[order]
    bounds = np.flatnonzero(np.diff(sorted_values)) + 1
    starts = np.concatenate(([0], bounds))
    ends = np.concatenate((bounds, [len(sorted_values)]))
    for s, e in zip(starts, ends):
        yield int(sorted_values[s]), sorted_items[s:e]


class RRView:
    """A lazy, read-only view of one sample inside an :class:`RRArena`.

    Interface-compatible with :class:`repro.influence.rr.RRGraph`; the
    ``adjacency`` dict is materialized (and cached) only when asked for,
    so arena-native callers never pay for it.
    """

    __slots__ = ("_arena", "_index", "_adjacency")

    def __init__(self, arena: "RRArena", index: int) -> None:
        self._arena = arena
        self._index = index
        self._adjacency: "dict[int, list[int]] | None" = None

    @property
    def source(self) -> int:
        return int(self._arena.sources[self._index])

    @property
    def adjacency(self) -> dict[int, list[int]]:
        """The legacy dict-of-lists form, built on first access."""
        if self._adjacency is None:
            self._adjacency = self._arena._adjacency_of(self._index)
        return self._adjacency

    @property
    def nodes(self) -> list[int]:
        a, b = self._arena._bounds(self._index)
        return self._arena.nodes[a:b].tolist()

    @property
    def n_nodes(self) -> int:
        a, b = self._arena._bounds(self._index)
        return int(b - a)

    @property
    def n_edges(self) -> int:
        a, b = self._arena._bounds(self._index)
        return int(self._arena.edge_count[a:b].sum())

    def reachable_within(self, allowed: "set[int] | np.ndarray") -> set[int]:
        """Definition-3 induced reachability, computed on the flat arrays."""
        return self._arena.reachable_within(self._index, allowed)

    def __repr__(self) -> str:
        return (
            f"RRView(sample={self._index}, source={self.source}, "
            f"nodes={self.n_nodes}, edges={self.n_edges})"
        )


class RRArena:
    """A batch of RR graphs in shared flat arrays.

    Construct with :func:`sample_arena` (or :func:`concatenate_arenas`);
    the constructor only wires pre-built arrays together.

    Parameters
    ----------
    n:
        Node count of the sampled graph (``|V|``, the Theorem-1 scaling
        population for unrestricted samples).
    sources:
        ``sources[i]`` is sample ``i``'s root.
    node_offsets:
        CSR offsets of shape ``(n_samples + 1,)`` into ``nodes``.
    nodes:
        Activated nodes in discovery order (source first per sample).
    edge_start / edge_count:
        Per entry, the slice of its fired edges in ``edge_dst_entry``.
        Slices are contiguous and disjoint but stored in *exploration*
        order, which differs from entry order within a sample.
    edge_dst_entry:
        Edge targets as global entry ids.
    """

    __slots__ = (
        "n",
        "sources",
        "node_offsets",
        "nodes",
        "edge_start",
        "edge_count",
        "edge_dst_entry",
        "_edge_src_entry",
        "_entry_samples",
    )

    def __init__(
        self,
        n: int,
        sources: np.ndarray,
        node_offsets: np.ndarray,
        nodes: np.ndarray,
        edge_start: np.ndarray,
        edge_count: np.ndarray,
        edge_dst_entry: np.ndarray,
    ) -> None:
        if len(node_offsets) != len(sources) + 1:
            raise InfluenceError(
                f"node_offsets has {len(node_offsets)} entries for "
                f"{len(sources)} samples"
            )
        if len(edge_start) != len(nodes) or len(edge_count) != len(nodes):
            raise InfluenceError("edge_start/edge_count must align with nodes")
        self.n = int(n)
        self.sources = sources
        self.node_offsets = node_offsets
        self.nodes = nodes
        self.edge_start = edge_start
        self.edge_count = edge_count
        self.edge_dst_entry = edge_dst_entry
        self._edge_src_entry: "np.ndarray | None" = None
        self._entry_samples: "np.ndarray | None" = None

    # ------------------------------------------------------------------ size

    @property
    def n_samples(self) -> int:
        """Number of RR graphs in the arena."""
        return len(self.sources)

    @property
    def total_nodes(self) -> int:
        """``|R|``: activated (sample, node) entries across the batch."""
        return len(self.nodes)

    @property
    def total_edges(self) -> int:
        """``vol(R)``: activated edges across the batch."""
        return len(self.edge_dst_entry)

    def __len__(self) -> int:
        return self.n_samples

    def __repr__(self) -> str:
        return (
            f"RRArena(samples={self.n_samples}, nodes={self.total_nodes}, "
            f"edges={self.total_edges})"
        )

    def memory_bytes(self) -> int:
        """Footprint of the flat arrays, for Table-II style reporting."""
        return (
            self.sources.nbytes
            + self.node_offsets.nbytes
            + self.nodes.nbytes
            + self.edge_start.nbytes
            + self.edge_count.nbytes
            + self.edge_dst_entry.nbytes
        )

    # ----------------------------------------------------------- derived maps

    @property
    def entry_samples(self) -> np.ndarray:
        """Sample id of every entry (the node→samples inverted index)."""
        if self._entry_samples is None:
            self._entry_samples = np.repeat(
                np.arange(self.n_samples, dtype=np.int64),
                np.diff(self.node_offsets),
            )
        return self._entry_samples

    @property
    def edge_src_entries(self) -> np.ndarray:
        """Source entry of every edge, aligned with ``edge_dst_entry``.

        Edge slices are contiguous in storage order; sorting entries by
        ``edge_start`` recovers that order, so one ``repeat`` rebuilds the
        per-edge source column without touching Python loops.
        """
        if self._edge_src_entry is None:
            order = np.argsort(self.edge_start, kind="stable")
            self._edge_src_entry = np.repeat(order, self.edge_count[order])
        return self._edge_src_entry

    # ---------------------------------------------------------------- views

    def _bounds(self, index: int) -> tuple[int, int]:
        if not (0 <= index < self.n_samples):
            raise InfluenceError(
                f"sample {index} out of range 0..{self.n_samples - 1}"
            )
        return int(self.node_offsets[index]), int(self.node_offsets[index + 1])

    def view(self, index: int) -> RRView:
        """A lazy :class:`RRView` of one sample."""
        self._bounds(index)
        return RRView(self, index)

    def __iter__(self) -> Iterator[RRView]:
        for i in range(self.n_samples):
            yield RRView(self, i)

    def _adjacency_of(self, index: int) -> dict[int, list[int]]:
        """Rebuild one sample's legacy adjacency dict (insertion order)."""
        a, b = self._bounds(index)
        nodes = self.nodes
        adjacency: dict[int, list[int]] = {}
        for e in range(a, b):
            s = int(self.edge_start[e])
            c = int(self.edge_count[e])
            adjacency[int(nodes[e])] = nodes[
                self.edge_dst_entry[s: s + c]
            ].tolist()
        return adjacency

    def reachable_within(
        self, index: int, allowed: "set[int] | np.ndarray"
    ) -> set[int]:
        """Nodes of sample ``index`` reachable from its source inside
        ``allowed`` (Definition 3), walking the flat arrays directly."""
        a, b = self._bounds(index)
        allowed_set = _normalize_allowed(allowed)
        source = int(self.sources[index])
        if source not in allowed_set:
            return set()
        nodes = self.nodes
        seen_entries = {a}  # the source is always its sample's first entry
        stack = [a]
        seen = {source}
        while stack:
            e = stack.pop()
            s = int(self.edge_start[e])
            for de in self.edge_dst_entry[s: s + int(self.edge_count[e])]:
                de = int(de)
                if de in seen_entries:
                    continue
                u = int(nodes[de])
                if u not in allowed_set:
                    continue
                seen_entries.add(de)
                seen.add(u)
                stack.append(de)
        return seen

    def restrict(self, allowed: "set[int] | np.ndarray") -> "RRArena":
        """A new arena holding this batch induced on ``allowed`` nodes.

        Per sample, the restricted RR graph is the Definition-3 induced
        reachability: samples whose source lies outside ``allowed`` are
        dropped entirely; surviving samples keep exactly the entries
        :meth:`reachable_within` would return, with edges between kept
        entries preserved (storage order intact, entry ids renumbered).

        This is the deterministic pooled counterpart of drawing fresh
        restricted samples with ``sample_arena(..., allowed=...)``: it is
        a pure function of the arena and ``allowed`` — no RNG — which is
        what lets a pooled server answer CODL's restricted local fallback
        without consuming its random stream. The restricted sample count
        (``n_samples`` of the result) is whatever survives, not
        ``theta * |allowed|``; compressed evaluation only compares raw
        counts against thresholds from the same batch, so that is sound.

        Runs as a batched BFS over all samples at once (one ragged
        out-edge gather per frontier) followed by a vectorized CSR
        rebuild — no per-sample Python loops.
        """
        mask = np.zeros(self.n, dtype=bool)
        allowed_arr = np.fromiter(
            (int(v) for v in allowed), dtype=np.int64
        ) if not isinstance(allowed, np.ndarray) else np.asarray(
            allowed, dtype=np.int64
        )
        if len(allowed_arr) and not (
            (allowed_arr >= 0) & (allowed_arr < self.n)
        ).all():
            raise InfluenceError("allowed contains nodes outside the graph")
        mask[allowed_arr] = True

        entry_ok = mask[self.nodes] if self.total_nodes else np.zeros(0, bool)
        keep_sample = mask[self.sources] if self.n_samples else np.zeros(0, bool)
        reach = np.zeros(self.total_nodes, dtype=bool)
        roots = self.node_offsets[:-1][keep_sample]
        if len(roots):
            # Sources are always allowed for kept samples (first entry).
            reach[roots] = True
            frontier = roots
            while len(frontier):
                counts = self.edge_count[frontier]
                total = int(counts.sum())
                if total == 0:
                    break
                offsets = np.cumsum(counts)
                idx = np.arange(total, dtype=np.int64)
                idx += np.repeat(
                    self.edge_start[frontier] - offsets + counts, counts
                )
                targets = self.edge_dst_entry[idx]
                fresh = entry_ok[targets] & ~reach[targets]
                frontier = np.unique(targets[fresh])
                reach[frontier] = True

        new_entry_id = np.cumsum(reach) - 1  # valid only where reach is True
        per_sample = np.bincount(
            self.entry_samples[reach], minlength=self.n_samples
        )[keep_sample]
        node_offsets = np.zeros(len(per_sample) + 1, dtype=np.int64)
        np.cumsum(per_sample, out=node_offsets[1:])

        if self.total_edges:
            esrc = self.edge_src_entries
            keep_edge = reach[esrc] & reach[self.edge_dst_entry]
            edge_dst_entry = new_entry_id[self.edge_dst_entry[keep_edge]]
            kept_counts = np.bincount(
                esrc[keep_edge], minlength=self.total_nodes
            )
        else:
            edge_dst_entry = _EMPTY
            kept_counts = np.zeros(self.total_nodes, dtype=np.int64)
        # New edge slices stay contiguous in the old storage order: entry
        # e's slice starts after every kept edge of entries stored before
        # it, so one cumsum over storage order yields the new starts.
        order = np.argsort(self.edge_start, kind="stable")
        starts_in_order = np.zeros(self.total_nodes, dtype=np.int64)
        np.cumsum(kept_counts[order][:-1], out=starts_in_order[1:])
        edge_start_all = np.empty(self.total_nodes, dtype=np.int64)
        edge_start_all[order] = starts_in_order

        return RRArena(
            n=self.n,
            sources=self.sources[keep_sample],
            node_offsets=node_offsets,
            nodes=self.nodes[reach],
            edge_start=edge_start_all[reach],
            edge_count=kept_counts[reach].astype(np.int64),
            edge_dst_entry=edge_dst_entry.astype(np.int64),
        )

    # ------------------------------------------------------------ evaluation

    def node_counts(self) -> np.ndarray:
        """RR-occurrence count of every graph node, shape ``(n,)``."""
        return np.bincount(self.nodes, minlength=self.n)

    def influence_counts(self) -> dict[int, int]:
        """Occurrence counts as a dict (nodes with count 0 omitted) —
        drop-in for the legacy pool/estimator counting loops."""
        counts = self.node_counts()
        (present,) = np.nonzero(counts)
        return {int(v): int(counts[v]) for v in present}

    def hfs_levels(
        self,
        node_levels: np.ndarray,
        n_levels: int,
        budget: "object | None" = None,
    ) -> np.ndarray:
        """Per-entry HFS level assignment (Algorithm 1, stage 1) for every
        sample at once.

        ``node_levels`` maps each graph node to the index of the smallest
        chain community containing it (:attr:`CommunityChain.node_levels`;
        negative = outside every community). Returns, per entry, the
        minimax-over-paths level it is charged to, with ``n_levels``
        marking "unreachable inside the chain".

        The minimax assignment satisfies the Bellman fixpoint
        ``a[u] = min over in-edges (max(a[v], level(u)))`` with
        ``a[source] = level(source)``. Levels are small integers, so we
        run Dial's algorithm with one bucket per chain level: entries
        activate in ascending level order and their out-edges are gathered
        exactly once, giving ``O(|R| + vol(R))`` total work regardless of
        path lengths (a Jacobi-style whole-edge-array relaxation re-sweeps
        ``vol(R)`` once per hop of the longest minimax path, which on
        large samples dwarfs the legacy per-sample heap pass).

        ``budget`` (duck-typed :class:`~repro.serving.budget.ExecutionBudget`)
        is checked once per frontier expansion, matching the legacy
        per-32-samples cooperative checkpoint in spirit.
        """
        sentinel = int(n_levels)
        lvl = node_levels[self.nodes]
        lvl = np.where((lvl < 0) | (lvl >= sentinel), sentinel, lvl)
        assigned = np.full(self.total_nodes, sentinel, dtype=np.int64)
        if sentinel == 0 or self.total_nodes == 0:
            return assigned

        edge_start = self.edge_start
        edge_count = self.edge_count
        edge_dst = self.edge_dst_entry

        # Seed the buckets with every sample's source entry (a source
        # outside the chain stays at the sentinel and never propagates).
        buckets: list[list[np.ndarray]] = [[] for _ in range(sentinel)]
        roots = self.node_offsets[:-1]
        root_lvl = lvl[roots]
        live = roots[root_lvl < sentinel]
        if len(live):
            assigned[live] = lvl[live]
            for h, chunk in _group_by_value(live, lvl[live]):
                buckets[h].append(chunk)

        expanded = np.zeros(self.total_nodes, dtype=bool)
        for h in range(sentinel):
            pending = [c for c in buckets[h] if len(c)]
            buckets[h] = []
            if not pending:
                continue
            frontier = np.unique(np.concatenate(pending))
            frontier = frontier[
                (assigned[frontier] == h) & ~expanded[frontier]
            ]
            while len(frontier):
                if budget is not None:
                    budget.check()
                expanded[frontier] = True
                counts = edge_count[frontier]
                total = int(counts.sum())
                if total == 0:
                    break
                # Ragged gather of every out-edge of the frontier.
                offsets = np.cumsum(counts)
                idx = np.arange(total, dtype=np.int64)
                idx += np.repeat(edge_start[frontier] - offsets + counts, counts)
                targets = edge_dst[idx]
                value = np.maximum(lvl[targets], h)
                improves = value < assigned[targets]
                targets = targets[improves]
                value = value[improves]
                assigned[targets] = value
                now = value == h
                frontier = np.unique(targets[now])
                for level, chunk in _group_by_value(
                    targets[~now], value[~now]
                ):
                    buckets[level].append(chunk)
        return assigned

    def level_bucket_counts(
        self,
        node_levels: np.ndarray,
        n_levels: int,
        budget: "object | None" = None,
    ) -> np.ndarray:
        """Stage-1 bucket totals: ``counts[h, v]`` = samples charging node
        ``v`` to chain level ``h``. One ``bincount`` over the flattened
        (level, node) keys replaces the per-sample dict buckets."""
        assigned = self.hfs_levels(node_levels, n_levels, budget=budget)
        mask = assigned < n_levels
        keys = assigned[mask] * self.n + self.nodes[mask]
        flat = np.bincount(keys, minlength=n_levels * self.n)
        return flat.reshape(n_levels, self.n)


def concatenate_arenas(arenas: Sequence[RRArena]) -> RRArena:
    """Merge arenas over the same graph into one batch (samples appended
    in order) — the pool-doubling primitive of the adaptive evaluator."""
    if not arenas:
        raise InfluenceError("need at least one arena to concatenate")
    n = arenas[0].n
    for a in arenas[1:]:
        if a.n != n:
            raise InfluenceError(
                f"cannot concatenate arenas over different graphs "
                f"({a.n} vs {n} nodes)"
            )
    if len(arenas) == 1:
        return arenas[0]
    node_shift = np.cumsum([0] + [a.total_nodes for a in arenas])
    edge_shift = np.cumsum([0] + [a.total_edges for a in arenas])
    offsets = [arenas[0].node_offsets]
    for a, shift in zip(arenas[1:], node_shift[1:]):
        offsets.append(a.node_offsets[1:] + shift)
    return RRArena(
        n=n,
        sources=np.concatenate([a.sources for a in arenas]),
        node_offsets=np.concatenate(offsets),
        nodes=np.concatenate([a.nodes for a in arenas]),
        edge_start=np.concatenate(
            [a.edge_start + shift for a, shift in zip(arenas, edge_shift)]
        ),
        edge_count=np.concatenate([a.edge_count for a in arenas]),
        edge_dst_entry=np.concatenate(
            [a.edge_dst_entry + shift for a, shift in zip(arenas, node_shift)]
        ),
    )


def sample_arena(
    graph: AttributedGraph,
    count: int,
    model: "InfluenceModel | None" = None,
    rng: "int | np.random.Generator | None" = None,
    sources: "Sequence[int] | None" = None,
    allowed: "set[int] | None" = None,
    budget: "object | None" = None,
    trace: "object | None" = None,
) -> RRArena:
    """Draw ``count`` RR graphs straight into a flat :class:`RRArena`.

    Stream-compatible with the legacy sampler: sources are pre-drawn with
    the same single vectorized call, and each sample explores nodes in the
    same LIFO order with one Bernoulli block per explored node, so a given
    seed yields exactly the samples ``sample_rr_graphs`` would produce
    (the oracle suite's seed-for-seed guarantee). Weighted-cascade and
    uniform-IC draws run on a flattened CSR copy of the graph's adjacency;
    other models fall back to :meth:`InfluenceModel.reverse_sample` per
    node, which preserves their stream too.

    ``budget.tick()`` runs before each draw and the ``rr_sampling`` fault
    site fires once per sample — the same checkpoints, at the same sites,
    as the legacy path.

    ``trace`` is an optional duck-typed span recorder (anything with a
    ``span(name, **meta)`` context manager, e.g.
    ``repro.obs.QueryTrace``): the draw loop runs inside a ``sampling``
    span annotated with the sample count and arena size. Tracing draws
    nothing from ``rng`` and never changes the samples.
    """
    if count < 0:
        raise InfluenceError(f"count must be non-negative, got {count}")
    model = model or WeightedCascade()
    rng = ensure_rng(rng)
    n = graph.n

    allowed_mask: "np.ndarray | None" = None
    if allowed is not None:
        allowed_mask = np.zeros(n, dtype=bool)
        allowed_arr = np.asarray(sorted(allowed), dtype=np.int64)
        if len(allowed_arr) and not (
            0 <= int(allowed_arr[0]) and int(allowed_arr[-1]) < n
        ):
            raise InfluenceError("allowed contains nodes outside the graph")
        allowed_mask[allowed_arr] = True

    if sources is None:
        if allowed is not None:
            source_arr = allowed_arr[rng.integers(0, len(allowed_arr), size=count)]
        else:
            source_arr = rng.integers(0, n, size=count)
    else:
        if len(sources) != count:
            raise InfluenceError(f"got {len(sources)} sources for count={count}")
        source_arr = np.asarray(sources, dtype=np.int64)
        if count and not ((source_arr >= 0) & (source_arr < n)).all():
            bad = int(source_arr[(source_arr < 0) | (source_arr >= n)][0])
            raise InfluenceError(f"source {bad} is not a node of the graph")
        if allowed_mask is not None and count and not allowed_mask[source_arr].all():
            bad = int(source_arr[~allowed_mask[source_arr]][0])
            raise InfluenceError(f"source {bad} is outside the allowed node set")

    # Flat CSR of the graph adjacency: one contiguous neighbor array.
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(graph.degrees, out=indptr[1:])
    indices = (
        np.concatenate([graph.neighbors(v) for v in range(n)])
        if graph.m > 0
        else _EMPTY
    )

    fast_wc = type(model) is WeightedCascade
    fast_uic = type(model) is UniformIC
    uic_p = model.p if fast_uic else 0.0

    # Hot-loop state lives in plain Python lists: at RR-graph node degrees
    # the per-call overhead of small-array numpy ops costs more than
    # scalar list indexing, and the draws themselves stay vectorized.
    indptr_l: list[int] = indptr.tolist()
    allowed_ok: "list[bool] | None" = (
        allowed_mask.tolist() if allowed_mask is not None else None
    )
    visited = [-1] * n  # epoch stamp = sample index
    entry_of = [0] * n

    nodes_list: list[int] = []
    edge_start_list: list[int] = []
    edge_count_list: list[int] = []
    edge_entries: list[int] = []
    node_offsets = np.empty(count + 1, dtype=np.int64)
    node_offsets[0] = 0

    rand = rng.random
    span_cm = trace.span("sampling") if trace is not None else nullcontext()
    with span_cm as span:
        for i in range(count):
            if budget is not None:
                budget.tick()
            maybe_fail("rr_sampling")
            source = int(source_arr[i])
            visited[source] = i
            entry_of[source] = len(nodes_list)
            nodes_list.append(source)
            edge_start_list.append(0)
            edge_count_list.append(0)
            frontier = [source]
            while frontier:
                v = frontier.pop()
                e = entry_of[v]
                beg = indptr_l[v]
                deg = indptr_l[v + 1] - beg
                if fast_wc or fast_uic:
                    # The built-in IC models draw one Bernoulli block per
                    # explored node (and nothing for isolated nodes) —
                    # matched here so the RNG stream stays identical to
                    # the legacy sampler.
                    if deg == 0:
                        fired: list[int] = []
                    else:
                        nbrs = indices[beg: beg + deg]
                        p = uic_p if fast_uic else 1.0 / deg
                        fired = nbrs[rand(deg) < p].tolist()
                else:
                    fired = [int(u) for u in model.reverse_sample(graph, v, rng)]
                if allowed_ok is not None and fired:
                    fired = [u for u in fired if allowed_ok[u]]
                edge_start_list[e] = len(edge_entries)
                edge_count_list[e] = len(fired)
                for u in fired:
                    if visited[u] != i:
                        visited[u] = i
                        entry_of[u] = len(nodes_list)
                        nodes_list.append(u)
                        edge_start_list.append(0)
                        edge_count_list.append(0)
                        frontier.append(u)
                    edge_entries.append(entry_of[u])
            node_offsets[i + 1] = len(nodes_list)

        if span is not None:
            span.note(
                samples=count,
                arena_nodes=len(nodes_list),
                arena_edges=len(edge_entries),
            )

    return RRArena(
        n=n,
        sources=source_arr,
        node_offsets=node_offsets,
        nodes=np.asarray(nodes_list, dtype=np.int64),
        edge_start=np.asarray(edge_start_list, dtype=np.int64),
        edge_count=np.asarray(edge_count_list, dtype=np.int64),
        edge_dst_entry=np.asarray(edge_entries, dtype=np.int64),
    )
