"""Flat CSR arena for batches of RR graphs — the sampling engine.

One COD evaluation touches thousands of RR graphs; storing each as a
Python ``dict`` of lists (:class:`repro.influence.rr.RRGraph`) makes the
``|R|``/``vol(R)`` hot paths of Section III allocation-bound. The
:class:`RRArena` stores a whole batch in shared CSR-style arrays instead:

* ``nodes`` — every activated node of every sample, concatenated in
  discovery order; ``node_offsets[i]:node_offsets[i+1]`` is sample ``i``'s
  RR set, and each position in ``nodes`` is an *entry* (a (sample, node)
  pair with a global integer id).
* ``edge_start``/``edge_count`` — per entry, the contiguous slice of its
  fired reverse edges inside ``edge_dst_entry``.
* ``edge_dst_entry`` — edge targets stored as *entry ids* (not node ids),
  so evaluation never needs a per-sample hash lookup.
* an inverted view (``entry_samples``, lazily derived) mapping entries
  back to their sample — the node→samples index behind the batched
  evaluators.

:func:`sample_arena` draws a batch directly into these arrays. It is
*stream-compatible* with the legacy per-dict sampler: for the same seed it
consumes the RNG in exactly the same order and therefore produces
bit-identical samples — the property the differential oracle suite
(``tests/oracle``) pins. Evaluation (:meth:`RRArena.hfs_levels`,
:meth:`RRArena.influence_counts`) is vectorized over the flat arrays; the
minimax level assignment of Algorithm 1's HFS is computed by fixpoint
relaxation over all edges of all samples at once instead of one
heap-Dijkstra per sample.

:class:`RRView` keeps the old ``RRGraph`` surface alive as a lazy,
zero-copy window into the arena, so code (and tests) written against
``.source`` / ``.adjacency`` / ``.reachable_within`` keeps working.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Iterator, Sequence

import numpy as np

from repro.errors import InfluenceError
from repro.graph.graph import AttributedGraph
from repro.influence.models import InfluenceModel, UniformIC, WeightedCascade
from repro.influence.rr import _normalize_allowed
from repro.utils.faults import maybe_fail
from repro.utils.rng import ensure_rng

_EMPTY = np.empty(0, dtype=np.int64)
# The module-wide empty is aliased into many arenas (empty repairs, zero-edge
# restrictions); freezing it keeps the writeable flag story consistent with
# shared-memory attached arenas — nobody may mutate what others alias.
_EMPTY.setflags(write=False)

#: Array fields every arena stores, in segment order (see :meth:`RRArena.to_shared`).
_ARENA_FIELDS = (
    "sources",
    "node_offsets",
    "nodes",
    "edge_start",
    "edge_count",
    "edge_dst_entry",
)


def allowed_fingerprint(allowed: "set[int] | Sequence[int] | np.ndarray") -> str:
    """Canonical content hash of an ``allowed`` node set.

    Restricted-arena shards are published with this fingerprint stamped
    into the segment header; an attacher recomputes it from its own
    hierarchy-derived allowed set and refuses any shard whose hash
    differs, so a shard built for a different attribute's community (or
    against a stale hierarchy) can never be served as the restriction it
    is not. Order-insensitive: the set is sorted before hashing.
    """
    import hashlib

    if isinstance(allowed, np.ndarray):
        arr = np.sort(np.asarray(allowed, dtype=np.int64))
    else:
        arr = np.fromiter(
            sorted(int(v) for v in allowed), dtype=np.int64,
        )
    return hashlib.sha256(arr.tobytes()).hexdigest()[:16]


def _ragged_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenate ``[arange(s, s + c) for s, c in zip(starts, counts)]``
    without a Python loop (the ragged-gather idiom of :meth:`RRArena.restrict`)."""
    total = int(counts.sum())
    if total == 0:
        return _EMPTY
    offsets = np.cumsum(counts)
    idx = np.arange(total, dtype=np.int64)
    idx += np.repeat(starts - offsets + counts, counts)
    return idx


def _group_by_value(items: np.ndarray, values: np.ndarray):
    """Yield ``(value, items_with_that_value)`` pairs (one sort, no dicts)."""
    if not len(items):
        return
    order = np.argsort(values, kind="stable")
    sorted_values = values[order]
    sorted_items = items[order]
    bounds = np.flatnonzero(np.diff(sorted_values)) + 1
    starts = np.concatenate(([0], bounds))
    ends = np.concatenate((bounds, [len(sorted_values)]))
    for s, e in zip(starts, ends):
        yield int(sorted_values[s]), sorted_items[s:e]


class RRView:
    """A lazy, read-only view of one sample inside an :class:`RRArena`.

    Interface-compatible with :class:`repro.influence.rr.RRGraph`; the
    ``adjacency`` dict is materialized (and cached) only when asked for,
    so arena-native callers never pay for it.
    """

    __slots__ = ("_arena", "_index", "_adjacency")

    def __init__(self, arena: "RRArena", index: int) -> None:
        self._arena = arena
        self._index = index
        self._adjacency: "dict[int, list[int]] | None" = None

    @property
    def source(self) -> int:
        return int(self._arena.sources[self._index])

    @property
    def adjacency(self) -> dict[int, list[int]]:
        """The legacy dict-of-lists form, built on first access."""
        if self._adjacency is None:
            self._adjacency = self._arena._adjacency_of(self._index)
        return self._adjacency

    @property
    def nodes(self) -> list[int]:
        a, b = self._arena._bounds(self._index)
        return self._arena.nodes[a:b].tolist()

    @property
    def n_nodes(self) -> int:
        a, b = self._arena._bounds(self._index)
        return int(b - a)

    @property
    def n_edges(self) -> int:
        a, b = self._arena._bounds(self._index)
        return int(self._arena.edge_count[a:b].sum())

    def reachable_within(self, allowed: "set[int] | np.ndarray") -> set[int]:
        """Definition-3 induced reachability, computed on the flat arrays."""
        return self._arena.reachable_within(self._index, allowed)

    def __repr__(self) -> str:
        return (
            f"RRView(sample={self._index}, source={self.source}, "
            f"nodes={self.n_nodes}, edges={self.n_edges})"
        )


class RRArena:
    """A batch of RR graphs in shared flat arrays.

    Construct with :func:`sample_arena` (or :func:`concatenate_arenas`);
    the constructor only wires pre-built arrays together.

    Parameters
    ----------
    n:
        Node count of the sampled graph (``|V|``, the Theorem-1 scaling
        population for unrestricted samples).
    sources:
        ``sources[i]`` is sample ``i``'s root.
    node_offsets:
        CSR offsets of shape ``(n_samples + 1,)`` into ``nodes``.
    nodes:
        Activated nodes in discovery order (source first per sample).
    edge_start / edge_count:
        Per entry, the slice of its fired edges in ``edge_dst_entry``.
        Slices are contiguous and disjoint but stored in *exploration*
        order, which differs from entry order within a sample.
    edge_dst_entry:
        Edge targets as global entry ids.
    """

    __slots__ = (
        "n",
        "sources",
        "node_offsets",
        "nodes",
        "edge_start",
        "edge_count",
        "edge_dst_entry",
        "_edge_src_entry",
        "_entry_samples",
        "_shm",
    )

    def __init__(
        self,
        n: int,
        sources: np.ndarray,
        node_offsets: np.ndarray,
        nodes: np.ndarray,
        edge_start: np.ndarray,
        edge_count: np.ndarray,
        edge_dst_entry: np.ndarray,
    ) -> None:
        if len(node_offsets) != len(sources) + 1:
            raise InfluenceError(
                f"node_offsets has {len(node_offsets)} entries for "
                f"{len(sources)} samples"
            )
        if len(edge_start) != len(nodes) or len(edge_count) != len(nodes):
            raise InfluenceError("edge_start/edge_count must align with nodes")
        self.n = int(n)
        self.sources = sources
        self.node_offsets = node_offsets
        self.nodes = nodes
        self.edge_start = edge_start
        self.edge_count = edge_count
        self.edge_dst_entry = edge_dst_entry
        self._edge_src_entry: "np.ndarray | None" = None
        self._entry_samples: "np.ndarray | None" = None
        #: Shared-memory segment handle when this arena's arrays are views
        #: over a mapped segment (see :meth:`attach` / :meth:`from_segment`).
        self._shm = None

    # ------------------------------------------------------------------ size

    @property
    def n_samples(self) -> int:
        """Number of RR graphs in the arena."""
        return len(self.sources)

    @property
    def total_nodes(self) -> int:
        """``|R|``: activated (sample, node) entries across the batch."""
        return len(self.nodes)

    @property
    def total_edges(self) -> int:
        """``vol(R)``: activated edges across the batch."""
        return len(self.edge_dst_entry)

    def __len__(self) -> int:
        return self.n_samples

    def __repr__(self) -> str:
        return (
            f"RRArena(samples={self.n_samples}, nodes={self.total_nodes}, "
            f"edges={self.total_edges})"
        )

    def memory_bytes(self) -> int:
        """Footprint of the flat arrays, for Table-II style reporting."""
        return (
            self.sources.nbytes
            + self.node_offsets.nbytes
            + self.nodes.nbytes
            + self.edge_start.nbytes
            + self.edge_count.nbytes
            + self.edge_dst_entry.nbytes
        )

    # -------------------------------------------------------- shared memory

    @property
    def is_shared(self) -> bool:
        """Whether this arena's arrays are views over a shared segment."""
        return self._shm is not None

    @property
    def is_readonly(self) -> bool:
        """Whether the backing arrays refuse writes (attached arenas do)."""
        return not self.nodes.flags.writeable or not self.sources.flags.writeable

    def copy(self) -> "RRArena":
        """A private, writable deep copy (used to de-alias shared inputs)."""
        return RRArena(
            n=self.n,
            sources=self.sources.copy(),
            node_offsets=self.node_offsets.copy(),
            nodes=self.nodes.copy(),
            edge_start=self.edge_start.copy(),
            edge_count=self.edge_count.copy(),
            edge_dst_entry=self.edge_dst_entry.copy(),
        )

    def to_shared(
        self,
        name: "str | None" = None,
        extra: "dict | None" = None,
        kind: str = "rr-arena",
    ):
        """Publish this arena into a named shared-memory segment.

        Returns the owning :class:`~repro.utils.shm.SharedSegment`; the
        arena itself is untouched. Readers rebuild a zero-copy arena
        with :meth:`attach`; the owner can adopt the segment's read-only
        views via :meth:`from_segment` to drop its private copy.

        ``kind`` tags the segment header; the full pool arena uses the
        default ``"rr-arena"`` while per-attribute restricted shards are
        published as ``"rr-shard"`` so an attacher can never confuse the
        two (``attach_segment`` rejects kind mismatches).
        """
        from repro.utils.shm import create_segment

        meta = {"n": int(self.n)}
        meta.update(extra or {})
        return create_segment(
            {field: getattr(self, field) for field in _ARENA_FIELDS},
            kind=kind,
            extra=meta,
            name=name,
        )

    @classmethod
    def from_segment(cls, segment) -> "RRArena":
        """Wrap a mapped ``rr-arena`` segment's views as an arena.

        Zero-copy: the arrays are the segment's read-only views, and the
        arena holds the segment handle so the mapping outlives the
        caller's reference to it. Mutating any array raises.
        """
        missing = [f for f in _ARENA_FIELDS if f not in segment.arrays]
        if missing:
            raise InfluenceError(
                f"segment {segment.name!r} is not an arena: missing "
                f"arrays {missing}"
            )
        arrays = {}
        for field in _ARENA_FIELDS:
            array = segment.arrays[field]
            if array.dtype != np.int64:
                raise InfluenceError(
                    f"segment {segment.name!r} stores {field} as "
                    f"{array.dtype}, expected int64"
                )
            arrays[field] = array
        arena = cls(n=int(segment.extra["n"]), **arrays)
        arena._shm = segment
        return arena

    @classmethod
    def attach(cls, name: str, kind: str = "rr-arena") -> "RRArena":
        """Attach a published arena by segment name (read-only, zero-copy).

        ``kind`` must match what the publisher stamped (``"rr-arena"``
        for full pool arenas, ``"rr-shard"`` for per-attribute restricted
        shards); a mismatch raises instead of serving the wrong arrays.
        """
        from repro.utils.shm import attach_segment

        return cls.from_segment(attach_segment(name, kind=kind))

    def detach(self) -> None:
        """Drop this arena's segment handle (close the mapping)."""
        segment, self._shm = self._shm, None
        if segment is not None:
            segment.close()

    # ----------------------------------------------------------- derived maps

    @property
    def entry_samples(self) -> np.ndarray:
        """Sample id of every entry (the node→samples inverted index)."""
        if self._entry_samples is None:
            self._entry_samples = np.repeat(
                np.arange(self.n_samples, dtype=np.int64),
                np.diff(self.node_offsets),
            )
        return self._entry_samples

    @property
    def edge_src_entries(self) -> np.ndarray:
        """Source entry of every edge, aligned with ``edge_dst_entry``.

        Edge slices are contiguous in storage order; sorting entries by
        ``edge_start`` recovers that order, so one ``repeat`` rebuilds the
        per-edge source column without touching Python loops.
        """
        if self._edge_src_entry is None:
            order = np.argsort(self.edge_start, kind="stable")
            self._edge_src_entry = np.repeat(order, self.edge_count[order])
        return self._edge_src_entry

    # ---------------------------------------------------------------- views

    def _bounds(self, index: int) -> tuple[int, int]:
        if not (0 <= index < self.n_samples):
            raise InfluenceError(
                f"sample {index} out of range 0..{self.n_samples - 1}"
            )
        return int(self.node_offsets[index]), int(self.node_offsets[index + 1])

    def view(self, index: int) -> RRView:
        """A lazy :class:`RRView` of one sample."""
        self._bounds(index)
        return RRView(self, index)

    def __iter__(self) -> Iterator[RRView]:
        for i in range(self.n_samples):
            yield RRView(self, i)

    def _adjacency_of(self, index: int) -> dict[int, list[int]]:
        """Rebuild one sample's legacy adjacency dict (insertion order)."""
        a, b = self._bounds(index)
        nodes = self.nodes
        adjacency: dict[int, list[int]] = {}
        for e in range(a, b):
            s = int(self.edge_start[e])
            c = int(self.edge_count[e])
            adjacency[int(nodes[e])] = nodes[
                self.edge_dst_entry[s: s + c]
            ].tolist()
        return adjacency

    def reachable_within(
        self, index: int, allowed: "set[int] | np.ndarray"
    ) -> set[int]:
        """Nodes of sample ``index`` reachable from its source inside
        ``allowed`` (Definition 3), walking the flat arrays directly."""
        a, b = self._bounds(index)
        allowed_set = _normalize_allowed(allowed)
        source = int(self.sources[index])
        if source not in allowed_set:
            return set()
        nodes = self.nodes
        seen_entries = {a}  # the source is always its sample's first entry
        stack = [a]
        seen = {source}
        while stack:
            e = stack.pop()
            s = int(self.edge_start[e])
            for de in self.edge_dst_entry[s: s + int(self.edge_count[e])]:
                de = int(de)
                if de in seen_entries:
                    continue
                u = int(nodes[de])
                if u not in allowed_set:
                    continue
                seen_entries.add(de)
                seen.add(u)
                stack.append(de)
        return seen

    def restrict(self, allowed: "set[int] | np.ndarray") -> "RRArena":
        """A new arena holding this batch induced on ``allowed`` nodes.

        Per sample, the restricted RR graph is the Definition-3 induced
        reachability: samples whose source lies outside ``allowed`` are
        dropped entirely; surviving samples keep exactly the entries
        :meth:`reachable_within` would return, with edges between kept
        entries preserved (storage order intact, entry ids renumbered).

        This is the deterministic pooled counterpart of drawing fresh
        restricted samples with ``sample_arena(..., allowed=...)``: it is
        a pure function of the arena and ``allowed`` — no RNG — which is
        what lets a pooled server answer CODL's restricted local fallback
        without consuming its random stream. The restricted sample count
        (``n_samples`` of the result) is whatever survives, not
        ``theta * |allowed|``; compressed evaluation only compares raw
        counts against thresholds from the same batch, so that is sound.

        Runs as a batched BFS over all samples at once (one ragged
        out-edge gather per frontier) followed by a vectorized CSR
        rebuild — no per-sample Python loops.
        """
        mask = np.zeros(self.n, dtype=bool)
        allowed_arr = np.fromiter(
            (int(v) for v in allowed), dtype=np.int64
        ) if not isinstance(allowed, np.ndarray) else np.asarray(
            allowed, dtype=np.int64
        )
        if len(allowed_arr) and not (
            (allowed_arr >= 0) & (allowed_arr < self.n)
        ).all():
            raise InfluenceError("allowed contains nodes outside the graph")
        mask[allowed_arr] = True

        entry_ok = mask[self.nodes] if self.total_nodes else np.zeros(0, bool)
        keep_sample = mask[self.sources] if self.n_samples else np.zeros(0, bool)
        reach = np.zeros(self.total_nodes, dtype=bool)
        roots = self.node_offsets[:-1][keep_sample]
        if len(roots):
            # Sources are always allowed for kept samples (first entry).
            reach[roots] = True
            frontier = roots
            while len(frontier):
                counts = self.edge_count[frontier]
                total = int(counts.sum())
                if total == 0:
                    break
                offsets = np.cumsum(counts)
                idx = np.arange(total, dtype=np.int64)
                idx += np.repeat(
                    self.edge_start[frontier] - offsets + counts, counts
                )
                targets = self.edge_dst_entry[idx]
                fresh = entry_ok[targets] & ~reach[targets]
                frontier = np.unique(targets[fresh])
                reach[frontier] = True

        new_entry_id = np.cumsum(reach) - 1  # valid only where reach is True
        per_sample = np.bincount(
            self.entry_samples[reach], minlength=self.n_samples
        )[keep_sample]
        node_offsets = np.zeros(len(per_sample) + 1, dtype=np.int64)
        np.cumsum(per_sample, out=node_offsets[1:])

        if self.total_edges:
            esrc = self.edge_src_entries
            keep_edge = reach[esrc] & reach[self.edge_dst_entry]
            edge_dst_entry = new_entry_id[self.edge_dst_entry[keep_edge]]
            kept_counts = np.bincount(
                esrc[keep_edge], minlength=self.total_nodes
            )
        else:
            edge_dst_entry = _EMPTY
            kept_counts = np.zeros(self.total_nodes, dtype=np.int64)
        # New edge slices stay contiguous in the old storage order: entry
        # e's slice starts after every kept edge of entries stored before
        # it, so one cumsum over storage order yields the new starts.
        order = np.argsort(self.edge_start, kind="stable")
        starts_in_order = np.zeros(self.total_nodes, dtype=np.int64)
        np.cumsum(kept_counts[order][:-1], out=starts_in_order[1:])
        edge_start_all = np.empty(self.total_nodes, dtype=np.int64)
        edge_start_all[order] = starts_in_order

        return RRArena(
            n=self.n,
            sources=self.sources[keep_sample],
            node_offsets=node_offsets,
            nodes=self.nodes[reach],
            edge_start=edge_start_all[reach],
            edge_count=kept_counts[reach].astype(np.int64),
            edge_dst_entry=edge_dst_entry.astype(np.int64),
        )

    def take(self, indices: "Sequence[int] | np.ndarray") -> "RRArena":
        """A new arena holding samples ``indices`` in the given order.

        Relies on the storage invariant every constructor in this module
        maintains: each sample's entries *and* its edges occupy one
        contiguous block, and blocks appear in sample order (true of
        :func:`sample_arena` output and preserved by :meth:`restrict` and
        :func:`concatenate_arenas`). Under that invariant, sample ``i``'s
        edge block is ``[ecsum[node_offsets[i]], ecsum[node_offsets[i+1]])``
        where ``ecsum`` is the entry-order prefix sum of ``edge_count`` —
        per-sample sums are order-independent even though edges within a
        sample are stored in exploration, not entry, order.

        This is the splice primitive of incremental repair: keep the
        untouched samples of an old arena and swap in freshly redrawn
        versions of the touched ones, all without a Python-level loop.
        """
        indices = np.asarray(indices, dtype=np.int64)
        if len(indices) and not (
            (indices >= 0) & (indices < self.n_samples)
        ).all():
            raise InfluenceError("take indices out of sample range")

        node_counts = np.diff(self.node_offsets)
        ecsum = np.zeros(self.total_nodes + 1, dtype=np.int64)
        np.cumsum(self.edge_count, out=ecsum[1:])
        sample_estart = ecsum[self.node_offsets]  # shape (n_samples + 1,)

        sel_ncounts = node_counts[indices]
        node_offsets = np.zeros(len(indices) + 1, dtype=np.int64)
        np.cumsum(sel_ncounts, out=node_offsets[1:])
        nidx = _ragged_ranges(self.node_offsets[:-1][indices], sel_ncounts)

        sel_ecounts = np.diff(sample_estart)[indices]
        new_estart = np.zeros(len(indices) + 1, dtype=np.int64)
        np.cumsum(sel_ecounts, out=new_estart[1:])
        eidx = _ragged_ranges(sample_estart[:-1][indices], sel_ecounts)

        # Entry ids inside edges shift by (new sample node base - old);
        # edge_start values shift by (new sample edge base - old).
        edge_dst = (
            self.edge_dst_entry[eidx]
            - np.repeat(self.node_offsets[:-1][indices], sel_ecounts)
            + np.repeat(node_offsets[:-1], sel_ecounts)
        )
        edge_start = (
            self.edge_start[nidx]
            - np.repeat(sample_estart[:-1][indices], sel_ncounts)
            + np.repeat(new_estart[:-1], sel_ncounts)
        )

        return RRArena(
            n=self.n,
            sources=self.sources[indices].copy(),
            node_offsets=node_offsets,
            nodes=self.nodes[nidx],
            edge_start=edge_start,
            edge_count=self.edge_count[nidx],
            edge_dst_entry=edge_dst,
        )

    # ------------------------------------------------------------ evaluation

    def node_counts(self) -> np.ndarray:
        """RR-occurrence count of every graph node, shape ``(n,)``."""
        return np.bincount(self.nodes, minlength=self.n)

    def influence_counts(self) -> dict[int, int]:
        """Occurrence counts as a dict (nodes with count 0 omitted) —
        drop-in for the legacy pool/estimator counting loops."""
        counts = self.node_counts()
        (present,) = np.nonzero(counts)
        return {int(v): int(counts[v]) for v in present}

    def hfs_levels(
        self,
        node_levels: np.ndarray,
        n_levels: int,
        budget: "object | None" = None,
    ) -> np.ndarray:
        """Per-entry HFS level assignment (Algorithm 1, stage 1) for every
        sample at once.

        ``node_levels`` maps each graph node to the index of the smallest
        chain community containing it (:attr:`CommunityChain.node_levels`;
        negative = outside every community). Returns, per entry, the
        minimax-over-paths level it is charged to, with ``n_levels``
        marking "unreachable inside the chain".

        The minimax assignment satisfies the Bellman fixpoint
        ``a[u] = min over in-edges (max(a[v], level(u)))`` with
        ``a[source] = level(source)``. Levels are small integers, so we
        run Dial's algorithm with one bucket per chain level: entries
        activate in ascending level order and their out-edges are gathered
        exactly once, giving ``O(|R| + vol(R))`` total work regardless of
        path lengths (a Jacobi-style whole-edge-array relaxation re-sweeps
        ``vol(R)`` once per hop of the longest minimax path, which on
        large samples dwarfs the legacy per-sample heap pass).

        ``budget`` (duck-typed :class:`~repro.serving.budget.ExecutionBudget`)
        is checked once per frontier expansion, matching the legacy
        per-32-samples cooperative checkpoint in spirit.
        """
        sentinel = int(n_levels)
        lvl = node_levels[self.nodes]
        lvl = np.where((lvl < 0) | (lvl >= sentinel), sentinel, lvl)
        assigned = np.full(self.total_nodes, sentinel, dtype=np.int64)
        if sentinel == 0 or self.total_nodes == 0:
            return assigned

        edge_start = self.edge_start
        edge_count = self.edge_count
        edge_dst = self.edge_dst_entry

        # Seed the buckets with every sample's source entry (a source
        # outside the chain stays at the sentinel and never propagates).
        buckets: list[list[np.ndarray]] = [[] for _ in range(sentinel)]
        roots = self.node_offsets[:-1]
        root_lvl = lvl[roots]
        live = roots[root_lvl < sentinel]
        if len(live):
            assigned[live] = lvl[live]
            for h, chunk in _group_by_value(live, lvl[live]):
                buckets[h].append(chunk)

        expanded = np.zeros(self.total_nodes, dtype=bool)
        for h in range(sentinel):
            pending = [c for c in buckets[h] if len(c)]
            buckets[h] = []
            if not pending:
                continue
            frontier = np.unique(np.concatenate(pending))
            frontier = frontier[
                (assigned[frontier] == h) & ~expanded[frontier]
            ]
            while len(frontier):
                if budget is not None:
                    budget.check()
                expanded[frontier] = True
                counts = edge_count[frontier]
                total = int(counts.sum())
                if total == 0:
                    break
                # Ragged gather of every out-edge of the frontier.
                offsets = np.cumsum(counts)
                idx = np.arange(total, dtype=np.int64)
                idx += np.repeat(edge_start[frontier] - offsets + counts, counts)
                targets = edge_dst[idx]
                value = np.maximum(lvl[targets], h)
                improves = value < assigned[targets]
                targets = targets[improves]
                value = value[improves]
                assigned[targets] = value
                now = value == h
                frontier = np.unique(targets[now])
                for level, chunk in _group_by_value(
                    targets[~now], value[~now]
                ):
                    buckets[level].append(chunk)
        return assigned

    def level_bucket_counts(
        self,
        node_levels: np.ndarray,
        n_levels: int,
        budget: "object | None" = None,
    ) -> np.ndarray:
        """Stage-1 bucket totals: ``counts[h, v]`` = samples charging node
        ``v`` to chain level ``h``. One ``bincount`` over the flattened
        (level, node) keys replaces the per-sample dict buckets."""
        assigned = self.hfs_levels(node_levels, n_levels, budget=budget)
        mask = assigned < n_levels
        keys = assigned[mask] * self.n + self.nodes[mask]
        flat = np.bincount(keys, minlength=n_levels * self.n)
        return flat.reshape(n_levels, self.n)


def concatenate_arenas(arenas: Sequence[RRArena]) -> RRArena:
    """Merge arenas over the same graph into one batch (samples appended
    in order) — the pool-doubling primitive of the adaptive evaluator."""
    if not arenas:
        raise InfluenceError("need at least one arena to concatenate")
    n = arenas[0].n
    for a in arenas[1:]:
        if a.n != n:
            raise InfluenceError(
                f"cannot concatenate arenas over different graphs "
                f"({a.n} vs {n} nodes)"
            )
    if len(arenas) == 1:
        # Never alias a read-only (shared-memory attached) arena into a
        # caller that asked for a merge and may assume ownership of the
        # result; hand it a private writable copy instead.
        return arenas[0].copy() if arenas[0].is_readonly else arenas[0]
    node_shift = np.cumsum([0] + [a.total_nodes for a in arenas])
    edge_shift = np.cumsum([0] + [a.total_edges for a in arenas])
    offsets = [arenas[0].node_offsets]
    for a, shift in zip(arenas[1:], node_shift[1:]):
        offsets.append(a.node_offsets[1:] + shift)
    return RRArena(
        n=n,
        sources=np.concatenate([a.sources for a in arenas]),
        node_offsets=np.concatenate(offsets),
        nodes=np.concatenate([a.nodes for a in arenas]),
        edge_start=np.concatenate(
            [a.edge_start + shift for a, shift in zip(arenas, edge_shift)]
        ),
        edge_count=np.concatenate([a.edge_count for a in arenas]),
        edge_dst_entry=np.concatenate(
            [a.edge_dst_entry + shift for a, shift in zip(arenas, node_shift)]
        ),
    )


def sample_arena(
    graph: AttributedGraph,
    count: int,
    model: "InfluenceModel | None" = None,
    rng: "int | np.random.Generator | None" = None,
    sources: "Sequence[int] | None" = None,
    allowed: "set[int] | None" = None,
    budget: "object | None" = None,
    trace: "object | None" = None,
) -> RRArena:
    """Draw ``count`` RR graphs straight into a flat :class:`RRArena`.

    Stream-compatible with the legacy sampler: sources are pre-drawn with
    the same single vectorized call, and each sample explores nodes in the
    same LIFO order with one Bernoulli block per explored node, so a given
    seed yields exactly the samples ``sample_rr_graphs`` would produce
    (the oracle suite's seed-for-seed guarantee). Weighted-cascade and
    uniform-IC draws run on a flattened CSR copy of the graph's adjacency;
    other models fall back to :meth:`InfluenceModel.reverse_sample` per
    node, which preserves their stream too.

    ``budget.tick()`` runs before each draw and the ``rr_sampling`` fault
    site fires once per sample — the same checkpoints, at the same sites,
    as the legacy path.

    ``trace`` is an optional duck-typed span recorder (anything with a
    ``span(name, **meta)`` context manager, e.g.
    ``repro.obs.QueryTrace``): the draw loop runs inside a ``sampling``
    span annotated with the sample count and arena size. Tracing draws
    nothing from ``rng`` and never changes the samples.
    """
    if count < 0:
        raise InfluenceError(f"count must be non-negative, got {count}")
    model = model or WeightedCascade()
    rng = ensure_rng(rng)
    n = graph.n

    allowed_mask: "np.ndarray | None" = None
    if allowed is not None:
        allowed_mask = np.zeros(n, dtype=bool)
        allowed_arr = np.asarray(sorted(allowed), dtype=np.int64)
        if len(allowed_arr) and not (
            0 <= int(allowed_arr[0]) and int(allowed_arr[-1]) < n
        ):
            raise InfluenceError("allowed contains nodes outside the graph")
        allowed_mask[allowed_arr] = True

    if sources is None:
        if allowed is not None:
            source_arr = allowed_arr[rng.integers(0, len(allowed_arr), size=count)]
        else:
            source_arr = rng.integers(0, n, size=count)
    else:
        if len(sources) != count:
            raise InfluenceError(f"got {len(sources)} sources for count={count}")
        source_arr = np.asarray(sources, dtype=np.int64)
        if count and not ((source_arr >= 0) & (source_arr < n)).all():
            bad = int(source_arr[(source_arr < 0) | (source_arr >= n)][0])
            raise InfluenceError(f"source {bad} is not a node of the graph")
        if allowed_mask is not None and count and not allowed_mask[source_arr].all():
            bad = int(source_arr[~allowed_mask[source_arr]][0])
            raise InfluenceError(f"source {bad} is outside the allowed node set")

    # Flat CSR of the graph adjacency: one contiguous neighbor array.
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(graph.degrees, out=indptr[1:])
    indices = (
        np.concatenate([graph.neighbors(v) for v in range(n)])
        if graph.m > 0
        else _EMPTY
    )

    fast_wc = type(model) is WeightedCascade
    fast_uic = type(model) is UniformIC
    uic_p = model.p if fast_uic else 0.0

    # Hot-loop state lives in plain Python lists: at RR-graph node degrees
    # the per-call overhead of small-array numpy ops costs more than
    # scalar list indexing, and the draws themselves stay vectorized.
    indptr_l: list[int] = indptr.tolist()
    allowed_ok: "list[bool] | None" = (
        allowed_mask.tolist() if allowed_mask is not None else None
    )
    visited = [-1] * n  # epoch stamp = sample index
    entry_of = [0] * n

    nodes_list: list[int] = []
    edge_start_list: list[int] = []
    edge_count_list: list[int] = []
    edge_entries: list[int] = []
    node_offsets = np.empty(count + 1, dtype=np.int64)
    node_offsets[0] = 0

    rand = rng.random
    span_cm = trace.span("sampling") if trace is not None else nullcontext()
    with span_cm as span:
        for i in range(count):
            if budget is not None:
                budget.tick()
            maybe_fail("rr_sampling")
            source = int(source_arr[i])
            visited[source] = i
            entry_of[source] = len(nodes_list)
            nodes_list.append(source)
            edge_start_list.append(0)
            edge_count_list.append(0)
            frontier = [source]
            while frontier:
                v = frontier.pop()
                e = entry_of[v]
                beg = indptr_l[v]
                deg = indptr_l[v + 1] - beg
                if fast_wc or fast_uic:
                    # The built-in IC models draw one Bernoulli block per
                    # explored node (and nothing for isolated nodes) —
                    # matched here so the RNG stream stays identical to
                    # the legacy sampler.
                    if deg == 0:
                        fired: list[int] = []
                    else:
                        nbrs = indices[beg: beg + deg]
                        p = uic_p if fast_uic else 1.0 / deg
                        fired = nbrs[rand(deg) < p].tolist()
                else:
                    fired = [int(u) for u in model.reverse_sample(graph, v, rng)]
                if allowed_ok is not None and fired:
                    fired = [u for u in fired if allowed_ok[u]]
                edge_start_list[e] = len(edge_entries)
                edge_count_list[e] = len(fired)
                for u in fired:
                    if visited[u] != i:
                        visited[u] = i
                        entry_of[u] = len(nodes_list)
                        nodes_list.append(u)
                        edge_start_list.append(0)
                        edge_count_list.append(0)
                        frontier.append(u)
                    edge_entries.append(entry_of[u])
            node_offsets[i + 1] = len(nodes_list)

        if span is not None:
            span.note(
                samples=count,
                arena_nodes=len(nodes_list),
                arena_edges=len(edge_entries),
            )

    return RRArena(
        n=n,
        sources=source_arr,
        node_offsets=node_offsets,
        nodes=np.asarray(nodes_list, dtype=np.int64),
        edge_start=np.asarray(edge_start_list, dtype=np.int64),
        edge_count=np.asarray(edge_count_list, dtype=np.int64),
        edge_dst_entry=np.asarray(edge_entries, dtype=np.int64),
    )


def sample_seed_sequence(base_seed: int, index: int) -> np.random.SeedSequence:
    """The per-sample seed of sample ``index`` under ``base_seed``.

    ``SeedSequence(entropy=base, spawn_key=(i,))`` gives every sample an
    independent, collision-free stream that depends only on
    ``(base_seed, i)`` — not on how many samples were drawn before it or
    on which graph. That is the property incremental repair leans on.
    """
    return np.random.SeedSequence(entropy=int(base_seed), spawn_key=(int(index),))


def sample_arena_seeded(
    graph: AttributedGraph,
    count: "int | None" = None,
    base_seed: int = 0,
    model: "InfluenceModel | None" = None,
    indices: "Sequence[int] | np.ndarray | None" = None,
    budget: "object | None" = None,
    trace: "object | None" = None,
) -> RRArena:
    """Draw RR graphs where sample ``i`` depends only on ``(base_seed, i)``.

    Unlike :func:`sample_arena` (one RNG stream shared across the batch),
    each sample here gets its own generator derived from
    :func:`sample_seed_sequence` — its source and every Bernoulli block
    are drawn from that private stream. Consequences:

    * redrawing any subset of sample indices (``indices=...``) yields
      bit-identical results to the corresponding slice of a full draw;
    * a sample whose exploration never visits a node with *changed
      adjacency* is bit-identical across graph versions, because the IC
      exploration consults adjacency (degree + neighbor list) only at
      activated nodes.

    Together these make :func:`repair_arena` exact: resampling only the
    touched samples of an updated graph reproduces, bit for bit, the
    arena a from-scratch seeded draw on the new graph would produce —
    the rebuild-oracle guarantee the epoch chaos drill asserts.

    ``count`` draws samples ``0..count-1``; ``indices`` draws exactly
    those sample ids (in the given order). The ``rr_sampling`` fault site
    and ``budget.tick()`` fire once per sample, as in the stream sampler.
    """
    if (count is None) == (indices is None):
        raise InfluenceError("pass exactly one of count= or indices=")
    if indices is None:
        if count < 0:
            raise InfluenceError(f"count must be non-negative, got {count}")
        index_arr = np.arange(count, dtype=np.int64)
    else:
        index_arr = np.asarray(indices, dtype=np.int64)
        if len(index_arr) and int(index_arr.min()) < 0:
            raise InfluenceError("sample indices must be non-negative")
    model = model or WeightedCascade()
    n = graph.n

    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(graph.degrees, out=indptr[1:])
    indices_csr = (
        np.concatenate([graph.neighbors(v) for v in range(n)])
        if graph.m > 0
        else _EMPTY
    )

    fast_wc = type(model) is WeightedCascade
    fast_uic = type(model) is UniformIC
    uic_p = model.p if fast_uic else 0.0

    indptr_l: list[int] = indptr.tolist()
    visited = [-1] * n  # epoch stamp = position in this draw
    entry_of = [0] * n

    source_arr = np.empty(len(index_arr), dtype=np.int64)
    nodes_list: list[int] = []
    edge_start_list: list[int] = []
    edge_count_list: list[int] = []
    edge_entries: list[int] = []
    node_offsets = np.empty(len(index_arr) + 1, dtype=np.int64)
    node_offsets[0] = 0

    span_cm = trace.span("sampling") if trace is not None else nullcontext()
    with span_cm as span:
        for pos in range(len(index_arr)):
            if budget is not None:
                budget.tick()
            maybe_fail("rr_sampling")
            rng = np.random.default_rng(
                sample_seed_sequence(base_seed, int(index_arr[pos]))
            )
            rand = rng.random
            source = int(rng.integers(0, n))
            source_arr[pos] = source
            visited[source] = pos
            entry_of[source] = len(nodes_list)
            nodes_list.append(source)
            edge_start_list.append(0)
            edge_count_list.append(0)
            frontier = [source]
            while frontier:
                v = frontier.pop()
                e = entry_of[v]
                beg = indptr_l[v]
                deg = indptr_l[v + 1] - beg
                if fast_wc or fast_uic:
                    if deg == 0:
                        fired: list[int] = []
                    else:
                        nbrs = indices_csr[beg: beg + deg]
                        p = uic_p if fast_uic else 1.0 / deg
                        fired = nbrs[rand(deg) < p].tolist()
                else:
                    fired = [int(u) for u in model.reverse_sample(graph, v, rng)]
                edge_start_list[e] = len(edge_entries)
                edge_count_list[e] = len(fired)
                for u in fired:
                    if visited[u] != pos:
                        visited[u] = pos
                        entry_of[u] = len(nodes_list)
                        nodes_list.append(u)
                        edge_start_list.append(0)
                        edge_count_list.append(0)
                        frontier.append(u)
                    edge_entries.append(entry_of[u])
            node_offsets[pos + 1] = len(nodes_list)

        if span is not None:
            span.note(
                samples=len(index_arr),
                arena_nodes=len(nodes_list),
                arena_edges=len(edge_entries),
            )

    return RRArena(
        n=n,
        sources=source_arr,
        node_offsets=node_offsets,
        nodes=np.asarray(nodes_list, dtype=np.int64),
        edge_start=np.asarray(edge_start_list, dtype=np.int64),
        edge_count=np.asarray(edge_count_list, dtype=np.int64),
        edge_dst_entry=np.asarray(edge_entries, dtype=np.int64),
    )


class ArenaRepair:
    """Result of :func:`repair_arena`: the spliced arena plus the delta.

    ``removed``/``added`` are the old and new versions of the touched
    samples (in ``touched`` order) — exactly the per-sample delta an
    incremental HIMOR repair needs to subtract/add bucket charges.
    """

    __slots__ = ("arena", "touched", "removed", "added")

    def __init__(self, arena: RRArena, touched: np.ndarray,
                 removed: RRArena, added: RRArena) -> None:
        self.arena = arena
        self.touched = touched
        self.removed = removed
        self.added = added

    @property
    def n_repaired(self) -> int:
        """How many samples were invalidated and redrawn."""
        return len(self.touched)

    def __repr__(self) -> str:
        return (
            f"ArenaRepair(repaired={self.n_repaired}/"
            f"{self.arena.n_samples} samples)"
        )


def repair_arena(
    arena: RRArena,
    graph: AttributedGraph,
    touched_nodes: "set[int] | Sequence[int] | np.ndarray",
    base_seed: int,
    model: "InfluenceModel | None" = None,
    budget: "object | None" = None,
    fast: bool = False,
) -> ArenaRepair:
    """Incrementally repair a seeded arena after a topology update.

    ``arena`` must have been drawn by :func:`sample_arena_seeded` with
    the same ``base_seed``/``model`` (or, with ``fast=True``, by
    :func:`~repro.influence.fastsample.sample_arena_seeded_fast` — the
    two seeded samplers draw from different deterministic streams, so
    the repair must redraw with the same sampler that drew the arena),
    and ``graph`` is the post-update graph. ``touched_nodes`` are the
    endpoints of the update's edge insertions/deletions.

    A sample needs redrawing iff one of its *activated* entries is a
    touched node: deletions can only change a sample that explored a
    touched endpoint, and an added edge ``(u, v)`` can only fire from an
    activation of ``u`` or ``v`` — a sample activating neither never ran
    a Bernoulli trial the new edge participates in. Untouched samples
    are bit-identical to a fresh draw on the new graph (per-sample
    streams), so splicing redrawn touched samples over them reproduces a
    full from-scratch seeded draw exactly.
    """
    if graph.n != arena.n:
        raise InfluenceError(
            f"repair graph has {graph.n} nodes but the arena was drawn "
            f"over {arena.n}"
        )
    mask = np.zeros(arena.n, dtype=bool)
    touched_arr = np.asarray(sorted(int(v) for v in touched_nodes), dtype=np.int64)
    if len(touched_arr) and not (
        (touched_arr >= 0) & (touched_arr < arena.n)
    ).all():
        raise InfluenceError("touched node outside the graph")
    mask[touched_arr] = True

    entry_touched = mask[arena.nodes] if arena.total_nodes else np.zeros(0, bool)
    touched_ids = np.unique(arena.entry_samples[entry_touched])
    empty = RRArena(
        n=arena.n,
        sources=_EMPTY,
        node_offsets=np.zeros(1, dtype=np.int64),
        nodes=_EMPTY,
        edge_start=_EMPTY,
        edge_count=_EMPTY,
        edge_dst_entry=_EMPTY,
    )
    if len(touched_ids) == 0:
        return ArenaRepair(arena, touched_ids, empty, empty)

    removed = arena.take(touched_ids)
    if fast:
        from repro.influence.fastsample import sample_arena_seeded_fast

        added = sample_arena_seeded_fast(
            graph,
            base_seed=base_seed,
            model=model,
            indices=touched_ids,
            budget=budget,
        )
    else:
        added = sample_arena_seeded(
            graph,
            base_seed=base_seed,
            model=model,
            indices=touched_ids,
            budget=budget,
        )
    perm = np.arange(arena.n_samples, dtype=np.int64)
    perm[touched_ids] = arena.n_samples + np.arange(
        len(touched_ids), dtype=np.int64
    )
    repaired = concatenate_arenas([arena, added]).take(perm)
    return ArenaRepair(repaired, touched_ids, removed, added)


def __getattr__(name: str):
    # Lazy re-export of the vectorized fast path: `fastsample` imports from
    # this module, so a top-level import here would be circular. PEP 562
    # keeps `from repro.influence.arena import sample_arena_fast` working.
    if name in ("sample_arena_fast", "sample_arena_seeded_fast"):
        from repro.influence import fastsample

        return getattr(fastsample, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
