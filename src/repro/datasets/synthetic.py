"""Synthetic attributed-network generators.

The evaluation datasets of the paper (Table I) are not redistributable
here, so the registry (:mod:`repro.datasets.registry`) builds structural
analogues from two generator families (see DESIGN.md §3 for the
substitution argument):

* :func:`hierarchical_planted_partition` — a hierarchical stochastic block
  model: nodes sit in a binary tree of blocks, and the probability of an
  edge decays with the height of the endpoints' lowest common block. This
  is the class behind the citation/co-purchase networks (Cora, CiteSeer,
  Amazon, DBLP): clear multi-scale communities, modest hubs.
* :func:`preferential_attachment` — a Barabási-Albert process producing
  hub-dominated topologies. Mixed into the planted partition it reproduces
  the *skewed hierarchy* phenomenon the paper highlights for PubMed and
  Retweet (Table I's mean ``|H(q)|`` far above ``log2 n``; Fig. 4).

Attributes are planted per block (:func:`attach_attributes_by_block`),
exactly the augmentation protocol the paper itself applies to Amazon, DBLP
and LiveJournal (one random attribute shared by every node of a
ground-truth community), with optional label noise for the
citation-network analogues.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DatasetError
from repro.utils.rng import ensure_rng

EdgeSet = set[tuple[int, int]]


def hierarchical_planted_partition(
    n: int,
    depth: int = 4,
    p_leaf: float = 0.30,
    decay: float = 0.25,
    min_block: int = 8,
    rng: "int | np.random.Generator | None" = None,
) -> tuple[list[tuple[int, int]], list[np.ndarray]]:
    """Sample edges of a hierarchical planted partition.

    Nodes ``0..n-1`` are recursively bisected into a block tree of at most
    ``depth`` levels (stopping early below ``min_block`` nodes). A pair
    whose lowest common block sits ``h`` levels above the leaves is linked
    with probability ``p_leaf * decay^h``.

    Returns ``(edges, leaf_blocks)`` where ``leaf_blocks`` are the
    ground-truth communities (sorted node arrays).
    """
    if n < 2:
        raise DatasetError(f"need at least 2 nodes, got {n}")
    if depth < 1:
        raise DatasetError(f"depth must be >= 1, got {depth}")
    if not (0.0 < p_leaf <= 1.0):
        raise DatasetError(f"p_leaf must be in (0, 1], got {p_leaf}")
    if not (0.0 < decay < 1.0):
        raise DatasetError(f"decay must be in (0, 1), got {decay}")
    rng = ensure_rng(rng)

    edges: EdgeSet = set()
    leaf_blocks: list[np.ndarray] = []

    # (lo, hi, level): contiguous node range forming a block at `level`
    # (0 = root). Cross-child edges are sampled where the block splits.
    stack: list[tuple[int, int, int]] = [(0, n, 0)]
    while stack:
        lo, hi, level = stack.pop()
        size = hi - lo
        if level >= depth or size < 2 * min_block:
            block = np.arange(lo, hi, dtype=np.int64)
            leaf_blocks.append(block)
            _sample_within(rng, lo, hi, p_leaf, edges)
            continue
        mid = lo + size // 2
        height = depth - level  # levels above the leaves at this split
        p_cross = p_leaf * decay**height
        _sample_bipartite(rng, lo, mid, mid, hi, p_cross, edges)
        stack.append((lo, mid, level + 1))
        stack.append((mid, hi, level + 1))

    leaf_blocks.sort(key=lambda b: int(b[0]))
    edge_list = sorted(edges)
    edge_list = _connect_components(n, edge_list, rng)
    return edge_list, leaf_blocks


def preferential_attachment(
    n: int,
    m_per_node: int = 2,
    rng: "int | np.random.Generator | None" = None,
    start: int = 0,
) -> list[tuple[int, int]]:
    """Barabási-Albert edges over nodes ``start..start+n-1``.

    Each arriving node attaches to ``m_per_node`` distinct existing nodes
    chosen proportionally to degree — the classic hub-forming process.
    """
    if n < 2:
        raise DatasetError(f"need at least 2 nodes, got {n}")
    if m_per_node < 1:
        raise DatasetError(f"m_per_node must be >= 1, got {m_per_node}")
    rng = ensure_rng(rng)

    edges: EdgeSet = set()
    # repeated_nodes holds one entry per incident edge endpoint, so uniform
    # sampling from it is degree-proportional.
    repeated_nodes: list[int] = [start, start + 1]
    edges.add((start, start + 1))
    for i in range(2, n):
        node = start + i
        m = min(m_per_node, i)
        targets: set[int] = set()
        while len(targets) < m:
            pick = repeated_nodes[int(rng.integers(0, len(repeated_nodes)))]
            targets.add(pick)
        for t in targets:
            edges.add((min(node, t), max(node, t)))
            repeated_nodes.append(t)
            repeated_nodes.append(node)
    return sorted(edges)


def overlay_hubs(
    n: int,
    base_edges: list[tuple[int, int]],
    n_hubs: int,
    spokes_per_hub: int,
    rng: "int | np.random.Generator | None" = None,
) -> list[tuple[int, int]]:
    """Add hub structure on top of an existing edge set.

    ``n_hubs`` random nodes each receive ``spokes_per_hub`` extra edges to
    uniform random nodes. Used for the PubMed/Retweet analogues, where
    hubs skew the community hierarchy (Fig. 4).
    """
    rng = ensure_rng(rng)
    edges: EdgeSet = set(base_edges)
    if n_hubs <= 0:
        return sorted(edges)
    hubs = rng.choice(n, size=min(n_hubs, n), replace=False)
    for hub in hubs:
        hub = int(hub)
        added = 0
        attempts = 0
        while added < spokes_per_hub and attempts < 20 * spokes_per_hub:
            attempts += 1
            other = int(rng.integers(0, n))
            if other == hub:
                continue
            edge = (min(hub, other), max(hub, other))
            if edge in edges:
                continue
            edges.add(edge)
            added += 1
    return sorted(edges)


def powerlaw_partition(
    n: int,
    tau: float = 2.0,
    min_block: int = 8,
    max_block_fraction: float = 0.2,
    mu: float = 0.2,
    avg_degree: float = 6.0,
    rng: "int | np.random.Generator | None" = None,
) -> tuple[list[tuple[int, int]], list[np.ndarray]]:
    """An LFR-flavoured benchmark: power-law community sizes + mixing.

    Community sizes follow a truncated power law with exponent ``tau``;
    each node spends a ``1 - mu`` fraction of its (approximately
    ``avg_degree``) stubs inside its community and ``mu`` outside —
    the standard LFR mixing-parameter semantics, realized with Bernoulli
    pair sampling instead of exact stub matching for simplicity.

    Returns ``(edges, blocks)``; blocks are the ground-truth communities.
    """
    if n < 2 * min_block:
        raise DatasetError(f"need at least {2 * min_block} nodes, got {n}")
    if tau <= 1.0:
        raise DatasetError(f"tau must exceed 1, got {tau}")
    if not (0.0 <= mu < 1.0):
        raise DatasetError(f"mu must be in [0, 1), got {mu}")
    if avg_degree <= 0:
        raise DatasetError(f"avg_degree must be positive, got {avg_degree}")
    rng = ensure_rng(rng)

    max_block = max(min_block + 1, int(n * max_block_fraction))
    sizes: list[int] = []
    remaining = n
    while remaining > 0:
        # Inverse-CDF sample of a truncated power law on [min_block, max_block].
        u = rng.random()
        a = min_block ** (1.0 - tau)
        b = max_block ** (1.0 - tau)
        size = int((a + u * (b - a)) ** (1.0 / (1.0 - tau)))
        size = max(min_block, min(size, max_block, remaining))
        if remaining - size < min_block and remaining - size > 0:
            size = remaining  # fold the remainder into the last block
        sizes.append(size)
        remaining -= size

    blocks: list[np.ndarray] = []
    edges: EdgeSet = set()
    start = 0
    for size in sizes:
        block = np.arange(start, start + size, dtype=np.int64)
        blocks.append(block)
        # Internal density targeting (1 - mu) * avg_degree per node.
        internal_degree = (1.0 - mu) * avg_degree
        p_in = min(1.0, internal_degree / max(size - 1, 1))
        _sample_within(rng, start, start + size, p_in, edges)
        start += size

    # External edges: mu * avg_degree stubs per node, uniform targets.
    external_total = int(mu * avg_degree * n / 2)
    attempts = 0
    added = 0
    block_of = np.zeros(n, dtype=np.int64)
    for i, block in enumerate(blocks):
        block_of[block] = i
    while added < external_total and attempts < 30 * external_total + 100:
        attempts += 1
        u = int(rng.integers(0, n))
        v = int(rng.integers(0, n))
        if u == v or block_of[u] == block_of[v]:
            continue
        edge = (min(u, v), max(u, v))
        if edge in edges:
            continue
        edges.add(edge)
        added += 1

    edge_list = _connect_components(n, sorted(edges), rng)
    return edge_list, blocks


def attach_attributes_by_block(
    n: int,
    blocks: list[np.ndarray],
    n_attributes: int,
    noise: float = 0.0,
    rng: "int | np.random.Generator | None" = None,
) -> list[list[int]]:
    """Assign one attribute per node, planted per block.

    Every block draws a dominant attribute uniformly from
    ``0..n_attributes-1`` (the paper's augmentation protocol for
    ground-truth communities); each member carries it with probability
    ``1 - noise`` and a uniform random attribute otherwise.
    """
    if n_attributes < 1:
        raise DatasetError(f"need at least one attribute, got {n_attributes}")
    if not (0.0 <= noise < 1.0):
        raise DatasetError(f"noise must be in [0, 1), got {noise}")
    rng = ensure_rng(rng)
    attributes: list[list[int]] = [[] for _ in range(n)]
    for block in blocks:
        dominant = int(rng.integers(0, n_attributes))
        for v in block:
            v = int(v)
            if noise > 0.0 and rng.random() < noise:
                attributes[v] = [int(rng.integers(0, n_attributes))]
            else:
                attributes[v] = [dominant]
    for v in range(n):
        if not attributes[v]:
            attributes[v] = [int(rng.integers(0, n_attributes))]
    return attributes


# --------------------------------------------------------------- internals


def _sample_within(
    rng: np.random.Generator, lo: int, hi: int, p: float, edges: EdgeSet
) -> None:
    """Add Binomial(pairs, p) uniform random edges inside ``[lo, hi)``."""
    size = hi - lo
    pairs = size * (size - 1) // 2
    if pairs == 0 or p <= 0.0:
        return
    count = int(rng.binomial(pairs, min(p, 1.0)))
    added = 0
    attempts = 0
    while added < count and attempts < 20 * count + 100:
        attempts += 1
        u = int(rng.integers(lo, hi))
        v = int(rng.integers(lo, hi))
        if u == v:
            continue
        edge = (min(u, v), max(u, v))
        if edge in edges:
            continue
        edges.add(edge)
        added += 1


def _sample_bipartite(
    rng: np.random.Generator,
    a_lo: int,
    a_hi: int,
    b_lo: int,
    b_hi: int,
    p: float,
    edges: EdgeSet,
) -> None:
    """Add Binomial(|A||B|, p) uniform random edges across two ranges."""
    pairs = (a_hi - a_lo) * (b_hi - b_lo)
    if pairs == 0 or p <= 0.0:
        return
    count = int(rng.binomial(pairs, min(p, 1.0)))
    added = 0
    attempts = 0
    while added < count and attempts < 20 * count + 100:
        attempts += 1
        u = int(rng.integers(a_lo, a_hi))
        v = int(rng.integers(b_lo, b_hi))
        edge = (min(u, v), max(u, v))
        if edge in edges:
            continue
        edges.add(edge)
        added += 1


def _connect_components(
    n: int, edges: list[tuple[int, int]], rng: np.random.Generator
) -> list[tuple[int, int]]:
    """Ensure connectivity by linking each extra component to the first."""
    parent = list(range(n))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for u, v in edges:
        ru, rv = find(u), find(v)
        if ru != rv:
            parent[ru] = rv
    roots: dict[int, int] = {}
    for v in range(n):
        roots.setdefault(find(v), v)
    root_list = sorted(roots.values())
    if len(root_list) == 1:
        return edges
    extra: list[tuple[int, int]] = []
    anchor_root = find(root_list[0])
    for rep in root_list[1:]:
        # Link a random member of the stray component to a random member
        # of the anchor component.
        comp_root = find(rep)
        members = [v for v in range(n) if find(v) == comp_root]
        anchors = [v for v in range(n) if find(v) == anchor_root]
        u = int(members[int(rng.integers(0, len(members)))])
        w = int(anchors[int(rng.integers(0, len(anchors)))])
        extra.append((min(u, w), max(u, w)))
        parent[find(u)] = find(w)
        anchor_root = find(w)
    return sorted(set(edges) | set(extra))
