"""Synthetic datasets mirroring the paper's evaluation networks."""

from repro.datasets.queries import generate_queries
from repro.datasets.registry import (
    DATASET_NAMES,
    Dataset,
    dataset_spec,
    load_dataset,
)
from repro.datasets.synthetic import (
    attach_attributes_by_block,
    hierarchical_planted_partition,
    preferential_attachment,
)

__all__ = [
    "Dataset",
    "DATASET_NAMES",
    "dataset_spec",
    "load_dataset",
    "generate_queries",
    "hierarchical_planted_partition",
    "preferential_attachment",
    "attach_attributes_by_block",
]
