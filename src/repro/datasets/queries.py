"""Query-workload generation (Section V-A).

The paper samples 100 random query nodes per dataset and, for each, one of
the node's own attributes as the query attribute. :func:`generate_queries`
reproduces that protocol (with a configurable count for scaled-down runs).
"""

from __future__ import annotations

import numpy as np

from repro.core.problem import CODQuery
from repro.errors import DatasetError
from repro.graph.graph import AttributedGraph
from repro.utils.rng import ensure_rng


def generate_queries(
    graph: AttributedGraph,
    count: int = 100,
    k: int = 5,
    rng: "int | np.random.Generator | None" = None,
    distinct: bool = True,
) -> list[CODQuery]:
    """Sample ``count`` queries: a random attributed node + one of its attributes.

    Parameters
    ----------
    distinct:
        When true (default), query nodes are sampled without replacement;
        the count is clipped to the number of attributed nodes.
    """
    if count <= 0:
        raise DatasetError(f"count must be positive, got {count}")
    rng = ensure_rng(rng)
    eligible = [v for v in range(graph.n) if graph.attributes_of(v)]
    if not eligible:
        raise DatasetError("no node carries an attribute; cannot generate queries")

    if distinct:
        count = min(count, len(eligible))
        picks = rng.choice(len(eligible), size=count, replace=False)
        nodes = [eligible[int(i)] for i in picks]
    else:
        picks = rng.integers(0, len(eligible), size=count)
        nodes = [eligible[int(i)] for i in picks]

    queries: list[CODQuery] = []
    for node in nodes:
        attrs = sorted(graph.attributes_of(node))
        attribute = attrs[int(rng.integers(0, len(attrs)))]
        queries.append(CODQuery(node=node, attribute=attribute, k=k))
    return queries
