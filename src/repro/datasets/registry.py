"""Dataset registry mirroring Table I of the paper.

Each named dataset maps to a deterministic synthetic generator whose
structure class matches the original network (DESIGN.md §3). The default
sizes are scaled down so the full experiment suite runs on one machine in
minutes; pass ``scale`` to grow them toward the paper's sizes.

============  ==========  =====  ======================  =================
name          paper |V|   |A|    structure class          default |V|
============  ==========  =====  ======================  =================
cora          2,485       7      planted partition        600
citeseer      2,110       6      planted partition        520
pubmed        19,717      3      partition + hubs         1,200
retweet       18,470      2      preferential + hubs      1,100
amazon        334,863     33     deep planted partition   2,000
dblp          317,080     31     deep planted partition   1,900
livejournal   3,997,962   400    deep partition + hubs    4,000
============  ==========  =====  ======================  =================
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.datasets.synthetic import (
    attach_attributes_by_block,
    hierarchical_planted_partition,
    overlay_hubs,
    preferential_attachment,
)
from repro.errors import DatasetError
from repro.graph.graph import AttributedGraph
from repro.utils.rng import ensure_rng


@dataclass(frozen=True)
class DatasetSpec:
    """Static description of one registry dataset."""

    name: str
    paper_nodes: int
    paper_edges: int
    n_attributes: int
    structure: str  # "blocks", "blocks+hubs", "hubs"
    default_nodes: int
    depth: int
    p_leaf: float
    decay: float
    min_block: int
    noise: float
    hub_count: int = 0
    hub_spokes: int = 0
    pa_m: int = 2


@dataclass
class Dataset:
    """A generated dataset: the graph plus ground truth and provenance."""

    name: str
    graph: AttributedGraph
    ground_truth: list[np.ndarray] = field(default_factory=list)
    spec: DatasetSpec | None = None
    seed: int | None = None

    @property
    def n(self) -> int:
        """Number of nodes."""
        return self.graph.n

    @property
    def m(self) -> int:
        """Number of edges."""
        return self.graph.m


_SPECS: dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in (
        DatasetSpec(
            name="cora", paper_nodes=2485, paper_edges=5069, n_attributes=7,
            structure="blocks", default_nodes=600,
            depth=5, p_leaf=0.28, decay=0.22, min_block=10, noise=0.10,
        ),
        DatasetSpec(
            name="citeseer", paper_nodes=2110, paper_edges=3668, n_attributes=6,
            structure="blocks", default_nodes=520,
            depth=5, p_leaf=0.24, decay=0.22, min_block=10, noise=0.10,
        ),
        DatasetSpec(
            name="pubmed", paper_nodes=19717, paper_edges=44327, n_attributes=3,
            structure="blocks+hubs", default_nodes=1200,
            depth=5, p_leaf=0.05, decay=0.25, min_block=14, noise=0.08,
            hub_count=20, hub_spokes=150,
        ),
        DatasetSpec(
            name="retweet", paper_nodes=18470, paper_edges=48053, n_attributes=2,
            structure="hubs", default_nodes=1100,
            depth=4, p_leaf=0.02, decay=0.30, min_block=12, noise=0.15,
            hub_count=16, hub_spokes=250, pa_m=1,
        ),
        DatasetSpec(
            name="amazon", paper_nodes=334863, paper_edges=925872, n_attributes=33,
            structure="blocks", default_nodes=2000,
            depth=7, p_leaf=0.30, decay=0.20, min_block=10, noise=0.0,
        ),
        DatasetSpec(
            name="dblp", paper_nodes=317080, paper_edges=1049866, n_attributes=31,
            structure="blocks", default_nodes=1900,
            depth=7, p_leaf=0.32, decay=0.20, min_block=10, noise=0.0,
        ),
        DatasetSpec(
            name="livejournal", paper_nodes=3997962, paper_edges=34681189,
            n_attributes=400, structure="blocks+hubs", default_nodes=4000,
            depth=8, p_leaf=0.30, decay=0.22, min_block=10, noise=0.0,
            hub_count=25, hub_spokes=80,
        ),
        # Extra benchmark family (not from the paper): LFR-flavoured
        # power-law community sizes with an explicit mixing parameter,
        # for robustness checks beyond the six analogues.
        DatasetSpec(
            name="lfr", paper_nodes=0, paper_edges=0, n_attributes=8,
            structure="powerlaw", default_nodes=800,
            depth=0, p_leaf=0.2, decay=0.2, min_block=10, noise=0.05,
        ),
    )
}

#: Registry dataset names, small to large.
DATASET_NAMES = tuple(_SPECS)


def dataset_spec(name: str) -> DatasetSpec:
    """The static spec of a registry dataset."""
    try:
        return _SPECS[name]
    except KeyError:
        raise DatasetError(
            f"unknown dataset {name!r}; expected one of {sorted(_SPECS)}"
        ) from None


def load_dataset(
    name: str,
    scale: float = 1.0,
    seed: int = 7,
) -> Dataset:
    """Generate a registry dataset deterministically.

    Parameters
    ----------
    scale:
        Multiplier on the default node count (``scale = 1.0`` gives the
        scaled-down default; larger values approach the paper's sizes).
    seed:
        Generation seed; the same ``(name, scale, seed)`` always yields the
        same graph.
    """
    spec = dataset_spec(name)
    if scale <= 0:
        raise DatasetError(f"scale must be positive, got {scale}")
    n = max(32, int(round(spec.default_nodes * scale)))
    rng = ensure_rng(seed)

    if spec.structure == "powerlaw":
        from repro.datasets.synthetic import powerlaw_partition

        edges, blocks = powerlaw_partition(
            n, mu=spec.decay, min_block=spec.min_block, rng=rng
        )
    elif spec.structure == "hubs":
        pa_edges = preferential_attachment(n, m_per_node=spec.pa_m, rng=rng)
        block_edges, blocks = hierarchical_planted_partition(
            n, depth=spec.depth, p_leaf=spec.p_leaf * 0.4, decay=spec.decay,
            min_block=spec.min_block, rng=rng,
        )
        edges = sorted(set(pa_edges) | set(block_edges))
        edges = overlay_hubs(n, edges, spec.hub_count, spec.hub_spokes, rng=rng)
    else:
        edges, blocks = hierarchical_planted_partition(
            n, depth=spec.depth, p_leaf=spec.p_leaf, decay=spec.decay,
            min_block=spec.min_block, rng=rng,
        )
        if spec.structure == "blocks+hubs":
            edges = overlay_hubs(n, edges, spec.hub_count, spec.hub_spokes, rng=rng)

    n_attributes = min(spec.n_attributes, max(1, len(blocks)))
    attributes = attach_attributes_by_block(
        n, blocks, n_attributes, noise=spec.noise, rng=rng
    )
    graph = AttributedGraph(n, edges, attributes=attributes)
    return Dataset(name=name, graph=graph, ground_truth=blocks, spec=spec, seed=seed)
