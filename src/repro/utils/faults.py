"""Deterministic fault injection for robustness testing.

Production code registers *sites* — named points in the sampling,
clustering, and persistence layers — by calling :func:`maybe_fail` with
the site name. In normal operation the call is a dictionary lookup on an
empty registry and costs nothing. Tests (and the ``cod serve-sim``
workload replayer) arm sites with :func:`inject`::

    with inject(site="rr_sampling", rate=0.3, exc=InfluenceError, seed=7):
        server.answer(query)          # ~30% of RR draws raise InfluenceError

Injection is deterministic: a plan's failures are driven by its own seeded
``numpy`` generator (for ``rate``-based plans) or by a call counter (for
``count``/``every`` plans), so a failing run replays exactly.

Registered sites
----------------
``rr_sampling``
    Once per RR graph drawn (:func:`repro.influence.rr.sample_rr_graph`).
``lore``
    Once per LORE invocation, before local reclustering
    (:func:`repro.core.lore.lore_chain`).
``clustering``
    Once per agglomerative-hierarchy build
    (:func:`repro.hierarchy.nnchain.agglomerative_hierarchy`).
``himor_build``
    Once per HIMOR index construction (:meth:`HimorIndex.build`).
``himor_load`` / ``himor_save``
    Persistence of the HIMOR index.
``hierarchy_load`` / ``hierarchy_save``
    Persistence of community hierarchies.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator, Type

import numpy as np

#: Every site name production code is instrumented with. ``inject`` rejects
#: unknown sites so a typo cannot silently disarm a test.
KNOWN_SITES = frozenset(
    {
        "rr_sampling",
        "lore",
        "clustering",
        "himor_build",
        "himor_load",
        "himor_save",
        "hierarchy_load",
        "hierarchy_save",
    }
)


class FaultInjected(Exception):
    """Default exception raised by an armed site with no explicit ``exc``."""


class _Plan:
    """One armed site: decides, deterministically, whether a call fails."""

    def __init__(
        self,
        site: str,
        rate: float,
        exc: "Type[BaseException] | BaseException",
        seed: int,
        count: "int | None",
        after: int,
        message: "str | None",
    ) -> None:
        self.site = site
        self.rate = float(rate)
        self.exc = exc
        self.count = count
        self.after = int(after)
        self.message = message
        self.calls = 0
        self.failures = 0
        self._rng = np.random.default_rng(seed)

    def should_fail(self) -> bool:
        self.calls += 1
        if self.calls <= self.after:
            return False
        if self.count is not None and self.failures >= self.count:
            return False
        if self.rate >= 1.0:
            fail = True
        elif self.rate <= 0.0:
            fail = False
        else:
            fail = bool(self._rng.random() < self.rate)
        if fail:
            self.failures += 1
        return fail

    def raise_fault(self) -> None:
        exc = self.exc
        if isinstance(exc, BaseException):
            raise exc
        message = self.message or f"injected fault at site {self.site!r}"
        raise exc(message)


_LOCK = threading.Lock()
_PLANS: dict[str, _Plan] = {}


def maybe_fail(site: str) -> None:
    """Hook point: raise iff ``site`` is armed and its plan fires.

    Cheap when nothing is armed (one truthiness check on an empty dict);
    production call sites pay essentially nothing.
    """
    if not _PLANS:
        return
    plan = _PLANS.get(site)
    if plan is not None and plan.should_fail():
        plan.raise_fault()


@contextmanager
def inject(
    site: str = "rr_sampling",
    rate: float = 1.0,
    exc: "Type[BaseException] | BaseException" = FaultInjected,
    seed: int = 0,
    count: "int | None" = None,
    after: int = 0,
    message: "str | None" = None,
) -> Iterator[_Plan]:
    """Arm ``site`` for the duration of the ``with`` block.

    Parameters
    ----------
    site:
        One of :data:`KNOWN_SITES`.
    rate:
        Per-call failure probability (1.0 = every call fails).
    exc:
        Exception class to instantiate (with ``message``) or a ready
        exception instance to raise as-is.
    seed:
        Seed of the plan's private generator; same seed, same failures.
    count:
        Stop failing after this many failures (``None`` = unlimited).
    after:
        Let the first ``after`` calls through before failing any.
    message:
        Message for constructed exceptions.

    Yields the plan, whose ``calls``/``failures`` counters tests can
    assert on. Nesting a second plan on the same site is rejected —
    overlapping plans would make failure sequences order-dependent.
    """
    if site not in KNOWN_SITES:
        raise ValueError(
            f"unknown fault site {site!r}; known sites: {sorted(KNOWN_SITES)}"
        )
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"rate must be in [0, 1], got {rate!r}")
    plan = _Plan(site, rate, exc, seed, count, after, message)
    with _LOCK:
        if site in _PLANS:
            raise RuntimeError(f"fault site {site!r} is already armed")
        _PLANS[site] = plan
    try:
        yield plan
    finally:
        with _LOCK:
            if _PLANS.get(site) is plan:
                del _PLANS[site]


def armed_sites() -> list[str]:
    """Names of currently armed sites (diagnostics)."""
    return sorted(_PLANS)


def reset() -> None:
    """Disarm every site (test-suite safety net)."""
    with _LOCK:
        _PLANS.clear()
