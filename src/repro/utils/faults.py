"""Deterministic fault injection for robustness testing.

Production code registers *sites* — named points in the sampling,
clustering, persistence, and worker layers — by calling :func:`maybe_fail`
with the site name. In normal operation the call is a dictionary lookup on
an empty registry and costs nothing. Tests (and the ``cod serve-sim``
workload replayer) arm sites with :func:`inject`::

    with inject(site="rr_sampling", rate=0.3, exc=InfluenceError, seed=7):
        server.answer(query)          # ~30% of RR draws raise InfluenceError

Injection is deterministic: a plan's failures are driven by its own seeded
``numpy`` generator (for ``rate``-based plans) or by a call counter (for
``count``/``every`` plans), so a failing run replays exactly.

Beyond raising, a plan can take a **process-level action** when it fires —
the chaos vocabulary the supervisor test-suite drives workers with:

``action="raise"``
    Default: raise ``exc`` as before.
``action="kill"``
    ``os._exit(exit_code)`` — an abrupt worker death with no cleanup, no
    ``finally`` blocks, no atexit. Combine with ``after=k`` on the
    ``himor_sample`` site to kill a worker at sample ``k`` of an index
    build.
``action="wedge"``
    Sleep ``delay_s`` seconds (default: effectively forever) while holding
    the call site — a stuck worker the supervisor must detect by deadline
    overrun and kill.
``action="sleep"``
    Sleep ``delay_s`` then continue — degrade without failing (slow
    heartbeats, laggy persistence).

Worker child processes cannot share the parent's ``with inject(...)``
scope, so plans are also expressible as plain-dict *specs* (see
:func:`arm_spec`) that a supervisor serializes into worker bootstrap
config.

Registered sites
----------------
``rr_sampling``
    Once per RR graph drawn (:func:`repro.influence.rr.sample_rr_graph`).
``lore``
    Once per LORE invocation, before local reclustering
    (:func:`repro.core.lore.lore_chain`).
``clustering``
    Once per agglomerative-hierarchy build
    (:func:`repro.hierarchy.nnchain.agglomerative_hierarchy`).
``himor_build``
    Once per HIMOR index construction (:meth:`HimorIndex.build`).
``himor_sample``
    Once per RR sample traversed during HIMOR construction — the
    fine-grained hook ``kill at sample k`` chaos uses.
``himor_checkpoint_save``
    Before each mid-build checkpoint write.
``himor_load`` / ``himor_save``
    Persistence of the HIMOR index.
``hierarchy_load`` / ``hierarchy_save``
    Persistence of community hierarchies.
``worker_task``
    Once per task a serving worker picks up, before evaluation.
``worker_heartbeat``
    Once per heartbeat tick in a serving worker.
``wal_append``
    After a WAL record is buffered but *before* flush/fsync — a kill here
    leaves a torn tail that recovery must truncate.
``wal_fsync``
    Between flush and fsync of a WAL append — a kill here means the
    record may or may not be durable; either way it was never
    acknowledged.
``wal_compact``
    After the compacted log is staged but before the atomic rename.
``snapshot_save``
    Before a snapshot file is written — a kill here must leave the
    previous snapshot (and the full WAL suffix) recoverable.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator, Type

import numpy as np

#: Every site name production code is instrumented with. ``inject`` rejects
#: unknown sites so a typo cannot silently disarm a test.
KNOWN_SITES = frozenset(
    {
        "rr_sampling",
        "lore",
        "clustering",
        "himor_build",
        "himor_sample",
        "himor_checkpoint_save",
        "himor_load",
        "himor_save",
        "hierarchy_load",
        "hierarchy_save",
        "worker_task",
        "worker_heartbeat",
        "wal_append",
        "wal_fsync",
        "wal_compact",
        "snapshot_save",
    }
)

#: Actions a firing plan may take.
ACTIONS = ("raise", "kill", "wedge", "sleep")


class FaultInjected(Exception):
    """Default exception raised by an armed site with no explicit ``exc``."""


class _Plan:
    """One armed site: decides, deterministically, whether a call fails."""

    def __init__(
        self,
        site: str,
        rate: float,
        exc: "Type[BaseException] | BaseException",
        seed: int,
        count: "int | None",
        after: int,
        message: "str | None",
        action: str = "raise",
        delay_s: "float | None" = None,
        exit_code: int = 73,
    ) -> None:
        self.site = site
        self.rate = float(rate)
        self.exc = exc
        self.count = count
        self.after = int(after)
        self.message = message
        self.action = action
        self.delay_s = delay_s
        self.exit_code = int(exit_code)
        self.calls = 0
        self.failures = 0
        self._rng = np.random.default_rng(seed)

    def should_fail(self) -> bool:
        self.calls += 1
        if self.calls <= self.after:
            return False
        if self.count is not None and self.failures >= self.count:
            return False
        if self.rate >= 1.0:
            fail = True
        elif self.rate <= 0.0:
            fail = False
        else:
            fail = bool(self._rng.random() < self.rate)
        if fail:
            self.failures += 1
        return fail

    def fire(self) -> None:
        """Execute the plan's action (raise / kill / wedge / sleep)."""
        if self.action == "kill":
            os._exit(self.exit_code)
        if self.action == "wedge":
            time.sleep(self.delay_s if self.delay_s is not None else 3600.0)
            return
        if self.action == "sleep":
            time.sleep(self.delay_s if self.delay_s is not None else 0.1)
            return
        self.raise_fault()

    def raise_fault(self) -> None:
        exc = self.exc
        if isinstance(exc, BaseException):
            raise exc
        message = self.message or f"injected fault at site {self.site!r}"
        raise exc(message)


_LOCK = threading.Lock()
_PLANS: dict[str, _Plan] = {}


def maybe_fail(site: str) -> None:
    """Hook point: act iff ``site`` is armed and its plan fires.

    Cheap when nothing is armed (one truthiness check on an empty dict);
    production call sites pay essentially nothing.
    """
    if not _PLANS:
        return
    plan = _PLANS.get(site)
    if plan is not None and plan.should_fail():
        plan.fire()


def arm(
    site: str = "rr_sampling",
    rate: float = 1.0,
    exc: "Type[BaseException] | BaseException" = FaultInjected,
    seed: int = 0,
    count: "int | None" = None,
    after: int = 0,
    message: "str | None" = None,
    action: str = "raise",
    delay_s: "float | None" = None,
    exit_code: int = 73,
) -> _Plan:
    """Arm ``site`` until :func:`disarm` or :func:`reset` (no scope).

    The un-scoped sibling of :func:`inject`, for worker processes that arm
    faults at bootstrap from a serialized spec and never leave the scope.
    Parameters are those of :func:`inject` plus the action controls
    (``action``, ``delay_s``, ``exit_code``) documented in the module
    docstring.
    """
    if site not in KNOWN_SITES:
        raise ValueError(
            f"unknown fault site {site!r}; known sites: {sorted(KNOWN_SITES)}"
        )
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"rate must be in [0, 1], got {rate!r}")
    if action not in ACTIONS:
        raise ValueError(f"unknown action {action!r}; known actions: {ACTIONS}")
    plan = _Plan(
        site, rate, exc, seed, count, after, message,
        action=action, delay_s=delay_s, exit_code=exit_code,
    )
    with _LOCK:
        if site in _PLANS:
            raise RuntimeError(f"fault site {site!r} is already armed")
        _PLANS[site] = plan
    return plan


def disarm(site: str) -> None:
    """Disarm ``site`` if armed (no-op otherwise)."""
    with _LOCK:
        _PLANS.pop(site, None)


def arm_spec(spec: dict) -> _Plan:
    """Arm a site from a plain-dict spec (keys = :func:`arm` kwargs).

    Specs are picklable, so a supervisor can ship a chaos plan into a
    worker child process through its bootstrap config::

        faults.arm_spec({"site": "himor_sample", "after": 40, "action": "kill"})
    """
    return arm(**spec)


@contextmanager
def inject(
    site: str = "rr_sampling",
    rate: float = 1.0,
    exc: "Type[BaseException] | BaseException" = FaultInjected,
    seed: int = 0,
    count: "int | None" = None,
    after: int = 0,
    message: "str | None" = None,
    action: str = "raise",
    delay_s: "float | None" = None,
    exit_code: int = 73,
) -> Iterator[_Plan]:
    """Arm ``site`` for the duration of the ``with`` block.

    Parameters
    ----------
    site:
        One of :data:`KNOWN_SITES`.
    rate:
        Per-call failure probability (1.0 = every call fails).
    exc:
        Exception class to instantiate (with ``message``) or a ready
        exception instance to raise as-is (``action="raise"`` only).
    seed:
        Seed of the plan's private generator; same seed, same failures.
    count:
        Stop failing after this many failures (``None`` = unlimited).
    after:
        Let the first ``after`` calls through before failing any.
    message:
        Message for constructed exceptions.
    action:
        ``"raise"`` (default), ``"kill"``, ``"wedge"``, or ``"sleep"`` —
        see the module docstring.
    delay_s:
        Sleep duration for ``wedge``/``sleep`` actions.
    exit_code:
        Process exit code for the ``kill`` action.

    Yields the plan, whose ``calls``/``failures`` counters tests can
    assert on. Nesting a second plan on the same site is rejected —
    overlapping plans would make failure sequences order-dependent.
    """
    plan = arm(
        site=site, rate=rate, exc=exc, seed=seed, count=count, after=after,
        message=message, action=action, delay_s=delay_s, exit_code=exit_code,
    )
    try:
        yield plan
    finally:
        with _LOCK:
            if _PLANS.get(site) is plan:
                del _PLANS[site]


def corrupt_file(
    path: "str | Path",
    mode: str = "truncate",
    fraction: float = 0.5,
    seed: int = 0,
) -> None:
    """Deterministically damage an on-disk artifact (checkpoint chaos).

    Modes: ``"truncate"`` keeps the first ``fraction`` of the bytes (a
    partial write), ``"empty"`` leaves a zero-byte file, ``"flip"`` XORs
    one seed-chosen byte (silent bit rot), ``"torn-tail"`` cuts the last
    line mid-record (the exact damage a power cut leaves in an
    append-only log). The hardened load path must detect all of them.
    """
    path = Path(path)
    raw = path.read_bytes()
    if mode == "truncate":
        path.write_bytes(raw[: max(1, int(len(raw) * fraction))])
    elif mode == "torn-tail":
        stripped = raw.rstrip(b"\n")
        cut = raw.rfind(b"\n", 0, len(stripped)) + 1  # start of last line
        keep = cut + max(1, (len(stripped) - cut) // 2)
        path.write_bytes(raw[:keep])
    elif mode == "empty":
        path.write_bytes(b"")
    elif mode == "flip":
        if not raw:
            return
        data = bytearray(raw)
        position = int(np.random.default_rng(seed).integers(0, len(data)))
        data[position] ^= 0xFF
        path.write_bytes(bytes(data))
    else:
        raise ValueError(f"unknown corruption mode {mode!r}")


def armed_sites() -> list[str]:
    """Names of currently armed sites (diagnostics)."""
    return sorted(_PLANS)


def reset() -> None:
    """Disarm every site (test-suite safety net)."""
    with _LOCK:
        _PLANS.clear()
