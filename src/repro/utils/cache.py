"""A generic bounded LRU cache — the one cache class the repo uses.

Every per-attribute memo in the codebase used to be a bare ``dict`` that
grew one weighted graph / hierarchy / LORE chain per distinct query
attribute forever — the same O(workload) memory-growth bug class the
bounded ``Histogram`` reservoir fixed for latency samples.
:class:`LRUCache` replaces them all with one auditable policy:

* **capacity bound** — at most ``capacity`` entries are resident; the
  least-recently-*used* entry is evicted first (reads refresh recency,
  :meth:`__contains__` peeks do not).
* **byte bound** (optional) — entries are charged an estimated size
  (``value.memory_bytes()`` when the value offers it, else
  ``sys.getsizeof``); inserts evict LRU entries until the estimate fits
  under ``max_bytes``. A single value larger than the whole budget is
  simply not cached (counted under ``oversized``).
* **counters** — hits, misses, evictions, and oversized rejections are
  tracked on the instance and, when a metrics registry is attached,
  mirrored to ``cache.<name>.hits`` / ``.misses`` / ``.evictions``
  counters plus ``cache.<name>.entries`` / ``.bytes`` gauges so
  ``health()`` and the fleet rollup can see cache behaviour.

The class is thread-safe (one lock around every operation) so a server
and its introspection endpoints can share an instance. ``metrics`` is
duck-typed: anything with ``counter(name).inc()`` and
``gauge(name).set(v)`` works (e.g. :class:`repro.obs.MetricsRegistry`).
"""

from __future__ import annotations

import sys
import threading
from collections import OrderedDict
from typing import Callable, Hashable, TypeVar

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")

_MISSING = object()


def default_sizeof(value: object) -> int:
    """Estimated resident bytes of a cached value.

    Values that know their own footprint (``memory_bytes()``, e.g.
    :class:`repro.influence.arena.RRArena`) are believed; everything else
    falls back to ``sys.getsizeof`` — a shallow estimate, which is fine:
    the byte bound is a guard rail, not an accountant.
    """
    probe = getattr(value, "memory_bytes", None)
    if callable(probe):
        try:
            return int(probe())
        except TypeError:
            pass
    return int(sys.getsizeof(value))


class LRUCache:
    """Bounded LRU mapping with hit/miss/eviction accounting.

    Parameters
    ----------
    capacity:
        Maximum resident entries (>= 1).
    max_bytes:
        Optional cap on the summed size estimates of resident values;
        ``None`` means unbounded on that axis.
    sizeof:
        Size estimator for the byte bound; defaults to
        :func:`default_sizeof`.
    name:
        Label used in :meth:`stats` and metrics keys
        (``cache.<name>.*``).
    metrics:
        Optional duck-typed metrics registry mirroring the counters.
    """

    def __init__(
        self,
        capacity: int,
        max_bytes: "int | None" = None,
        sizeof: "Callable[[object], int] | None" = None,
        name: str = "cache",
        metrics: "object | None" = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity!r}")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes!r}")
        self.capacity = int(capacity)
        self.max_bytes = None if max_bytes is None else int(max_bytes)
        self.name = str(name)
        self.metrics = metrics
        self._sizeof = sizeof or default_sizeof
        self._entries: "OrderedDict[Hashable, tuple[object, int]]" = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.oversized = 0
        self.invalidations = 0
        self.current_bytes = 0

    # ------------------------------------------------------------- mapping

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        """Peek: membership without touching recency or counters."""
        with self._lock:
            return key in self._entries

    def get(self, key: Hashable, default: object = None) -> object:
        """Return the cached value (refreshing recency) or ``default``."""
        with self._lock:
            entry = self._entries.get(key, _MISSING)
            if entry is _MISSING:
                self.misses += 1
                self._emit("misses")
                return default
            self._entries.move_to_end(key)
            self.hits += 1
            self._emit("hits")
            return entry[0]

    def put(self, key: Hashable, value: object) -> None:
        """Insert (or replace) ``key``, evicting LRU entries as needed."""
        with self._lock:
            size = int(self._sizeof(value)) if self.max_bytes is not None else 0
            if self.max_bytes is not None and size > self.max_bytes:
                # Caching this value would evict everything and still not
                # fit; serve it uncached instead of thrashing the cache.
                stale = self._entries.pop(key, _MISSING)
                if stale is not _MISSING:
                    self.current_bytes -= stale[1]
                self.oversized += 1
                self._emit("oversized")
                self._emit_gauges()
                return
            old = self._entries.pop(key, _MISSING)
            if old is not _MISSING:
                self.current_bytes -= old[1]
            self._entries[key] = (value, size)
            self.current_bytes += size
            while len(self._entries) > self.capacity or (
                self.max_bytes is not None and self.current_bytes > self.max_bytes
            ):
                _, (_, evicted_size) = self._entries.popitem(last=False)
                self.current_bytes -= evicted_size
                self.evictions += 1
                self._emit("evictions")
            self._emit_gauges()

    def get_or_create(self, key: Hashable, factory: Callable[[], object]) -> object:
        """Return the cached value, building and caching it on a miss.

        The factory runs outside any special protection: if it raises,
        nothing is cached and the exception propagates (a failed build
        still counts as a miss).
        """
        with self._lock:
            entry = self._entries.get(key, _MISSING)
            if entry is not _MISSING:
                self._entries.move_to_end(key)
                self.hits += 1
                self._emit("hits")
                return entry[0]
            self.misses += 1
            self._emit("misses")
        value = factory()
        self.put(key, value)
        return value

    def clear(self) -> int:
        """Drop every entry (counters preserved); returns how many dropped."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self.current_bytes = 0
            if dropped:
                self.invalidations += dropped
                self._emit("invalidations", dropped)
            self._emit_gauges()
            return dropped

    def invalidate(self, predicate: "Callable[[Hashable], bool]") -> int:
        """Drop every entry whose *key* matches ``predicate``.

        The epoch-scoped invalidation primitive: graph updates call this
        with a key predicate ("LORE entries for attribute 3") so entries
        untouched by an update keep serving. Returns the number dropped;
        counted under ``invalidations`` and mirrored to
        ``cache.<name>.invalidations`` when metrics are attached.
        """
        with self._lock:
            doomed = [key for key in self._entries if predicate(key)]
            for key in doomed:
                _, size = self._entries.pop(key)
                self.current_bytes -= size
            if doomed:
                self.invalidations += len(doomed)
                self._emit("invalidations", len(doomed))
            self._emit_gauges()
            return len(doomed)

    # ------------------------------------------------------------ reporting

    def stats(self) -> dict:
        """Snapshot for ``health()`` reports and tests."""
        with self._lock:
            return {
                "name": self.name,
                "capacity": self.capacity,
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "oversized": self.oversized,
                "invalidations": self.invalidations,
                "current_bytes": self.current_bytes,
                "max_bytes": self.max_bytes,
            }

    def _emit(self, event: str, n: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.counter(f"cache.{self.name}.{event}").inc(n)

    def _emit_gauges(self) -> None:
        if self.metrics is not None:
            self.metrics.gauge(f"cache.{self.name}.entries").set(len(self._entries))
            if self.max_bytes is not None:
                self.metrics.gauge(f"cache.{self.name}.bytes").set(self.current_bytes)

    def __repr__(self) -> str:
        return (
            f"LRUCache(name={self.name!r}, entries={len(self)}/{self.capacity}, "
            f"hits={self.hits}, misses={self.misses}, evictions={self.evictions})"
        )
