"""Small argument-validation helpers shared across the package.

Each helper raises ``ValueError`` with a message that names the offending
parameter, so call sites stay one line long. NaN is rejected explicitly by
every helper: ``float("nan")`` fails any comparison, so without the
dedicated check it would fall through to the generic range message
("must be positive, got nan") — or worse, *pass* checks written with a
negated comparison.
"""

from __future__ import annotations

import math


def _reject_nan(value: float, name: str) -> None:
    """Shared NaN gate: raise with a message that says NaN, not a range."""
    if isinstance(value, float) and math.isnan(value):
        raise ValueError(f"{name} must be a number, got NaN")


def check_positive(value: float, name: str) -> None:
    """Require ``value > 0``."""
    _reject_nan(value, name)
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")


def check_non_negative(value: float, name: str) -> None:
    """Require ``value >= 0``."""
    _reject_nan(value, name)
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")


def check_probability(value: float, name: str) -> None:
    """Require ``0 <= value <= 1``."""
    _reject_nan(value, name)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")


def check_fraction(value: float, name: str) -> None:
    """Require ``0 < value <= 1`` (a non-degenerate fraction)."""
    _reject_nan(value, name)
    if not 0.0 < value <= 1.0:
        raise ValueError(f"{name} must be in (0, 1], got {value!r}")
