"""Small argument-validation helpers shared across the package.

Each helper raises ``ValueError`` with a message that names the offending
parameter, so call sites stay one line long.
"""

from __future__ import annotations


def check_positive(value: float, name: str) -> None:
    """Require ``value > 0``."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")


def check_non_negative(value: float, name: str) -> None:
    """Require ``value >= 0``."""
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")


def check_probability(value: float, name: str) -> None:
    """Require ``0 <= value <= 1``."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")


def check_fraction(value: float, name: str) -> None:
    """Require ``0 < value <= 1`` (a non-degenerate fraction)."""
    if not 0.0 < value <= 1.0:
        raise ValueError(f"{name} must be in (0, 1], got {value!r}")
