"""Typed shared-memory segments: the zero-copy transport under the fleet.

A *segment* is one named POSIX shared-memory object holding a set of
numpy arrays behind a small versioned, checksummed header::

    [magic 8B][meta_len u32][meta_crc u32][meta JSON][payload arrays...]

The metadata JSON records the segment ``kind`` (e.g. ``"rr-arena"``),
format version, owner pid, per-array geometry (name, dtype, shape,
offset into the payload) and a CRC of the payload bytes. Readers verify
all of it on :func:`attach_segment`, so a truncated, foreign, or
bit-flipped segment fails loudly (:class:`~repro.errors.ShmError`)
instead of surfacing as wrong answers deep inside an evaluator.

Lifecycle rules (the part ``multiprocessing.shared_memory`` gets wrong
for long-lived servers):

* **Ownership is explicit.** The creating process owns the segment and
  is responsible for unlinking it; attaching processes only ever map it
  read-only. Python's ``resource_tracker`` is told to forget every
  segment we create *or* attach — its automatic cleanup unlinks a
  segment as soon as any attaching process exits (the well-known
  CPython tracker bug), which would yank arenas out from under a
  half-alive fleet.
* **Refcounted handles.** Within one process, handles to the same name
  share one mapping; :meth:`SharedSegment.close` drops the mapping on
  last close, and an *owner's* last close also unlinks the name
  (unlink-on-last-close). :meth:`SharedSegment.destroy` unlinks
  eagerly — what a supervisor calls at shutdown.
* **Crash-safe sweeping.** Segment names embed the owner pid
  (``cod-shm.<pid>.<token>.<kind>``), mirroring the pid-tagged staging
  files of :func:`repro.utils.persist.clean_stale_tmp`:
  :func:`sweep_stale_segments` unlinks a segment only when its owner is
  provably dead, so a crashed supervisor's leak is reclaimed on the
  next start without ever racing a live one.

POSIX semantics make rotation safe: unlinking removes the *name* while
existing mappings stay valid until closed, so a supervisor can publish
epoch N+1 segments and unlink epoch N's while workers still hold the
old mapping mid-query.
"""

from __future__ import annotations

import json
import os
import re
import secrets
import struct
import threading
import zlib
from multiprocessing import shared_memory
from pathlib import Path
from typing import Iterable, Mapping

import numpy as np

from repro.errors import ShmError
from repro.utils.persist import _pid_alive

#: Every segment this module creates is named ``cod-shm.<pid>.<token>.<kind>``.
SEGMENT_PREFIX = "cod-shm"

#: Default location of POSIX shared-memory objects on Linux.
SHM_DIR = "/dev/shm"

FORMAT_VERSION = 1

_MAGIC = b"CODSHM1\n"
_FIXED = len(_MAGIC) + 8  # magic + meta_len u32 + meta_crc u32
_ALIGN = 64

_SEG_PID_RE = re.compile(rf"^{re.escape(SEGMENT_PREFIX)}\.(\d+)\.")


def _align(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def _slug(kind: str) -> str:
    return re.sub(r"[^A-Za-z0-9_-]+", "-", kind).strip("-") or "segment"


def default_segment_name(kind: str) -> str:
    """A fresh pid-tagged segment name for a ``kind`` artifact."""
    return (
        f"{SEGMENT_PREFIX}.{os.getpid()}.{secrets.token_hex(4)}.{_slug(kind)}"
    )


def _untrack(shm: shared_memory.SharedMemory) -> None:
    """Tell the resource tracker to forget ``shm`` — we own its lifecycle.

    Without this, the tracker of *any* process that merely attached a
    segment unlinks it when that process exits, destroying the fleet's
    shared state on the first worker death.
    """
    try:  # pragma: no cover - tracker internals vary across versions
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:  # noqa: BLE001 — best-effort; worst case is a warning
        pass


def _quiet_unlink(shm: shared_memory.SharedMemory) -> None:
    """Unlink the name without a second resource-tracker unregister.

    ``SharedMemory.unlink`` also unregisters the name with the tracker,
    but :func:`_untrack` already did at map time — the duplicate message
    makes the tracker process print a ``KeyError`` traceback on exit.
    """
    posixshmem = getattr(shared_memory, "_posixshmem", None)
    try:
        if posixshmem is not None:
            posixshmem.shm_unlink(shm._name)
        else:  # pragma: no cover - non-POSIX fallback
            shm.unlink()
    except FileNotFoundError:
        pass


class _Mapping:
    """One process-wide mapping of a named segment, shared by handles."""

    __slots__ = ("shm", "refs", "owner", "unlinked")

    def __init__(self, shm: shared_memory.SharedMemory, owner: bool) -> None:
        self.shm = shm
        self.refs = 0
        self.owner = owner
        self.unlinked = False


_lock = threading.Lock()
_mappings: dict[str, _Mapping] = {}
#: Mappings whose buffers were still exported (live numpy views) at close
#: time; kept alive so the interpreter never warns from ``__del__`` — they
#: are retried on later closes and at :func:`close_all_segments`.
_zombies: list[_Mapping] = []
_registry_pid = os.getpid()


def _registry() -> dict[str, _Mapping]:
    """The per-process mapping registry, reset across ``fork``.

    A forked child inherits the parent's mappings but must never close
    or unlink them — they are the parent's to manage — so the child
    starts from an empty registry and re-attaches by name.
    """
    global _mappings, _zombies, _registry_pid
    if os.getpid() != _registry_pid:
        _mappings = {}
        _zombies = []
        _registry_pid = os.getpid()
    return _mappings


def _release(mapping: _Mapping) -> None:
    """Close a mapping's buffer, tolerating still-exported views."""
    try:
        mapping.shm.close()
    except BufferError:
        # numpy views into the buffer are still alive; parking the
        # mapping keeps the SharedMemory object referenced so its
        # __del__ never runs against live exports.
        _zombies.append(mapping)


def _reap_zombies() -> None:
    for mapping in list(_zombies):
        try:
            mapping.shm.close()
        except BufferError:
            continue
        _zombies.remove(mapping)


class SharedSegment:
    """A handle on one mapped segment (see module docstring).

    ``arrays`` maps array names to **read-only** numpy views over the
    mapping — zero-copy for owner and attachers alike. ``extra`` is the
    free-form metadata dict the creator stored alongside the arrays.
    """

    __slots__ = ("name", "kind", "extra", "arrays", "nbytes", "owner",
                 "_mapping", "_closed")

    def __init__(
        self,
        name: str,
        kind: str,
        extra: dict,
        arrays: dict[str, np.ndarray],
        nbytes: int,
        owner: bool,
        mapping: _Mapping,
    ) -> None:
        self.name = name
        self.kind = kind
        self.extra = extra
        self.arrays = arrays
        self.nbytes = int(nbytes)
        self.owner = owner
        self._mapping = mapping
        self._closed = False

    def close(self) -> None:
        """Drop this handle (idempotent).

        The process-wide mapping is released on last close; if this
        process owns the segment, the last close also unlinks the name.
        """
        if self._closed:
            return
        self._closed = True
        with _lock:
            registry = _registry()
            mapping = self._mapping
            if registry.get(self.name) is not mapping:
                return  # forked copy or an already-replaced mapping
            mapping.refs -= 1
            if mapping.refs > 0:
                return
            del registry[self.name]
            if mapping.owner and not mapping.unlinked:
                _quiet_unlink(mapping.shm)
                mapping.unlinked = True
            _release(mapping)
            _reap_zombies()

    def unlink(self) -> None:
        """Remove the segment's name now (idempotent; owner's call).

        Existing mappings — ours and other processes' — stay valid until
        closed; only new attaches fail. This is what makes epoch
        rotation safe.
        """
        with _lock:
            mapping = self._mapping
            if mapping.unlinked:
                return
            _quiet_unlink(mapping.shm)
            mapping.unlinked = True

    def destroy(self) -> None:
        """Unlink the name and drop this handle — supervisor shutdown."""
        self.unlink()
        self.close()

    def __enter__(self) -> "SharedSegment":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        role = "owner" if self.owner else "reader"
        return (
            f"SharedSegment({self.name!r}, kind={self.kind!r}, "
            f"arrays={len(self.arrays)}, bytes={self.nbytes}, {role})"
        )


def _layout(arrays: "Mapping[str, np.ndarray]", kind: str, extra: dict):
    """Compute the header + per-array geometry for ``arrays``."""
    specs = []
    payload_crc = 0
    rel = 0
    prepared: list[np.ndarray] = []
    for name, array in arrays.items():
        arr = np.ascontiguousarray(array)
        prepared.append(arr)
        rel = _align(rel)
        specs.append(
            {
                "name": str(name),
                "dtype": arr.dtype.str,
                "shape": list(arr.shape),
                "offset": rel,
                "nbytes": int(arr.nbytes),
            }
        )
        payload_crc = zlib.crc32(arr.tobytes(), payload_crc)
        rel += arr.nbytes
    meta = {
        "format": str(kind),
        "format_version": FORMAT_VERSION,
        "owner_pid": os.getpid(),
        "payload_crc": payload_crc,
        "arrays": specs,
        "extra": dict(extra),
    }
    meta_json = json.dumps(meta, sort_keys=True).encode("utf-8")
    payload_start = _align(_FIXED + len(meta_json))
    total = payload_start + rel
    return meta, meta_json, payload_start, total, prepared, specs


def _views(
    shm: shared_memory.SharedMemory, specs: Iterable[dict], payload_start: int
) -> dict[str, np.ndarray]:
    views: dict[str, np.ndarray] = {}
    for spec in specs:
        dtype = np.dtype(spec["dtype"])
        shape = tuple(int(s) for s in spec["shape"])
        count = int(np.prod(shape)) if shape else 1
        view = np.frombuffer(
            shm.buf,
            dtype=dtype,
            count=count,
            offset=payload_start + int(spec["offset"]),
        ).reshape(shape)
        view.setflags(write=False)
        views[spec["name"]] = view
    return views


def create_segment(
    arrays: "Mapping[str, np.ndarray]",
    kind: str,
    extra: "dict | None" = None,
    name: "str | None" = None,
) -> SharedSegment:
    """Publish ``arrays`` into a new named segment and return the handle.

    The returned handle's ``arrays`` are read-only views over the
    mapping, so an owner can *adopt* them and drop its private copies.
    The caller (owner) is responsible for :meth:`SharedSegment.destroy`
    (or last :meth:`~SharedSegment.close`) — nothing is cleaned up
    automatically, by design: a leak is reclaimed by
    :func:`sweep_stale_segments` once the owner is dead, never before.
    """
    name = name or default_segment_name(kind)
    meta, meta_json, payload_start, total, prepared, specs = _layout(
        arrays, kind, dict(extra or {})
    )
    try:
        shm = shared_memory.SharedMemory(
            name=name, create=True, size=max(total, 1)
        )
    except FileExistsError as exc:
        raise ShmError(
            f"shared segment {name!r} already exists; pick a fresh name "
            f"or sweep stale segments first"
        ) from exc
    except OSError as exc:
        raise ShmError(f"cannot create shared segment {name!r}: {exc}") from exc
    _untrack(shm)
    buf = shm.buf
    buf[:len(_MAGIC)] = _MAGIC
    struct.pack_into(
        "<II", buf, len(_MAGIC), len(meta_json), zlib.crc32(meta_json)
    )
    buf[_FIXED:_FIXED + len(meta_json)] = meta_json
    for arr, spec in zip(prepared, specs):
        if arr.nbytes == 0:
            continue
        offset = payload_start + spec["offset"]
        dst = np.frombuffer(
            buf, dtype=arr.dtype, count=arr.size, offset=offset
        ).reshape(arr.shape)
        dst[...] = arr
    with _lock:
        registry = _registry()
        mapping = _Mapping(shm, owner=True)
        mapping.refs = 1
        registry[name] = mapping
    return SharedSegment(
        name=name,
        kind=meta["format"],
        extra=dict(meta["extra"]),
        arrays=_views(shm, specs, payload_start),
        nbytes=total,
        owner=True,
        mapping=mapping,
    )


def attach_segment(name: str, kind: "str | None" = None) -> SharedSegment:
    """Map an existing segment read-only, verifying its header.

    ``kind`` (when given) must match the creator's — attaching a graph
    segment as an arena fails with a clear message instead of
    misparsing. Raises :class:`~repro.errors.ShmError` on a missing
    segment, foreign magic, unsupported version, checksum mismatch
    (header or payload), or geometry that does not fit the mapping.
    """
    with _lock:
        registry = _registry()
        mapping = registry.get(name)
        if mapping is not None:
            mapping.refs += 1
            shm = mapping.shm
        else:
            try:
                shm = shared_memory.SharedMemory(name=name, create=False)
            except FileNotFoundError as exc:
                raise ShmError(
                    f"shared segment {name!r} does not exist (owner gone or "
                    f"already swept?)"
                ) from exc
            except OSError as exc:
                raise ShmError(
                    f"cannot attach shared segment {name!r}: {exc}"
                ) from exc
            _untrack(shm)
            mapping = _Mapping(shm, owner=False)
            mapping.refs = 1
            registry[name] = mapping

    def reject(reason: str) -> ShmError:
        handle = SharedSegment(name, "?", {}, {}, 0, False, mapping)
        handle.close()
        return ShmError(f"shared segment {name!r} is unusable: {reason}")

    buf = shm.buf
    if shm.size < _FIXED or bytes(buf[:len(_MAGIC)]) != _MAGIC:
        raise reject("bad magic (not a cod-shm segment)")
    meta_len, meta_crc = struct.unpack_from("<II", buf, len(_MAGIC))
    if _FIXED + meta_len > shm.size:
        raise reject(
            f"header claims {meta_len} metadata bytes but the mapping "
            f"holds {shm.size}"
        )
    meta_json = bytes(buf[_FIXED:_FIXED + meta_len])
    if zlib.crc32(meta_json) != meta_crc:
        raise reject("metadata checksum mismatch (corrupt header)")
    meta = json.loads(meta_json)
    if meta.get("format_version") != FORMAT_VERSION:
        raise reject(
            f"format version {meta.get('format_version')!r}; this reader "
            f"supports {FORMAT_VERSION}"
        )
    if kind is not None and meta.get("format") != kind:
        raise reject(
            f"holds a {meta.get('format')!r} artifact, expected {kind!r}"
        )
    payload_start = _align(_FIXED + meta_len)
    payload_crc = 0
    for spec in meta["arrays"]:
        begin = payload_start + int(spec["offset"])
        end = begin + int(spec["nbytes"])
        if end > shm.size:
            raise reject(
                f"array {spec['name']!r} ends at byte {end} but the "
                f"mapping holds {shm.size} (truncated segment)"
            )
        payload_crc = zlib.crc32(bytes(buf[begin:end]), payload_crc)
    if payload_crc != meta.get("payload_crc"):
        raise reject("payload checksum mismatch (corrupt or torn segment)")
    return SharedSegment(
        name=name,
        kind=meta["format"],
        extra=dict(meta.get("extra", {})),
        arrays=_views(shm, meta["arrays"], payload_start),
        nbytes=payload_start + sum(
            int(s["nbytes"]) for s in meta["arrays"]
        ),
        owner=False,
        mapping=mapping,
    )


def segment_exists(name: str, shm_dir: "str | Path" = SHM_DIR) -> bool:
    """Whether a segment name currently exists (without mapping it)."""
    path = Path(shm_dir) / name
    if Path(shm_dir).is_dir():
        return path.exists()
    try:  # pragma: no cover - non-/dev/shm platforms
        shm = shared_memory.SharedMemory(name=name, create=False)
    except OSError:
        return False
    _untrack(shm)
    shm.close()
    return True


def list_segments(
    prefix: str = SEGMENT_PREFIX, shm_dir: "str | Path" = SHM_DIR
) -> list[dict]:
    """Our segments currently present, as ``{name, owner_pid, bytes, alive}``.

    The ops surface behind the OPERATIONS.md leak playbook: ``alive`` is
    whether the embedded owner pid still exists (``None`` = unknowable).
    """
    directory = Path(shm_dir)
    found: list[dict] = []
    if not directory.is_dir():
        return found
    for entry in sorted(directory.glob(f"{prefix}.*")):
        match = _SEG_PID_RE.match(entry.name)
        if match is None:
            continue
        pid = int(match.group(1))
        try:
            size = entry.stat().st_size
        except OSError:
            continue
        found.append(
            {
                "name": entry.name,
                "owner_pid": pid,
                "bytes": int(size),
                "alive": _pid_alive(pid),
            }
        )
    return found


def sweep_stale_segments(
    prefix: str = SEGMENT_PREFIX, shm_dir: "str | Path" = SHM_DIR
) -> list[str]:
    """Unlink segments whose owner process is provably dead.

    The shared-memory analogue of
    :func:`repro.utils.persist.clean_stale_tmp`: a segment is removed
    only when the pid embedded in its name no longer exists — a live
    owner's segments (this process's included) are never touched, so
    the sweep is safe to run from any process at any time. Returns the
    names removed. Call it at supervisor start and on worker respawn to
    reclaim leaks left by SIGKILLed incarnations.
    """
    directory = Path(shm_dir)
    removed: list[str] = []
    if not directory.is_dir():
        return removed
    for entry in directory.glob(f"{prefix}.*"):
        match = _SEG_PID_RE.match(entry.name)
        if match is None:
            continue
        if _pid_alive(int(match.group(1))) is not False:
            continue  # owner (possibly) alive: not ours to reclaim
        try:
            entry.unlink()
        except OSError:
            continue
        removed.append(entry.name)
    return removed


def close_all_segments() -> None:
    """Release every mapping this process still holds (test teardown)."""
    with _lock:
        registry = _registry()
        for name, mapping in list(registry.items()):
            del registry[name]
            if mapping.owner and not mapping.unlinked:
                _quiet_unlink(mapping.shm)
                mapping.unlinked = True
            _release(mapping)
        _reap_zombies()
