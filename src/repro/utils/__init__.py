"""Shared utilities: seeded RNG handling, validation helpers, timers."""

from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.timing import Timer
from repro.utils.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
    check_probability,
)

__all__ = [
    "ensure_rng",
    "spawn_rngs",
    "Timer",
    "check_fraction",
    "check_non_negative",
    "check_positive",
    "check_probability",
]
