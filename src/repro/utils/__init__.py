"""Shared utilities: seeded RNG handling, validation helpers, timers,
and the one bounded LRU cache every layer shares."""

from repro.utils.cache import LRUCache, default_sizeof
from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.timing import Timer
from repro.utils.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
    check_probability,
)

__all__ = [
    "LRUCache",
    "default_sizeof",
    "ensure_rng",
    "spawn_rngs",
    "Timer",
    "check_fraction",
    "check_non_negative",
    "check_positive",
    "check_probability",
]
