"""Hardened JSON persistence: atomic writes, format versions, checksums.

Offline artifacts (HIMOR indexes, hierarchies) are written as a small
envelope around the actual payload::

    {"format": "himor-index", "format_version": 1,
     "checksum": "<sha256 of the canonical payload JSON>",
     "payload": {...}}

* **Atomicity** — the document is written to a temp file in the target
  directory and moved into place with ``os.replace``, so a crash mid-write
  can never leave a half-written artifact at the final path.
* **Versioning** — readers reject artifacts written by an incompatible
  format revision with a clear message instead of misparsing them.
* **Integrity** — the checksum is recomputed over the canonical payload
  serialization on load; silent corruption (truncation, bit flips,
  hand edits) is detected instead of surfacing as wrong answers or a raw
  ``json.JSONDecodeError`` deep inside the loader.

Loaders translate *every* failure mode into the caller's domain error
class (``IndexError_`` for indexes, ``HierarchyError`` for hierarchies);
the default is :class:`~repro.errors.PersistError`. Truncated files and
partial writes left behind by a killed process are detected *before*
checksum verification and reported as truncation, and
:func:`clean_stale_tmp` removes orphaned ``*.tmp`` staging files on
startup.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import tempfile
import time
from pathlib import Path
from typing import Type

from repro.errors import PersistError

FORMAT_VERSION = 1


def fsync_dir(directory: "str | Path") -> bool:
    """Fsync a directory so a just-created/renamed entry survives power loss.

    ``os.replace`` makes a rename atomic, but the *directory entry* itself
    is only durable once the directory inode is flushed. Returns False on
    platforms/filesystems that cannot open a directory for syncing.
    """
    try:
        fd = os.open(str(directory), os.O_RDONLY)
    except OSError:
        return False
    try:
        os.fsync(fd)
    except OSError:
        return False
    finally:
        os.close(fd)
    return True


def _canonical(payload: object) -> str:
    """The byte-stable serialization the checksum is computed over."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def payload_checksum(payload: object) -> str:
    """SHA-256 hex digest of the canonical payload serialization."""
    return hashlib.sha256(_canonical(payload).encode("utf-8")).hexdigest()


def atomic_write_json(path: "str | Path", payload: object, kind: str) -> None:
    """Atomically persist ``payload`` under a versioned, checksummed envelope.

    ``kind`` names the artifact format (e.g. ``"himor-index"``) and is
    verified on load, so loading a hierarchy file as an index fails loudly.
    """
    path = Path(path)
    document = {
        "format": kind,
        "format_version": FORMAT_VERSION,
        "checksum": payload_checksum(payload),
        "payload": payload,
    }
    text = json.dumps(document)
    fd, tmp_name = tempfile.mkstemp(
        prefix=f"{path.name}.{os.getpid()}.", suffix=".tmp", dir=path.parent or "."
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
        fsync_dir(path.parent or ".")
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def load_versioned_json(
    path: "str | Path", kind: str, error_cls: Type[Exception] = PersistError
) -> object:
    """Load and verify an artifact written by :func:`atomic_write_json`.

    Raises ``error_cls`` (default :class:`~repro.errors.PersistError`) —
    never ``json.JSONDecodeError``, ``UnicodeDecodeError``, or ``KeyError``
    — on any of: unreadable file, short read / truncation, invalid JSON,
    missing envelope, wrong ``kind``, unsupported version, or checksum
    mismatch. Truncation (a partial write left by a killed process) is
    detected before checksum verification so the message names the real
    failure mode instead of a generic mismatch.
    """
    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError as exc:
        raise error_cls(f"cannot read {kind} file {path}: {exc}") from exc
    if not raw.strip():
        raise error_cls(
            f"{kind} file {path} is empty — truncated or never completed "
            f"(partial write left by a killed process?)"
        )
    if raw.rstrip()[-1:] != b"}":
        raise error_cls(
            f"{kind} file {path} is truncated: the envelope does not close "
            f"(short read of {len(raw)} bytes; partial write left by a "
            f"killed process?)"
        )
    try:
        text = raw.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise error_cls(
            f"corrupt {kind} file {path}: not valid UTF-8 ({exc})"
        ) from exc
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        # A decode error at the very end of the input is a short read (the
        # document stops mid-value), not in-place corruption.
        if exc.pos >= len(text.rstrip()) - 1:
            raise error_cls(
                f"{kind} file {path} is truncated: JSON ends mid-document "
                f"at byte {exc.pos} (partial write left by a killed process?)"
            ) from exc
        raise error_cls(f"corrupt {kind} file {path}: invalid JSON ({exc})") from exc
    if not isinstance(document, dict) or "payload" not in document:
        raise error_cls(
            f"{path} is not a versioned {kind} file (missing envelope); "
            f"re-save it with the current writer"
        )
    if document.get("format") != kind:
        raise error_cls(
            f"{path} holds a {document.get('format')!r} artifact, expected {kind!r}"
        )
    version = document.get("format_version")
    if version != FORMAT_VERSION:
        raise error_cls(
            f"{path} uses {kind} format version {version!r}; this reader "
            f"supports version {FORMAT_VERSION}"
        )
    payload = document["payload"]
    expected = document.get("checksum")
    actual = payload_checksum(payload)
    if expected != actual:
        raise error_cls(
            f"checksum mismatch in {kind} file {path}: stored {expected!r}, "
            f"recomputed {actual!r} — the file is corrupt"
        )
    return payload


_TMP_PID_RE = re.compile(r"\.(\d+)\.[^.]*\.tmp$")


def _pid_alive(pid: int) -> "bool | None":
    """Whether ``pid`` is a live process; ``None`` when it cannot be told."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except (PermissionError, OSError, OverflowError):
        return None  # exists-but-not-ours, or unknowable: assume live
    return True


def clean_stale_tmp(
    directory: "str | Path",
    prefix: "str | None" = None,
    min_age_s: float = 60.0,
) -> list[Path]:
    """Remove orphaned ``*.tmp`` staging files left by a killed writer.

    :func:`atomic_write_json` stages through ``<name>.<pid>.<random>.tmp``
    in the target directory; a process killed between ``mkstemp`` and
    ``os.replace`` leaves that file behind. Call this once on startup for
    each artifact directory. ``prefix`` restricts the sweep to temp files
    staged for one artifact name. Returns the paths removed. Missing
    directories and racing deletions are ignored.

    A concurrent writer's *live* staging file must not be swept, so a
    temp file is removed only when it is provably orphaned: its embedded
    writer pid no longer exists. Files without a parseable pid (older
    writers, other tools) fall back to an age threshold — they are
    removed only once ``min_age_s`` seconds old, old enough that no
    in-flight ``atomic_write_json`` can still own them.
    """
    directory = Path(directory)
    removed: list[Path] = []
    if not directory.is_dir():
        return removed
    pattern = f"{prefix}.*.tmp" if prefix else "*.tmp"
    now = time.time()
    for stale in directory.glob(pattern):
        match = _TMP_PID_RE.search(stale.name)
        if match:
            if _pid_alive(int(match.group(1))) is not False:
                continue  # writer (possibly) alive: leave its staging file
        else:
            try:
                age = now - stale.stat().st_mtime
            except OSError:
                continue
            if age < min_age_s:
                continue
        try:
            stale.unlink()
        except OSError:
            continue
        removed.append(stale)
    return removed
