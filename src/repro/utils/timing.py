"""Wall-clock timing helper used by the experiment drivers."""

from __future__ import annotations

import time


class Timer:
    """Context manager measuring elapsed wall-clock seconds.

    Example::

        with Timer() as t:
            run_query()
        print(t.elapsed)

    The elapsed time is also available while the block is still running via
    :attr:`elapsed`, which is convenient for progress reporting.
    """

    def __init__(self) -> None:
        self._start: float | None = None
        self._stop: float | None = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        self._stop = None
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._stop = time.perf_counter()

    @property
    def elapsed(self) -> float:
        """Seconds elapsed; live while running, frozen after exit."""
        if self._start is None:
            return 0.0
        end = self._stop if self._stop is not None else time.perf_counter()
        return end - self._start
