"""Random-number-generator plumbing.

Every stochastic entry point in the library accepts a ``seed`` argument that
may be ``None`` (fresh entropy), an ``int`` (deterministic), or an existing
:class:`numpy.random.Generator` (shared stream). :func:`ensure_rng`
normalizes all three into a ``Generator`` so call sites never branch.
"""

from __future__ import annotations

import numpy as np

SeedLike = "int | np.random.Generator | None"


def ensure_rng(seed: "int | np.random.Generator | None" = None) -> np.random.Generator:
    """Return a numpy ``Generator`` for any accepted seed form.

    Passing an existing generator returns it unchanged, so a single stream
    can be threaded through a pipeline for reproducibility.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: "int | np.random.Generator | None", count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent child generators from one seed.

    Useful for running the same experiment over many queries while keeping
    each query's sampling stream independent of the evaluation order.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    root = ensure_rng(seed)
    seed_seq = getattr(root.bit_generator, "seed_seq", None)
    if seed_seq is not None:
        return [np.random.default_rng(child) for child in seed_seq.spawn(count)]
    return [np.random.default_rng(root.integers(0, 2**63)) for _ in range(count)]
