"""Bounded admission queue with priority classes and load shedding.

The supervisor admits every incoming query through an
:class:`AdmissionQueue` of fixed capacity. When the queue is full the
policy is *shed lowest-priority first*:

* if a **lower-priority** entry is waiting, the newest such entry is
  evicted to make room (it receives an explicit ``refused_overload``
  terminal answer — work already enqueued the shortest time is the
  cheapest to give back);
* otherwise the **incoming** query is the lowest class present and is
  refused on arrival.

Either way nothing is dropped silently: every admitted-then-shed and
every refused-on-arrival query is reported to the caller so it can be
given a terminal answer. Within one priority class, service is FIFO.

Priorities are plain integers (higher = more important); the named
levels :data:`PRIORITY_INTERACTIVE`, :data:`PRIORITY_BATCH`, and
:data:`PRIORITY_BACKGROUND` cover the common classes.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Callable, Generic, Optional, TypeVar

PRIORITY_INTERACTIVE = 2
PRIORITY_BATCH = 1
PRIORITY_BACKGROUND = 0

T = TypeVar("T")


@dataclass
class Admission(Generic[T]):
    """Outcome of one :meth:`AdmissionQueue.admit` call.

    ``admitted`` says whether the incoming item was queued; ``shed`` is
    the previously queued ``(item, priority)`` evicted to make room, if
    any. ``admitted=False`` and ``shed is None`` never occur together
    with a non-full queue.
    """

    admitted: bool
    shed: "tuple[T, int] | None" = None


class AdmissionQueue(Generic[T]):
    """Thread-safe bounded priority queue with explicit load shedding.

    Parameters
    ----------
    capacity:
        Maximum entries queued at once (must be >= 1).
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity!r}")
        self.capacity = int(capacity)
        self._lanes: dict[int, deque[T]] = {}
        self._lock = threading.Lock()
        self.admitted = 0
        self.refused_incoming = 0
        self.shed_queued = 0

    def __len__(self) -> int:
        with self._lock:
            return sum(len(lane) for lane in self._lanes.values())

    @property
    def depth(self) -> int:
        """Entries currently queued."""
        return len(self)

    def admit(self, item: T, priority: int = PRIORITY_BATCH) -> Admission[T]:
        """Queue ``item``, shedding lowest-priority work if full.

        Returns an :class:`Admission`; the caller owns giving a terminal
        refusal to whichever side lost (the shed entry or the incoming
        item).
        """
        priority = int(priority)
        with self._lock:
            depth = sum(len(lane) for lane in self._lanes.values())
            shed: "tuple[T, int] | None" = None
            if depth >= self.capacity:
                lowest = min(p for p, lane in self._lanes.items() if lane)
                if priority <= lowest:
                    self.refused_incoming += 1
                    return Admission(admitted=False)
                shed = (self._lanes[lowest].pop(), lowest)
                self.shed_queued += 1
            self._lanes.setdefault(priority, deque()).append(item)
            self.admitted += 1
            return Admission(admitted=True, shed=shed)

    def pop(
        self, prefer: "Optional[Callable[[T], bool | int]]" = None
    ) -> "T | None":
        """Dequeue the oldest entry of the highest priority class, if any.

        ``prefer`` is an optional *affinity score* (e.g. "this worker
        already has this attribute's restricted shard mapped"): within
        the highest non-empty priority class — never across classes —
        the oldest entry with the highest positive score is taken; if
        every entry scores zero, the class's FIFO head is returned so
        preference can delay work behind same-priority matches but never
        starve it entirely. Booleans are accepted as scores (``True`` =
        1), so predicate-style callers keep working; a scored callable
        can rank shard-mapped work (say, 2) above merely sticky-claimed
        work (1) above unclaimed work (0).
        """
        with self._lock:
            for priority in sorted(self._lanes, reverse=True):
                lane = self._lanes[priority]
                if not lane:
                    continue
                if prefer is not None:
                    best_offset, best_score = None, 0
                    for offset, item in enumerate(lane):
                        score = int(prefer(item))
                        if score > best_score:
                            best_offset, best_score = offset, score
                    if best_offset is not None:
                        item = lane[best_offset]
                        del lane[best_offset]
                        return item
                return lane.popleft()
            return None

    def __repr__(self) -> str:
        return (
            f"AdmissionQueue(depth={len(self)}/{self.capacity}, "
            f"admitted={self.admitted}, shed={self.shed_queued}, "
            f"refused={self.refused_incoming})"
        )
