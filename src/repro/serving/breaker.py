"""A circuit breaker for repeatedly failing subsystems.

The server wraps LORE reclustering in a breaker: once reclustering fails
``failure_threshold`` times in a row, the breaker *opens* and every
LORE-based rung short-circuits straight to CODU for ``cooldown_s`` —
saving the failed work and the retry latency on every query while the
subsystem is sick. After the cool-down one probe call is let through
(*half-open*); success closes the breaker, failure re-opens it for
another cool-down window.
"""

from __future__ import annotations

import time
from typing import Callable

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Classic three-state (closed / open / half-open) circuit breaker.

    Parameters
    ----------
    failure_threshold:
        Consecutive failures that trip the breaker open.
    cooldown_s:
        Seconds the breaker stays open before probing again.
    clock:
        Monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown_s: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold!r}"
            )
        if cooldown_s < 0:
            raise ValueError(f"cooldown_s must be non-negative, got {cooldown_s!r}")
        self.failure_threshold = int(failure_threshold)
        self.cooldown_s = float(cooldown_s)
        self._clock = clock
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at: "float | None" = None
        self.open_count = 0

    @property
    def state(self) -> str:
        """Current state, resolving an elapsed cool-down to ``half_open``."""
        if self._state == OPEN and self._cooldown_over():
            self._state = HALF_OPEN
        return self._state

    def _cooldown_over(self) -> bool:
        return (
            self._opened_at is not None
            and self._clock() - self._opened_at >= self.cooldown_s
        )

    def retry_after(self) -> float:
        """Seconds until the breaker would probe again (0 when not open)."""
        if self.state != OPEN or self._opened_at is None:
            return 0.0
        return max(0.0, self.cooldown_s - (self._clock() - self._opened_at))

    def allow(self) -> bool:
        """Whether a call may proceed right now.

        In ``half_open`` the probe is allowed; its outcome (reported via
        :meth:`record_success` / :meth:`record_failure`) decides whether
        the breaker closes or re-opens.
        """
        return self.state != OPEN

    def record_success(self) -> None:
        """Report a successful call: reset to ``closed``."""
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = None

    def record_failure(self) -> None:
        """Report a failed call; may trip the breaker open."""
        self._consecutive_failures += 1
        probe_failed = self._state == HALF_OPEN
        if probe_failed or self._consecutive_failures >= self.failure_threshold:
            self._state = OPEN
            self._opened_at = self._clock()
            self.open_count += 1

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker(state={self.state!r}, "
            f"failures={self._consecutive_failures}/{self.failure_threshold}, "
            f"cooldown_s={self.cooldown_s})"
        )
