"""A circuit breaker for repeatedly failing subsystems.

The server wraps LORE reclustering in a breaker: once reclustering fails
``failure_threshold`` times in a row, the breaker *opens* and every
LORE-based rung short-circuits straight to CODU for ``cooldown_s`` —
saving the failed work and the retry latency on every query while the
subsystem is sick. After the cool-down one probe call is let through
(*half-open*); success closes the breaker, failure re-opens it for a
*longer* cool-down window (``cooldown_multiplier`` per consecutive
re-open, capped at ``max_cooldown_s``) — a subsystem that keeps failing
its probes gets probed progressively less often. A success resets the
cool-down to its base value.
"""

from __future__ import annotations

import time
from typing import Callable

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Classic three-state (closed / open / half-open) circuit breaker.

    Parameters
    ----------
    failure_threshold:
        Consecutive failures that trip the breaker open.
    cooldown_s:
        Base seconds the breaker stays open before probing again.
    cooldown_multiplier:
        Factor applied to the cool-down each time a half-open probe fails
        (1.0 = the legacy fixed cool-down).
    max_cooldown_s:
        Ceiling on the escalated cool-down (``None`` = uncapped).
    clock:
        Monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown_s: float = 5.0,
        cooldown_multiplier: float = 2.0,
        max_cooldown_s: "float | None" = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold!r}"
            )
        if cooldown_s < 0:
            raise ValueError(f"cooldown_s must be non-negative, got {cooldown_s!r}")
        if cooldown_multiplier < 1.0:
            raise ValueError(
                f"cooldown_multiplier must be >= 1, got {cooldown_multiplier!r}"
            )
        if max_cooldown_s is not None and max_cooldown_s < cooldown_s:
            raise ValueError(
                f"max_cooldown_s ({max_cooldown_s!r}) must be >= cooldown_s "
                f"({cooldown_s!r})"
            )
        self.failure_threshold = int(failure_threshold)
        self.cooldown_s = float(cooldown_s)
        self.cooldown_multiplier = float(cooldown_multiplier)
        self.max_cooldown_s = max_cooldown_s
        self._clock = clock
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at: "float | None" = None
        self._current_cooldown_s = float(cooldown_s)
        self.open_count = 0

    @property
    def state(self) -> str:
        """Current state, resolving an elapsed cool-down to ``half_open``."""
        if self._state == OPEN and self._cooldown_over():
            self._state = HALF_OPEN
        return self._state

    @property
    def current_cooldown_s(self) -> float:
        """The cool-down the next (or current) open window uses."""
        return self._current_cooldown_s

    def _cooldown_over(self) -> bool:
        return (
            self._opened_at is not None
            and self._clock() - self._opened_at >= self._current_cooldown_s
        )

    def retry_after(self) -> float:
        """Seconds until the breaker would probe again (0 when not open)."""
        if self.state != OPEN or self._opened_at is None:
            return 0.0
        return max(
            0.0, self._current_cooldown_s - (self._clock() - self._opened_at)
        )

    def allow(self) -> bool:
        """Whether a call may proceed right now.

        In ``half_open`` the probe is allowed; its outcome (reported via
        :meth:`record_success` / :meth:`record_failure`) decides whether
        the breaker closes or re-opens.
        """
        return self.state != OPEN

    def record_success(self) -> None:
        """Report a successful call: reset to ``closed``, base cool-down."""
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = None
        self._current_cooldown_s = self.cooldown_s

    def record_failure(self) -> None:
        """Report a failed call; may trip the breaker open.

        A failed half-open probe re-opens with an escalated cool-down
        (``cooldown_multiplier`` longer, up to ``max_cooldown_s``).
        """
        self._consecutive_failures += 1
        probe_failed = self.state == HALF_OPEN
        if probe_failed:
            escalated = self._current_cooldown_s * self.cooldown_multiplier
            if self.max_cooldown_s is not None:
                escalated = min(escalated, self.max_cooldown_s)
            self._current_cooldown_s = escalated
        if probe_failed or self._consecutive_failures >= self.failure_threshold:
            self._state = OPEN
            self._opened_at = self._clock()
            self.open_count += 1

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker(state={self.state!r}, "
            f"failures={self._consecutive_failures}/{self.failure_threshold}, "
            f"cooldown_s={self.cooldown_s})"
        )
