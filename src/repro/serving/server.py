"""The fault-tolerant COD server.

:class:`CODServer` wraps the paper's pipelines with the machinery a
serving deployment needs:

* **Execution budgets** — every query runs under an
  :class:`~repro.serving.budget.ExecutionBudget` (wall-clock deadline +
  RR-sample cap) enforced at cooperative checkpoints inside sampling,
  LORE, and compressed evaluation.
* **Degradation ladder** — rungs are tried in order under the remaining
  budget: ``CODL`` (HIMOR index) → ``CODL-`` (fresh LORE, no index) →
  ``CODU`` (non-attributed hierarchy, ignores the query attribute) →
  explicit refusal. The answer records which rung served it and why the
  higher rungs did not.
* **Retries** — transient sampling failures (``InfluenceError``) are
  retried with exponential backoff and a *shrinking* ``theta``: each
  retry asks for fewer samples, trading estimate variance for the chance
  to answer inside the budget.
* **Circuit breaker** — repeated LORE failures open a breaker that
  short-circuits the two LORE-based rungs straight to CODU for a
  cool-down window.
* **Health counters** — answered-per-rung, retries, breaker state, and
  p50/p95 latency via :meth:`CODServer.health`.
* **Observability** — :meth:`CODServer.answer` accepts an optional
  duck-typed ``trace`` (e.g. :class:`~repro.obs.QueryTrace`) that records
  a span per stage (rungs, sampling, LORE, compressed evaluation, HIMOR
  lookup/build); constructing the server with a
  :class:`~repro.obs.MetricsRegistry` turns on stage profiling — the same
  spans feed ``stage.*`` timers and counters via
  :class:`~repro.obs.StageProfiler`. Instrumentation is purely
  observational: traced and untraced runs return bit-identical answers.

A query never escapes as an infrastructure exception: the only errors
:meth:`CODServer.answer` raises are caller errors (an invalid query).
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

import numpy as np

from repro.core.compressed import compressed_cod
from repro.core.himor import HimorIndex, graph_checksum, same_hierarchy
from repro.core.lore import LoreResult, lore_chain
from repro.core.problem import CODQuery
from repro.errors import (
    BudgetExhaustedError,
    CircuitOpenError,
    DeadlineExceededError,
    IndexError_,
    InfluenceError,
    ServingError,
)
from repro.graph.graph import AttributedGraph
from repro.graph.weighting import AttributeWeighting, WeightedGraphCache
from repro.hierarchy.chain import CommunityChain
from repro.hierarchy.dendrogram import CommunityHierarchy
from repro.hierarchy.linkage import Linkage
from repro.hierarchy.nnchain import agglomerative_hierarchy
from repro.core.pool import SharedSamplePool
from repro.influence.arena import RRArena, allowed_fingerprint, sample_arena
from repro.influence.fastsample import sample_arena_fast
from repro.influence.models import InfluenceModel, WeightedCascade
from repro.obs import StageProfiler, TeeTrace
from repro.serving.breaker import CircuitBreaker
from repro.serving.budget import BackoffPolicy, ExecutionBudget
from repro.serving.stats import ServerStats
from repro.utils.cache import LRUCache
from repro.utils.persist import clean_stale_tmp
from repro.utils.rng import ensure_rng

#: Ladder rungs, strongest first; ``REFUSED`` is the explicit bottom.
RUNG_CODL = "CODL"
RUNG_CODL_MINUS = "CODL-"
RUNG_CODU = "CODU"
REFUSED = "refused"
#: Supervisor refusal rungs: shed by admission control / lost to a worker
#: crash after its one requeue. Both satisfy :attr:`ServedAnswer.refused`.
REFUSED_OVERLOAD = "refused_overload"
REFUSED_CRASH = "refused_crash"

LADDER = (RUNG_CODL, RUNG_CODL_MINUS, RUNG_CODU)


@dataclass
class ServedAnswer:
    """One query's outcome, degradation trail included.

    Attributes
    ----------
    query:
        The query served.
    members:
        The community (``None`` both for a genuine "no characteristic
        community" answer and for a refusal — distinguish via
        :attr:`refused`).
    rung:
        ``"CODL"``, ``"CODL-"``, ``"CODU"``, or ``"refused"``.
    chain_length:
        Communities examined by the answering rung (0 on refusal).
    elapsed:
        Wall-clock seconds charged to the query.
    retries:
        Sampling retries spent across all rungs.
    notes:
        Human-readable trail: one line per rung that failed or was
        skipped, naming the error — the "why" of the degradation.
    error:
        On refusal, the final error that exhausted the ladder.
    epoch:
        The graph epoch the answer was computed against (``None`` when the
        server has never seen an update log — e.g. legacy callers). Every
        admitted query is answered against exactly one epoch: updates are
        applied only between queries, so the epoch stamped at admission is
        the epoch of every structure the answer consulted.
    """

    query: CODQuery
    members: "np.ndarray | None"
    rung: str
    chain_length: int = 0
    elapsed: float = 0.0
    retries: int = 0
    notes: list[str] = field(default_factory=list)
    error: "Exception | None" = None
    epoch: "int | None" = None

    @property
    def found(self) -> bool:
        """Whether a characteristic community was returned."""
        return self.members is not None

    @property
    def refused(self) -> bool:
        """Whether the service gave up instead of answering — covers the
        ladder's own refusal and the supervisor's ``refused_overload`` /
        ``refused_crash`` outcomes."""
        return self.rung.startswith(REFUSED)

    @property
    def degraded(self) -> bool:
        """Whether a weaker rung than CODL served (or nothing did)."""
        return self.rung != RUNG_CODL


class CODServer:
    """Serve COD queries with budgets, degradation, and fault isolation.

    Parameters
    ----------
    graph:
        The graph to serve.
    theta:
        Baseline RR graphs per node; retries shrink it transiently.
    deadline_s / sample_budget:
        Default per-query budget (overridable per call); ``None`` means
        unbounded on that axis.
    max_retries:
        Sampling retries per rung attempt.
    backoff_s:
        Base backoff; retry ``i`` sleeps ``backoff_s * 2**i`` (clipped to
        the remaining deadline).
    theta_shrink / min_theta:
        Retry ``i`` samples at ``theta * theta_shrink**i`` (floored).
    breaker_threshold / breaker_cooldown_s:
        LORE circuit-breaker tuning.
    index_path:
        Optional HIMOR persistence location. When the file exists it is
        loaded instead of built; a fresh build is saved back to it. Stale
        ``*.tmp`` staging files for this artifact (left by a killed
        process) are swept on construction.
    auto_rebuild_index:
        When loading from ``index_path`` fails (corruption, version or
        checksum mismatch, graph mismatch), rebuild from scratch instead
        of failing the CODL rung.
    checkpoint_every:
        With ``index_path`` set, HIMOR builds checkpoint per-tree-bucket
        progress to ``<index_path>.ckpt`` every this-many samples and
        resume from it after a crash (``None`` disables checkpointing).
        Resume is validated against a build fingerprint and requires an
        integer ``seed`` to be sample-exact.
    clock:
        Monotonic time source shared by budgets and the breaker
        (injectable for tests).
    metrics:
        Optional :class:`~repro.obs.MetricsRegistry`. When set, every
        answer is profiled: stage spans feed ``stage.<name>.seconds``
        histograms and ``stage.<name>.calls`` counters, and the server
        records ``queries``, ``rung.<rung>``, and ``query.seconds``
        directly. The snapshot rides :meth:`health` under ``"metrics"``.
    pool:
        Optional :class:`~repro.core.pool.SharedSamplePool` over the same
        graph. When set, every compressed evaluation (and CODL's
        restricted fallback, via :meth:`RRArena.restrict`) is served from
        the pooled samples instead of drawing fresh ones — the server
        never consumes its own RNG per query, so answers are a pure
        function of (query, pool), identical across query orderings.
        That is what makes batched (grouped) execution bit-identical to
        sequential calls. The trade-off is inherited from the pool:
        answers to different queries share randomness and are therefore
        correlated. The ``sample_budget`` axis does not tick in pooled
        mode (nothing is drawn); deadlines still apply.
    cache_capacity:
        Bound for each of the server's internal LRU caches (weighted
        graphs, LORE chains, restricted arenas). Hit/miss/eviction
        counters surface in :meth:`health` under ``"caches"`` and, with a
        registry attached, as ``cache.<name>.*`` metrics.
    fast_sampling:
        When true, fresh per-query draws use the vectorized batch
        sampler (:func:`~repro.influence.fastsample.sample_arena_fast`)
        instead of the stream-compatible one. Answers come from the same
        RR-graph distribution but not the same RNG stream, so they are
        statistically — not bitwise — equivalent at a given seed. Pooled
        evaluations are unaffected (the pool picks its own sampler via
        ``SharedSamplePool(fast=...)``).
    """

    def __init__(
        self,
        graph: AttributedGraph,
        theta: int = 10,
        model: "InfluenceModel | None" = None,
        weighting: "AttributeWeighting | None" = None,
        linkage: "Linkage | None" = None,
        seed: "int | np.random.Generator | None" = None,
        deadline_s: "float | None" = None,
        sample_budget: "int | None" = None,
        max_retries: int = 2,
        backoff_s: float = 0.01,
        theta_shrink: float = 0.5,
        min_theta: int = 1,
        breaker_threshold: int = 3,
        breaker_cooldown_s: float = 5.0,
        index_path: "str | Path | None" = None,
        auto_rebuild_index: bool = True,
        checkpoint_every: "int | None" = 256,
        clock: Callable[[], float] = time.monotonic,
        metrics: "object | None" = None,
        pool: "SharedSamplePool | None" = None,
        cache_capacity: int = 64,
        fast_sampling: bool = False,
        state_store: "object | None" = None,
    ) -> None:
        if theta <= 0:
            raise ValueError(f"theta must be positive, got {theta!r}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be non-negative, got {max_retries!r}")
        if not 0.0 < theta_shrink <= 1.0:
            raise ValueError(f"theta_shrink must be in (0, 1], got {theta_shrink!r}")
        if min_theta < 1:
            raise ValueError(f"min_theta must be >= 1, got {min_theta!r}")
        self.graph = graph
        self.theta = int(theta)
        self.model = model or WeightedCascade()
        self.weighting = weighting or AttributeWeighting()
        self.linkage = linkage
        self.seed = seed if isinstance(seed, int) else None
        self.rng = ensure_rng(seed)
        self.deadline_s = deadline_s
        self.sample_budget = sample_budget
        self.max_retries = int(max_retries)
        self.backoff_s = float(backoff_s)
        self.theta_shrink = float(theta_shrink)
        self.min_theta = int(min_theta)
        self.index_path = Path(index_path) if index_path is not None else None
        self.auto_rebuild_index = bool(auto_rebuild_index)
        self.checkpoint_every = checkpoint_every
        if self.index_path is not None:
            # Sweep staging files a killed predecessor left for our artifacts.
            clean_stale_tmp(self.index_path.parent, prefix=self.index_path.name)
            clean_stale_tmp(
                self.index_path.parent, prefix=self._checkpoint_path().name
            )
        self._clock = clock
        self.metrics = metrics
        self._backoff = BackoffPolicy(
            base_s=self.backoff_s, factor=2.0, cap_s=float("inf"), jitter=0.0
        )
        self.stats = ServerStats()
        self.breaker = CircuitBreaker(
            failure_threshold=breaker_threshold,
            cooldown_s=breaker_cooldown_s,
            clock=clock,
        )
        if pool is not None and pool.graph.n != graph.n:
            raise ValueError(
                f"pool was drawn over a {pool.graph.n}-node graph but the "
                f"server serves {graph.n} nodes"
            )
        self.pool = pool
        #: Optional :class:`~repro.serving.durability.DurableStateStore`
        #: (already recovered). When attached, :meth:`apply_updates` logs
        #: each batch write-ahead and only acknowledges the epoch after
        #: the WAL fsync — a crash can then never lose an applied epoch.
        self.state_store = state_store
        self.fast_sampling = bool(fast_sampling)
        self._sample = sample_arena_fast if self.fast_sampling else sample_arena
        if cache_capacity < 1:
            raise ValueError(
                f"cache_capacity must be >= 1, got {cache_capacity!r}"
            )
        self.cache_capacity = int(cache_capacity)
        #: Graph version: 0 = the construction-time graph; bumped by every
        #: :meth:`apply_updates` batch. Stamped on every answer.
        self.epoch = 0
        self._update_batches = 0
        self._updates_applied = 0
        self._cache_invalidated = 0
        self._repaired_samples = 0
        self._hierarchy: "CommunityHierarchy | None" = None
        self._index: "HimorIndex | None" = None
        self._weighted_cache = WeightedGraphCache(
            graph,
            self.weighting,
            capacity=self.cache_capacity,
            metrics=metrics,
        )
        self._lore_cache = LRUCache(
            self.cache_capacity, name="lore", metrics=metrics
        )
        self._restricted_cache = LRUCache(
            self.cache_capacity, name="restricted", metrics=metrics
        )
        #: Published restricted-shard manifest: ``{attribute: entry}`` where
        #: entry carries ``name``/``vertex``/``epoch``/``allowed_sha``/
        #: ``samples`` (see :meth:`adopt_shards`). Empty when the fleet
        #: publishes no shards.
        self._shard_manifest: dict[int, dict] = {}
        #: Attached shard arenas keyed by segment name (lazy, detached on
        #: rotation).
        self._shard_arenas: "dict[str, RRArena]" = {}
        self.shard_attaches = 0
        self.shard_hits = 0
        self.shard_misses = 0
        self.shard_rejects = 0
        #: Local ``pool.restricted()`` builds actually executed — the
        #: per-worker restrict work ``benchmarks/bench_shard.py`` gates on.
        self.local_restricts = 0

    # ----------------------------------------------------------- public API

    def answer(
        self,
        query: CODQuery,
        deadline_s: "float | None" = None,
        sample_budget: "int | None" = None,
        trace: "object | None" = None,
    ) -> ServedAnswer:
        """Answer one query under a budget, degrading instead of raising.

        Invalid queries (bad node/attribute/k) still raise — they are the
        caller's bug, not an infrastructure fault.

        ``trace`` is any object exposing the duck-typed ``span(name,
        **meta)`` protocol (e.g. :class:`~repro.obs.QueryTrace`); when the
        server also carries a metrics registry, the caller's trace and the
        profiler both observe the same spans via
        :class:`~repro.obs.TeeTrace`. Tracing never changes the answer.
        """
        query.validate(self.graph)
        if self.metrics is not None:
            profiler = StageProfiler(self.metrics)
            trace = profiler if trace is None else TeeTrace(trace, profiler)
        budget = ExecutionBudget(
            deadline_s=self.deadline_s if deadline_s is None else deadline_s,
            max_samples=self.sample_budget if sample_budget is None else sample_budget,
            clock=self._clock,
        )
        answer = ServedAnswer(
            query=query, members=None, rung=REFUSED, epoch=self.epoch
        )
        last_error: "Exception | None" = None

        root_cm = (
            trace.span(
                "answer", node=query.node, attribute=query.attribute, k=query.k
            )
            if trace is not None
            else nullcontext()
        )
        with root_cm as root:
            for rung in LADDER:
                rung_cm = (
                    trace.span(f"rung:{rung}")
                    if trace is not None
                    else nullcontext()
                )
                with rung_cm as rung_span:
                    try:
                        budget.check()
                        members, chain_length = self._try_rung(
                            rung, query, budget, answer, trace
                        )
                    except (DeadlineExceededError, BudgetExhaustedError) as exc:
                        # The budget is shared: once it is spent no lower
                        # rung can draw either, so stop descending and
                        # refuse explicitly.
                        if rung_span is not None:
                            rung_span.note(outcome=type(exc).__name__)
                        answer.notes.append(f"{rung}: {exc}")
                        last_error = exc
                        if isinstance(exc, DeadlineExceededError):
                            self.stats.deadline_exceeded += 1
                        else:
                            self.stats.budget_exhausted += 1
                        break
                    except CircuitOpenError as exc:
                        if rung_span is not None:
                            rung_span.note(outcome="breaker_open")
                        answer.notes.append(f"{rung}: {exc}")
                        last_error = exc
                        self.stats.breaker_short_circuits += 1
                        continue
                    except Exception as exc:  # rung failed — degrade, never leak
                        if rung_span is not None:
                            rung_span.note(
                                outcome=f"failed: {type(exc).__name__}"
                            )
                        answer.notes.append(f"{rung}: {type(exc).__name__}: {exc}")
                        last_error = exc
                        continue
                    if rung_span is not None:
                        rung_span.note(
                            outcome="answered", found=members is not None
                        )
                    answer.members = members
                    answer.rung = rung
                    answer.chain_length = chain_length
                    break

            answer.elapsed = budget.elapsed()
            if root is not None:
                root.note(
                    rung=answer.rung,
                    retries=answer.retries,
                    breaker=self.breaker.state,
                )

        if answer.refused:
            answer.error = last_error
            self.stats.record_refusal(answer.elapsed)
        else:
            self.stats.record_answer(answer.rung, answer.elapsed)
        if self.metrics is not None:
            self.metrics.counter("queries").inc()
            self.metrics.counter(f"rung.{answer.rung}").inc()
            self.metrics.histogram("query.seconds").record(answer.elapsed)
        return answer

    def answer_batch(
        self,
        queries: "list[CODQuery]",
        batch_size: "int | None" = None,
    ) -> list[ServedAnswer]:
        """Answer a workload through the batch planner.

        The planner groups queries by attribute so per-attribute
        structures (weighted graph, LORE chain, restricted arenas) are
        built once per group; with a :class:`SharedSamplePool` attached it
        also executes group-by-group, which is safe because pooled answers
        do not depend on query order. Answers come back in input order
        and are bit-identical to sequential :meth:`answer` calls.

        Failures are isolated per query: one query raising — even a
        caller error like an invalid node — yields a refused
        :class:`ServedAnswer` with the error recorded (and counted in
        ``stats.query_errors``) instead of aborting the rest of the
        batch. The failed query's *actual* elapsed time is charged to the
        refusal-latency reservoir (never a fabricated zero).

        ``batch_size`` optionally windows the workload: each consecutive
        window of that many queries is planned independently, bounding
        how far a query can be deferred behind its attribute group.
        """
        from repro.serving.planner import BatchPlanner

        return BatchPlanner(self).execute(queries, batch_size=batch_size)

    def warm(self, pool: bool = True) -> None:
        """Build (or load/resume) the hierarchy and HIMOR index up front.

        Lets a worker pay the offline cost before accepting traffic — and
        lets a supervisor-restarted worker resume a checkpointed build —
        instead of charging it to the first query's budget. With a sample
        pool attached it is materialized too; pass ``pool=False`` to warm
        the index only (e.g. to time pool sampling separately).
        """
        trace = StageProfiler(self.metrics) if self.metrics is not None else None
        self._ensure_index(ExecutionBudget(clock=self._clock), trace)
        if pool and self.pool is not None:
            self.pool.materialize(trace=trace)

    def apply_updates(
        self,
        updates,
        epoch: "int | None" = None,
        trace: "object | None" = None,
    ) -> dict:
        """Apply one update batch atomically and advance the epoch.

        ``updates`` is an :class:`~repro.dynamic.log.UpdateBatch` or a
        sequence of :class:`~repro.dynamic.updates.EdgeUpdate` /
        :class:`~repro.dynamic.updates.AttrUpdate`. The batch is validated
        (and rejected wholesale on intra-batch conflicts or invalid
        operations) before anything is touched, so a failed apply leaves
        the server exactly at its previous epoch.

        This is the safe-point entry: callers must not invoke it
        concurrently with :meth:`answer` (the supervisor guarantees that
        by enqueueing update directives on the same FIFO queue as tasks).
        Repair instead of rebuild:

        * **structural batches** (any edge update) rebind the weighted-
          graph cache and drop LORE/restricted memos; an attached
          per-sample-seeded pool is incrementally repaired (only samples
          that activated a touched node are redrawn — bit-identical to a
          from-scratch draw); the HIMOR index is delta-repaired when the
          post-update hierarchy is unchanged, else rebuilt from the
          repaired pool (no fresh sampling), else dropped for lazy
          rebuild.
        * **attribute-only batches** leave topology-derived state (pool
          samples, hierarchy, HIMOR ranks) untouched and invalidate only
          cache entries scoped to the touched attributes (the ``jaccard``
          weighting scheme reads full attribute sets, so it drops all).

        ``epoch`` pins the post-apply epoch (workers replaying a
        supervisor directive pass the directive's target so respawned
        workers land on the fleet epoch); by default the epoch just
        increments. Returns an apply report (epoch, counts, index
        disposition).
        """
        # Local import: repro.dynamic stays importable without the serving
        # stack, so the dependency must point serving -> dynamic only here.
        from repro.dynamic.updates import (
            apply_updates as _apply_graph_updates,
            touched_attributes,
            touched_nodes,
        )

        batch = tuple(getattr(updates, "updates", updates))
        apply_cm = (
            trace.span("apply_updates", n=len(batch))
            if trace is not None
            else nullcontext()
        )
        with apply_cm as span:
            new_graph = _apply_graph_updates(self.graph, batch)
            t_nodes = touched_nodes(batch)
            t_attrs = touched_attributes(batch)
            structural = any(
                not hasattr(update, "attribute") for update in batch
            )
            target_epoch = self.epoch + 1 if epoch is None else int(epoch)
            if self.state_store is not None:
                # Write-ahead: the batch is validated (new_graph exists)
                # but nothing is mutated yet, so a WAL failure aborts the
                # apply with the server exactly at its previous epoch —
                # and a crash after the fsync replays this batch.
                from repro.core.himor import graph_checksum
                from repro.dynamic.log import as_batch
                from repro.errors import WalError

                if self.state_store.epoch + 1 != target_epoch:
                    raise WalError(
                        f"durable store is at epoch {self.state_store.epoch} "
                        f"but the server would apply epoch {target_epoch}; "
                        f"refusing to ack out-of-order state"
                    )
                self.state_store.append(
                    as_batch(updates), graph_sha=graph_checksum(new_graph)
                )
            invalidated = 0
            repaired = 0
            index_action = "none"
            if structural:
                invalidated += self._weighted_cache.rebind(new_graph)
                invalidated += self._lore_cache.clear()
                invalidated += self._restricted_cache.clear()
                rep = None
                if self.pool is not None:
                    rep = self.pool.repair(new_graph, t_nodes)
                    repaired = rep.n_repaired if rep is not None else 0
                self.graph = new_graph
                if self._hierarchy is not None or self._index is not None:
                    new_hierarchy = agglomerative_hierarchy(
                        new_graph, linkage=self.linkage
                    )
                    index_action = self._repair_index(
                        new_graph, new_hierarchy, rep, trace
                    )
                    self._hierarchy = new_hierarchy
            else:
                invalidated += self._weighted_cache.invalidate_attributes(
                    new_graph, t_attrs
                )
                if self.weighting.scheme == "jaccard":
                    # Jaccard weights read every node's full attribute set,
                    # so no cached chain is provably untouched.
                    invalidated += self._lore_cache.clear()
                else:
                    invalidated += self._lore_cache.invalidate(
                        lambda key: key[1] in t_attrs
                    )
                # Restricted arenas and HIMOR ranks are topology-only;
                # attribute flips cannot stale them.
                if self.pool is not None:
                    self.pool.repair(new_graph, set())
                self.graph = new_graph
            self.epoch = self.epoch + 1 if epoch is None else int(epoch)
            self._update_batches += 1
            self._updates_applied += len(batch)
            self._cache_invalidated += invalidated
            self._repaired_samples += repaired
            if span is not None:
                span.note(
                    epoch=self.epoch,
                    structural=structural,
                    repaired_samples=repaired,
                    index=index_action,
                )
        if self.metrics is not None:
            self.metrics.gauge("epoch").set(self.epoch)
            self.metrics.counter("updates.batches").inc()
            self.metrics.counter("updates.applied").inc(len(batch))
            if repaired:
                self.metrics.counter("arena.repaired_samples").inc(repaired)
            if invalidated:
                self.metrics.counter("cache.invalidated_entries").inc(
                    invalidated
                )
        if self.state_store is not None:
            self.state_store.maybe_snapshot(self.graph, self.epoch)
        return {
            "epoch": self.epoch,
            "updates": len(batch),
            "structural": structural,
            "repaired_samples": repaired,
            "cache_invalidated": invalidated,
            "index": index_action,
        }

    def _repair_index(
        self,
        graph: AttributedGraph,
        hierarchy: CommunityHierarchy,
        rep,
        trace: "object | None" = None,
    ) -> str:
        """Carry the HIMOR index across a structural update.

        Preference order: delta-repair (hierarchy unchanged and the pool
        produced a sample delta) > rebuild from the repaired pool arena
        (hierarchy moved but no sampling needed) > drop and rebuild
        lazily on the next CODL query. Every kept index is re-persisted
        so a respawned worker loads the current epoch's artifact.
        """
        if self._index is None:
            return "none"
        sha = graph_checksum(graph)
        if (
            rep is not None
            and self._index.has_buckets
            and same_hierarchy(self._index.hierarchy, hierarchy)
        ):
            self._index.hierarchy = hierarchy
            self._index.repair(rep.removed, rep.added, graph_sha=sha)
            action = "repaired"
        elif self.pool is not None and self.pool.per_sample_seeds:
            self._index = HimorIndex.build(
                graph,
                hierarchy,
                theta=self.theta,
                model=self.model,
                rr_graphs=self.pool.arena,
                trace=trace,
                sample_mode="per-sample",
            )
            self.stats.index_rebuilds += 1
            action = "rebuilt"
        else:
            # Without a repairable pool the old ranks reflect stale
            # samples; drop the index and let CODL rebuild under its own
            # budget. The graph_sha gate keeps the persisted artifact
            # from resurrecting the stale epoch.
            self._index = None
            action = "dropped"
        if action != "dropped" and self.index_path is not None:
            self._index.save(self.index_path)
        return action

    def adopt_shared(
        self,
        graph: AttributedGraph,
        arena,
        epoch: "int | None" = None,
        n_updates: int = 0,
        shards: "dict | None" = None,
    ) -> dict:
        """Adopt a supervisor-published graph + repaired arena for an epoch.

        The shared-pool counterpart of :meth:`apply_updates`: instead of
        re-applying the update batch locally, the worker swaps in the
        already-updated graph and the already-repaired arena attached
        from shared memory. Because the supervisor's builder pool is
        configured identically to this worker's, the adopted state is
        bit-identical to what a local apply + repair would have produced.

        Conservative on derived state: the weighted cache rebinds, LORE
        and restricted memos drop, and the hierarchy/HIMOR index are
        discarded for lazy rebuild (the supervisor does not ship index
        deltas; CODL rebuilds from the adopted pool without resampling).
        """
        if self.pool is None:
            raise ServingError(
                "adopt_shared requires a sample pool; this server was built "
                "with use_pool disabled"
            )
        target = self.epoch + 1 if epoch is None else int(epoch)
        invalidated = self._weighted_cache.rebind(graph)
        invalidated += self._lore_cache.clear()
        invalidated += self._restricted_cache.clear()
        self.pool.adopt(graph, arena)
        old_graph = self.graph
        self.graph = graph
        index_action = (
            "dropped"
            if (self._hierarchy is not None or self._index is not None)
            else "none"
        )
        self._hierarchy = None
        self._index = None
        self.epoch = target
        # The restricted cache was already cleared wholesale above; adopt
        # the epoch's shard manifest so post-update queries attach the
        # rotated shards instead of re-restricting locally.
        self.adopt_shards(shards)
        self._update_batches += 1
        self._updates_applied += int(n_updates)
        self._cache_invalidated += invalidated
        if old_graph is not graph and old_graph.is_shared:
            old_graph.detach_shared()
        if self.metrics is not None:
            self.metrics.gauge("epoch").set(self.epoch)
            self.metrics.counter("updates.batches").inc()
            if n_updates:
                self.metrics.counter("updates.applied").inc(int(n_updates))
            if invalidated:
                self.metrics.counter("cache.invalidated_entries").inc(
                    invalidated
                )
        return {
            "epoch": self.epoch,
            "updates": int(n_updates),
            "structural": True,
            "repaired_samples": 0,
            "cache_invalidated": invalidated,
            "index": index_action,
            "adopted": True,
        }

    def adopt_shards(self, manifest: "dict | None") -> int:
        """Adopt a per-attribute restricted-shard manifest.

        ``manifest`` maps attribute → ``{"name", "vertex", "epoch",
        "allowed_sha", "samples"}`` describing a published ``rr-shard``
        segment holding ``pool.restricted(allowed)`` for that attribute's
        hot floor vertex. Shards attach lazily on first use
        (:meth:`_restricted_arena`); here we only reconcile state:

        * restricted-cache entries for attributes whose shard entry
          changed are invalidated (the cache key is ``(attribute,
          vertex)`` — per-attribute scoping is what makes this sound,
          see the keying bugfix in :meth:`_restricted_arena`),
        * attached arenas whose segment left the manifest are detached.

        Returns the number of cache entries invalidated. Idempotent;
        ``None`` clears the manifest.
        """
        cleaned: dict[int, dict] = {}
        for attr, entry in (manifest or {}).items():
            cleaned[int(attr)] = dict(entry)
        invalidated = 0
        changed = {
            attr
            for attr in set(self._shard_manifest) | set(cleaned)
            if self._shard_manifest.get(attr) != cleaned.get(attr)
        }
        for attr in changed:
            invalidated += self._restricted_cache.invalidate(
                lambda key, a=attr: key[0] == a
            )
        keep = {entry.get("name") for entry in cleaned.values()}
        for name, arena in list(self._shard_arenas.items()):
            if name not in keep:
                arena.detach()
                del self._shard_arenas[name]
        self._shard_manifest = cleaned
        if self.metrics is not None:
            self.metrics.gauge("shm.shard.manifest").set(len(cleaned))
        return invalidated

    def health(self) -> dict:
        """Health/stats snapshot for the CLI (see :class:`ServerStats`).

        With a metrics registry attached, the snapshot also carries the
        registry under ``"metrics"`` — this is what the supervisor folds
        into its fleet-wide rollup.
        """
        snapshot = self.stats.as_dict(breaker_state=self.breaker.state)
        snapshot["epoch"] = self.epoch
        snapshot["updates"] = {
            "batches_applied": self._update_batches,
            "updates_applied": self._updates_applied,
            "repaired_samples": self._repaired_samples,
            "cache_invalidated": self._cache_invalidated,
        }
        snapshot["caches"] = {
            "weighted": self._weighted_cache.stats(),
            "lore": self._lore_cache.stats(),
            "restricted": self._restricted_cache.stats(),
        }
        if self.pool is not None:
            snapshot["pool"] = {
                "samples": self.pool.n_samples,
                "materialized": self.pool.is_materialized,
                "attached": self.pool.is_attached,
                "arena_bytes": self.pool.arena_bytes(),
            }
        snapshot["shards"] = {
            "manifest": len(self._shard_manifest),
            "attached": len(self._shard_arenas),
            "attaches": self.shard_attaches,
            "hits": self.shard_hits,
            "misses": self.shard_misses,
            "rejects": self.shard_rejects,
            "local_restricts": self.local_restricts,
        }
        if self.metrics is not None:
            snapshot["metrics"] = self.metrics.snapshot()
        return snapshot

    # -------------------------------------------------------------- ladder

    def _try_rung(
        self,
        rung: str,
        query: CODQuery,
        budget: ExecutionBudget,
        answer: ServedAnswer,
        trace: "object | None" = None,
    ) -> "tuple[np.ndarray | None, int]":
        if rung == RUNG_CODL:
            return self._rung_codl(query, budget, answer, trace)
        if rung == RUNG_CODL_MINUS:
            return self._rung_codl_minus(query, budget, answer, trace)
        return self._rung_codu(query, budget, answer, trace)

    def _rung_codl(
        self,
        query: CODQuery,
        budget: ExecutionBudget,
        answer: ServedAnswer,
        trace: "object | None" = None,
    ) -> "tuple[np.ndarray | None, int]":
        """Algorithm 3: HIMOR index scan + restricted local fallback."""
        if query.attribute is None:
            raise InfluenceError("CODL requires a query attribute")
        index = self._ensure_index(budget, trace)
        lore = self._guarded_lore(query, budget, trace)
        lookup_cm = (
            trace.span("himor_lookup") if trace is not None else nullcontext()
        )
        with lookup_cm as lookup_span:
            ancestor = index.largest_qualifying_ancestor(
                query.node, query.k, floor_vertex=lore.c_ell_vertex
            )
            if lookup_span is not None:
                lookup_span.note(hit=ancestor is not None)
        if ancestor is not None:
            return index.hierarchy.members(ancestor), len(lore.chain)
        if lore.c_ell_chain_level == 0:
            return None, len(lore.chain)
        inner_chain = lore.chain.prefix(lore.c_ell_chain_level)
        allowed = set(int(v) for v in index.hierarchy.members(lore.c_ell_vertex))

        def evaluate(theta: int) -> "np.ndarray | None":
            if self.pool is not None:
                samples = self._restricted_arena(
                    query.attribute, lore.c_ell_vertex, allowed, budget, trace
                )
                n_local = samples.n_samples
            else:
                n_local = budget.clamp_samples(theta * len(allowed))
                samples = self._sample(
                    self.graph,
                    n_local,
                    model=self.model,
                    rng=self.rng,
                    allowed=allowed,
                    budget=budget,
                    trace=trace,
                )
            evaluation = compressed_cod(
                self.graph,
                inner_chain,
                k=query.k,
                rr_graphs=samples,
                n_samples=n_local,
                budget=budget,
                trace=trace,
            )
            return evaluation.characteristic_community(query.k)

        return self._with_sampling_retries(evaluate, budget, answer, RUNG_CODL), len(
            lore.chain
        )

    def _rung_codl_minus(
        self,
        query: CODQuery,
        budget: ExecutionBudget,
        answer: ServedAnswer,
        trace: "object | None" = None,
    ) -> "tuple[np.ndarray | None, int]":
        """Fresh LORE + compressed evaluation over the full chain."""
        if query.attribute is None:
            raise InfluenceError("CODL- requires a query attribute")
        lore = self._guarded_lore(query, budget, trace)

        def evaluate(theta: int) -> "np.ndarray | None":
            evaluation = self._compressed(lore.chain, query.k, theta, budget, trace)
            return evaluation.characteristic_community(query.k)

        members = self._with_sampling_retries(evaluate, budget, answer, RUNG_CODL_MINUS)
        return members, len(lore.chain)

    def _rung_codu(
        self,
        query: CODQuery,
        budget: ExecutionBudget,
        answer: ServedAnswer,
        trace: "object | None" = None,
    ) -> "tuple[np.ndarray | None, int]":
        """Attribute-blind fallback on the non-attributed hierarchy."""
        hierarchy = self._ensure_hierarchy(budget, trace)
        chain = CommunityChain.from_hierarchy(hierarchy, query.node)

        def evaluate(theta: int) -> "np.ndarray | None":
            evaluation = self._compressed(chain, query.k, theta, budget, trace)
            return evaluation.characteristic_community(query.k)

        members = self._with_sampling_retries(evaluate, budget, answer, RUNG_CODU)
        return members, len(chain)

    def _compressed(
        self,
        chain: CommunityChain,
        k: int,
        theta: int,
        budget: ExecutionBudget,
        trace: "object | None" = None,
    ):
        if self.pool is not None:
            budget.check()
            samples: "RRArena" = self.pool.materialize(trace=trace)
            n_samples = samples.n_samples
        else:
            n_samples = budget.clamp_samples(theta * self.graph.n)
            samples = self._sample(
                self.graph,
                n_samples,
                model=self.model,
                rng=self.rng,
                budget=budget,
                trace=trace,
            )
        return compressed_cod(
            self.graph,
            chain,
            k=k,
            rr_graphs=samples,
            n_samples=n_samples,
            budget=budget,
            trace=trace,
        )

    # ------------------------------------------------------------- retries

    def _with_sampling_retries(
        self,
        evaluate: Callable[[int], "np.ndarray | None"],
        budget: ExecutionBudget,
        answer: ServedAnswer,
        label: str,
    ) -> "np.ndarray | None":
        """Run ``evaluate(theta)``, retrying transient sampling failures.

        Each retry backs off exponentially (clipped to the remaining
        deadline) and shrinks ``theta``, so a sick sampler gets cheaper —
        and therefore more likely to finish in budget — on every attempt.
        """
        theta = self.theta
        for attempt in range(self.max_retries + 1):
            try:
                return evaluate(max(self.min_theta, theta))
            except InfluenceError as exc:
                if attempt >= self.max_retries:
                    raise
                answer.notes.append(
                    f"{label}: sampling attempt {attempt + 1} failed "
                    f"({exc}); retrying with theta={max(self.min_theta, int(theta * self.theta_shrink))}"
                )
                answer.retries += 1
                self.stats.retries += 1
                self._sleep_backoff(attempt, budget)
                theta = int(theta * self.theta_shrink)
        raise AssertionError("unreachable")  # pragma: no cover

    def _sleep_backoff(self, attempt: int, budget: ExecutionBudget) -> None:
        delay = self._backoff.delay(attempt)
        remaining = budget.remaining_seconds()
        if remaining is not None:
            delay = min(delay, remaining)
        if delay > 0:
            time.sleep(delay)
        budget.check()

    # ----------------------------------------------------- shared structure

    def _ensure_hierarchy(
        self, budget: ExecutionBudget, trace: "object | None" = None
    ) -> CommunityHierarchy:
        if self._hierarchy is None:
            budget.check()
            cluster_cm = (
                trace.span("clustering") if trace is not None else nullcontext()
            )
            with cluster_cm:
                self._hierarchy = agglomerative_hierarchy(
                    self.graph, linkage=self.linkage
                )
        return self._hierarchy

    def _ensure_index(
        self, budget: ExecutionBudget, trace: "object | None" = None
    ) -> HimorIndex:
        if self._index is not None:
            return self._index
        if self.index_path is not None and self.index_path.exists():
            try:
                index = HimorIndex.load(self.index_path)
                if index.hierarchy.n_leaves != self.graph.n:
                    raise IndexError_(
                        f"persisted index covers {index.hierarchy.n_leaves} "
                        f"nodes but the served graph has {self.graph.n}"
                    )
                if (
                    index.graph_sha is not None
                    and index.graph_sha != graph_checksum(self.graph)
                ):
                    # A pre-update artifact surviving on disk (e.g. the
                    # server respawned into a newer epoch): its ranks
                    # describe the old edge set, so rebuild instead.
                    raise IndexError_(
                        "persisted index was built for a different edge set "
                        "(stale epoch); rebuilding"
                    )
                self._index = index
                # Adopt the persisted hierarchy so index and chains agree;
                # hierarchy-derived memos (LORE chains keyed by its vertex
                # ids, restricted arenas) are stale the moment it changes.
                if self._hierarchy is not index.hierarchy:
                    self._lore_cache.clear()
                    self._restricted_cache.clear()
                self._hierarchy = index.hierarchy
                return index
            except IndexError_:
                self.stats.index_load_failures += 1
                if not self.auto_rebuild_index:
                    raise
        budget.check()
        hierarchy = self._ensure_hierarchy(budget, trace)
        checkpoint_path = None
        if self.index_path is not None and self.checkpoint_every is not None:
            checkpoint_path = self._checkpoint_path()
        if self.pool is not None and self.pool.per_sample_seeds:
            # Build over the pool's per-sample-seeded arena: the index then
            # shares the pool's samples exactly, which is what lets a graph
            # update delta-repair it from the pool's repair report. The
            # ``per-sample`` fingerprint mode keeps these checkpoints from
            # cross-resuming with stream-sampled builds.
            index = HimorIndex.build(
                self.graph,
                hierarchy,
                theta=self.theta,
                model=self.model,
                rng=self.pool.base_seed,
                rr_graphs=self.pool.materialize(budget=budget, trace=trace),
                budget=budget,
                checkpoint_path=checkpoint_path,
                checkpoint_every=self.checkpoint_every or 256,
                trace=trace,
                sample_mode="per-sample",
            )
        else:
            index = HimorIndex.build(
                self.graph,
                hierarchy,
                theta=self.theta,
                model=self.model,
                # Pass the raw integer seed when the build is the generator's
                # first use: the checkpoint fingerprint then pins the sample
                # stream and a crash-resumed build is sample-exact.
                rng=self.seed if self.seed is not None and checkpoint_path else self.rng,
                budget=budget,
                checkpoint_path=checkpoint_path,
                checkpoint_every=self.checkpoint_every or 256,
                trace=trace,
            )
        self._index = index
        self.stats.index_rebuilds += 1
        if index.resumed_from:
            self.stats.index_builds_resumed += 1
        if self.index_path is not None:
            self._index.save(self.index_path)
        return self._index

    def _checkpoint_path(self) -> Path:
        """Where mid-build HIMOR checkpoints live for this server."""
        assert self.index_path is not None
        return self.index_path.with_name(self.index_path.name + ".ckpt")

    def _guarded_lore(
        self,
        query: CODQuery,
        budget: ExecutionBudget,
        trace: "object | None" = None,
    ) -> LoreResult:
        """LORE behind the circuit breaker, memoized per (node, attribute).

        The chain is a deterministic function of (graph, hierarchy, node,
        attribute, weighting), so a cached hit — checked before the
        breaker — returns the same result a fresh run would. The cache is
        invalidated whenever the hierarchy changes (index adoption).
        """
        key = (query.node, query.attribute)
        cached = self._lore_cache.get(key)
        if cached is not None:
            return cached
        if not self.breaker.allow():
            raise CircuitOpenError("lore", self.breaker.retry_after())
        try:
            result = lore_chain(
                self.graph,
                self._ensure_hierarchy(budget, trace),
                query.node,
                query.attribute,
                weighting=self.weighting,
                linkage=self.linkage,
                weighted_graph=self._weighted(query.attribute),
                budget=budget,
                trace=trace,
            )
        except (DeadlineExceededError, BudgetExhaustedError):
            raise  # a spent budget is not LORE's fault
        except Exception:
            self.breaker.record_failure()
            raise
        self.breaker.record_success()
        self._lore_cache.put(key, result)
        return result

    def _weighted(self, attribute: int) -> AttributedGraph:
        return self._weighted_cache.get(attribute)

    def _restricted_arena(
        self,
        attribute: "int | None",
        floor_vertex: int,
        allowed: set[int],
        budget: ExecutionBudget,
        trace: "object | None" = None,
    ) -> "RRArena":
        """Pool induced on one hierarchy vertex's members, memoized.

        Keyed by ``(attribute, vertex)`` — *not* the vertex alone. Two
        attributes can share a floor vertex, and an entry's provenance is
        per-attribute: it may be a published shard attached for one
        attribute's manifest entry, and shard rotation invalidates one
        attribute's entries without touching another's
        (:meth:`adopt_shards`). Keying by vertex alone let a query for
        attribute B hit (and pin) an entry attached for attribute A —
        wrong attribution, wrong invalidation scope, and after a rotation
        a stale shard served under the colliding key.

        Build path prefers the fleet-published shard: if the manifest
        covers this attribute at this floor vertex for the current epoch
        and its ``allowed_sha`` matches our own allowed set, the shard
        segment is attached zero-copy instead of restricting the full
        arena locally. Any mismatch falls back to a local
        ``pool.restricted(allowed)`` — bit-identical by construction
        (:meth:`RRArena.restrict` is a pure function), so shards are a
        work-shifting optimization, never a correctness dependency.
        """
        assert self.pool is not None

        def build() -> "RRArena":
            budget.check()
            shard = self._attach_shard(attribute, floor_vertex, allowed)
            if shard is not None:
                return shard
            self.local_restricts += 1
            if self.metrics is not None:
                self.metrics.counter("pool.restricts").inc()
            restrict_cm = (
                trace.span("pool_restrict", vertex=int(floor_vertex))
                if trace is not None
                else nullcontext()
            )
            with restrict_cm:
                return self.pool.restricted(allowed)

        key = (attribute, int(floor_vertex))
        return self._restricted_cache.get_or_create(key, build)

    def _attach_shard(
        self,
        attribute: "int | None",
        floor_vertex: int,
        allowed: set[int],
    ) -> "RRArena | None":
        """Attach the published shard for ``(attribute, floor_vertex)``.

        Returns ``None`` (counting a miss or a reject) whenever the shard
        cannot be *proven* to equal a local restrict: no manifest entry,
        wrong floor vertex, stale epoch, ``allowed_sha`` mismatch, or the
        segment is gone. The caller then restricts locally.
        """
        if attribute is None or not self._shard_manifest:
            return None
        entry = self._shard_manifest.get(int(attribute))
        if entry is None or entry.get("vertex") != int(floor_vertex):
            self.shard_misses += 1
            if self.metrics is not None:
                self.metrics.counter("shm.shard.misses").inc()
            return None

        def reject() -> None:
            self.shard_rejects += 1
            if self.metrics is not None:
                self.metrics.counter("shm.shard.rejects").inc()

        if entry.get("epoch") != self.epoch:
            reject()
            return None
        if entry.get("allowed_sha") != allowed_fingerprint(allowed):
            reject()
            return None
        name = entry.get("name")
        arena = self._shard_arenas.get(name)
        if arena is None:
            try:
                arena = RRArena.attach(name, kind="rr-shard")
            except Exception:
                reject()
                return None
            meta = arena._shm.extra if arena._shm is not None else {}
            if (
                meta.get("attribute") != int(attribute)
                or meta.get("vertex") != int(floor_vertex)
                or meta.get("allowed_sha") != entry.get("allowed_sha")
            ):
                arena.detach()
                reject()
                return None
            self._shard_arenas[name] = arena
            self.shard_attaches += 1
            if self.metrics is not None:
                self.metrics.counter("shm.shard.attaches").inc()
        self.shard_hits += 1
        if self.metrics is not None:
            self.metrics.counter("shm.shard.hits").inc()
        return arena
