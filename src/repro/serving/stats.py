"""Health and load counters for one :class:`~repro.serving.CODServer`.

Everything is plain Python state exposed as a dict (:meth:`as_dict`), so
the CLI and tests can render or assert on a snapshot without touching the
server internals.
"""

from __future__ import annotations

import math


class ServerStats:
    """Mutable per-server counters plus a latency reservoir.

    Latencies are kept in full (one float per query); at the scales this
    reproduction serves that is cheaper than a sketch and keeps the
    percentiles exact.
    """

    def __init__(self) -> None:
        self.answered_per_rung: dict[str, int] = {}
        self.refused = 0
        self.retries = 0
        self.deadline_exceeded = 0
        self.budget_exhausted = 0
        self.breaker_short_circuits = 0
        self.index_rebuilds = 0
        self.index_load_failures = 0
        self.index_builds_resumed = 0
        self.query_errors = 0
        self._latencies: list[float] = []

    # ------------------------------------------------------------ recording

    @property
    def queries(self) -> int:
        """Total queries answered or refused."""
        return sum(self.answered_per_rung.values()) + self.refused

    def record_answer(self, rung: str, elapsed: float) -> None:
        """Count one answered query on ``rung``."""
        self.answered_per_rung[rung] = self.answered_per_rung.get(rung, 0) + 1
        self._latencies.append(float(elapsed))

    def record_refusal(self, elapsed: float) -> None:
        """Count one refused query."""
        self.refused += 1
        self._latencies.append(float(elapsed))

    # ------------------------------------------------------------ reporting

    def latency_percentile(self, fraction: float) -> float:
        """Exact latency percentile (nearest-rank); 0.0 with no queries."""
        if not self._latencies:
            return 0.0
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction!r}")
        ordered = sorted(self._latencies)
        rank = max(1, math.ceil(fraction * len(ordered)))
        return ordered[rank - 1]

    def as_dict(self, breaker_state: "str | None" = None) -> dict:
        """Snapshot for the CLI health report (JSON-serializable)."""
        latencies = self._latencies
        snapshot = {
            "queries": self.queries,
            "answered_per_rung": dict(self.answered_per_rung),
            "refused": self.refused,
            "retries": self.retries,
            "deadline_exceeded": self.deadline_exceeded,
            "budget_exhausted": self.budget_exhausted,
            "breaker_short_circuits": self.breaker_short_circuits,
            "index_rebuilds": self.index_rebuilds,
            "index_load_failures": self.index_load_failures,
            "index_builds_resumed": self.index_builds_resumed,
            "query_errors": self.query_errors,
            "latency": {
                "p50_s": self.latency_percentile(0.50),
                "p95_s": self.latency_percentile(0.95),
                "mean_s": sum(latencies) / len(latencies) if latencies else 0.0,
                "max_s": max(latencies) if latencies else 0.0,
            },
        }
        if breaker_state is not None:
            snapshot["breaker_state"] = breaker_state
        return snapshot
