"""Health and load counters for one :class:`~repro.serving.CODServer`.

Everything is plain Python state exposed as a dict (:meth:`as_dict`), so
the CLI and tests can render or assert on a snapshot without touching the
server internals.
"""

from __future__ import annotations

from repro.obs.registry import Histogram

#: Latency reservoir bound: memory stays O(1) in the query count while
#: percentiles remain exact for the first ``LATENCY_CAPACITY`` queries
#: and unbiased estimates afterwards.
LATENCY_CAPACITY = 2048


class ServerStats:
    """Mutable per-server counters plus a bounded latency reservoir.

    Latencies feed a fixed-capacity :class:`~repro.obs.registry.Histogram`
    (streaming count/mean/max + uniform reservoir), so a long-running
    server's memory does not grow with the query count. The reservoir's
    private RNG never touches any model generator.
    """

    def __init__(self) -> None:
        self.answered_per_rung: dict[str, int] = {}
        self.refused = 0
        self.retries = 0
        self.deadline_exceeded = 0
        self.budget_exhausted = 0
        self.breaker_short_circuits = 0
        self.index_rebuilds = 0
        self.index_load_failures = 0
        self.index_builds_resumed = 0
        self.query_errors = 0
        self._latency = Histogram(capacity=LATENCY_CAPACITY, seed=0)

    # ------------------------------------------------------------ recording

    @property
    def queries(self) -> int:
        """Total queries answered or refused."""
        return sum(self.answered_per_rung.values()) + self.refused

    def record_answer(self, rung: str, elapsed: float) -> None:
        """Count one answered query on ``rung``."""
        self.answered_per_rung[rung] = self.answered_per_rung.get(rung, 0) + 1
        self._latency.record(float(elapsed))

    def record_refusal(self, elapsed: float) -> None:
        """Count one refused query."""
        self.refused += 1
        self._latency.record(float(elapsed))

    # ------------------------------------------------------------ reporting

    def latency_percentile(self, fraction: float) -> float:
        """Nearest-rank latency percentile; 0.0 with no queries.

        An out-of-range ``fraction`` raises regardless of whether any
        latency has been recorded — a bad argument is the caller's bug,
        not a property of the data.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction!r}")
        return self._latency.percentile(fraction)

    def as_dict(self, breaker_state: "str | None" = None) -> dict:
        """Snapshot for the CLI health report (JSON-serializable)."""
        # One sort serves both percentiles; mean and max are streaming.
        p50, p95 = self._latency.percentiles((0.50, 0.95))
        snapshot = {
            "queries": self.queries,
            "answered_per_rung": dict(self.answered_per_rung),
            "refused": self.refused,
            "retries": self.retries,
            "deadline_exceeded": self.deadline_exceeded,
            "budget_exhausted": self.budget_exhausted,
            "breaker_short_circuits": self.breaker_short_circuits,
            "index_rebuilds": self.index_rebuilds,
            "index_load_failures": self.index_load_failures,
            "index_builds_resumed": self.index_builds_resumed,
            "query_errors": self.query_errors,
            "latency": {
                "p50_s": p50,
                "p95_s": p95,
                "mean_s": self._latency.mean,
                "max_s": self._latency.max_value or 0.0,
            },
        }
        if breaker_state is not None:
            snapshot["breaker_state"] = breaker_state
        return snapshot
