"""Per-query execution budgets, cooperative checkpoints, and backoff.

An :class:`ExecutionBudget` bounds one query's work along two axes: a
wall-clock deadline and an RR-sample budget. The long-running primitives
(:func:`repro.influence.rr.sample_rr_graphs`,
:func:`repro.core.compressed.compressed_cod`,
:func:`repro.core.lore.lore_chain`, HIMOR construction) accept an optional
``budget`` and call :meth:`check` / :meth:`tick` at natural checkpoints —
once per RR graph drawn or traversed — so a blown budget surfaces as
:class:`~repro.errors.DeadlineExceededError` or
:class:`~repro.errors.BudgetExhaustedError` within one sample's worth of
work, never as an unbounded hang.

The budget is deliberately duck-typed at the call sites (no imports from
``repro.serving`` in ``core``/``influence``): anything exposing
``check()``/``tick()`` works.
"""

from __future__ import annotations

import time
from typing import Callable

import numpy as np

from repro.errors import BudgetExhaustedError, DeadlineExceededError


class BackoffPolicy:
    """Capped exponential backoff with bounded, deterministic jitter.

    Attempt ``i`` (0-based) waits ``min(cap_s, base_s * factor**i)``
    scaled by a jitter factor drawn uniformly from
    ``[1 - jitter, 1 + jitter]`` out of a seeded private generator — so a
    herd of restarting workers decorrelates, yet a failing schedule
    replays exactly under the same seed.

    Used for query-retry backoff inside :class:`~repro.serving.CODServer`
    (``jitter=0`` there, preserving the exact legacy delays) and for
    worker restart backoff in the supervisor.
    """

    def __init__(
        self,
        base_s: float = 0.05,
        factor: float = 2.0,
        cap_s: float = 5.0,
        jitter: float = 0.1,
        seed: "int | None" = 0,
    ) -> None:
        if base_s < 0:
            raise ValueError(f"base_s must be non-negative, got {base_s!r}")
        if factor < 1.0:
            raise ValueError(f"factor must be >= 1, got {factor!r}")
        if cap_s < 0:
            raise ValueError(f"cap_s must be non-negative, got {cap_s!r}")
        if not 0.0 <= jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {jitter!r}")
        self.base_s = float(base_s)
        self.factor = float(factor)
        self.cap_s = float(cap_s)
        self.jitter = float(jitter)
        self._rng = np.random.default_rng(seed)

    def delay(self, attempt: int) -> float:
        """Backoff before retry ``attempt`` (0-based), jittered and capped.

        The returned delay always lies in
        ``[undithered * (1 - jitter), undithered * (1 + jitter)]`` where
        ``undithered = min(cap_s, base_s * factor**attempt)``.
        """
        if attempt < 0:
            raise ValueError(f"attempt must be non-negative, got {attempt!r}")
        undithered = min(self.cap_s, self.base_s * self.factor**attempt)
        if self.jitter == 0.0:
            return undithered
        scale = 1.0 + self.jitter * (2.0 * float(self._rng.random()) - 1.0)
        return undithered * scale

    def __repr__(self) -> str:
        return (
            f"BackoffPolicy(base_s={self.base_s}, factor={self.factor}, "
            f"cap_s={self.cap_s}, jitter={self.jitter})"
        )


class ExecutionBudget:
    """Wall-clock + RR-sample budget shared by every rung of one query.

    Parameters
    ----------
    deadline_s:
        Wall-clock allowance in seconds from construction; ``None``
        disables the deadline.
    max_samples:
        Total RR graphs the query may draw across all rungs and retries;
        ``None`` disables the cap.
    clock:
        Monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        deadline_s: "float | None" = None,
        max_samples: "int | None" = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if deadline_s is not None and deadline_s < 0:
            raise ValueError(f"deadline_s must be non-negative, got {deadline_s!r}")
        if max_samples is not None and max_samples < 0:
            raise ValueError(f"max_samples must be non-negative, got {max_samples!r}")
        self.deadline_s = deadline_s
        self.max_samples = max_samples
        self.samples_drawn = 0
        self._clock = clock
        self._start = clock()

    # ------------------------------------------------------------- queries

    def elapsed(self) -> float:
        """Seconds since the budget was created."""
        return self._clock() - self._start

    def remaining_seconds(self) -> "float | None":
        """Seconds left before the deadline (``None`` when unbounded)."""
        if self.deadline_s is None:
            return None
        return max(0.0, self.deadline_s - self.elapsed())

    def remaining_samples(self) -> "int | None":
        """RR draws left in the sample budget (``None`` when unbounded)."""
        if self.max_samples is None:
            return None
        return max(0, self.max_samples - self.samples_drawn)

    @property
    def exhausted(self) -> bool:
        """Whether either axis of the budget is spent."""
        if self.deadline_s is not None and self.elapsed() > self.deadline_s:
            return True
        if self.max_samples is not None and self.samples_drawn >= self.max_samples:
            return True
        return False

    # --------------------------------------------------------- checkpoints

    def check(self) -> None:
        """Deadline checkpoint; raises once the wall clock runs out."""
        if self.deadline_s is None:
            return
        elapsed = self.elapsed()
        if elapsed > self.deadline_s:
            raise DeadlineExceededError(elapsed, self.deadline_s)

    def tick(self, n: int = 1) -> None:
        """Account for ``n`` RR draws, then run the deadline checkpoint."""
        self.samples_drawn += n
        if self.max_samples is not None and self.samples_drawn > self.max_samples:
            raise BudgetExhaustedError(self.samples_drawn, self.max_samples)
        self.check()

    def clamp_samples(self, requested: int) -> int:
        """Shrink a planned draw to what the sample budget still allows.

        Raises :class:`BudgetExhaustedError` when nothing is left — a
        zero-sample evaluation would silently answer from no evidence.
        """
        remaining = self.remaining_samples()
        if remaining is None:
            return requested
        if remaining == 0 and requested > 0:
            raise BudgetExhaustedError(self.samples_drawn, self.max_samples or 0)
        return min(requested, remaining)

    def __repr__(self) -> str:
        return (
            f"ExecutionBudget(deadline_s={self.deadline_s}, "
            f"max_samples={self.max_samples}, drawn={self.samples_drawn}, "
            f"elapsed={self.elapsed():.3f}s)"
        )
