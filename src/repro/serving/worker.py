"""Worker-side protocol for supervised multi-process serving.

One worker = one child process running a private
:class:`~repro.serving.CODServer` over the shared graph. The supervisor
talks to it over two queues:

* a per-worker **task queue** (supervisor → worker) carrying
  :class:`Task` messages and a ``None`` shutdown sentinel, and
* a shared **event queue** (workers → supervisor) carrying ``ready``,
  ``heartbeat``, and ``result`` tuples.

Answers cross the process boundary as plain-dict *wire* forms
(:func:`encode_answer` / :func:`decode_answer`) rather than pickled
:class:`~repro.serving.ServedAnswer` objects: exceptions with non-trivial
constructors do not round-trip through pickle, and the supervisor already
holds the query object — only the outcome needs to travel.

A heartbeat thread beats every ``heartbeat_interval_s`` regardless of
what the main thread is doing, so the supervisor can tell a *crashed*
worker (process gone) from a *wedged* one (beats arrive but the
dispatched task never returns — detected by deadline overrun) from a
*sick* one (alive but silent — stale heartbeat). Each beat carries a
per-incarnation **sequence number** rather than a timestamp: a child
process's ``time.monotonic()`` is not guaranteed to share an epoch with
the supervisor's, so freshness is judged by monotone sequence on the
supervisor's own clock (a beat already seen never re-freshens the
worker). Chaos plans from the
supervisor's config are armed at bootstrap via
:func:`repro.utils.faults.arm_spec`, and a scripted per-task ``chaos``
field supports the deterministic kill/wedge schedules the chaos suite
drives.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.core.problem import CODQuery
from repro.errors import ServingError
from repro.serving.server import REFUSED, CODServer, ServedAnswer
from repro.utils import faults

if TYPE_CHECKING:  # pragma: no cover
    from repro.graph.graph import AttributedGraph

#: Event-queue message tags (workers → supervisor).
MSG_READY = "ready"
MSG_HEARTBEAT = "heartbeat"
MSG_RESULT = "result"
MSG_EPOCH = "epoch"

#: Scripted per-task chaos actions a worker executes on receipt.
CHAOS_KILL = "kill"
CHAOS_WEDGE = "wedge"


@dataclass
class Task:
    """One dispatched query (supervisor → worker).

    ``seq`` is the admission sequence number — the supervisor's key for
    exactly-once terminal-answer bookkeeping. ``attempt`` is 0 on first
    dispatch and 1 on the single requeue a crashed query is entitled to.
    ``chaos`` carries a scripted action (:data:`CHAOS_KILL` /
    :data:`CHAOS_WEDGE`) the worker executes *instead of* answering —
    the deterministic fault schedule of the chaos suite.
    """

    seq: int
    node: int
    attribute: "int | None"
    k: int
    deadline_s: "float | None" = None
    sample_budget: "int | None" = None
    attempt: int = 0
    chaos: "str | None" = None
    wedge_s: float = 3600.0


@dataclass
class UpdateDirective:
    """One epoch transition (supervisor → worker, on the task queue).

    Rides the same FIFO queue as :class:`Task`, which is the safe-point
    mechanism: a directive enqueued between two tasks is applied between
    them, so every admitted query is answered against exactly one epoch
    with no barrier or pause.

    ``epoch_from``/``epoch_to`` bracket the transition. A worker whose
    server is already at (or past) ``epoch_to`` — a respawn bootstrapped
    from the post-update graph whose queue still holds the directive's
    duplicate — skips it instead of double-applying; a worker at any
    *other* epoch than ``epoch_from`` exits so the supervisor respawns it
    straight into the fleet's current epoch.
    """

    epoch_from: int
    epoch_to: int
    updates: tuple = ()
    #: Shared-pool rotation: ``{"graph": <segment>, "arena": <segment>}``
    #: names of the supervisor-published post-update state, plus an
    #: optional ``"shards"`` manifest of per-attribute restricted-shard
    #: segments rotated for the new epoch. A worker that receives this
    #: attaches both and adopts them instead of re-applying the batch
    #: locally (see :meth:`CODServer.adopt_shared`).
    shm: "dict | None" = None


@dataclass
class ShardDirective:
    """A restricted-shard manifest broadcast (supervisor → worker).

    Sent when the supervisor publishes (or rebuilds) per-attribute
    restricted-arena shards between epochs. Rides the task FIFO like
    :class:`UpdateDirective`, so adoption happens at a safe point
    between queries; a worker that dies before processing it gets the
    manifest at respawn via :attr:`WorkerConfig.shm_shards` instead.
    Adoption is idempotent and epoch-checked at *use* time (stale
    entries are rejected per attach, never served).
    """

    manifest: dict


@dataclass
class WorkerConfig:
    """Everything a worker child process needs to bootstrap."""

    worker_id: int
    incarnation: int
    #: The serving graph — pickled into the child when shared memory is
    #: off; ``None`` under a shared pool, where ``shm_graph`` names the
    #: segment the worker attaches instead.
    graph: "AttributedGraph | None"
    server_options: dict = field(default_factory=dict)
    index_path: "str | None" = None
    checkpoint_every: int = 64
    heartbeat_interval_s: float = 0.05
    warm_index: bool = False
    chaos_specs: "list[dict]" = field(default_factory=list)
    kill_exit_code: int = 9
    #: Give the worker's server a metrics registry (stage profiling); the
    #: snapshot rides every result's health report for the fleet rollup.
    profile: bool = False
    #: Attach a per-worker :class:`~repro.core.pool.SharedSamplePool`
    #: (seeded from ``server_options``) so compressed evaluations share
    #: one RR arena across this worker's queries instead of re-sampling.
    #: Pairs with the supervisor's attribute-affinity dispatch: same
    #: attribute → same worker → hot caches over the same pool.
    use_pool: bool = False
    #: Draw the pool with per-sample seeds (requires an integer ``seed``
    #: in ``server_options``) so graph updates repair it incrementally.
    pool_seeded: bool = False
    #: The epoch of ``graph`` at spawn time. A respawned worker is handed
    #: the supervisor's *current* graph, so it starts at the fleet epoch
    #: without replaying (or double-applying) any update batch.
    epoch: int = 0
    #: Shared-memory segment holding the serving graph (supervisor-owned).
    #: When set the worker attaches it read-only instead of unpickling a
    #: private copy — zero-copy bootstrap.
    shm_graph: "str | None" = None
    #: Shared-memory segment holding the materialized RR arena. When set
    #: the worker's pool attaches it instead of resampling, so N workers
    #: share one arena's physical pages.
    shm_arena: "str | None" = None
    #: Per-attribute restricted-shard manifest current at spawn time
    #: (attribute → segment entry; see :meth:`CODServer.adopt_shards`).
    #: A respawned worker adopts it at boot so it never misses a
    #: :class:`ShardDirective` that predated its incarnation.
    shm_shards: "dict | None" = None


def encode_answer(answer: ServedAnswer) -> dict:
    """Flatten a :class:`ServedAnswer` into a picklable wire dict."""
    return {
        "members": None if answer.members is None
        else [int(v) for v in answer.members],
        "rung": answer.rung,
        "chain_length": int(answer.chain_length),
        "elapsed": float(answer.elapsed),
        "retries": int(answer.retries),
        "notes": list(answer.notes),
        "error": None if answer.error is None
        else f"{type(answer.error).__name__}: {answer.error}",
        "epoch": answer.epoch,
    }


def decode_answer(wire: dict, query: CODQuery) -> ServedAnswer:
    """Rebuild a :class:`ServedAnswer` around the supervisor's query object.

    The worker-side exception (if any) comes back as a
    :class:`~repro.errors.ServingError` carrying the original type name
    and message — the concrete class does not survive the wire, the
    diagnosis does.
    """
    members = wire["members"]
    return ServedAnswer(
        query=query,
        members=None if members is None else np.asarray(members, dtype=np.int64),
        rung=wire["rung"],
        chain_length=wire["chain_length"],
        elapsed=wire["elapsed"],
        retries=wire["retries"],
        notes=list(wire["notes"]),
        error=None if wire["error"] is None else ServingError(wire["error"]),
        epoch=wire.get("epoch"),
    )


def refused_wire(
    error: Exception,
    note: str,
    elapsed: float = 0.0,
    epoch: "int | None" = None,
) -> dict:
    """Wire form of an explicit refusal manufactured outside the ladder."""
    return {
        "members": None,
        "rung": REFUSED,
        "chain_length": 0,
        "elapsed": float(elapsed),
        "retries": 0,
        "notes": [note],
        "error": f"{type(error).__name__}: {error}",
        "epoch": epoch,
    }


def worker_main(config: WorkerConfig, task_queue, event_queue) -> None:
    """Child-process entry point: serve tasks until the ``None`` sentinel.

    Never raises: per-task failures become refused wire answers, and the
    only abrupt exits are the scripted/armed chaos kills the supervisor
    asked for.
    """
    faults.reset()  # do not inherit the parent test process's armed plans
    for spec in config.chaos_specs:
        faults.arm_spec(dict(spec))

    stop = threading.Event()

    def beat() -> None:
        # Beats are numbered, not timestamped: time.monotonic() epochs are
        # not comparable across processes, a monotone per-incarnation
        # sequence is. The supervisor stamps arrival on its own clock
        # (bounded by when it last saw this queue empty) and ignores any
        # beat whose sequence it has already seen.
        beat_seq = 0
        while not stop.wait(config.heartbeat_interval_s):
            faults.maybe_fail("worker_heartbeat")
            beat_seq += 1
            event_queue.put(
                (MSG_HEARTBEAT, config.worker_id, config.incarnation, beat_seq)
            )

    heartbeat = threading.Thread(
        target=beat, name=f"worker{config.worker_id}-heartbeat", daemon=True
    )
    heartbeat.start()

    metrics = None
    if config.profile:
        from repro.obs import MetricsRegistry

        metrics = MetricsRegistry()
    attached: "list[str]" = []
    graph = config.graph
    if config.shm_graph is not None:
        from repro.graph.graph import AttributedGraph

        # A missing/corrupt segment means the supervisor's published state
        # is gone (or we are a stale incarnation racing a rotation); exit
        # so the respawn is handed the current segment names.
        try:
            graph = AttributedGraph.attach(config.shm_graph)
        except Exception:  # noqa: BLE001 — see above: respawn is the repair
            os._exit(config.kill_exit_code)
        attached.append(config.shm_graph)
    pool = None
    if config.use_pool:
        from repro.core.pool import SharedSamplePool

        pool_options = dict(
            theta=int(config.server_options.get("theta", 10)),
            seed=config.server_options.get("seed"),
            per_sample_seeds=config.pool_seeded,
            # The server option doubles as the pool's sampler choice so one
            # flag keeps a worker's fresh draws and pooled draws consistent.
            fast=bool(config.server_options.get("fast_sampling", False)),
        )
        if config.shm_arena is not None:
            # Attach the supervisor's arena; on any failure fall back to a
            # private pool — bit-identical anyway (same graph/seed/theta),
            # just without the page sharing.
            try:
                pool = SharedSamplePool.attach(
                    graph, config.shm_arena, **pool_options
                )
                attached.append(config.shm_arena)
            except Exception:  # noqa: BLE001 — degraded start beats no start
                pool = None
        if pool is None:
            pool = SharedSamplePool(graph, **pool_options)
    server = CODServer(
        graph,
        index_path=config.index_path,
        checkpoint_every=config.checkpoint_every,
        metrics=metrics,
        pool=pool,
        **config.server_options,
    )
    server.epoch = config.epoch
    if config.shm_shards:
        server.adopt_shards(config.shm_shards)
    if config.warm_index:
        # Build (or resume) the HIMOR index before accepting traffic. A
        # failure here is not fatal: the ladder retries/degrades per query.
        try:
            server.warm()
        except Exception:  # noqa: BLE001 — degraded start beats no start
            pass
    event_queue.put(
        (MSG_READY, config.worker_id, config.incarnation,
         {"attached": attached})
    )

    try:
        while True:
            task = task_queue.get()
            if task is None:
                break
            if isinstance(task, ShardDirective):
                # Manifest adoption can never sink a worker: a bad entry
                # is rejected at attach time, falling back to local
                # restricts (bit-identical), so failures here are moot.
                server.adopt_shards(task.manifest)
                continue
            if isinstance(task, UpdateDirective):
                _apply_directive(server, task, config, event_queue)
                continue
            event_queue.put(
                (MSG_RESULT, config.worker_id, config.incarnation, task.seq,
                 _serve_task(server, task, config), server.health())
            )
    finally:
        stop.set()


def _apply_directive(
    server: CODServer, directive: UpdateDirective, config: WorkerConfig,
    event_queue,
) -> None:
    """Move the server to the directive's epoch, or die trying.

    Skipping (already at/past the target) covers a respawned worker whose
    fresh graph already bakes the batch in. Any other epoch mismatch, or
    a failed apply, exits the process: the supervisor's respawn hands the
    replacement the current graph + epoch, so suicide *is* the repair —
    a worker never keeps serving a stale epoch and never double-applies.
    """
    if directive.epoch_to <= server.epoch:
        event_queue.put(
            (MSG_EPOCH, config.worker_id, config.incarnation, server.epoch,
             {"epoch": server.epoch, "skipped": True})
        )
        return
    if server.epoch != directive.epoch_from:
        os._exit(config.kill_exit_code)
    try:
        if directive.shm is not None:
            # Shared-pool rotation: attach the supervisor-published
            # post-update graph + repaired arena and adopt them instead of
            # re-applying the batch locally.
            from repro.graph.graph import AttributedGraph
            from repro.influence.arena import RRArena

            new_graph = AttributedGraph.attach(directive.shm["graph"])
            arena = RRArena.attach(directive.shm["arena"])
            report = server.adopt_shared(
                new_graph,
                arena,
                epoch=directive.epoch_to,
                n_updates=len(directive.updates),
                shards=directive.shm.get("shards"),
            )
        else:
            report = server.apply_updates(
                directive.updates, epoch=directive.epoch_to
            )
    except Exception:  # noqa: BLE001 — see docstring: respawn is the repair
        os._exit(config.kill_exit_code)
    event_queue.put(
        (MSG_EPOCH, config.worker_id, config.incarnation, server.epoch, report)
    )


def _serve_task(server: CODServer, task: Task, config: WorkerConfig) -> dict:
    """Answer one task, translating every failure into a refusal wire."""
    if task.chaos == CHAOS_KILL:
        os._exit(config.kill_exit_code)
    if task.chaos == CHAOS_WEDGE:
        time.sleep(task.wedge_s)
    try:
        faults.maybe_fail("worker_task")
        query = CODQuery(task.node, task.attribute, task.k)
        answer = server.answer(
            query, deadline_s=task.deadline_s, sample_budget=task.sample_budget
        )
        return encode_answer(answer)
    except Exception as exc:  # noqa: BLE001 — a query must never sink a worker
        return refused_wire(
            exc, f"worker: {type(exc).__name__}: {exc}", epoch=server.epoch
        )
