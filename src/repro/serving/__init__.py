"""Fault-tolerant serving layer over the COD pipelines.

:class:`CODServer` answers queries under explicit execution budgets
(wall-clock deadline + RR-sample budget) and degrades gracefully through
the ladder CODL → CODL- → CODU → ``Refused`` instead of raising. See
``docs/API.md`` ("Serving & fault tolerance") for the full contract.
"""

from repro.serving.breaker import CircuitBreaker
from repro.serving.budget import ExecutionBudget
from repro.serving.server import CODServer, ServedAnswer
from repro.serving.stats import ServerStats

__all__ = [
    "CODServer",
    "CircuitBreaker",
    "ExecutionBudget",
    "ServedAnswer",
    "ServerStats",
]
