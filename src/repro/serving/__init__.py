"""Fault-tolerant serving layer over the COD pipelines.

:class:`CODServer` answers queries under explicit execution budgets
(wall-clock deadline + RR-sample budget) and degrades gracefully through
the ladder CODL → CODL- → CODU → ``Refused`` instead of raising.

:class:`ServingSupervisor` scales that to N server workers in child
processes with admission control (bounded queue, priority-aware load
shedding), crash/wedge detection, capped-backoff restarts, and an
exactly-one-terminal-answer guarantee per admitted query.

:class:`BatchPlanner` groups an admitted workload by query attribute and
shares per-attribute structures (and, with a
:class:`~repro.core.pool.SharedSamplePool`, one RR-sample arena) across
the group while staying bit-identical to sequential answers. See
``docs/API.md`` ("Serving & fault tolerance", "Supervision &
operations", and "Batched serving") for the full contract.
"""

from repro.serving.breaker import CircuitBreaker
from repro.serving.budget import BackoffPolicy, ExecutionBudget
from repro.serving.durability import (
    DurableStateStore,
    RecoveryManager,
    RecoveryResult,
    SnapshotStore,
    WriteAheadLog,
)
from repro.serving.planner import BatchPlan, BatchPlanner, QueryGroup
from repro.serving.queue import (
    PRIORITY_BACKGROUND,
    PRIORITY_BATCH,
    PRIORITY_INTERACTIVE,
    Admission,
    AdmissionQueue,
)
from repro.serving.server import CODServer, ServedAnswer
from repro.serving.stats import ServerStats
from repro.serving.supervisor import ChaosSchedule, ServingSupervisor
from repro.serving.worker import UpdateDirective

__all__ = [
    "Admission",
    "AdmissionQueue",
    "BackoffPolicy",
    "BatchPlan",
    "BatchPlanner",
    "CODServer",
    "QueryGroup",
    "ChaosSchedule",
    "CircuitBreaker",
    "DurableStateStore",
    "ExecutionBudget",
    "RecoveryManager",
    "RecoveryResult",
    "SnapshotStore",
    "WriteAheadLog",
    "PRIORITY_BACKGROUND",
    "PRIORITY_BATCH",
    "PRIORITY_INTERACTIVE",
    "ServedAnswer",
    "ServerStats",
    "ServingSupervisor",
    "UpdateDirective",
]
