"""Crash-consistent state store: WAL + epoch snapshots + recovery.

The serving layer's unit of mutation is the epoch — one
:class:`~repro.dynamic.log.UpdateBatch` applied atomically. This module
makes epochs *durable*:

* :class:`WriteAheadLog` — an append-only JSONL log with CRC-framed
  records, fsynced (file **and** parent directory) before an epoch is
  acknowledged. On open it detects a **torn tail** — the partial last
  record a power cut leaves behind — and truncates exactly the
  unacknowledged suffix; a CRC failure *inside* the acknowledged prefix
  is real corruption and raises :class:`~repro.errors.WalError` instead.
* :class:`SnapshotStore` — periodic full-state snapshots (graph topology
  + attribute tables + optional manifests) written through the
  checksummed atomic envelope of :mod:`repro.utils.persist`. Corrupt
  snapshots are **quarantined** (renamed ``*.quarantine``), never
  deleted, so no recovery decision ever destroys evidence.
* :class:`RecoveryManager` — on startup picks the newest valid snapshot,
  replays the WAL suffix through the per-epoch replay machinery, and
  proves the result against the ``graph_sha`` each WAL record carries
  (:func:`~repro.core.himor.graph_checksum`) before anything serves.
* :class:`DurableStateStore` — the facade the server/supervisor wire in:
  ``recover()`` once at cold start, ``append()`` per epoch (ack *after*
  fsync), ``maybe_snapshot()`` on a cadence, with snapshot-gated log
  compaction lagged one snapshot behind so the newest snapshot corrupting
  never strands an epoch.

Durability contract, stated once: an epoch is **acknowledged** exactly
when ``append`` returns. A crash before that point may lose the epoch
(the caller never observed it); a crash after must not. Compaction only
discards WAL records already covered by the *oldest retained* snapshot,
so every acknowledged epoch is reachable from some valid snapshot even
if the newest one is damaged.

On-disk layout under a state dir::

    state/
      wal.jsonl                    # CRC-framed records, one per epoch
      snapshots/epoch-00000012.json
      snapshots/epoch-00000008.json.quarantine   # corrupt, kept as evidence

WAL record format (one JSON object per line)::

    {"epoch": 12, "batch": {...UpdateBatch wire...},
     "graph_sha": "<edge-set checksum after applying>", "crc32": "1a2b3c4d"}

``crc32`` frames the rest of the record (CRC-32 of the canonical JSON of
the record minus the ``crc32`` key), so a torn write is detected even
when the partial line happens to be valid JSON. ``graph_sha`` is the
edge-set checksum — attribute-only epochs leave it unchanged, so the
replay proof is exact for topology and best-effort for attributes (the
snapshot envelope's SHA-256 covers attributes in full).

A compacted WAL starts with a **floor marker** ``{"floor": E, "crc32":
...}`` recording that epochs ``<= E`` were dropped; contiguity is then
enforced from ``E + 1``.
"""

from __future__ import annotations

import json
import os
import re
import tempfile
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

from repro.core.himor import graph_checksum
from repro.dynamic.log import UpdateBatch
from repro.dynamic.updates import apply_updates
from repro.errors import PersistError, RecoveryError, WalError
from repro.graph.graph import AttributedGraph
from repro.utils import faults
from repro.utils.persist import (
    atomic_write_json,
    clean_stale_tmp,
    fsync_dir,
    load_versioned_json,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs import MetricsRegistry

#: Envelope ``kind`` of snapshot files (verified on load).
SNAPSHOT_KIND = "cod-state-snapshot"

#: Default WAL file name inside a state directory.
WAL_NAME = "wal.jsonl"

#: Snapshot subdirectory name inside a state directory.
SNAPSHOT_DIR = "snapshots"

_SNAPSHOT_RE = re.compile(r"^epoch-(\d{8})\.json$")


def _crc_frame(body: dict) -> str:
    """CRC-32 (hex) over the canonical JSON of ``body`` minus ``crc32``."""
    canon = json.dumps(
        {k: v for k, v in body.items() if k != "crc32"},
        sort_keys=True, separators=(",", ":"),
    )
    return f"{zlib.crc32(canon.encode('utf-8')) & 0xFFFFFFFF:08x}"


def graph_payload(graph: AttributedGraph) -> dict:
    """JSON-able full-state form of a graph (topology + attributes)."""
    return {
        "n": graph.n,
        "edges": [[int(u), int(v)] for u, v in graph.edges()],
        "attributes": {
            str(v): sorted(int(a) for a in graph.attributes_of(v))
            for v in range(graph.n)
            if graph.attributes_of(v)
        },
    }


def graph_from_payload(payload: dict) -> AttributedGraph:
    """Rebuild a graph from :func:`graph_payload` output."""
    n = int(payload["n"])
    edges = [(int(u), int(v)) for u, v in payload["edges"]]
    raw_attrs = payload.get("attributes", {})
    dense = [raw_attrs.get(str(v), []) for v in range(n)]
    return AttributedGraph(n, edges, attributes=dense)


# --------------------------------------------------------------------- WAL


@dataclass(frozen=True)
class WalRecord:
    """One acknowledged epoch as parsed back from the log."""

    epoch: int
    batch: UpdateBatch
    graph_sha: "str | None" = None


class WriteAheadLog:
    """CRC-framed, fsync-on-append epoch log with torn-tail repair.

    Opening the log scans it completely: the longest valid prefix is
    kept, a torn tail (trailing unparseable/CRC-failing lines with no
    valid record after them) is truncated in place, and any damage
    *inside* the prefix — a bad line followed by a good one, or a
    contiguity gap — raises :class:`~repro.errors.WalError` because an
    acknowledged record can only be missing through real corruption.
    """

    def __init__(self, path: "str | Path",
                 metrics: "MetricsRegistry | None" = None) -> None:
        self.path = Path(path)
        self.metrics = metrics
        self.floor = 0
        self.records: list[WalRecord] = []
        self.truncated_records = 0
        created = not self.path.exists()
        if not created:
            self._scan_and_repair()
        self._fh = open(self.path, "ab")
        if created:
            # The file's directory entry must survive a crash too.
            fsync_dir(self.path.parent or ".")
        if self.metrics is not None and self.truncated_records:
            self.metrics.counter("wal.truncated_records").inc(
                self.truncated_records
            )

    # ------------------------------------------------------------- open/scan

    def _scan_and_repair(self) -> None:
        raw = self.path.read_bytes()
        offset = 0
        bad_offset: "int | None" = None
        bad_count = 0
        bad_reason = ""
        for lineno, line in enumerate(raw.split(b"\n"), start=1):
            line_start = offset
            offset += len(line) + 1
            if not line.strip():
                continue
            record, reason = self._parse_line(line, lineno)
            if record is None:
                if bad_offset is None:
                    bad_offset = line_start
                    bad_reason = reason
                bad_count += 1
                continue
            if bad_offset is not None:
                # A CRC-valid record after a bad line: the damage is
                # inside the acknowledged prefix, not a torn tail.
                raise WalError(
                    f"{self.path}: corrupt record inside acknowledged "
                    f"prefix ({bad_reason}); a valid record follows at "
                    f"line {lineno} — refusing to truncate acknowledged "
                    f"state"
                )
            if record == "floor":
                continue
            expected = self.epoch + 1
            if record.epoch != expected:
                raise WalError(
                    f"{self.path}:{lineno}: epoch {record.epoch} breaks "
                    f"contiguity (expected {expected})"
                )
            self.records.append(record)
        if bad_offset is not None:
            # Torn tail: truncate exactly the unacknowledged suffix.
            with open(self.path, "r+b") as fh:
                fh.truncate(bad_offset)
                fh.flush()
                os.fsync(fh.fileno())
            self.truncated_records = bad_count

    def _parse_line(self, line: bytes, lineno: int):
        """Parse one WAL line → ``(record_or_None, reason)``.

        Structural errors in a CRC-*valid* record are not torn writes —
        the frame proves the writer completed the line — so they raise.
        Contiguity and bad-prefix ordering are the scan loop's job.
        """
        try:
            body = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return None, f"line {lineno}: invalid JSON ({exc})"
        if not isinstance(body, dict) or "crc32" not in body:
            return None, f"line {lineno}: not a CRC-framed record"
        if _crc_frame(body) != body["crc32"]:
            return None, f"line {lineno}: CRC mismatch"
        if "floor" in body:
            if lineno != 1 or self.records:
                raise WalError(
                    f"{self.path}:{lineno}: floor marker after records"
                )
            self.floor = int(body["floor"])
            return "floor", ""
        try:
            epoch = int(body["epoch"])
            batch = UpdateBatch.from_wire(body["batch"])
        except Exception as exc:
            raise WalError(
                f"{self.path}:{lineno}: CRC-valid record is malformed: {exc}"
            ) from exc
        record = WalRecord(epoch=epoch, batch=batch,
                           graph_sha=body.get("graph_sha"))
        return record, ""

    # ---------------------------------------------------------------- state

    @property
    def epoch(self) -> int:
        """The last acknowledged epoch (``floor`` when the log is empty)."""
        return self.records[-1].epoch if self.records else self.floor

    def __len__(self) -> int:
        return len(self.records)

    # --------------------------------------------------------------- append

    def append(self, batch: UpdateBatch, graph_sha: "str | None" = None) -> int:
        """Durably append one epoch; the returned epoch is *acknowledged*.

        Ordering is write → flush → fsync → ack: when this returns, the
        record survives power loss. Any failure along the way raises
        :class:`~repro.errors.WalError` and the epoch was never
        acknowledged (a torn partial line is repaired on next open).
        """
        epoch = self.epoch + 1
        body: dict = {"epoch": epoch, "batch": batch.to_wire()}
        if graph_sha is not None:
            body["graph_sha"] = graph_sha
        body["crc32"] = _crc_frame(body)
        line = (json.dumps(body, sort_keys=True) + "\n").encode("utf-8")
        tail = self._fh.tell()
        try:
            self._fh.write(line)
            faults.maybe_fail("wal_append")
            self._fh.flush()
            faults.maybe_fail("wal_fsync")
            os.fsync(self._fh.fileno())
        except BaseException as exc:
            # The epoch was never acknowledged: scrub the partial write so
            # this handle cannot leak it later (a later flush would append
            # a duplicate-epoch line) — crashes are repaired on reopen.
            try:
                self._fh.flush()
            except OSError:
                pass
            try:
                self._fh.truncate(tail)
                self._fh.seek(tail)
            except OSError:
                self._fh.close()  # can't scrub: refuse further appends
            if isinstance(exc, WalError):
                raise
            raise WalError(
                f"WAL append for epoch {epoch} failed before "
                f"acknowledgement: {exc}"
            ) from exc
        self.records.append(
            WalRecord(epoch=epoch, batch=batch, graph_sha=graph_sha)
        )
        if self.metrics is not None:
            self.metrics.counter("wal.appends").inc()
            self.metrics.counter("wal.fsyncs").inc()
        return epoch

    # -------------------------------------------------------------- compact

    def compact(self, through_epoch: int) -> int:
        """Drop records with ``epoch <= through_epoch`` (snapshot-gated).

        The caller guarantees a valid snapshot at (or past)
        ``through_epoch``; compaction itself is atomic (staged + renamed)
        so a crash mid-compact leaves the old log intact. Returns the
        number of records dropped.
        """
        through_epoch = min(int(through_epoch), self.epoch)
        if through_epoch <= self.floor:
            return 0
        kept = [r for r in self.records if r.epoch > through_epoch]
        dropped = len(self.records) - len(kept)
        fd, tmp_name = tempfile.mkstemp(
            prefix=f"{self.path.name}.{os.getpid()}.", suffix=".tmp",
            dir=self.path.parent or ".",
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                marker: dict = {"floor": through_epoch}
                marker["crc32"] = _crc_frame(marker)
                fh.write(json.dumps(marker, sort_keys=True) + "\n")
                for record in kept:
                    body: dict = {"epoch": record.epoch,
                                  "batch": record.batch.to_wire()}
                    if record.graph_sha is not None:
                        body["graph_sha"] = record.graph_sha
                    body["crc32"] = _crc_frame(body)
                    fh.write(json.dumps(body, sort_keys=True) + "\n")
                fh.flush()
                os.fsync(fh.fileno())
            faults.maybe_fail("wal_compact")
            self._fh.close()
            os.replace(tmp_name, self.path)
            fsync_dir(self.path.parent or ".")
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        finally:
            if self._fh.closed:
                self._fh = open(self.path, "ab")
        self.floor = through_epoch
        self.records = kept
        if self.metrics is not None:
            self.metrics.counter("wal.compactions").inc()
        return dropped

    def close(self) -> None:
        """Close the append handle (the log stays valid on disk)."""
        if not self._fh.closed:
            self._fh.close()


# --------------------------------------------------------------- snapshots


class SnapshotStore:
    """Epoch snapshots through the checksummed atomic envelope.

    A snapshot is the *full* state at an epoch — graph topology,
    attribute tables, and an optional manifest (HIMOR/pool descriptors)
    — so recovery from it needs no history at all. Corrupt snapshots are
    quarantined by rename, never deleted: the bytes stay on disk for a
    human to inspect, and the loader never trips over them twice.
    """

    def __init__(self, directory: "str | Path", keep: int = 2,
                 metrics: "MetricsRegistry | None" = None) -> None:
        self.directory = Path(directory)
        self.keep = max(1, int(keep))
        self.metrics = metrics
        self.quarantined: list[Path] = []

    def _path_for(self, epoch: int) -> Path:
        return self.directory / f"epoch-{int(epoch):08d}.json"

    def epochs(self) -> list[int]:
        """Epochs with a (non-quarantined) snapshot file, ascending."""
        if not self.directory.is_dir():
            return []
        found = []
        for entry in self.directory.iterdir():
            match = _SNAPSHOT_RE.match(entry.name)
            if match:
                found.append(int(match.group(1)))
        return sorted(found)

    # ----------------------------------------------------------------- save

    def save(self, graph: AttributedGraph, epoch: int,
             manifest: "dict | None" = None) -> Path:
        """Write the snapshot for ``epoch`` and prune older ones."""
        start = time.perf_counter()
        self.directory.mkdir(parents=True, exist_ok=True)
        faults.maybe_fail("snapshot_save")
        payload = {
            "epoch": int(epoch),
            "graph_sha": graph_checksum(graph),
            "graph": graph_payload(graph),
            "manifest": manifest or {},
        }
        path = self._path_for(epoch)
        atomic_write_json(path, payload, kind=SNAPSHOT_KIND)
        self._prune()
        if self.metrics is not None:
            self.metrics.counter("snapshot.saves").inc()
            self.metrics.gauge("snapshot.epoch").set(int(epoch))
            self.metrics.histogram("snapshot.seconds").record(
                time.perf_counter() - start
            )
        return path

    def _prune(self) -> None:
        epochs = self.epochs()
        for epoch in epochs[: -self.keep]:
            try:
                self._path_for(epoch).unlink()
            except OSError:
                continue
            if self.metrics is not None:
                self.metrics.counter("snapshot.pruned").inc()

    # ----------------------------------------------------------------- load

    def latest(self) -> "tuple[int, AttributedGraph, dict] | None":
        """Newest snapshot that loads *and* verifies, quarantining failures.

        Verification is two-layer: the persistence envelope's SHA-256
        (whole payload), then :func:`graph_checksum` recomputed over the
        rebuilt graph against the stored ``graph_sha`` — proving the
        reconstruction, not just the bytes.
        """
        for epoch in reversed(self.epochs()):
            path = self._path_for(epoch)
            try:
                payload = load_versioned_json(path, kind=SNAPSHOT_KIND)
                graph = graph_from_payload(payload["graph"])
                if int(payload["epoch"]) != epoch:
                    raise PersistError(
                        f"{path}: names epoch {epoch} but payload says "
                        f"{payload['epoch']}"
                    )
                if graph_checksum(graph) != payload["graph_sha"]:
                    raise PersistError(
                        f"{path}: rebuilt graph fails its stored checksum"
                    )
            except (PersistError, KeyError, TypeError, ValueError) as exc:
                self._quarantine(path, exc)
                continue
            return epoch, graph, dict(payload.get("manifest") or {})
        return None

    def _quarantine(self, path: Path, exc: Exception) -> None:
        target = path.with_name(path.name + ".quarantine")
        try:
            os.replace(path, target)
            fsync_dir(path.parent or ".")
        except OSError:
            return
        self.quarantined.append(target)
        if self.metrics is not None:
            self.metrics.counter("snapshot.quarantined").inc()


# ---------------------------------------------------------------- recovery


@dataclass
class RecoveryResult:
    """What a cold start recovered, and the proof it carries."""

    graph: AttributedGraph
    epoch: int
    graph_sha: str
    snapshot_epoch: "int | None" = None
    replayed_epochs: int = 0
    truncated_records: int = 0
    quarantined: "list[str]" = field(default_factory=list)
    seconds: float = 0.0
    #: The WAL suffix replayed past the snapshot — handed to the
    #: supervisor so respawned workers and oracles see the same batches.
    replayed: "list[WalRecord]" = field(default_factory=list)

    def describe(self) -> str:
        """One human line for logs/CLI output."""
        source = (
            f"snapshot epoch {self.snapshot_epoch}"
            if self.snapshot_epoch is not None else "base graph"
        )
        extras = []
        if self.truncated_records:
            extras.append(f"{self.truncated_records} torn record(s) truncated")
        if self.quarantined:
            extras.append(f"{len(self.quarantined)} snapshot(s) quarantined")
        tail = f" ({'; '.join(extras)})" if extras else ""
        return (
            f"recovered epoch {self.epoch} from {source} + "
            f"{self.replayed_epochs} replayed epoch(s) in "
            f"{self.seconds:.3f}s{tail}"
        )


class RecoveryManager:
    """Cold-start recovery: newest valid snapshot + WAL suffix replay.

    The invariants it enforces, in order:

    1. never *lose* an acknowledged epoch — the WAL suffix past the
       chosen snapshot must be contiguous to the current tip;
    2. never *serve* an unacknowledged epoch — torn WAL tails are
       truncated before replay, so the recovered tip is exactly the last
       acknowledged epoch;
    3. never serve an *unproven* state — every replayed epoch is checked
       against its record's ``graph_sha``, and the final graph's
       checksum is recomputed and returned.
    """

    def __init__(self, state_dir: "str | Path",
                 metrics: "MetricsRegistry | None" = None) -> None:
        self.state_dir = Path(state_dir)
        self.metrics = metrics

    def recover(
        self, base_graph: "AttributedGraph | None" = None
    ) -> "tuple[RecoveryResult, WriteAheadLog]":
        """Recover serveable state, returning it with the opened WAL.

        ``base_graph`` is the epoch-0 graph, used when no snapshot
        exists yet (first boot, or every snapshot quarantined with an
        uncompacted WAL). Raises :class:`~repro.errors.RecoveryError`
        when no proven state is reachable.
        """
        start = time.perf_counter()
        self.state_dir.mkdir(parents=True, exist_ok=True)
        snapshot_dir = self.state_dir / SNAPSHOT_DIR
        clean_stale_tmp(self.state_dir)
        clean_stale_tmp(snapshot_dir)

        wal = WriteAheadLog(self.state_dir / WAL_NAME, metrics=self.metrics)
        snapshots = SnapshotStore(snapshot_dir, metrics=self.metrics)
        loaded = snapshots.latest()

        if loaded is not None:
            snapshot_epoch, graph, _manifest = loaded
        elif base_graph is not None:
            snapshot_epoch, graph = None, base_graph
        else:
            wal.close()
            raise RecoveryError(
                f"{self.state_dir}: no valid snapshot and no base graph — "
                f"nothing to recover from"
            )
        epoch = snapshot_epoch or 0

        first_needed = epoch + 1
        if wal.floor >= first_needed and wal.floor > epoch:
            wal.close()
            raise RecoveryError(
                f"{self.state_dir}: WAL is compacted through epoch "
                f"{wal.floor} but recovery starts at epoch {epoch} — "
                f"epochs {first_needed}..{wal.floor} are unreachable "
                f"(newest usable snapshot too old or quarantined)"
            )

        replayed: list[WalRecord] = []
        try:
            for record in wal.records:
                if record.epoch <= epoch:
                    continue
                if record.epoch != epoch + 1:
                    raise RecoveryError(
                        f"{wal.path}: WAL gap — have epoch {epoch}, next "
                        f"record is epoch {record.epoch}"
                    )
                graph = apply_updates(graph, record.batch.updates)
                if (record.graph_sha is not None
                        and graph_checksum(graph) != record.graph_sha):
                    raise RecoveryError(
                        f"{wal.path}: replayed epoch {record.epoch} fails "
                        f"its recorded graph checksum — refusing to serve "
                        f"unproven state"
                    )
                epoch = record.epoch
                replayed.append(record)
        except RecoveryError:
            wal.close()
            raise
        except Exception as exc:
            wal.close()
            raise RecoveryError(
                f"{wal.path}: WAL replay failed at epoch {epoch + 1}: {exc}"
            ) from exc

        seconds = time.perf_counter() - start
        result = RecoveryResult(
            graph=graph,
            epoch=epoch,
            graph_sha=graph_checksum(graph),
            snapshot_epoch=snapshot_epoch,
            replayed_epochs=len(replayed),
            truncated_records=wal.truncated_records,
            quarantined=[str(p) for p in snapshots.quarantined],
            seconds=seconds,
            replayed=replayed,
        )
        if self.metrics is not None:
            self.metrics.counter("recovery.runs").inc()
            self.metrics.gauge("recovery.replayed_epochs").set(len(replayed))
            self.metrics.gauge("recovery.epoch").set(epoch)
            self.metrics.histogram("recovery.seconds").record(seconds)
        return result, wal


# ------------------------------------------------------------------ facade


class DurableStateStore:
    """The serving layer's one handle on durability.

    Lifecycle: construct → :meth:`recover` once (opens the WAL, picks
    snapshot, replays) → :meth:`append` per epoch → :meth:`maybe_snapshot`
    after each applied epoch → :meth:`close` on shutdown. ``append``
    before ``recover`` is a programming error and raises.
    """

    def __init__(
        self,
        state_dir: "str | Path",
        snapshot_every: "int | None" = None,
        keep_snapshots: int = 2,
        metrics: "MetricsRegistry | None" = None,
    ) -> None:
        self.state_dir = Path(state_dir)
        self.snapshot_every = (
            None if not snapshot_every else max(1, int(snapshot_every))
        )
        self.metrics = metrics
        self.snapshots = SnapshotStore(
            self.state_dir / SNAPSHOT_DIR, keep=keep_snapshots, metrics=metrics
        )
        self._wal: "WriteAheadLog | None" = None
        self.last_recovery: "RecoveryResult | None" = None

    # ------------------------------------------------------------ lifecycle

    def recover(
        self, base_graph: "AttributedGraph | None" = None
    ) -> RecoveryResult:
        """Run crash recovery and open the store for appends."""
        manager = RecoveryManager(self.state_dir, metrics=self.metrics)
        result, wal = manager.recover(base_graph=base_graph)
        self.snapshots.quarantined.extend(
            Path(p) for p in result.quarantined
        )
        self._wal = wal
        self.last_recovery = result
        return result

    def close(self) -> None:
        """Release the WAL handle; all acknowledged state is on disk."""
        if self._wal is not None:
            self._wal.close()
            self._wal = None

    @property
    def epoch(self) -> int:
        """Last acknowledged epoch (requires :meth:`recover` first)."""
        return self._require_wal().epoch

    def _require_wal(self) -> WriteAheadLog:
        if self._wal is None:
            raise WalError(
                "DurableStateStore used before recover() — recovery is the "
                "only entry point, even on an empty state dir"
            )
        return self._wal

    # ------------------------------------------------------------- mutation

    def append(self, batch: UpdateBatch,
               graph_sha: "str | None" = None) -> int:
        """Durably log one epoch; returns the acknowledged epoch number."""
        return self._require_wal().append(batch, graph_sha=graph_sha)

    def snapshot(self, graph: AttributedGraph, epoch: int,
                 manifest: "dict | None" = None) -> Path:
        """Snapshot now, then compact the WAL behind the *oldest* retained
        snapshot — one snapshot of lag, so the newest corrupting never
        makes an acknowledged epoch unreachable."""
        path = self.snapshots.save(graph, epoch, manifest=manifest)
        retained = self.snapshots.epochs()
        # Compact only behind the *oldest* of >= 2 retained snapshots:
        # with a single snapshot there is no lag, and compacting through
        # it would make every epoch unreachable if it later corrupts.
        if len(retained) >= 2:
            self._require_wal().compact(retained[0])
        return path

    def maybe_snapshot(self, graph: AttributedGraph, epoch: int,
                       manifest: "dict | None" = None) -> "Path | None":
        """Snapshot iff the cadence says this epoch is due."""
        if (self.snapshot_every is None or epoch <= 0
                or epoch % self.snapshot_every != 0):
            return None
        return self.snapshot(graph, epoch, manifest=manifest)
