"""Supervised multi-worker serving: admission, heartbeats, crash recovery.

:class:`ServingSupervisor` runs N :class:`~repro.serving.CODServer`
workers in child processes and guarantees that **every admitted query
receives exactly one terminal** :class:`~repro.serving.ServedAnswer` —
answered, degraded, or explicitly refused — no matter what the workers
do. The moving parts:

* **Admission control** — queries enter through a bounded
  :class:`~repro.serving.queue.AdmissionQueue`; under overload the
  lowest-priority work is shed with an explicit ``refused_overload``
  answer (never a silent drop).
* **Failure detection** — a worker is *crashed* when its process exits,
  *wedged* when a dispatched task overruns ``task_timeout_s``, and
  *sick* when its heartbeat goes stale while idle or its start exceeds
  ``start_timeout_s``. Wedged and sick workers are killed. Heartbeat
  freshness is judged by each beat's per-incarnation sequence number on
  the supervisor's own clock (child and parent ``time.monotonic()``
  epochs are not comparable); a beat whose sequence was already seen
  never re-freshens the worker, and an unseen beat freshens it only to
  the last moment its queue was observed empty, so a backlog of old
  beats drained after a silence cannot mask the silence.
* **Restart with backoff** — dead workers are respawned after a capped,
  jittered exponential delay
  (:class:`~repro.serving.budget.BackoffPolicy`); a worker that keeps
  dying is disabled after ``max_restarts``.
* **Requeue-once-then-refuse** — a query in flight on a dying worker is
  requeued exactly once (at the head of the line, immune to shedding);
  if its second dispatch also dies it gets a terminal ``refused_crash``
  answer. Results from a worker the supervisor already gave up on are
  deduplicated, preserving exactly-once delivery.
* **Index recovery** — each worker owns a HIMOR index artifact under
  ``index_dir`` with mid-build checkpoints; a worker respawned mid-build
  resumes the build from its checkpoint instead of starting over.
* **Aggregated health** — :meth:`health` merges supervisor counters
  (restarts, sheds, queue depth, end-to-end latency percentiles) with
  each worker's last self-reported :meth:`CODServer.health` snapshot.
  With ``profile=True`` every worker's server also carries a
  :class:`~repro.obs.MetricsRegistry`; per-worker snapshots (current and
  dead incarnations alike) are rolled into the fleet-wide
  ``fleet_metrics`` view via
  :meth:`~repro.obs.MetricsRegistry.merge_snapshots`.

Chaos is scripted through :class:`ChaosSchedule` (deterministic
kill/wedge/corrupt-checkpoint actions keyed by admission sequence
number) and through :mod:`repro.utils.faults` specs armed inside the
workers — see ``tests/serving/test_chaos.py`` for the invariant suite.
"""

from __future__ import annotations

import multiprocessing
import queue as stdlib_queue
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.core.problem import CODQuery
from repro.dynamic.log import UpdateLog, as_batch
from repro.dynamic.updates import apply_updates, touched_nodes
from repro.errors import OverloadError, ServingError, WorkerCrashError
from repro.graph.graph import AttributedGraph
from repro.obs import MetricsRegistry
from repro.serving.budget import BackoffPolicy
from repro.serving.queue import PRIORITY_BATCH, AdmissionQueue
from repro.serving.server import (
    REFUSED,
    REFUSED_CRASH,
    REFUSED_OVERLOAD,
    ServedAnswer,
)
from repro.serving.stats import ServerStats
from repro.serving.worker import (
    CHAOS_KILL,
    CHAOS_WEDGE,
    MSG_EPOCH,
    MSG_HEARTBEAT,
    MSG_READY,
    MSG_RESULT,
    ShardDirective,
    Task,
    UpdateDirective,
    WorkerConfig,
    decode_answer,
    worker_main,
)
from repro.utils.faults import corrupt_file
from repro.utils.persist import clean_stale_tmp

#: Supervisor-side chaos action: damage on-disk build checkpoints.
CHAOS_CORRUPT_CHECKPOINT = "corrupt-checkpoint"

CHAOS_ACTIONS = (CHAOS_KILL, CHAOS_WEDGE, CHAOS_CORRUPT_CHECKPOINT)

#: Worker lifecycle states surfaced in :meth:`ServingSupervisor.health`.
W_STARTING = "starting"
W_IDLE = "idle"
W_BUSY = "busy"
W_RESTARTING = "restarting"
W_DISABLED = "disabled"


class ChaosSchedule:
    """Deterministic fault script keyed by admission sequence number.

    ``actions[seq]`` fires when query ``seq`` is first dispatched:
    ``"kill"`` and ``"wedge"`` ride the task into the worker (which
    ``os._exit``\\ s or stalls instead of answering — only on attempt 0,
    so the requeued retry runs clean), while ``"corrupt-checkpoint"``
    is executed by the supervisor itself, damaging every on-disk build
    checkpoint under ``index_dir`` before the dispatch.

    Parse the CLI form with :meth:`parse`: ``"kill@5,wedge@12,corrupt-checkpoint@1"``.
    """

    def __init__(self, actions: "dict[int, str] | None" = None) -> None:
        actions = dict(actions or {})
        for seq, action in actions.items():
            if action not in CHAOS_ACTIONS:
                raise ValueError(
                    f"unknown chaos action {action!r} at seq {seq}; "
                    f"known: {CHAOS_ACTIONS}"
                )
            if int(seq) < 0:
                raise ValueError(f"chaos seq must be non-negative, got {seq}")
        self.actions = {int(seq): action for seq, action in actions.items()}
        self.fired: dict[int, str] = {}

    @classmethod
    def parse(cls, spec: str) -> "ChaosSchedule":
        """Build a schedule from ``action@seq[,action@seq...]``."""
        actions: dict[int, str] = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            try:
                action, seq_text = part.rsplit("@", 1)
                seq = int(seq_text)
            except ValueError:
                raise ValueError(
                    f"bad chaos entry {part!r}; expected action@seq"
                ) from None
            actions[seq] = action.strip()
        return cls(actions)

    def take(self, seq: int) -> "str | None":
        """Consume and return the action scheduled for ``seq``, if any."""
        action = self.actions.pop(seq, None)
        if action is not None:
            self.fired[seq] = action
        return action

    def __len__(self) -> int:
        return len(self.actions)


@dataclass
class _TaskRecord:
    """Exactly-once bookkeeping for one admitted query."""

    seq: int
    query: CODQuery
    priority: int
    attempt: int = 0
    requeued: bool = False
    dispatched_to: "int | None" = None


@dataclass
class _WorkerSlot:
    """Supervisor-side state for one worker slot across incarnations."""

    slot: int
    proc: "multiprocessing.process.BaseProcess | None" = None
    task_queue: "object | None" = None
    event_queue: "object | None" = None
    incarnation: int = 0
    state: str = W_RESTARTING
    current: "Task | None" = None
    dispatched_at: float = 0.0
    spawned_at: float = 0.0
    last_seen: float = 0.0
    last_beat_seq: int = 0
    #: Supervisor-clock time this slot's event queue was last seen empty;
    #: any message drained later was necessarily *sent* after this, so it
    #: bounds how fresh a backlogged heartbeat can claim to be.
    queue_empty_at: float = 0.0
    respawn_at: float = 0.0
    restarts: int = 0
    backoff_attempt: int = 0
    tasks_done: int = 0
    last_health: "dict | None" = None
    health_incarnation: int = -1
    #: Last epoch this slot's current incarnation acknowledged (via an
    #: ``MSG_EPOCH`` ack or its spawn config).
    epoch: int = 0
    resumed_builds_total: int = 0
    #: Metrics snapshots folded in from dead incarnations (fleet rollup).
    metrics_prior: "dict | None" = None
    death_reasons: list[str] = field(default_factory=list)


class ServingSupervisor:
    """Run N CODServer workers under supervision (see module docstring).

    Parameters
    ----------
    graph:
        The graph every worker serves.
    n_workers:
        Worker processes to keep alive.
    queue_capacity:
        Bound on the admission queue; beyond it, load shedding kicks in.
    task_timeout_s:
        Wall-clock allowance for one dispatched task before the worker is
        declared wedged and killed. Must comfortably exceed the per-query
        ``deadline_s`` (a deadline refusal is an *answer*, not a wedge).
    heartbeat_interval_s / heartbeat_timeout_s:
        Worker beat cadence and the staleness bound past which a
        non-busy worker is declared sick.
    start_timeout_s:
        Allowance for a worker to signal ready (covers index build).
    restart_backoff:
        :class:`~repro.serving.budget.BackoffPolicy` for respawn delays
        (default: 0.05 s base, doubling, 2 s cap, 10% jitter).
    max_restarts:
        Per-slot restarts before the slot is disabled for good.
    index_dir:
        Directory for per-worker HIMOR artifacts and build checkpoints;
        ``None`` disables index persistence (workers build in memory).
    checkpoint_every:
        Samples between mid-build checkpoints (with ``index_dir``).
    warm_index:
        Build/resume the index before a worker signals ready.
    server_options:
        Extra :class:`~repro.serving.CODServer` keyword arguments
        (``theta``, ``seed``, ``deadline_s``, breaker tuning, ...).
    profile:
        Give every worker's server a :class:`~repro.obs.MetricsRegistry`
        (opt-in stage profiling); snapshots ride each result's health
        report and :meth:`health` merges them — across incarnations —
        into the fleet-wide ``fleet_metrics`` view.
    affinity:
        Attribute-affinity dispatch (default on): each attribute is
        sticky-claimed by the first slot to serve it, and an idle slot
        prefers queued queries whose attribute it already claimed —
        within the same priority class only — so per-attribute caches
        stay hot. Preference never idles a worker: with no matching
        entry the class's FIFO head is dispatched (counted as a miss
        when it steals a claimed attribute). Claims/hits/misses surface
        in :meth:`health` under ``"affinity"``.
    use_pool:
        Give every worker a per-worker
        :class:`~repro.core.pool.SharedSamplePool` so its compressed
        evaluations share one RR arena across queries (correlated
        answers, large speedup — see the pool's docstring).
    pool_seeded:
        Draw each worker's pool with per-sample seeds (implies
        ``use_pool``; requires an integer ``seed`` in
        ``server_options``). This is what makes
        :meth:`submit_updates` repair worker pools incrementally —
        bit-identically to a from-scratch redraw — instead of dropping
        them on every structural epoch.
    shared_pool:
        Fleet-wide zero-copy pools (implies ``use_pool``): instead of
        every worker sampling its own arena, the supervisor materializes
        the pool **once** (sharded across per-sample-seeded slices when
        ``pool_seeded``, merged via
        :func:`~repro.influence.arena.concatenate_arenas`), publishes
        the graph and arena as shared-memory segments
        (:mod:`repro.utils.shm`), and workers attach them read-only —
        N workers share one arena's physical pages and skip cold-start
        resampling entirely. Answers are bit-identical to per-worker
        pools because the builder pool is constructed with exactly the
        worker pool's configuration. Segments are supervisor-owned:
        unlinked on :meth:`shutdown`, rotated (old epoch unlinked after
        the new one is published) on :meth:`submit_updates`, and stale
        segments of dead processes are swept at start and on every
        respawn. :meth:`health` reports a ``"shm"`` block.
    shard_attributes:
        Restricted-shard publication policy (shared-pool fleets only).
        ``"auto"`` (default) shards every attribute whose admitted query
        count crosses ``shard_hot_threshold``: the supervisor computes
        that attribute's restricted arena **once** from the builder pool
        (LORE floor vertex of the modal query node) and publishes it as
        a ``rr-shard`` segment workers attach instead of each restricting
        the full arena. An explicit iterable of attribute ids restricts
        sharding to those (hot at their first query); ``None`` disables
        sharding. Shards rotate with the main segments on every update
        epoch and are unlinked at shutdown; dispatch routes shard-covered
        attributes to the worker with the shard mapped
        (``affinity.shard_hits``). Bit-identity is unconditional: a
        worker verifies vertex/epoch/``allowed_sha`` before serving a
        shard and otherwise restricts locally.
    shard_hot_threshold:
        Admitted queries an attribute needs before auto-sharding it.
    shard_max:
        Cap on concurrently published shards.
    affinity_max_claims:
        Bound on the sticky attribute→slot claim table (LRU evicted,
        counted in ``health()["affinity"]["evictions"]``).
    chaos:
        Optional :class:`ChaosSchedule` for scripted fault drills.
    worker_fault_specs:
        :func:`repro.utils.faults.arm` spec dicts armed inside every
        worker at bootstrap (site-level chaos, e.g. kill at sample k).
    wedge_s:
        How long a scripted wedge stalls (must exceed ``task_timeout_s``
        for the wedge to be detected rather than merely slow).
    mp_start_method:
        ``"fork"`` where available (fast, shares the graph page-table),
        else ``"spawn"``.
    """

    def __init__(
        self,
        graph: AttributedGraph,
        n_workers: int = 2,
        *,
        queue_capacity: int = 64,
        task_timeout_s: float = 10.0,
        heartbeat_interval_s: float = 0.05,
        heartbeat_timeout_s: float = 2.0,
        start_timeout_s: float = 60.0,
        restart_backoff: "BackoffPolicy | None" = None,
        max_restarts: int = 5,
        index_dir: "str | Path | None" = None,
        checkpoint_every: int = 64,
        warm_index: bool = True,
        server_options: "dict | None" = None,
        profile: bool = False,
        affinity: bool = True,
        use_pool: bool = False,
        pool_seeded: bool = False,
        shared_pool: bool = False,
        shard_attributes: "str | Iterable[int] | None" = "auto",
        shard_hot_threshold: int = 4,
        shard_max: int = 16,
        affinity_max_claims: int = 1024,
        chaos: "ChaosSchedule | None" = None,
        worker_fault_specs: "Iterable[dict] | None" = None,
        wedge_s: float = 3600.0,
        mp_start_method: "str | None" = None,
        state_dir: "str | Path | None" = None,
        snapshot_every: "int | None" = None,
    ) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers!r}")
        if task_timeout_s <= 0:
            raise ValueError(
                f"task_timeout_s must be positive, got {task_timeout_s!r}"
            )
        if max_restarts < 0:
            raise ValueError(f"max_restarts must be non-negative, got {max_restarts!r}")
        self.graph = graph
        self.n_workers = int(n_workers)
        self.queue = AdmissionQueue(queue_capacity)
        self.task_timeout_s = float(task_timeout_s)
        self.heartbeat_interval_s = float(heartbeat_interval_s)
        self.heartbeat_timeout_s = float(heartbeat_timeout_s)
        self.start_timeout_s = float(start_timeout_s)
        self.restart_backoff = restart_backoff or BackoffPolicy(
            base_s=0.05, factor=2.0, cap_s=2.0, jitter=0.1, seed=0
        )
        self.max_restarts = int(max_restarts)
        self.index_dir = Path(index_dir) if index_dir is not None else None
        self.checkpoint_every = int(checkpoint_every)
        self.warm_index = bool(warm_index)
        self.server_options = dict(server_options or {})
        self.profile = bool(profile)
        self.affinity = bool(affinity)
        self.pool_seeded = bool(pool_seeded)
        self.shared_pool = bool(shared_pool)
        self.use_pool = bool(use_pool) or self.pool_seeded or self.shared_pool
        if self.pool_seeded and not isinstance(
            self.server_options.get("seed"), int
        ):
            raise ValueError(
                "pool_seeded requires an integer 'seed' in server_options "
                "(per-sample streams are derived from it)"
            )
        if shard_hot_threshold < 1:
            raise ValueError(
                f"shard_hot_threshold must be >= 1, got {shard_hot_threshold!r}"
            )
        if shard_max < 0:
            raise ValueError(f"shard_max must be >= 0, got {shard_max!r}")
        if affinity_max_claims < 1:
            raise ValueError(
                f"affinity_max_claims must be >= 1, got {affinity_max_claims!r}"
            )
        # Restricted-shard publication: "auto" shards whichever attributes
        # cross the hot threshold; an explicit iterable restricts sharding
        # to those attributes (first query makes them hot); None disables.
        if shard_attributes is None:
            self._shard_allowlist: "set[int] | None" = None
            self.shard_enabled = False
        elif shard_attributes == "auto":
            self._shard_allowlist = None
            self.shard_enabled = self.shared_pool
        else:
            self._shard_allowlist = {int(a) for a in shard_attributes}
            self.shard_enabled = self.shared_pool
        self.shard_hot_threshold = int(shard_hot_threshold)
        self.shard_max = int(shard_max)
        self.affinity_max_claims = int(affinity_max_claims)
        self.chaos = chaos or ChaosSchedule()
        self.worker_fault_specs = [dict(s) for s in (worker_fault_specs or [])]
        self.wedge_s = float(wedge_s)
        if mp_start_method is None:
            mp_start_method = (
                "fork"
                if "fork" in multiprocessing.get_all_start_methods()
                else "spawn"
            )
        self._ctx = multiprocessing.get_context(mp_start_method)
        self._slots = [_WorkerSlot(slot=i) for i in range(self.n_workers)]
        self._records: dict[int, _TaskRecord] = {}
        self._answers: dict[int, ServedAnswer] = {}
        self._requeue: list[int] = []
        self._next_seq = 0
        self._started = False
        #: Fleet graph version: bumped by every :meth:`submit_updates`
        #: batch; the full batch history lives in :attr:`update_log`.
        self.epoch = 0
        self.update_log = UpdateLog()
        self.state_store = None
        self.recovery = None
        # Metrics exist whenever something fleet-wide reports through them:
        # the durable store's counters or the shared-pool shm gauges.
        self.metrics: "MetricsRegistry | None" = (
            MetricsRegistry()
            if (state_dir is not None or self.shared_pool)
            else None
        )
        if state_dir is not None:
            # Cold start = recovery, even on an empty directory: the
            # supervisor's graph and epoch come from the newest proven
            # snapshot + WAL suffix, so every worker it spawns boots
            # straight into the last *acknowledged* epoch.
            from repro.serving.durability import DurableStateStore

            self.state_store = DurableStateStore(
                state_dir,
                snapshot_every=snapshot_every,
                metrics=self.metrics,
            )
            self.recovery = self.state_store.recover(base_graph=graph)
            self.graph = self.recovery.graph
            self.epoch = self.recovery.epoch
        # Shared-pool state: supervisor-owned segments (kind → handle),
        # the builder pool whose arena backs them, shard boundaries of
        # the sharded materialization, and sweep/attach accounting.
        self._builder_pool = None
        self._shm_segments: "dict[str, object]" = {}
        self._pool_shards: "list[int] | None" = None
        self._shm_attach_counts: dict[str, int] = {}
        self.shm_attaches = 0
        self.shm_publishes = 0
        self.shm_sweeps = 0
        self.shm_swept_segments = 0
        # Restricted-shard state: per-attribute published segments, the
        # manifest workers adopt, the hierarchy the builder derives floor
        # vertices from, the per-attribute query-node histogram that
        # detects hot attributes, and the attribute → slot routing table.
        self._shard_segments_by_attr: "dict[int, object]" = {}
        self._shard_manifest: "dict[int, dict]" = {}
        self._shard_slots: "dict[int, int]" = {}
        self._shard_failed: set[int] = set()
        self._builder_hierarchy = None
        self._attr_hot: "dict[int, dict[int, int]]" = {}
        self.shard_publishes = 0
        self.shard_rotations = 0
        self.affinity_shard_hits = 0
        self.affinity_shard_misses = 0
        self.affinity_evictions = 0
        if self.metrics is not None and self.shard_enabled:
            # Pre-create the shard counters so the metrics schema carries
            # them (at zero) even on workloads that never go hot.
            for key in (
                "shm.shard.publishes",
                "shm.shard.rotations",
                "affinity.shard_hits",
                "affinity.shard_misses",
                "affinity.evictions",
            ):
                self.metrics.counter(key)
        self.update_acks = 0
        self.updates_skipped = 0
        self._epoch_reports: dict[int, dict] = {}
        self.stats = ServerStats()
        self.restarts_total = 0
        self.wedge_kills = 0
        self.heartbeat_kills = 0
        self.refused_overload = 0
        self.refused_crash = 0
        self.duplicate_results = 0
        self.transport_errors = 0
        # Attribute-affinity dispatch: sticky attribute → slot claims in
        # LRU order, bounded by ``affinity_max_claims`` and dropped when
        # their slot dies (see _account_affinity / _on_worker_death) —
        # an unbounded claim dict once grew forever with distinct
        # attributes and kept routing to slots that no longer existed.
        self._affinity_slots: "OrderedDict[object, int]" = OrderedDict()
        self.affinity_claims = 0
        self.affinity_hits = 0
        self.affinity_misses = 0

    # ------------------------------------------------------------ lifecycle

    def __enter__(self) -> "ServingSupervisor":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    def start(self) -> None:
        """Spawn the worker fleet (idempotent)."""
        if self._started:
            return
        if self.index_dir is not None:
            self.index_dir.mkdir(parents=True, exist_ok=True)
            clean_stale_tmp(self.index_dir)
        if self.shared_pool:
            # Reclaim segments stranded by dead processes (a previous
            # supervisor killed before its shutdown), then publish this
            # fleet's graph + arena before any worker needs them.
            self._sweep_segments()
            self._publish_shared_state()
        now = time.monotonic()
        for slot in self._slots:
            self._spawn(slot, now)
        self._started = True

    def shutdown(self, join_timeout_s: float = 2.0) -> None:
        """Stop every worker: polite sentinel first, SIGKILL stragglers."""
        for slot in self._slots:
            if slot.proc is not None and slot.proc.is_alive():
                try:
                    slot.task_queue.put(None)
                except Exception:  # noqa: BLE001 — queue may be broken
                    pass
        for slot in self._slots:
            if slot.proc is not None:
                slot.proc.join(timeout=join_timeout_s)
                if slot.proc.is_alive():
                    slot.proc.kill()
                    slot.proc.join(timeout=join_timeout_s)
                slot.proc = None
            slot.state = W_DISABLED
        self._started = False
        self._release_segments()
        if self.state_store is not None:
            self.state_store.close()

    # ---------------------------------------------------------- shared pool

    def _ensure_builder_pool(self):
        """The supervisor's own pool — the single sampling site of the fleet.

        Constructed with *exactly* the worker pool's configuration
        (theta/seed/per-sample-seeds/fast from ``server_options``): the
        fleet's bit-identity guarantee rests on this arena being the very
        arena each worker would have drawn privately.
        """
        if self._builder_pool is None:
            from repro.core.pool import SharedSamplePool

            pool = SharedSamplePool(
                self.graph,
                theta=int(self.server_options.get("theta", 10)),
                seed=self.server_options.get("seed"),
                per_sample_seeds=self.pool_seeded,
                fast=bool(self.server_options.get("fast_sampling", False)),
            )
            self._materialize_builder_pool(pool)
            self._builder_pool = pool
        return self._builder_pool

    def _materialize_builder_pool(self, pool) -> None:
        """Materialize the builder pool, sharded when seeds permit.

        With per-sample seeds every sample's stream depends only on
        ``(base_seed, index)``, so the pool splits into ``n_workers``
        index slices drawn independently and merged in order via
        :func:`~repro.influence.arena.concatenate_arenas` — bit-identical
        to one monolithic draw, and the shard boundaries are published in
        the segment's metadata. Without per-sample seeds there is one
        sequential stream, so the pool draws in one shot.
        """
        if not (self.pool_seeded and self.n_workers > 1 and pool.n_samples > 1):
            pool.materialize()
            self._pool_shards = None
            return
        import numpy as np

        from repro.influence.arena import concatenate_arenas

        if pool.fast:
            from repro.influence.fastsample import (
                sample_arena_seeded_fast as sampler,
            )
        else:
            from repro.influence.arena import sample_arena_seeded as sampler

        shards = np.array_split(
            np.arange(pool.n_samples, dtype=np.int64),
            min(self.n_workers, pool.n_samples),
        )
        parts = [
            sampler(
                self.graph,
                base_seed=pool.base_seed,
                model=pool.model,
                indices=shard,
            )
            for shard in shards
        ]
        pool.adopt(self.graph, concatenate_arenas(parts))
        offsets = [0]
        for shard in shards:
            offsets.append(offsets[-1] + len(shard))
        self._pool_shards = offsets

    def _publish_shared_state(self) -> None:
        """Publish the current graph + arena as shm segments (one epoch).

        The previous epoch's segments are unlinked only *after* the new
        ones exist: attached workers keep serving off their established
        mappings (POSIX unlink removes the name, not the memory), live
        directives carry the new names, and respawns bootstrap from them.
        """
        from repro.utils.shm import default_segment_name

        pool = self._ensure_builder_pool()
        old = dict(self._shm_segments)
        graph_segment = self.graph.to_shared(
            name=default_segment_name(f"graph-e{self.epoch}")
        )
        extra = (
            {"shard_offsets": self._pool_shards}
            if self._pool_shards is not None
            else None
        )
        arena_segment = pool.to_shared(
            name=default_segment_name(f"arena-e{self.epoch}"), extra=extra
        )
        self._shm_segments = {"graph": graph_segment, "arena": arena_segment}
        self.shm_publishes += 1
        if self.metrics is not None:
            self.metrics.counter("shm.publishes").inc()
            self.metrics.gauge("shm.segment_bytes").set(
                graph_segment.nbytes + arena_segment.nbytes
            )
        for segment in old.values():
            if segment is not graph_segment and segment is not arena_segment:
                segment.destroy()

    def _sweep_segments(self) -> None:
        """Unlink segments whose owning process is provably dead."""
        from repro.utils.shm import sweep_stale_segments

        swept = sweep_stale_segments()
        self.shm_sweeps += 1
        self.shm_swept_segments += len(swept)
        if self.metrics is not None:
            self.metrics.counter("shm.sweeps").inc()
            if swept:
                self.metrics.counter("shm.swept_segments").inc(len(swept))

    def _release_segments(self) -> None:
        """Unlink and unmap every supervisor-owned segment (shutdown)."""
        for segment in self._shm_segments.values():
            try:
                segment.destroy()
            except Exception:  # noqa: BLE001 — release the rest regardless
                pass
        self._shm_segments = {}
        self._builder_pool = None
        for segment in self._shard_segments_by_attr.values():
            try:
                segment.destroy()
            except Exception:  # noqa: BLE001 — release the rest regardless
                pass
        self._shard_segments_by_attr = {}
        self._shard_manifest = {}
        self._shard_slots = {}
        self._builder_hierarchy = None
        if self.metrics is not None and self.shared_pool:
            self.metrics.gauge("shm.segment_bytes").set(0)
            if self.shard_enabled:
                self.metrics.gauge("shm.shard.segment_bytes").set(0)

    # ------------------------------------------------------- shard building

    def _note_hot(self, query: CODQuery) -> None:
        """Histogram one admitted query; build its shard once hot.

        The histogram drives two decisions: *when* an attribute is hot
        enough to shard (total query count crosses the threshold — or 1
        for explicitly allowlisted attributes) and *which* node's LORE
        floor vertex the shard restricts to (the modal query node, ties
        to the smallest id — deterministic for a given workload prefix).
        """
        if not self.shard_enabled or query.attribute is None:
            return
        attr = int(query.attribute)
        if self._shard_allowlist is not None and attr not in self._shard_allowlist:
            return
        counts = self._attr_hot.setdefault(attr, {})
        node = int(query.node)
        counts[node] = counts.get(node, 0) + 1
        if attr in self._shard_manifest or attr in self._shard_failed:
            return
        if len(self._shard_manifest) >= self.shard_max:
            return
        threshold = 1 if self._shard_allowlist is not None else self.shard_hot_threshold
        if sum(counts.values()) >= threshold:
            if self._build_shard(attr) is not None:
                self._broadcast_shards()

    def _build_shard(self, attr: int) -> "dict | None":
        """Restrict the builder arena for one hot attribute and publish it.

        The shard is ``pool.restricted(allowed)`` where ``allowed`` is
        the member set of the LORE floor vertex for the attribute's modal
        query node — computed against the supervisor's own hierarchy,
        which is bit-identical to every worker's (PR 6 canonicalized
        hierarchy construction to a pure function of the graph). The
        published segment carries ``allowed_sha`` so a worker whose own
        allowed set disagrees (different query node, different floor)
        rejects the shard and restricts locally instead of serving a
        wrong restriction. Failures (LORE at chain level 0, empty
        restriction, any exception) mark the attribute failed-for-this-
        epoch and never disturb serving.
        """
        from repro.core.lore import lore_chain
        from repro.hierarchy.nnchain import agglomerative_hierarchy
        from repro.influence.arena import allowed_fingerprint
        from repro.utils.shm import default_segment_name

        counts = self._attr_hot.get(attr)
        if not counts:
            return None
        try:
            pool = self._ensure_builder_pool()
            if self._builder_hierarchy is None:
                self._builder_hierarchy = agglomerative_hierarchy(
                    self.graph, linkage=self.server_options.get("linkage")
                )
            hierarchy = self._builder_hierarchy
            node = min(counts, key=lambda n: (-counts[n], n))
            lore = lore_chain(
                self.graph,
                hierarchy,
                node,
                attr,
                weighting=self.server_options.get("weighting"),
                linkage=self.server_options.get("linkage"),
            )
            if lore.c_ell_chain_level == 0:
                self._shard_failed.add(attr)
                return None
            allowed = hierarchy.members(lore.c_ell_vertex)
            restricted = pool.restricted(set(int(v) for v in allowed))
            if restricted.n_samples == 0:
                self._shard_failed.add(attr)
                return None
            sha = allowed_fingerprint(allowed)
            segment = restricted.to_shared(
                name=default_segment_name(f"shard-a{attr}-e{self.epoch}"),
                extra={
                    "attribute": int(attr),
                    "vertex": int(lore.c_ell_vertex),
                    "epoch": int(self.epoch),
                    "allowed_sha": sha,
                },
                kind="rr-shard",
            )
        except Exception:  # noqa: BLE001 — shards optimize, never break serving
            self._shard_failed.add(attr)
            return None
        self._shard_segments_by_attr[attr] = segment
        entry = {
            "name": segment.name,
            "vertex": int(lore.c_ell_vertex),
            "epoch": int(self.epoch),
            "allowed_sha": sha,
            "samples": int(restricted.n_samples),
        }
        self._shard_manifest[attr] = entry
        self.shard_publishes += 1
        if self.metrics is not None:
            self.metrics.counter("shm.shard.publishes").inc()
            self.metrics.gauge("shm.shard.segment_bytes").set(
                sum(s.nbytes for s in self._shard_segments_by_attr.values())
            )
        self._assign_shard_slot(attr)
        return entry

    def _assign_shard_slot(self, attr: int) -> "int | None":
        """Route ``attr`` to one slot: its sticky claim if it has one,
        else the enabled slot carrying the fewest shards (ties to the
        lowest slot id)."""
        eligible = [s.slot for s in self._slots if s.state != W_DISABLED]
        if not eligible:
            self._shard_slots.pop(attr, None)
            return None
        claimed = self._affinity_slots.get(attr)
        if claimed in eligible:
            slot_id = claimed
        else:
            load = {sid: 0 for sid in eligible}
            for assigned in self._shard_slots.values():
                if assigned in load:
                    load[assigned] += 1
            slot_id = min(eligible, key=lambda sid: (load[sid], sid))
        self._shard_slots[attr] = slot_id
        return slot_id

    def _broadcast_shards(self) -> None:
        """Send the current shard manifest to every live worker."""
        directive = ShardDirective(
            manifest={a: dict(e) for a, e in self._shard_manifest.items()}
        )
        for slot in self._slots:
            if slot.task_queue is None:
                continue
            try:
                slot.task_queue.put(directive)
            except Exception:  # noqa: BLE001 — broken pipe = the worker is dead
                self.transport_errors += 1
                self._on_worker_death(slot, "task queue broken (shard directive)")

    def _rotate_shards(self) -> None:
        """Rebuild every published shard for the new epoch, then unlink
        the old segments — same publish-before-destroy discipline as the
        main graph/arena segments (attached workers keep their mappings;
        the name is what rotates)."""
        self._builder_hierarchy = None
        old_segments = dict(self._shard_segments_by_attr)
        old_attrs = list(self._shard_manifest)
        self._shard_segments_by_attr = {}
        self._shard_manifest = {}
        # The new graph may make a previously unshardable attribute
        # shardable (or vice versa) — retry each at most once per epoch.
        self._shard_failed.clear()
        for attr in old_attrs:
            self._build_shard(attr)
        for segment in old_segments.values():
            try:
                segment.destroy()
            except Exception:  # noqa: BLE001 — rotation must not abort mid-way
                pass
        if old_segments:
            self.shard_rotations += len(old_segments)
            if self.metrics is not None:
                self.metrics.counter("shm.shard.rotations").inc(
                    len(old_segments)
                )

    # ------------------------------------------------------------ admission

    def submit(self, query: CODQuery, priority: int = PRIORITY_BATCH) -> int:
        """Admit one query; returns its sequence number.

        The caller can look the terminal answer up with
        :meth:`answer_for` once :meth:`drain` (or enough :meth:`poll`
        rounds) completes. Refusals by admission control are terminal
        immediately.
        """
        query.validate(self.graph)
        self.start()
        self._note_hot(query)
        seq = self._next_seq
        self._next_seq += 1
        self._records[seq] = _TaskRecord(seq=seq, query=query, priority=int(priority))
        admission = self.queue.admit(seq, priority=int(priority))
        if admission.shed is not None:
            shed_seq, shed_priority = admission.shed
            self._deliver_overload(shed_seq, shed_priority)
        if not admission.admitted:
            self._deliver_overload(seq, int(priority))
        return seq

    def submit_updates(self, updates, label: "str | None" = None) -> int:
        """Apply one update batch fleet-wide; returns the new epoch.

        The batch is validated against the supervisor's graph first — a
        conflicting or invalid batch raises without changing any state —
        then appended to :attr:`update_log` and enqueued as an
        :class:`~repro.serving.worker.UpdateDirective` on every live
        worker's task queue. Because directives ride the same FIFO queue
        as tasks, each worker applies the batch at a safe point between
        queries: no barrier, no pause, and every admitted query is
        answered against exactly one epoch.

        Workers currently restarting (or spawned later) skip the
        directive path entirely: :meth:`_spawn` hands them the
        supervisor's post-update graph and current epoch, so a crash
        mid-transition can neither strand a worker on the old epoch nor
        double-apply a batch.
        """
        batch = as_batch(updates, label=label)
        new_graph = apply_updates(self.graph, batch.updates)
        self.start()
        epoch_from = self.epoch
        if self.state_store is not None:
            # Ack-after-fsync: the batch is durable before any worker
            # (or the supervisor's own graph) observes it. A WAL failure
            # here aborts the submit with all state unchanged.
            from repro.core.himor import graph_checksum

            self.state_store.append(
                batch, graph_sha=graph_checksum(new_graph)
            )
        self.graph = new_graph
        self.update_log.append(batch)
        # Not the in-session log's count: a recovered supervisor starts
        # at the recovered epoch with an empty session log.
        self.epoch = epoch_from + 1
        if self.state_store is not None:
            self.state_store.maybe_snapshot(self.graph, self.epoch)
        shm_names = None
        if self.shared_pool:
            # Repair the single fleet arena here (bit-identical to a
            # fresh seeded draw on the new graph) and publish the new
            # epoch's segments; the directive carries their names so
            # workers adopt instead of re-applying the batch locally.
            pool = self._ensure_builder_pool()
            structural = any(
                not hasattr(update, "attribute") for update in batch.updates
            )
            pool.repair(
                self.graph,
                touched_nodes(batch.updates) if structural else set(),
            )
            self._pool_shards = None  # the repaired arena is unsharded
            self._publish_shared_state()
            self._rotate_shards()
            shm_names = {
                "graph": self._shm_segments["graph"].name,
                "arena": self._shm_segments["arena"].name,
                "shards": {
                    attr: dict(entry)
                    for attr, entry in self._shard_manifest.items()
                },
            }
        directive = UpdateDirective(
            epoch_from=epoch_from,
            epoch_to=self.epoch,
            updates=batch.updates,
            shm=shm_names,
        )
        for slot in self._slots:
            if slot.task_queue is None:
                continue  # restarting/disabled: the respawn config catches up
            try:
                slot.task_queue.put(directive)
            except Exception:  # noqa: BLE001 — broken pipe = the worker is dead
                self.transport_errors += 1
                self._on_worker_death(slot, "task queue broken (update directive)")
        return self.epoch

    def answer_for(self, seq: int) -> "ServedAnswer | None":
        """The terminal answer for an admitted query, if delivered yet."""
        return self._answers.get(seq)

    def serve(
        self,
        queries: Sequence[CODQuery],
        priorities: "Sequence[int] | None" = None,
        drain_timeout_s: "float | None" = None,
    ) -> list[ServedAnswer]:
        """Admit a workload, drain it, and return answers in input order."""
        if priorities is not None and len(priorities) != len(queries):
            raise ValueError(
                f"{len(priorities)} priorities for {len(queries)} queries"
            )
        seqs = [
            self.submit(
                query,
                PRIORITY_BATCH if priorities is None else priorities[i],
            )
            for i, query in enumerate(queries)
        ]
        self.drain(timeout_s=drain_timeout_s)
        return [self._answers[seq] for seq in seqs]

    def drain(self, timeout_s: "float | None" = None) -> None:
        """Pump until every admitted query is terminal.

        With ``timeout_s`` set, anything still outstanding at expiry is
        refused explicitly (the exactly-once guarantee holds even when
        the drain itself gives up).
        """
        deadline = None if timeout_s is None else time.monotonic() + timeout_s
        while self.outstanding:
            if deadline is not None and time.monotonic() > deadline:
                for seq in list(self._records):
                    if seq not in self._answers:
                        self._deliver_refusal(
                            seq,
                            REFUSED,
                            ServingError(
                                f"supervisor drain timed out after {timeout_s}s"
                            ),
                            "supervisor: drain timeout",
                        )
                return
            self.poll(0.05)

    @property
    def outstanding(self) -> int:
        """Admitted queries not yet terminal."""
        return len(self._records) - len(self._answers)

    # ----------------------------------------------------------- event pump

    def poll(self, wait_s: float = 0.05) -> None:
        """One supervision round: reap events, police workers, dispatch."""
        self._reap_events(wait_s)
        self._police_workers()
        self._dispatch()

    def _reap_events(self, wait_s: float) -> None:
        # Each incarnation writes to its own queue: a worker SIGKILLed
        # mid-``put`` can only poison *its* queue (discarded at respawn),
        # never block its siblings on a shared write lock.
        deadline = time.monotonic() + wait_s
        while True:
            got_result = False
            for slot in self._slots:
                got_result |= self._drain_slot_events(slot)
            # A result frees a worker: stop waiting so the caller can
            # dispatch to it right away instead of idling out the window.
            if got_result or time.monotonic() >= deadline:
                return
            time.sleep(0.005)

    def _drain_slot_events(self, slot: _WorkerSlot) -> bool:
        """Drain one slot's event queue; True if a result was handled."""
        if slot.event_queue is None:
            return False
        got_result = False
        while True:
            try:
                message = slot.event_queue.get_nowait()
            except stdlib_queue.Empty:
                slot.queue_empty_at = time.monotonic()
                return got_result
            except (EOFError, OSError):
                self.transport_errors += 1
                return got_result
            except Exception:  # noqa: BLE001 — a torn pickle must not stop the pump
                self.transport_errors += 1
                return got_result
            self._handle_event(message)
            got_result |= message[0] == MSG_RESULT

    def _handle_event(self, message: tuple) -> None:
        tag, worker_id, incarnation = message[0], message[1], message[2]
        slot = self._slots[worker_id]
        current_incarnation = incarnation == slot.incarnation
        if tag == MSG_HEARTBEAT:
            # Freshness is the beat's per-incarnation sequence number, not
            # a timestamp: child monotonic clocks do not share the
            # supervisor's epoch. Only an unseen (higher) sequence counts,
            # and it freshens the worker only to the last moment the
            # slot's queue was observed empty — the beat must have been
            # sent after that — so a backlog of stale beats drained after
            # a silence cannot mask the silence (a beat already seen never
            # re-freshens either).
            if current_incarnation and int(message[3]) > slot.last_beat_seq:
                slot.last_beat_seq = int(message[3])
                slot.last_seen = max(slot.last_seen, slot.queue_empty_at)
            return
        if current_incarnation:
            slot.last_seen = time.monotonic()
        if tag == MSG_READY:
            if current_incarnation and slot.state == W_STARTING:
                slot.state = W_IDLE
                if len(message) > 3 and isinstance(message[3], dict):
                    attached = list(message[3].get("attached", ()))
                    self.shm_attaches += len(attached)
                    for name in attached:
                        self._shm_attach_counts[name] = (
                            self._shm_attach_counts.get(name, 0) + 1
                        )
                    if attached and self.metrics is not None:
                        self.metrics.counter("shm.attaches").inc(len(attached))
            return
        if tag == MSG_EPOCH:
            if current_incarnation:
                epoch, report = int(message[3]), message[4]
                slot.epoch = epoch
                if report.get("skipped"):
                    self.updates_skipped += 1
                else:
                    self.update_acks += 1
                    agg = self._epoch_reports.setdefault(
                        epoch,
                        {
                            "workers_applied": 0,
                            "updates": int(report.get("updates", 0)),
                            "repaired_samples": 0,
                            "cache_invalidated": 0,
                            "index": {},
                        },
                    )
                    agg["workers_applied"] += 1
                    agg["repaired_samples"] += int(
                        report.get("repaired_samples", 0)
                    )
                    agg["cache_invalidated"] += int(
                        report.get("cache_invalidated", 0)
                    )
                    disposition = str(report.get("index", "none"))
                    agg["index"][disposition] = (
                        agg["index"].get(disposition, 0) + 1
                    )
            return
        if tag == MSG_RESULT:
            seq, wire, health = message[3], message[4], message[5]
            if current_incarnation:
                slot.tasks_done += 1
                slot.last_health = health
                slot.health_incarnation = incarnation
                slot.backoff_attempt = 0  # the worker proved itself healthy
                if slot.current is not None and slot.current.seq == seq:
                    slot.current = None
                    slot.state = W_IDLE
            if seq in self._answers:
                # We already refused/requeued-and-answered this query; a
                # late result from a worker we gave up on is dropped to
                # preserve exactly-once delivery.
                self.duplicate_results += 1
                return
            record = self._records[seq]
            answer = decode_answer(wire, record.query)
            answer.notes.append(
                f"supervisor: served by worker {worker_id} "
                f"(attempt {record.attempt})"
            )
            self._deliver(seq, answer)

    def _police_workers(self) -> None:
        now = time.monotonic()
        for slot in self._slots:
            if slot.state == W_DISABLED:
                continue
            if slot.state == W_RESTARTING:
                if now >= slot.respawn_at:
                    self._spawn(slot, now)
                continue
            if slot.proc is None or not slot.proc.is_alive():
                self._on_worker_death(slot, "process exited")
            elif (
                slot.state == W_BUSY
                and now - slot.dispatched_at > self.task_timeout_s
            ):
                self.wedge_kills += 1
                self._kill(slot)
                self._on_worker_death(
                    slot,
                    f"wedged: task overran {self.task_timeout_s}s deadline",
                )
            elif (
                slot.state == W_STARTING
                and now - slot.spawned_at > self.start_timeout_s
            ):
                self._kill(slot)
                self._on_worker_death(
                    slot, f"start timeout after {self.start_timeout_s}s"
                )
            elif now - slot.last_seen > self.heartbeat_timeout_s:
                self.heartbeat_kills += 1
                self._kill(slot)
                self._on_worker_death(slot, "heartbeat went stale")
        if self.outstanding and all(
            slot.state == W_DISABLED for slot in self._slots
        ):
            for seq in list(self._records):
                if seq not in self._answers:
                    self._deliver_refusal(
                        seq,
                        REFUSED,
                        WorkerCrashError(
                            "every worker slot is disabled "
                            f"(restart budget of {self.max_restarts} spent)"
                        ),
                        "supervisor: no workers left",
                    )

    def _dispatch(self) -> None:
        for slot in self._slots:
            if slot.state != W_IDLE:
                continue
            seq = self._next_dispatchable(slot)
            if seq is None:
                return
            record = self._records[seq]
            self._account_affinity(record, slot)
            chaos = self.chaos.take(seq) if record.attempt == 0 else None
            if chaos == CHAOS_CORRUPT_CHECKPOINT:
                self._corrupt_checkpoints()
                chaos = None
            task = Task(
                seq=seq,
                node=record.query.node,
                attribute=record.query.attribute,
                k=record.query.k,
                deadline_s=self.server_options.get("deadline_s"),
                sample_budget=self.server_options.get("sample_budget"),
                attempt=record.attempt,
                chaos=chaos,
                wedge_s=self.wedge_s,
            )
            record.dispatched_to = slot.slot
            slot.current = task
            slot.dispatched_at = time.monotonic()
            slot.state = W_BUSY
            try:
                slot.task_queue.put(task)
            except Exception:  # noqa: BLE001 — broken pipe = the worker is dead
                self.transport_errors += 1
                self._on_worker_death(slot, "task queue broken")

    def _next_dispatchable(self, slot: "_WorkerSlot | None" = None) -> "int | None":
        """Next admitted query for ``slot``: requeued work first, then the
        admission queue — preferring, when affinity dispatch is on,
        queries whose attribute this slot already serves (so its weighted
        graph / LORE / restricted-arena caches stay hot). Preference is
        scored, not boolean: an attribute whose *restricted shard* is
        routed to this slot outranks (2) a mere sticky-claim/unclaimed
        match (1), so shard-covered work gravitates to the one worker
        with the shard segment already mapped; attributes claimed by (or
        sharded to) another slot score 0 but can still drain here
        (counted as a miss) rather than wait — the queue falls back to
        its FIFO head when nothing scores, so nothing starves.
        """
        while self._requeue:
            seq = self._requeue.pop(0)
            if seq not in self._answers:
                return seq
        prefer = None
        if self.affinity and slot is not None:
            slot_id = slot.slot

            def prefer(seq: int) -> int:
                record = self._records.get(seq)
                if record is None:
                    return 0
                attribute = record.query.attribute
                shard_slot = self._shard_slots.get(attribute)
                if shard_slot is not None:
                    return 2 if shard_slot == slot_id else 0
                claimed = self._affinity_slots.get(attribute)
                return 1 if claimed is None or claimed == slot_id else 0

        while True:
            seq = self.queue.pop(prefer=prefer)
            if seq is None:
                return None
            if seq not in self._answers:
                return seq

    def _account_affinity(self, record: "_TaskRecord", slot: "_WorkerSlot") -> None:
        """Affinity bookkeeping for one dispatch.

        Sticky claims: first claim wins; a re-dispatch to the claiming
        slot is a hit, elsewhere a miss. The claim table is an LRU
        bounded by ``affinity_max_claims`` — touching an attribute
        refreshes it, and the coldest claim is evicted (counted) when
        the table would overflow. Shard routing is accounted separately:
        a shard-covered attribute dispatched to its routed slot is a
        ``shard_hit``, elsewhere a ``shard_miss``.
        """
        if not self.affinity:
            return
        attribute = record.query.attribute
        shard_slot = self._shard_slots.get(attribute)
        if shard_slot is not None:
            if shard_slot == slot.slot:
                self.affinity_shard_hits += 1
                if self.metrics is not None:
                    self.metrics.counter("affinity.shard_hits").inc()
            else:
                self.affinity_shard_misses += 1
                if self.metrics is not None:
                    self.metrics.counter("affinity.shard_misses").inc()
        claimed = self._affinity_slots.get(attribute)
        if claimed is None:
            self._affinity_slots[attribute] = slot.slot
            self.affinity_claims += 1
            while len(self._affinity_slots) > self.affinity_max_claims:
                self._affinity_slots.popitem(last=False)
                self._count_affinity_evictions(1)
        else:
            self._affinity_slots.move_to_end(attribute)
            if claimed == slot.slot:
                self.affinity_hits += 1
            else:
                self.affinity_misses += 1

    def _count_affinity_evictions(self, n: int) -> None:
        self.affinity_evictions += n
        if self.metrics is not None:
            self.metrics.counter("affinity.evictions").inc(n)

    # ------------------------------------------------------- fault handling

    def _spawn(self, slot: _WorkerSlot, now: float) -> None:
        slot.incarnation += 1
        if self.shared_pool and slot.incarnation > 1:
            # Respawn after a death: reclaim any segment stranded by a
            # process that died without cleanup (pid-tag pattern — the
            # same contract clean_stale_tmp enforces for index tmp files).
            self._sweep_segments()
        slot.task_queue = self._ctx.Queue()
        slot.event_queue = self._ctx.Queue()
        index_path = None
        if self.index_dir is not None:
            index_path = str(self.index_dir / f"worker{slot.slot}.himor.json")
        shm_graph = shm_arena = None
        if self.shared_pool and self._shm_segments:
            shm_graph = self._shm_segments["graph"].name
            shm_arena = self._shm_segments["arena"].name
        config = WorkerConfig(
            worker_id=slot.slot,
            incarnation=slot.incarnation,
            # Under a shared pool the graph crosses as a segment name, not
            # a pickled copy — the worker attaches it zero-copy.
            graph=None if shm_graph is not None else self.graph,
            server_options=dict(self.server_options),
            index_path=index_path,
            checkpoint_every=self.checkpoint_every,
            heartbeat_interval_s=self.heartbeat_interval_s,
            warm_index=self.warm_index,
            chaos_specs=[dict(s) for s in self.worker_fault_specs],
            profile=self.profile,
            use_pool=self.use_pool,
            pool_seeded=self.pool_seeded,
            epoch=self.epoch,
            shm_graph=shm_graph,
            shm_arena=shm_arena,
            shm_shards=(
                {a: dict(e) for a, e in self._shard_manifest.items()}
                if self.shared_pool and self._shard_manifest
                else None
            ),
        )
        process = self._ctx.Process(
            target=worker_main,
            args=(config, slot.task_queue, slot.event_queue),
            name=f"cod-worker-{slot.slot}",
            daemon=True,
        )
        process.start()
        slot.proc = process
        slot.state = W_STARTING
        slot.current = None
        slot.spawned_at = now
        slot.last_seen = now
        slot.last_beat_seq = 0  # beat sequences restart with the incarnation
        slot.queue_empty_at = now  # the fresh incarnation's queue starts empty
        slot.epoch = self.epoch  # bootstrapped from the post-update graph

    def _kill(self, slot: _WorkerSlot) -> None:
        if slot.proc is not None and slot.proc.is_alive():
            slot.proc.kill()
            slot.proc.join(timeout=5.0)

    def _on_worker_death(self, slot: _WorkerSlot, reason: str) -> None:
        slot.death_reasons.append(reason)
        if slot.proc is not None:
            slot.proc.join(timeout=1.0)
            slot.proc = None
        # Salvage any result the dead incarnation already queued — it may
        # have answered its task and died after; that answer still counts
        # (and spares the requeue) and its health snapshot belongs in the
        # fold below.
        self._drain_slot_events(slot)
        # Fold the dying incarnation's cumulative counters into the slot
        # totals, then retire the snapshot: until the respawn bumps the
        # incarnation, health() would otherwise count it a second time as
        # the slot's current one.
        if slot.last_health is not None and slot.health_incarnation == slot.incarnation:
            slot.resumed_builds_total += int(
                slot.last_health.get("index_builds_resumed", 0)
            )
            worker_metrics = slot.last_health.get("metrics")
            if worker_metrics:
                slot.metrics_prior = MetricsRegistry.merge_snapshots(
                    [slot.metrics_prior, worker_metrics]
                )
            slot.health_incarnation = -1
        for queue in (slot.task_queue, slot.event_queue):
            if queue is not None:
                try:
                    queue.close()
                except Exception:  # noqa: BLE001 — a broken queue is expected here
                    pass
        slot.task_queue = None
        slot.event_queue = None
        # The dead incarnation's caches are gone with its process: claims
        # pointing at this slot are stale (a respawn starts cold), so drop
        # them and re-route its shards to a slot that is still live.
        stale = [
            attribute
            for attribute, claimed in self._affinity_slots.items()
            if claimed == slot.slot
        ]
        for attribute in stale:
            del self._affinity_slots[attribute]
        if stale:
            self._count_affinity_evictions(len(stale))
        for attr, routed in list(self._shard_slots.items()):
            if routed == slot.slot:
                survivors = [
                    s.slot
                    for s in self._slots
                    if s.slot != slot.slot and s.state != W_DISABLED
                ]
                if survivors:
                    load = {sid: 0 for sid in survivors}
                    for assigned in self._shard_slots.values():
                        if assigned in load:
                            load[assigned] += 1
                    self._shard_slots[attr] = min(
                        survivors, key=lambda sid: (load[sid], sid)
                    )
                # A single-worker fleet keeps the routing: the respawn
                # re-adopts the manifest via its spawn config.
        task, slot.current = slot.current, None
        if task is not None and task.seq not in self._answers:
            record = self._records[task.seq]
            if record.requeued:
                self.refused_crash += 1
                self._deliver_refusal(
                    task.seq,
                    REFUSED_CRASH,
                    WorkerCrashError(
                        f"worker died twice on this query "
                        f"(last: worker {slot.slot}, {reason})"
                    ),
                    f"supervisor: worker {slot.slot} died ({reason}); "
                    f"requeue budget spent",
                )
            else:
                record.requeued = True
                record.attempt += 1
                self._requeue.append(task.seq)
        slot.restarts += 1
        self.restarts_total += 1
        if slot.restarts > self.max_restarts:
            slot.state = W_DISABLED
            return
        delay = self.restart_backoff.delay(slot.backoff_attempt)
        slot.backoff_attempt += 1
        slot.respawn_at = time.monotonic() + delay
        slot.state = W_RESTARTING

    def _corrupt_checkpoints(self) -> None:
        """Scripted chaos: damage every on-disk build checkpoint."""
        if self.index_dir is None:
            return
        for path in self.index_dir.glob("*.ckpt"):
            corrupt_file(path, mode="truncate")

    # -------------------------------------------------------------- answers

    def _deliver(self, seq: int, answer: ServedAnswer) -> None:
        assert seq not in self._answers, f"duplicate terminal answer for {seq}"
        self._answers[seq] = answer
        if answer.refused:
            self.stats.record_refusal(answer.elapsed)
        else:
            self.stats.record_answer(answer.rung, answer.elapsed)

    def _deliver_refusal(
        self, seq: int, rung: str, error: Exception, note: str
    ) -> None:
        record = self._records[seq]
        self._deliver(
            seq,
            ServedAnswer(
                query=record.query,
                members=None,
                rung=rung,
                notes=[note],
                error=error,
                epoch=self.epoch,
            ),
        )

    def _deliver_overload(self, seq: int, priority: int) -> None:
        self.refused_overload += 1
        self._deliver_refusal(
            seq,
            REFUSED_OVERLOAD,
            OverloadError(self.queue.depth, self.queue.capacity),
            f"supervisor: shed at priority {priority} "
            f"(queue {self.queue.depth}/{self.queue.capacity})",
        )

    # --------------------------------------------------------------- health

    def health(self) -> dict:
        """One aggregated operational snapshot across the fleet.

        Combines supervisor-side end-to-end stats (per-rung counts,
        latency percentiles over *delivered* answers, shed/crash/refusal
        counters, queue depth, restarts) with each worker's last
        self-reported :meth:`CODServer.health` snapshot.
        """
        snapshot = self.stats.as_dict()
        worker_retries = 0
        resumed_builds = 0
        per_worker: dict[str, dict] = {}
        metrics_parts: "list[dict | None]" = []
        for slot in self._slots:
            current = (
                slot.last_health
                if slot.health_incarnation == slot.incarnation
                else None
            )
            slot_resumed = slot.resumed_builds_total + (
                int(current.get("index_builds_resumed", 0)) if current else 0
            )
            resumed_builds += slot_resumed
            metrics_parts.append(slot.metrics_prior)
            if current:
                metrics_parts.append(current.get("metrics"))
            per_worker[str(slot.slot)] = {
                "state": slot.state,
                "restarts": slot.restarts,
                "tasks_done": slot.tasks_done,
                "resumed_builds": slot_resumed,
                "epoch": slot.epoch,
                "death_reasons": list(slot.death_reasons),
                "health": slot.last_health,
            }
            if slot.last_health is not None:
                worker_retries += slot.last_health.get("retries", 0)
        snapshot.update(
            {
                "n_workers": self.n_workers,
                "admitted": len(self._records),
                "completed": len(self._answers),
                "outstanding": self.outstanding,
                "queue_depth": self.queue.depth + len(self._requeue),
                "shed": self.queue.shed_queued + self.queue.refused_incoming,
                "refused_overload": self.refused_overload,
                "refused_crash": self.refused_crash,
                "restarts": self.restarts_total,
                "wedge_kills": self.wedge_kills,
                "heartbeat_kills": self.heartbeat_kills,
                "duplicate_results": self.duplicate_results,
                "transport_errors": self.transport_errors,
                "affinity": {
                    "enabled": self.affinity,
                    "attributes": len(self._affinity_slots),
                    "claims": self.affinity_claims,
                    "hits": self.affinity_hits,
                    "misses": self.affinity_misses,
                    "evictions": self.affinity_evictions,
                    "max_claims": self.affinity_max_claims,
                    "shard_hits": self.affinity_shard_hits,
                    "shard_misses": self.affinity_shard_misses,
                    "shard_slots": {
                        str(attr): slot_id
                        for attr, slot_id in sorted(self._shard_slots.items())
                    },
                },
                "worker_retries": worker_retries,
                "resumed_builds": resumed_builds,
                "epoch": self.epoch,
                "updates": {
                    "batches_submitted": self.update_log.epoch,
                    "acks": self.update_acks,
                    "skipped": self.updates_skipped,
                    "per_epoch": {
                        str(epoch): dict(report)
                        for epoch, report in sorted(self._epoch_reports.items())
                    },
                },
                "chaos_fired": dict(self.chaos.fired),
                "workers": per_worker,
                "shm": {
                    "enabled": self.shared_pool,
                    "segments": {
                        kind: {
                            "name": segment.name,
                            "bytes": segment.nbytes,
                            "attaches": self._shm_attach_counts.get(
                                segment.name, 0
                            ),
                        }
                        for kind, segment in self._shm_segments.items()
                    },
                    "segment_bytes": sum(
                        segment.nbytes
                        for segment in self._shm_segments.values()
                    ),
                    "attaches": self.shm_attaches,
                    "publishes": self.shm_publishes,
                    "sweeps": self.shm_sweeps,
                    "swept_segments": self.shm_swept_segments,
                    "shard_offsets": self._pool_shards,
                    "shards": {
                        "enabled": self.shard_enabled,
                        "published": {
                            str(attr): {
                                "name": entry["name"],
                                "vertex": entry["vertex"],
                                "epoch": entry["epoch"],
                                "samples": entry["samples"],
                                "bytes": self._shard_segments_by_attr[
                                    attr
                                ].nbytes,
                            }
                            for attr, entry in sorted(
                                self._shard_manifest.items()
                            )
                        },
                        "bytes": sum(
                            s.nbytes
                            for s in self._shard_segments_by_attr.values()
                        ),
                        "publishes": self.shard_publishes,
                        "rotations": self.shard_rotations,
                    },
                },
                # Fleet-wide metrics rollup: dead incarnations' folded
                # snapshots plus each live worker's latest, merged —
                # including the supervisor's own durability registry.
                "fleet_metrics": MetricsRegistry.merge_snapshots(
                    metrics_parts
                    + ([self.metrics.snapshot()] if self.metrics else [])
                ),
            }
        )
        if self.state_store is not None:
            recovery = self.recovery
            snapshot["durability"] = {
                "state_dir": str(self.state_store.state_dir),
                "snapshot_every": self.state_store.snapshot_every,
                "snapshots": self.state_store.snapshots.epochs(),
                "quarantined": [
                    str(p) for p in self.state_store.snapshots.quarantined
                ],
                "recovery": None if recovery is None else {
                    "epoch": recovery.epoch,
                    "snapshot_epoch": recovery.snapshot_epoch,
                    "replayed_epochs": recovery.replayed_epochs,
                    "truncated_records": recovery.truncated_records,
                    "seconds": recovery.seconds,
                },
            }
        return snapshot
