"""Batch query planner: attribute grouping over shared RR samples.

RR samples depend only on the graph and the diffusion model — never on
the query (the Theorem-2 observation behind
:class:`~repro.core.pool.SharedSamplePool`) — and every *per-attribute*
structure a query needs (attribute-weighted graph, LORE chain, restricted
arena) is a deterministic function of the graph and the attribute. A
workload of admitted queries therefore factors cleanly:

* **group** the workload by query attribute (first-appearance order,
  input order within a group),
* **build once per group** — the group's first query populates the
  server's bounded LRU caches (weighted graph, LORE, restricted arenas)
  and every later query in the group hits them, and
* **share one pool** — with a :class:`SharedSamplePool` attached to the
  server, all compressed evaluations read the same materialized
  :class:`~repro.influence.arena.RRArena` instead of re-sampling
  ``theta * n`` RR graphs per query.

**Bit-identity.** In pooled mode the server draws nothing from its own
RNG per query, so each answer is a pure function of (query, pool, server
config) and reordering the workload cannot change any answer — the
planner exploits this by executing group-by-group. Without a pool the
planner still *plans* groups (the caches still help) but executes in
input order, because fresh sampling consumes the server's RNG stream and
reordering would change which samples each query sees. Either way the
answers are bit-identical to sequential :meth:`CODServer.answer` calls
on the same server, which the differential suite
(``tests/serving/test_planner.py``) pins.

**Failure isolation.** A query that raises — even a caller error like an
invalid node — becomes a refused :class:`ServedAnswer` carrying the
error, and its *actual* elapsed time (measured on the server's clock) is
what enters the refusal-latency reservoir. The previous inline batch
loop recorded a fabricated ``0.0`` for such failures, silently dragging
refusal p50/p95 toward zero.

Budgets and degradation are untouched: every query still runs under the
server's deadline/sample budget and full CODL → CODL- → CODU → refusal
ladder.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator

from repro.core.problem import CODQuery
from repro.serving.server import REFUSED, ServedAnswer

if TYPE_CHECKING:  # pragma: no cover
    from repro.serving.server import CODServer


@dataclass
class QueryGroup:
    """One attribute's slice of a planned window.

    ``indices`` are positions in the *window* the plan was built from;
    queries keep their input order within the group.
    """

    attribute: "int | None"
    indices: list[int] = field(default_factory=list)
    queries: list[CODQuery] = field(default_factory=list)

    @property
    def size(self) -> int:
        return len(self.queries)


@dataclass
class BatchPlan:
    """The planner's decision for one window of queries.

    ``grouped_execution`` says whether execution may follow group order
    (pooled server) or must follow input order (fresh-sampling server,
    where reordering would change the RNG stream each query sees).
    """

    groups: list[QueryGroup]
    grouped_execution: bool
    #: Groups whose attribute has a published restricted shard adopted by
    #: the server (their CODL fallbacks attach the shard instead of
    #: restricting the full arena; see :meth:`CODServer.adopt_shards`).
    shard_covered: int = 0

    @property
    def n_queries(self) -> int:
        return sum(g.size for g in self.groups)

    @property
    def n_groups(self) -> int:
        return len(self.groups)

    def order(self) -> Iterator[tuple[int, CODQuery]]:
        """Yield ``(window_index, query)`` in execution order."""
        if self.grouped_execution:
            for group in self.groups:
                yield from zip(group.indices, group.queries)
        else:
            flat = [
                (i, q)
                for group in self.groups
                for i, q in zip(group.indices, group.queries)
            ]
            flat.sort(key=lambda pair: pair[0])
            yield from flat

    def describe(self) -> dict:
        """JSON-able summary for health reports and the CLI."""
        return {
            "queries": self.n_queries,
            "groups": self.n_groups,
            "grouped_execution": self.grouped_execution,
            "shard_covered": self.shard_covered,
            "group_sizes": {
                str(g.attribute): g.size for g in self.groups
            },
        }


class BatchPlanner:
    """Plan and execute query workloads against one :class:`CODServer`.

    The planner owns no state beyond counters and the last plan; all
    reuse lives in the server's bounded caches and (optionally) its
    sample pool, so interleaving planned batches with direct
    :meth:`CODServer.answer` calls is safe.
    """

    def __init__(self, server: "CODServer") -> None:
        self.server = server
        self.last_plan: "BatchPlan | None" = None
        self.batches = 0
        self.queries = 0

    def plan(self, queries: "Iterable[CODQuery]") -> BatchPlan:
        """Group a window by attribute, preserving input order per group."""
        groups: dict[object, QueryGroup] = {}
        for i, query in enumerate(queries):
            attribute = getattr(query, "attribute", None)
            group = groups.get(attribute)
            if group is None:
                group = groups[attribute] = QueryGroup(attribute=attribute)
            group.indices.append(i)
            group.queries.append(query)
        manifest = getattr(self.server, "_shard_manifest", None) or {}
        return BatchPlan(
            groups=list(groups.values()),
            grouped_execution=self.server.pool is not None,
            shard_covered=sum(
                1
                for attribute in groups
                if attribute is not None and int(attribute) in manifest
            ),
        )

    def execute(
        self,
        queries: "list[CODQuery]",
        batch_size: "int | None" = None,
    ) -> list[ServedAnswer]:
        """Answer a workload, returning answers in input order.

        ``batch_size`` windows the workload: each consecutive window of
        that many queries is planned and executed independently (``None``
        plans the whole workload at once). With a pooled server the pool
        is materialized up front so its one-off sampling cost is not
        charged to whichever query happens to execute first.
        """
        if batch_size is not None and batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size!r}")
        if self.server.pool is not None and queries:
            self.server.pool.materialize()
        window = len(queries) if batch_size is None else batch_size
        answers: "list[ServedAnswer | None]" = [None] * len(queries)
        for start in range(0, len(queries), max(1, window)):
            chunk = queries[start : start + window]
            plan = self.plan(chunk)
            self.last_plan = plan
            self.batches += 1
            self.queries += plan.n_queries
            self._record_plan(plan)
            for local_index, query in plan.order():
                answers[start + local_index] = self._answer_isolated(query)
        return [a for a in answers if a is not None]

    # ----------------------------------------------------------- internals

    def _answer_isolated(self, query: CODQuery) -> ServedAnswer:
        """One query, failures contained — with honest elapsed accounting."""
        clock = self.server._clock
        start = clock()
        try:
            return self.server.answer(query)
        except Exception as exc:  # noqa: BLE001 — isolate, never abort
            elapsed = clock() - start
            self.server.stats.query_errors += 1
            self.server.stats.record_refusal(elapsed)
            return ServedAnswer(
                query=query,
                members=None,
                rung=REFUSED,
                elapsed=elapsed,
                notes=[f"batch: {type(exc).__name__}: {exc}"],
                error=exc,
                epoch=self.server.epoch,
            )

    def _record_plan(self, plan: BatchPlan) -> None:
        metrics = self.server.metrics
        if metrics is None:
            return
        metrics.counter("planner.batches").inc()
        metrics.counter("planner.groups").inc(plan.n_groups)
        metrics.counter("planner.queries").inc(plan.n_queries)
        if plan.shard_covered:
            metrics.counter("planner.shard_groups").inc(plan.shard_covered)
        metrics.gauge("planner.last_groups").set(plan.n_groups)

    def __repr__(self) -> str:
        return (
            f"BatchPlanner(batches={self.batches}, queries={self.queries}, "
            f"pooled={self.server.pool is not None})"
        )
