"""Observability: metrics registry, query tracing, profiling hooks.

Three cooperating, dependency-free pieces:

* :class:`MetricsRegistry` — named counters, gauges, and bounded
  histograms, snapshot-able to plain JSON dicts and mergeable across
  supervisor workers (:meth:`MetricsRegistry.merge_snapshots`).
* :class:`QueryTrace` — a per-query span tree recording wall time and
  structured annotations (RR samples drawn, arena nodes/edges touched,
  ladder rung, retries, breaker state) for every stage of one answer.
* :class:`StageProfiler` — a trace-shaped adapter that folds span
  durations and annotations into a registry, giving opt-in per-stage
  timers without a second instrumentation surface.

The long-running primitives (``sample_arena``, ``compressed_cod``,
``lore_chain``, ``HimorIndex.build``) accept an optional ``trace``
argument duck-typed exactly like the execution budget: anything exposing
``span(name, **meta)`` returning a context manager whose value has
``note(**meta)`` works, and ``core``/``influence`` never import this
package. Instrumentation is strictly observational — it never touches an
RNG or alters control flow, so instrumented and uninstrumented runs are
bit-identical in results (asserted in ``tests/obs``).
"""

from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.trace import QueryTrace, Span, TeeTrace
from repro.obs.profiler import StageProfiler

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "QueryTrace",
    "Span",
    "StageProfiler",
    "TeeTrace",
]
