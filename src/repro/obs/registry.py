"""Metric primitives: counters, gauges, bounded histograms, registry.

Everything here is plain Python (stdlib only) and JSON-friendly. A
:class:`MetricsRegistry` owns named instruments created on first use;
:meth:`MetricsRegistry.snapshot` renders the whole registry as one
JSON-serializable dict, and :meth:`MetricsRegistry.merge_snapshots`
combines snapshots from independent processes (the supervisor's fleet
rollup): counters and gauges sum, histograms pool their streaming
aggregates exactly and their reservoirs approximately.

Histograms are **bounded**: they keep exact streaming ``count``, ``sum``,
``min``, and ``max``, plus a fixed-capacity uniform reservoir (Vitter's
Algorithm R with a private seeded generator) for percentiles — memory is
O(capacity) no matter how many values are recorded, and percentiles are
exact until the stream outgrows the reservoir. The private generator
means recording metrics never perturbs any model RNG stream.
"""

from __future__ import annotations

import math
import random
import threading
from typing import Iterable, Sequence

#: Snapshot sections, in render order.
_SECTIONS = ("counters", "gauges", "histograms")


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (must be non-negative) to the counter."""
        if n < 0:
            raise ValueError(f"counters only go up; got increment {n!r}")
        self.value += int(n)


class Gauge:
    """A point-in-time float (queue depth, pool size, ...)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, delta: float) -> None:
        self.value += float(delta)


class Histogram:
    """Bounded distribution sketch: exact aggregates + uniform reservoir.

    Parameters
    ----------
    capacity:
        Reservoir bound. Memory is O(capacity) regardless of how many
        values are recorded; percentiles are exact while
        ``count <= capacity`` and unbiased estimates afterwards.
    seed:
        Seed of the private ``random.Random`` driving reservoir
        replacement — deterministic, and isolated from every model RNG.
    """

    __slots__ = ("capacity", "count", "total", "min_value", "max_value",
                 "_values", "_rng")

    def __init__(self, capacity: int = 512, seed: int = 0) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity!r}")
        self.capacity = int(capacity)
        self.count = 0
        self.total = 0.0
        self.min_value: "float | None" = None
        self.max_value: "float | None" = None
        self._values: list[float] = []
        self._rng = random.Random(seed)

    # ------------------------------------------------------------ recording

    def record(self, value: float) -> None:
        """Fold one value into the streaming aggregates and the reservoir."""
        value = float(value)
        if math.isnan(value):
            raise ValueError("cannot record NaN into a histogram")
        self.count += 1
        self.total += value
        if self.min_value is None or value < self.min_value:
            self.min_value = value
        if self.max_value is None or value > self.max_value:
            self.max_value = value
        if len(self._values) < self.capacity:
            self._values.append(value)
        else:
            # Algorithm R: keep each of the `count` values with equal
            # probability capacity/count.
            j = self._rng.randrange(self.count)
            if j < self.capacity:
                self._values[j] = value

    # ------------------------------------------------------------ reporting

    @property
    def mean(self) -> float:
        """Exact streaming mean (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, fraction: float) -> float:
        """Nearest-rank percentile over the reservoir (0.0 when empty).

        Out-of-range fractions raise even on an empty histogram — a bad
        argument is the caller's bug regardless of the data.
        """
        return self.percentiles((fraction,))[0]

    def percentiles(self, fractions: Sequence[float]) -> list[float]:
        """Several nearest-rank percentiles with a single sort."""
        for fraction in fractions:
            if not 0.0 <= fraction <= 1.0:
                raise ValueError(
                    f"fraction must be in [0, 1], got {fraction!r}"
                )
        if not self._values:
            return [0.0 for _ in fractions]
        ordered = sorted(self._values)
        return [
            ordered[max(1, math.ceil(fraction * len(ordered))) - 1]
            for fraction in fractions
        ]

    def as_dict(self) -> dict:
        """JSON form; carries the reservoir so snapshots stay mergeable."""
        p50, p95 = self.percentiles((0.50, 0.95))
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min_value,
            "max": self.max_value,
            "p50": p50,
            "p95": p95,
            "capacity": self.capacity,
            "values": list(self._values),
        }


class MetricsRegistry:
    """Named instruments, created on first use.

    Instrument creation is guarded by a lock so a registry can be shared
    with background threads (e.g. a heartbeat thread gauging its lag);
    individual ``inc``/``set``/``record`` calls are simple attribute
    updates and are safe under CPython for the single-writer pattern the
    serving layer uses.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter()
        return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge()
        return instrument

    def histogram(self, name: str, capacity: int = 512) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram(
                    capacity=capacity
                )
        return instrument

    # ------------------------------------------------------------ snapshots

    def snapshot(self) -> dict:
        """One JSON-serializable dict of every instrument's state."""
        return {
            "counters": {k: c.value for k, c in sorted(self._counters.items())},
            "gauges": {k: g.value for k, g in sorted(self._gauges.items())},
            "histograms": {
                k: h.as_dict() for k, h in sorted(self._histograms.items())
            },
        }

    @staticmethod
    def merge_snapshots(snapshots: Iterable["dict | None"]) -> dict:
        """Combine snapshots from independent registries (fleet rollup).

        Counters and gauges sum (a fleet-wide gauge is the sum of the
        per-worker readings). Histograms combine their streaming
        ``count``/``sum``/``min``/``max`` exactly; the merged reservoir is
        a deterministic count-weighted subsample of the parts, bounded by
        the largest part capacity, from which ``mean``/``p50``/``p95``
        are recomputed. ``None`` entries are skipped, so callers can pass
        per-worker snapshots straight from an optional health field.
        """
        merged: dict = {section: {} for section in _SECTIONS}
        hist_parts: dict[str, list[dict]] = {}
        for snap in snapshots:
            if not snap:
                continue
            for name, value in snap.get("counters", {}).items():
                merged["counters"][name] = (
                    merged["counters"].get(name, 0) + int(value)
                )
            for name, value in snap.get("gauges", {}).items():
                merged["gauges"][name] = (
                    merged["gauges"].get(name, 0.0) + float(value)
                )
            for name, part in snap.get("histograms", {}).items():
                hist_parts.setdefault(name, []).append(part)
        for name, parts in hist_parts.items():
            merged["histograms"][name] = _merge_histograms(parts)
        for section in _SECTIONS:
            merged[section] = dict(sorted(merged[section].items()))
        return merged


def _merge_histograms(parts: list[dict]) -> dict:
    """Pool histogram snapshots: exact aggregates, weighted reservoir."""
    count = sum(int(p["count"]) for p in parts)
    total = sum(float(p["sum"]) for p in parts)
    mins = [p["min"] for p in parts if p["min"] is not None]
    maxs = [p["max"] for p in parts if p["max"] is not None]
    capacity = max(int(p.get("capacity", 512)) for p in parts)
    values = _weighted_downsample(
        [(list(p.get("values", [])), int(p["count"])) for p in parts],
        capacity,
    )
    p50, p95 = _nearest_rank(values, (0.50, 0.95))
    return {
        "count": count,
        "sum": total,
        "mean": total / count if count else 0.0,
        "min": min(mins) if mins else None,
        "max": max(maxs) if maxs else None,
        "p50": p50,
        "p95": p95,
        "capacity": capacity,
        "values": values,
    }


def _weighted_downsample(
    parts: list[tuple[list[float], int]], capacity: int
) -> list[float]:
    """Deterministically bound a merged reservoir to ``capacity`` values.

    Each part contributes a share of the merged reservoir proportional to
    its *stream* count (not its reservoir size), taken as evenly spaced
    order statistics of its sorted reservoir — so a worker that served
    10x the queries dominates the merged percentiles 10:1, and merging
    the same snapshots always yields the same result.
    """
    total = sum(count for _, count in parts if count > 0)
    if total == 0:
        return []
    kept: list[float] = []
    for values, count in parts:
        if not values or count <= 0:
            continue
        quota = max(1, round(capacity * count / total))
        kept.extend(_spaced_order_statistics(values, quota))
    if len(kept) > capacity:
        kept = _spaced_order_statistics(kept, capacity)
    return kept


def _spaced_order_statistics(values: list[float], quota: int) -> list[float]:
    """``quota`` evenly spaced elements of ``sorted(values)``."""
    ordered = sorted(values)
    if len(ordered) <= quota:
        return ordered
    if quota == 1:
        return [ordered[len(ordered) // 2]]
    step = (len(ordered) - 1) / (quota - 1)
    return [ordered[round(i * step)] for i in range(quota)]


def _nearest_rank(
    values: list[float], fractions: Sequence[float]
) -> list[float]:
    if not values:
        return [0.0 for _ in fractions]
    ordered = sorted(values)
    return [
        ordered[max(1, math.ceil(fraction * len(ordered))) - 1]
        for fraction in fractions
    ]
