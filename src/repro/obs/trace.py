"""Per-query span trees.

A :class:`QueryTrace` records one query's journey through the serving
stack as nested :class:`Span`\\ s — one per stage (``sampling``,
``lore``, ``compressed_eval``, ``himor_lookup``, one per ladder rung,
...) — each carrying wall time plus structured annotations
(``span.note(samples=..., arena_nodes=...)``).

The trace object is what the instrumented call sites duck-type against:
``trace.span(name, **meta)`` is a context manager yielding the span, and
the yielded span exposes ``note(**meta)``. :class:`TeeTrace` fans one
instrumentation stream into several consumers (e.g. a caller's
:class:`QueryTrace` *and* a :class:`~repro.obs.profiler.StageProfiler`
feeding a metrics registry) without the call sites knowing.

Tracing is purely observational: no RNG is consumed, no control flow
changes, so a traced run returns bit-identical results to an untraced
one.
"""

from __future__ import annotations

import time
from contextlib import ExitStack, contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator


@dataclass
class Span:
    """One timed stage with structured annotations and child spans."""

    name: str
    start_s: float
    elapsed_s: float = 0.0
    meta: dict = field(default_factory=dict)
    children: "list[Span]" = field(default_factory=list)

    def note(self, **meta: object) -> None:
        """Attach annotations (merged into any existing ones)."""
        self.meta.update(meta)

    def as_dict(self) -> dict:
        """JSON form of the subtree."""
        return {
            "name": self.name,
            "start_s": self.start_s,
            "elapsed_s": self.elapsed_s,
            "meta": dict(self.meta),
            "children": [child.as_dict() for child in self.children],
        }

    def find(self, name: str) -> "Span | None":
        """First span named ``name`` in this subtree (pre-order)."""
        if self.name == name:
            return self
        for child in self.children:
            found = child.find(name)
            if found is not None:
                return found
        return None


class QueryTrace:
    """Collects one query's span tree.

    ``span()`` nests: a span opened while another is active becomes its
    child, so the instrumented call sites never pass parent handles
    around. Spans left open by an exception are still closed with their
    elapsed time (the context manager's ``finally``).
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self._epoch = clock()
        self.spans: list[Span] = []
        self._stack: list[Span] = []

    @contextmanager
    def span(self, name: str, **meta: object) -> Iterator[Span]:
        """Open a child of the innermost active span (or a root span)."""
        span = Span(
            name=name, start_s=self._clock() - self._epoch, meta=dict(meta)
        )
        parent = self._stack[-1] if self._stack else None
        (parent.children if parent is not None else self.spans).append(span)
        self._stack.append(span)
        started = self._clock()
        try:
            yield span
        finally:
            span.elapsed_s = self._clock() - started
            self._stack.pop()

    def find(self, name: str) -> "Span | None":
        """First span named ``name`` anywhere in the trace (pre-order)."""
        for root in self.spans:
            found = root.find(name)
            if found is not None:
                return found
        return None

    def as_dict(self) -> dict:
        """JSON form of the whole trace."""
        return {"spans": [span.as_dict() for span in self.spans]}

    def render(self) -> str:
        """Human-readable span tree (the ``cod trace`` output)."""
        lines: list[str] = []
        for root in self.spans:
            _render_span(root, "", True, lines, top=True)
        return "\n".join(lines)


def _render_span(
    span: Span, prefix: str, last: bool, lines: list[str], top: bool = False
) -> None:
    connector = "" if top else ("└─ " if last else "├─ ")
    meta = " ".join(f"{k}={_fmt(v)}" for k, v in span.meta.items())
    line = f"{prefix}{connector}{span.name}  {span.elapsed_s * 1000:.2f}ms"
    if meta:
        line += f"  [{meta}]"
    lines.append(line)
    child_prefix = prefix if top else prefix + ("   " if last else "│  ")
    for i, child in enumerate(span.children):
        _render_span(
            child, child_prefix, i == len(span.children) - 1, lines
        )


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


class TeeTrace:
    """Fan one instrumentation stream out to several trace consumers.

    ``None`` members are dropped, so call sites can compose optional
    consumers without conditionals: ``TeeTrace(caller_trace, profiler)``.
    """

    def __init__(self, *traces: "object | None") -> None:
        self._traces = [t for t in traces if t is not None]

    @contextmanager
    def span(self, name: str, **meta: object) -> Iterator["_TeeSpan"]:
        with ExitStack() as stack:
            handles = [
                stack.enter_context(trace.span(name, **meta))
                for trace in self._traces
            ]
            yield _TeeSpan(handles)


class _TeeSpan:
    """Broadcasts ``note`` to every underlying span handle."""

    __slots__ = ("_handles",)

    def __init__(self, handles: list) -> None:
        self._handles = handles

    def note(self, **meta: object) -> None:
        for handle in self._handles:
            handle.note(**meta)
