"""Profiling hooks: a trace-shaped adapter feeding a metrics registry.

:class:`StageProfiler` implements the same duck-typed ``span()`` protocol
as :class:`~repro.obs.trace.QueryTrace`, but instead of building a tree
it folds every closed span into a :class:`~repro.obs.registry.MetricsRegistry`:

* ``stage.<name>.seconds`` — histogram of the span's wall time;
* ``stage.<name>.calls`` — counter of span openings;
* selected numeric annotations become fleet-meaningful counters
  (``samples`` → ``rr.samples``, ``arena_nodes`` → ``arena.nodes``,
  ``arena_edges`` → ``arena.edges``, ``retries`` → ``query.retries``).

This is how ``CODServer`` turns opt-in profiling on: it wraps each answer
in a profiler (tee'd with any caller-supplied trace) so the existing
trace instrumentation doubles as the stage-timer source — one set of
call sites, two consumers.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Iterator

from repro.obs.registry import MetricsRegistry

#: Span annotations folded into registry counters, by metric name.
COUNTER_NOTES = {
    "samples": "rr.samples",
    "arena_nodes": "arena.nodes",
    "arena_edges": "arena.edges",
    "retries": "query.retries",
}


class StageProfiler:
    """Duck-typed trace consumer that records spans into a registry."""

    def __init__(
        self,
        registry: MetricsRegistry,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.registry = registry
        self._clock = clock

    @contextmanager
    def span(self, name: str, **meta: object) -> Iterator["_ProfileSpan"]:
        handle = _ProfileSpan(dict(meta))
        started = self._clock()
        try:
            yield handle
        finally:
            elapsed = self._clock() - started
            self.registry.histogram(f"stage.{name}.seconds").record(elapsed)
            self.registry.counter(f"stage.{name}.calls").inc()
            for note_key, counter_name in COUNTER_NOTES.items():
                value = handle.meta.get(note_key)
                if isinstance(value, (int, float)) and value > 0:
                    self.registry.counter(counter_name).inc(int(value))


class _ProfileSpan:
    """Annotation sink for one profiled span."""

    __slots__ = ("meta",)

    def __init__(self, meta: dict) -> None:
        self.meta = meta

    def note(self, **meta: object) -> None:
        self.meta.update(meta)
