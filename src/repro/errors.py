"""Exception hierarchy for the ``repro`` package.

All errors raised by the library derive from :class:`ReproError`, so callers
can catch a single base class. More specific subclasses communicate *which*
subsystem rejected the input.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class GraphError(ReproError):
    """Raised for malformed graph construction or access."""


class NodeNotFoundError(GraphError):
    """Raised when a node id is outside ``0..n-1``."""

    def __init__(self, node: int, n: int) -> None:
        super().__init__(f"node {node} is not in the graph (expected 0 <= node < {n})")
        self.node = node
        self.n = n


class AttributeNotFoundError(GraphError):
    """Raised when an attribute id is unknown to the graph."""

    def __init__(self, attribute: int) -> None:
        super().__init__(f"attribute {attribute} is not present on any node")
        self.attribute = attribute


class DisconnectedGraphError(GraphError):
    """Raised when an operation requires a connected graph."""


class HierarchyError(ReproError):
    """Raised for malformed community hierarchies."""


class InfluenceError(ReproError):
    """Raised for invalid influence-model configuration."""


class QueryError(ReproError):
    """Raised for invalid COD queries (bad node, attribute, or k)."""


class IndexError_(ReproError):
    """Raised when a HIMOR index is inconsistent with the graph or hierarchy.

    Named with a trailing underscore to avoid shadowing the builtin.
    """


class DatasetError(ReproError):
    """Raised for unknown dataset names or invalid generator parameters."""


class PersistError(ReproError):
    """Raised for low-level persistence failures (truncated files, partial
    writes, undecodable bytes) detected before an artifact-specific loader
    can assign blame.

    Artifact loaders usually narrow this further (``IndexError_`` for
    HIMOR indexes, ``HierarchyError`` for hierarchies) by passing their
    own ``error_cls`` to :func:`repro.utils.persist.load_versioned_json`.
    """


class CheckpointError(PersistError):
    """Raised when a build checkpoint is unusable: corrupt, truncated, or
    fingerprinted for a different graph/hierarchy/configuration."""


class WalError(PersistError):
    """Raised when the write-ahead log is unusable: an append could not be
    made durable, a record fails its CRC *inside* the acknowledged prefix
    (real corruption, not a torn tail), or epochs are non-contiguous."""


class RecoveryError(PersistError):
    """Raised when crash recovery cannot produce a provably correct state:
    no usable snapshot or base graph, a WAL gap past the snapshot epoch, or
    a replayed epoch whose graph checksum does not match the WAL record."""


class ShmError(PersistError):
    """Raised when a shared-memory segment is unusable: name collisions,
    missing segments, foreign or corrupt headers (bad magic, version,
    checksum), or payload geometry that does not fit the mapping."""


class ServingError(ReproError):
    """Base class for serving-layer failures (budgets, breaker, refusal)."""


class OverloadError(ServingError):
    """Raised (or recorded on a refusal) when admission control sheds a
    query because the bounded queue is full of higher-priority work."""

    def __init__(self, queue_depth: int, capacity: int) -> None:
        super().__init__(
            f"admission queue full ({queue_depth}/{capacity}); "
            f"query shed by load-shedding policy"
        )
        self.queue_depth = queue_depth
        self.capacity = capacity


class WorkerCrashError(ServingError):
    """Recorded on a refusal when a query's worker died twice — once on the
    original dispatch and once on the single requeue it is entitled to."""


class DeadlineExceededError(ServingError):
    """Raised at a cooperative checkpoint once a wall-clock deadline passed."""

    def __init__(self, elapsed: float, deadline: float) -> None:
        super().__init__(
            f"deadline of {deadline:.3f}s exceeded after {elapsed:.3f}s"
        )
        self.elapsed = elapsed
        self.deadline = deadline


class BudgetExhaustedError(ServingError):
    """Raised when a query's RR-sample budget is spent before it finished."""

    def __init__(self, spent: int, budget: int) -> None:
        super().__init__(
            f"RR-sample budget of {budget} exhausted ({spent} samples drawn)"
        )
        self.spent = spent
        self.budget = budget


class CircuitOpenError(ServingError):
    """Raised when a call is short-circuited by an open circuit breaker."""

    def __init__(self, site: str, retry_after: float) -> None:
        super().__init__(
            f"circuit breaker for {site} is open; retry in {retry_after:.3f}s"
        )
        self.site = site
        self.retry_after = retry_after
