"""Exception hierarchy for the ``repro`` package.

All errors raised by the library derive from :class:`ReproError`, so callers
can catch a single base class. More specific subclasses communicate *which*
subsystem rejected the input.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class GraphError(ReproError):
    """Raised for malformed graph construction or access."""


class NodeNotFoundError(GraphError):
    """Raised when a node id is outside ``0..n-1``."""

    def __init__(self, node: int, n: int) -> None:
        super().__init__(f"node {node} is not in the graph (expected 0 <= node < {n})")
        self.node = node
        self.n = n


class AttributeNotFoundError(GraphError):
    """Raised when an attribute id is unknown to the graph."""

    def __init__(self, attribute: int) -> None:
        super().__init__(f"attribute {attribute} is not present on any node")
        self.attribute = attribute


class DisconnectedGraphError(GraphError):
    """Raised when an operation requires a connected graph."""


class HierarchyError(ReproError):
    """Raised for malformed community hierarchies."""


class InfluenceError(ReproError):
    """Raised for invalid influence-model configuration."""


class QueryError(ReproError):
    """Raised for invalid COD queries (bad node, attribute, or k)."""


class IndexError_(ReproError):
    """Raised when a HIMOR index is inconsistent with the graph or hierarchy.

    Named with a trailing underscore to avoid shadowing the builtin.
    """


class DatasetError(ReproError):
    """Raised for unknown dataset names or invalid generator parameters."""
