"""The attributed-graph store.

:class:`AttributedGraph` is the substrate every other subsystem builds on:
an undirected graph over dense integer node ids ``0..n-1``, with optional
categorical node attributes and optional positive edge weights. Adjacency is
stored as one sorted numpy array per node, which makes the hot loops (RR
graph sampling, truss/core peeling, agglomerative clustering) fast while
keeping the structure simple and immutable.

The class is deliberately *not* a general-purpose graph library: it exposes
exactly the operations the COD system needs. Graphs are immutable after
construction; derived graphs (induced subgraphs, reweighted copies) are new
objects.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.errors import AttributeNotFoundError, GraphError, NodeNotFoundError

EdgeList = Sequence[tuple[int, int]]


class AttributedGraph:
    """An immutable undirected graph with categorical node attributes.

    Parameters
    ----------
    n:
        Number of nodes; node ids are ``0..n-1``.
    edges:
        Iterable of ``(u, v)`` pairs. Self-loops are rejected; duplicate
        pairs (in either orientation) are collapsed into one edge.
    attributes:
        Optional per-node attribute sets: a sequence of iterables of
        non-negative ints, one per node. Missing entries mean "no
        attributes".
    edge_weights:
        Optional mapping ``(min(u, v), max(u, v)) -> weight`` with positive
        weights. Unlisted edges default to weight ``1.0``. Weighted graphs
        are produced by :mod:`repro.graph.weighting` for reclustering; the
        influence machinery ignores weights (the paper's weighted-cascade
        probabilities depend on degree only).
    """

    __slots__ = (
        "_n",
        "_m",
        "_adjacency",
        "_weights",
        "_degrees",
        "_attributes",
        "_attribute_index",
        "_is_weighted",
        "_shm",
    )

    def __init__(
        self,
        n: int,
        edges: EdgeList,
        attributes: Sequence[Iterable[int]] | None = None,
        edge_weights: Mapping[tuple[int, int], float] | None = None,
    ) -> None:
        if n <= 0:
            raise GraphError(f"graph must have at least one node, got n={n}")
        self._n = int(n)
        self._shm = None

        neighbor_sets: list[set[int]] = [set() for _ in range(self._n)]
        for u, v in edges:
            u = int(u)
            v = int(v)
            if u == v:
                raise GraphError(f"self-loop ({u}, {v}) is not allowed")
            if not (0 <= u < self._n):
                raise NodeNotFoundError(u, self._n)
            if not (0 <= v < self._n):
                raise NodeNotFoundError(v, self._n)
            neighbor_sets[u].add(v)
            neighbor_sets[v].add(u)

        self._adjacency: list[np.ndarray] = [
            np.fromiter(sorted(neighbors), dtype=np.int64, count=len(neighbors))
            for neighbors in neighbor_sets
        ]
        self._degrees = np.fromiter(
            (len(a) for a in self._adjacency), dtype=np.int64, count=self._n
        )
        self._m = int(self._degrees.sum()) // 2

        self._is_weighted = edge_weights is not None
        self._weights: list[np.ndarray] | None = None
        if edge_weights is not None:
            self._weights = []
            for u, nbrs in enumerate(self._adjacency):
                row = np.ones(len(nbrs), dtype=np.float64)
                for i, v in enumerate(nbrs):
                    key = (u, int(v)) if u < v else (int(v), u)
                    if key in edge_weights:
                        w = float(edge_weights[key])
                        if w <= 0:
                            raise GraphError(f"edge weight for {key} must be positive, got {w}")
                        row[i] = w
                self._weights.append(row)

        attr_sets: list[frozenset[int]] = []
        if attributes is None:
            attr_sets = [frozenset()] * self._n
        else:
            if len(attributes) > self._n:
                raise GraphError(
                    f"got attribute sets for {len(attributes)} nodes but graph has {self._n}"
                )
            for node_attrs in attributes:
                attr_sets.append(frozenset(int(a) for a in node_attrs))
            attr_sets.extend([frozenset()] * (self._n - len(attr_sets)))
        self._attributes: tuple[frozenset[int], ...] = tuple(attr_sets)

        index: dict[int, list[int]] = {}
        for v, attrs in enumerate(self._attributes):
            for a in attrs:
                index.setdefault(a, []).append(v)
        self._attribute_index: dict[int, np.ndarray] = {
            a: np.asarray(nodes, dtype=np.int64) for a, nodes in index.items()
        }

    # ------------------------------------------------------------------ size

    @property
    def n(self) -> int:
        """Number of nodes."""
        return self._n

    @property
    def m(self) -> int:
        """Number of (undirected) edges."""
        return self._m

    def __len__(self) -> int:
        return self._n

    def __repr__(self) -> str:
        kind = "weighted " if self._is_weighted else ""
        return (
            f"AttributedGraph({kind}n={self._n}, m={self._m}, "
            f"attributes={len(self._attribute_index)})"
        )

    # ------------------------------------------------------------- structure

    def neighbors(self, v: int) -> np.ndarray:
        """Sorted neighbor ids of ``v`` (a view; do not mutate)."""
        self._check_node(v)
        return self._adjacency[v]

    def degree(self, v: int) -> int:
        """Degree of ``v``."""
        self._check_node(v)
        return int(self._degrees[v])

    @property
    def degrees(self) -> np.ndarray:
        """Degree array of shape ``(n,)`` (a view; do not mutate)."""
        return self._degrees

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the undirected edge ``(u, v)`` exists."""
        self._check_node(u)
        self._check_node(v)
        row = self._adjacency[u]
        i = int(np.searchsorted(row, v))
        return i < len(row) and int(row[i]) == v

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate edges once, as ``(u, v)`` with ``u < v``."""
        for u in range(self._n):
            row = self._adjacency[u]
            start = int(np.searchsorted(row, u + 1))
            for v in row[start:]:
                yield u, int(v)

    # --------------------------------------------------------------- weights

    @property
    def is_weighted(self) -> bool:
        """Whether explicit edge weights were supplied at construction."""
        return self._is_weighted

    def neighbor_weights(self, v: int) -> np.ndarray:
        """Weights aligned with ``neighbors(v)``; all ones when unweighted."""
        self._check_node(v)
        if self._weights is None:
            return np.ones(len(self._adjacency[v]), dtype=np.float64)
        return self._weights[v]

    def edge_weight(self, u: int, v: int) -> float:
        """Weight of edge ``(u, v)``; raises if the edge is absent."""
        self._check_node(u)
        self._check_node(v)
        row = self._adjacency[u]
        i = int(np.searchsorted(row, v))
        if i >= len(row) or int(row[i]) != v:
            raise GraphError(f"edge ({u}, {v}) is not in the graph")
        if self._weights is None:
            return 1.0
        return float(self._weights[u][i])

    # ------------------------------------------------------------ attributes

    def attributes_of(self, v: int) -> frozenset[int]:
        """The attribute set of node ``v``."""
        self._check_node(v)
        return self._attributes[v]

    def has_attribute(self, v: int, attribute: int) -> bool:
        """Whether node ``v`` carries ``attribute``."""
        self._check_node(v)
        return attribute in self._attributes[v]

    def nodes_with_attribute(self, attribute: int) -> np.ndarray:
        """Sorted array of nodes carrying ``attribute``.

        Raises :class:`AttributeNotFoundError` for attributes no node has,
        which catches typos in query workloads early.
        """
        if attribute not in self._attribute_index:
            raise AttributeNotFoundError(attribute)
        return self._attribute_index[attribute]

    @property
    def attribute_universe(self) -> frozenset[int]:
        """All attribute ids present on at least one node."""
        return frozenset(self._attribute_index)

    def attribute_edges(self, attribute: int) -> Iterator[tuple[int, int]]:
        """Edges whose *both* endpoints carry ``attribute``.

        These are the "query-attributed edges" of LORE's reclustering score
        (Definition 4 of the paper).
        """
        carriers = set(int(v) for v in self.nodes_with_attribute(attribute))
        for u in sorted(carriers):
            row = self._adjacency[u]
            start = int(np.searchsorted(row, u + 1))
            for v in row[start:]:
                if int(v) in carriers:
                    yield u, int(v)

    # ---------------------------------------------------------- connectivity

    def connected_components(self) -> list[np.ndarray]:
        """Connected components as sorted node arrays, largest first."""
        seen = np.zeros(self._n, dtype=bool)
        components: list[np.ndarray] = []
        for start in range(self._n):
            if seen[start]:
                continue
            stack = [start]
            seen[start] = True
            members = [start]
            while stack:
                u = stack.pop()
                for v in self._adjacency[u]:
                    v = int(v)
                    if not seen[v]:
                        seen[v] = True
                        stack.append(v)
                        members.append(v)
            components.append(np.asarray(sorted(members), dtype=np.int64))
        components.sort(key=len, reverse=True)
        return components

    def is_connected(self) -> bool:
        """Whether the graph is connected (single-node graphs are)."""
        return len(self.connected_components()) == 1

    # ----------------------------------------------------------- conversions

    def with_edge_weights(self, weights: Mapping[tuple[int, int], float]) -> "AttributedGraph":
        """A copy of this graph carrying the given edge weights."""
        return AttributedGraph(
            self._n,
            list(self.edges()),
            attributes=self._attributes,
            edge_weights=weights,
        )

    # ---------------------------------------------------------- shared memory

    @property
    def is_shared(self) -> bool:
        """Whether this graph's arrays are views over a shared segment."""
        return self._shm is not None

    def to_shared(self, name: "str | None" = None):
        """Publish this graph as one flat-CSR shared-memory segment.

        The segment stores adjacency (``indptr``/``indices``), optional
        aligned edge weights, the per-node attribute sets as a CSR pair,
        and the attribute inverted index as a keyed CSR — everything
        :meth:`attach` needs to rebuild an equivalent graph whose heavy
        arrays are zero-copy views over the mapping. Returns the owning
        :class:`~repro.utils.shm.SharedSegment`; this graph is untouched.
        """
        from repro.utils.shm import create_segment

        n = self._n
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(self._degrees, out=indptr[1:])
        arrays: dict[str, np.ndarray] = {
            "indptr": indptr,
            "indices": np.concatenate(self._adjacency)
            if self._m
            else np.empty(0, dtype=np.int64),
        }
        if self._weights is not None:
            arrays["weights"] = (
                np.concatenate(self._weights)
                if self._m
                else np.empty(0, dtype=np.float64)
            )
        attr_counts = np.fromiter(
            (len(attrs) for attrs in self._attributes), dtype=np.int64, count=n
        )
        attr_indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(attr_counts, out=attr_indptr[1:])
        arrays["attr_indptr"] = attr_indptr
        arrays["attr_values"] = np.fromiter(
            (a for attrs in self._attributes for a in sorted(attrs)),
            dtype=np.int64,
            count=int(attr_counts.sum()),
        )
        keys = sorted(self._attribute_index)
        arrays["attr_keys"] = np.asarray(keys, dtype=np.int64)
        index_counts = np.fromiter(
            (len(self._attribute_index[k]) for k in keys),
            dtype=np.int64,
            count=len(keys),
        )
        index_indptr = np.zeros(len(keys) + 1, dtype=np.int64)
        np.cumsum(index_counts, out=index_indptr[1:])
        arrays["attr_index_indptr"] = index_indptr
        arrays["attr_index_nodes"] = (
            np.concatenate([self._attribute_index[k] for k in keys])
            if keys
            else np.empty(0, dtype=np.int64)
        )
        return create_segment(
            arrays,
            kind="attributed-graph",
            extra={
                "n": n,
                "m": self._m,
                "weighted": self._is_weighted,
            },
            name=name,
        )

    @classmethod
    def from_segment(cls, segment) -> "AttributedGraph":
        """Rebuild a graph over a mapped ``attributed-graph`` segment.

        Per-node adjacency (and weight) rows are zero-copy slices of the
        mapped flat arrays; only the small Python-object surfaces (the
        attribute frozensets, the per-node view list) are rebuilt. The
        graph holds the segment handle so the mapping stays alive.
        """
        arr = segment.arrays
        n = int(segment.extra["n"])
        indptr = arr["indptr"]
        indices = arr["indices"]
        graph = object.__new__(cls)
        graph._n = n
        graph._m = int(segment.extra["m"])
        graph._adjacency = [
            indices[indptr[v]:indptr[v + 1]] for v in range(n)
        ]
        degrees = np.diff(indptr)
        degrees.setflags(write=False)
        graph._degrees = degrees
        graph._is_weighted = bool(segment.extra["weighted"])
        if graph._is_weighted:
            weights = arr["weights"]
            graph._weights = [
                weights[indptr[v]:indptr[v + 1]] for v in range(n)
            ]
        else:
            graph._weights = None
        attr_indptr = arr["attr_indptr"]
        attr_values = arr["attr_values"]
        graph._attributes = tuple(
            frozenset(
                int(a) for a in attr_values[attr_indptr[v]:attr_indptr[v + 1]]
            )
            for v in range(n)
        )
        index_indptr = arr["attr_index_indptr"]
        index_nodes = arr["attr_index_nodes"]
        graph._attribute_index = {
            int(key): index_nodes[index_indptr[i]:index_indptr[i + 1]]
            for i, key in enumerate(arr["attr_keys"])
        }
        graph._shm = segment
        return graph

    @classmethod
    def attach(cls, name: str) -> "AttributedGraph":
        """Attach a published graph by segment name (read-only, zero-copy)."""
        from repro.utils.shm import attach_segment

        return cls.from_segment(attach_segment(name, kind="attributed-graph"))

    def detach_shared(self) -> None:
        """Drop this graph's segment handle (close the mapping)."""
        segment, self._shm = self._shm, None
        if segment is not None:
            segment.close()

    def memory_bytes(self) -> int:
        """Approximate in-memory footprint, for Table II style reporting."""
        total = sum(a.nbytes for a in self._adjacency) + self._degrees.nbytes
        if self._weights is not None:
            total += sum(w.nbytes for w in self._weights)
        total += sum(len(attrs) * 8 for attrs in self._attributes)
        total += sum(arr.nbytes for arr in self._attribute_index.values())
        return total

    # -------------------------------------------------------------- internal

    def _check_node(self, v: int) -> None:
        if not (0 <= v < self._n):
            raise NodeNotFoundError(v, self._n)
