"""Induced subgraph extraction.

Communities in the paper are *induced* subgraphs of ``g`` (Section II-A).
:func:`induced_subgraph` materializes one together with the node relabeling
in both directions, which downstream code (independent evaluation, baseline
verification, local reclustering) needs to translate results back to the
parent graph's ids.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import GraphError
from repro.graph.graph import AttributedGraph


@dataclass(frozen=True)
class SubgraphView:
    """An induced subgraph plus the id translation tables.

    Attributes
    ----------
    graph:
        The induced subgraph over relabeled ids ``0..len(members)-1``.
    to_parent:
        ``to_parent[i]`` is the parent-graph id of subgraph node ``i``.
    to_sub:
        Mapping from parent-graph id to subgraph id (only for members).
    """

    graph: AttributedGraph
    to_parent: np.ndarray
    to_sub: dict[int, int]

    def parent_ids(self, sub_nodes: Sequence[int]) -> list[int]:
        """Translate subgraph node ids back to parent ids."""
        return [int(self.to_parent[v]) for v in sub_nodes]


def induced_subgraph(
    graph: AttributedGraph,
    members: Sequence[int],
    keep_weights: bool = False,
) -> SubgraphView:
    """Extract the subgraph induced by ``members``.

    Parameters
    ----------
    graph:
        Parent graph.
    members:
        Node ids to keep; duplicates are rejected to surface caller bugs.
    keep_weights:
        When true and the parent is weighted, edge weights are carried over.
    """
    member_list = [int(v) for v in members]
    member_set = set(member_list)
    if len(member_set) != len(member_list):
        raise GraphError("members contains duplicate node ids")
    if not member_list:
        raise GraphError("cannot induce a subgraph on an empty node set")

    ordered = sorted(member_set)
    to_sub = {v: i for i, v in enumerate(ordered)}
    to_parent = np.asarray(ordered, dtype=np.int64)

    edges: list[tuple[int, int]] = []
    weights: dict[tuple[int, int], float] = {}
    for u in ordered:
        row = graph.neighbors(u)
        wrow = graph.neighbor_weights(u) if keep_weights else None
        for i, v in enumerate(row):
            v = int(v)
            if v > u and v in member_set:
                su, sv = to_sub[u], to_sub[v]
                edges.append((su, sv))
                if wrow is not None:
                    weights[(min(su, sv), max(su, sv))] = float(wrow[i])

    attributes = [graph.attributes_of(v) for v in ordered]
    sub = AttributedGraph(
        len(ordered),
        edges,
        attributes=attributes,
        edge_weights=weights if keep_weights and graph.is_weighted else None,
    )
    return SubgraphView(graph=sub, to_parent=to_parent, to_sub=to_sub)
