"""Attribute-aware edge weighting (the ``g_l`` transformation).

Section IV of the paper turns the original graph into a weighted graph
``g_l`` whose weights blend topology with relevance to the query attribute
``l_q``; the hierarchy built over ``g_l`` is then attribute-aware. The paper
treats the precise transformation as orthogonal to its contribution (it
cites attributed-clustering surveys); we implement the natural scheme it
describes for CODR — "placing additional weights for query attributed
edges" — plus two variants for ablations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import InfluenceError
from repro.graph.graph import AttributedGraph
from repro.utils.cache import LRUCache

#: Recognized weighting schemes.
SCHEMES = ("both_endpoints", "endpoint_average", "jaccard")


@dataclass(frozen=True)
class AttributeWeighting:
    """Configuration for the ``g_l`` transformation.

    Attributes
    ----------
    beta:
        Strength of the attribute bonus; ``beta = 0`` reduces every scheme
        to the unweighted graph.
    scheme:
        - ``"both_endpoints"``: ``w = 1 + beta`` iff *both* endpoints carry
          ``l_q`` (the paper's "query-attributed edges" get the bonus).
        - ``"endpoint_average"``: ``w = 1 + beta * (c_u + c_v) / 2`` where
          ``c_x`` indicates ``l_q in A(x)`` — partial credit for one-sided
          edges.
        - ``"jaccard"``: ``w = 1 + beta * |A(u) & A(v)| / |A(u) | A(v)|``,
          attribute-similarity weighting that ignores ``l_q`` except through
          the node attribute sets (used as an ablation).
    """

    beta: float = 4.0
    scheme: str = "both_endpoints"

    def __post_init__(self) -> None:
        if self.beta < 0:
            raise InfluenceError(f"beta must be non-negative, got {self.beta}")
        if self.scheme not in SCHEMES:
            raise InfluenceError(f"unknown weighting scheme {self.scheme!r}; expected {SCHEMES}")

    def edge_weight(self, graph: AttributedGraph, u: int, v: int, attribute: int) -> float:
        """Weight assigned to edge ``(u, v)`` for query attribute ``attribute``."""
        if self.scheme == "both_endpoints":
            bonus = self.beta if (
                graph.has_attribute(u, attribute) and graph.has_attribute(v, attribute)
            ) else 0.0
        elif self.scheme == "endpoint_average":
            c = int(graph.has_attribute(u, attribute)) + int(graph.has_attribute(v, attribute))
            bonus = self.beta * c / 2.0
        else:  # jaccard
            a_u = graph.attributes_of(u)
            a_v = graph.attributes_of(v)
            union = a_u | a_v
            bonus = self.beta * (len(a_u & a_v) / len(union)) if union else 0.0
        return 1.0 + bonus


def attribute_weighted_graph(
    graph: AttributedGraph,
    attribute: int,
    weighting: AttributeWeighting | None = None,
) -> AttributedGraph:
    """Materialize ``g_l`` for ``attribute`` under ``weighting``.

    The result has the same topology and attributes as ``graph`` but carries
    edge weights; it is what CODR clusters globally and what LORE clusters
    locally inside the selected community ``C_l``.
    """
    weighting = weighting or AttributeWeighting()
    weights: dict[tuple[int, int], float] = {}
    for u, v in graph.edges():
        w = weighting.edge_weight(graph, u, v, attribute)
        if w != 1.0:
            weights[(u, v)] = w
    return graph.with_edge_weights(weights)


class WeightedGraphCache:
    """Bounded per-attribute memo of :func:`attribute_weighted_graph`.

    ``g_l`` is a deterministic function of (graph, attribute, weighting),
    so every layer that repeatedly needs it — the server's LORE path, the
    CODL-/CODR pipelines, the experiment drivers — can share this one
    cache class and be guaranteed to produce the same weighted graph for
    the same attribute. Backed by :class:`repro.utils.cache.LRUCache`, so
    a long diverse workload holds at most ``capacity`` weighted graphs
    resident (the unbounded-dict leak this replaced).
    """

    def __init__(
        self,
        graph: AttributedGraph,
        weighting: "AttributeWeighting | None" = None,
        capacity: int = 64,
        metrics: "object | None" = None,
        name: str = "weighted",
    ) -> None:
        self.graph = graph
        self.weighting = weighting or AttributeWeighting()
        self._cache = LRUCache(capacity, name=name, metrics=metrics)

    def get(self, attribute: int) -> AttributedGraph:
        """``g_l`` for ``attribute``, built on first use."""
        return self._cache.get_or_create(
            attribute,
            lambda: attribute_weighted_graph(
                self.graph, attribute, self.weighting
            ),
        )

    def rebind(self, graph: AttributedGraph) -> int:
        """Adopt a post-update graph, dropping every cached ``g_l``.

        The topology-change path: an edge insert/delete perturbs every
        attribute's weighted graph, so nothing cached survives. Returns
        the number of entries dropped.
        """
        self.graph = graph
        return self._cache.clear()

    def invalidate_attributes(
        self, graph: AttributedGraph, attributes: "set[int]"
    ) -> int:
        """Adopt a post-update graph, dropping only affected ``g_l``.

        The attribute-only-change path: under ``both_endpoints`` /
        ``endpoint_average``, ``g_l``'s weights read only attribute
        ``l``'s carrier set, so entries for untouched attributes stay
        valid and keep serving. ``jaccard`` weights read every node's
        full attribute set, so any attribute change invalidates all
        entries. Returns the number dropped.
        """
        self.graph = graph
        if self.weighting.scheme == "jaccard":
            return self._cache.clear()
        affected = set(attributes)
        return self._cache.invalidate(lambda key: key in affected)

    def __contains__(self, attribute: int) -> bool:
        return attribute in self._cache

    def __len__(self) -> int:
        return len(self._cache)

    def stats(self) -> dict:
        """The underlying cache counters (see :meth:`LRUCache.stats`)."""
        return self._cache.stats()
