"""Text-file IO for attributed graphs.

Two simple interchange formats:

* **edge-list format** (``.edges`` + optional ``.attrs``): one ``u v`` pair
  per line; attribute file has ``v a1 a2 ...`` per line. This matches the
  layout of the networkrepository.com labeled-graph dumps the paper uses.
* **JSON format** (single file): ``{"n": ..., "edges": [[u, v], ...],
  "attributes": {"v": [a, ...]}}`` — convenient for checked-in fixtures.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import GraphError
from repro.graph.graph import AttributedGraph


def save_edge_list(graph: AttributedGraph, edges_path: str | Path,
                   attrs_path: str | Path | None = None) -> None:
    """Write the graph as an edge list, and optionally its attributes."""
    edges_path = Path(edges_path)
    with edges_path.open("w", encoding="utf-8") as f:
        f.write(f"# n={graph.n} m={graph.m}\n")
        for u, v in graph.edges():
            f.write(f"{u} {v}\n")
    if attrs_path is not None:
        attrs_path = Path(attrs_path)
        with attrs_path.open("w", encoding="utf-8") as f:
            for v in range(graph.n):
                attrs = sorted(graph.attributes_of(v))
                if attrs:
                    f.write(f"{v} {' '.join(str(a) for a in attrs)}\n")


def load_edge_list(edges_path: str | Path,
                   attrs_path: str | Path | None = None,
                   n: int | None = None) -> AttributedGraph:
    """Load a graph written by :func:`save_edge_list` (or compatible dumps).

    Lines starting with ``#`` or ``%`` are comments. A ``# n=...`` header is
    honored so isolated trailing nodes survive a round trip.
    """
    edges_path = Path(edges_path)
    edges: list[tuple[int, int]] = []
    header_n: int | None = None
    with edges_path.open("r", encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            if line.startswith(("#", "%")):
                header_n = _parse_header_n(line, header_n)
                continue
            parts = line.split()
            if len(parts) < 2:
                raise GraphError(f"malformed edge line in {edges_path}: {line!r}")
            edges.append((int(parts[0]), int(parts[1])))

    if n is None:
        n = header_n
    if n is None:
        if not edges:
            raise GraphError(f"{edges_path} has no edges and no '# n=' header")
        n = max(max(u, v) for u, v in edges) + 1

    attributes: dict[int, list[int]] | None = None
    if attrs_path is not None:
        attributes = {}
        with Path(attrs_path).open("r", encoding="utf-8") as f:
            for line in f:
                line = line.strip()
                if not line or line.startswith(("#", "%")):
                    continue
                parts = line.split()
                attributes[int(parts[0])] = [int(a) for a in parts[1:]]
    dense = None
    if attributes is not None:
        dense = [attributes.get(v, []) for v in range(n)]
    return AttributedGraph(n, edges, attributes=dense)


def save_json(graph: AttributedGraph, path: str | Path) -> None:
    """Write the graph (edges + attributes) as a single JSON document."""
    payload = {
        "n": graph.n,
        "edges": [[u, v] for u, v in graph.edges()],
        "attributes": {
            str(v): sorted(graph.attributes_of(v))
            for v in range(graph.n)
            if graph.attributes_of(v)
        },
    }
    Path(path).write_text(json.dumps(payload), encoding="utf-8")


def load_json(path: str | Path) -> AttributedGraph:
    """Load a graph written by :func:`save_json`."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    try:
        n = int(payload["n"])
        edges = [(int(u), int(v)) for u, v in payload["edges"]]
        raw_attrs = payload.get("attributes", {})
    except (KeyError, TypeError, ValueError) as exc:
        raise GraphError(f"malformed graph JSON in {path}: {exc}") from exc
    dense = [raw_attrs.get(str(v), []) for v in range(n)]
    return AttributedGraph(n, edges, attributes=dense)


def _parse_header_n(line: str, current: int | None) -> int | None:
    for token in line.lstrip("#% ").split():
        if token.startswith("n="):
            try:
                return int(token[2:])
            except ValueError:
                return current
    return current
