"""Attributed-graph substrate: storage, IO, metrics, weighting, subgraphs."""

from repro.graph.build import graph_from_edge_list, graph_from_networkx_like
from repro.graph.graph import AttributedGraph
from repro.graph.metrics import (
    attribute_density,
    conductance,
    modularity,
    topology_density,
    triangle_count,
)
from repro.graph.subgraph import induced_subgraph
from repro.graph.weighting import (
    AttributeWeighting,
    attribute_weighted_graph,
)

__all__ = [
    "AttributedGraph",
    "graph_from_edge_list",
    "graph_from_networkx_like",
    "induced_subgraph",
    "attribute_weighted_graph",
    "AttributeWeighting",
    "topology_density",
    "attribute_density",
    "conductance",
    "modularity",
    "triangle_count",
]
