"""Community quality measures.

Implements the three effectiveness measures of Section V-A (size is trivial;
topology density and attribute density are here) plus conductance (used in
the Section V-E case study), modularity, and triangle counting (used by the
truss substrate tests).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import GraphError
from repro.graph.graph import AttributedGraph


def topology_density(graph: AttributedGraph, members: Sequence[int]) -> float:
    """Edges over node pairs within ``members`` (``rho(C*)`` in the paper).

    A single-node community has density 0 by convention (no pairs exist).
    """
    member_set = set(int(v) for v in members)
    size = len(member_set)
    if size == 0:
        raise GraphError("topology_density of an empty node set is undefined")
    if size == 1:
        return 0.0
    internal = _internal_edge_count(graph, member_set)
    return internal / (size * (size - 1) / 2)


def attribute_density(
    graph: AttributedGraph, members: Sequence[int], attribute: int
) -> float:
    """Fraction of community nodes carrying the query attribute (``phi(C*)``)."""
    member_list = [int(v) for v in members]
    if not member_list:
        raise GraphError("attribute_density of an empty node set is undefined")
    carriers = sum(1 for v in member_list if graph.has_attribute(v, attribute))
    return carriers / len(member_list)


def conductance(graph: AttributedGraph, members: Sequence[int]) -> float:
    """Cut edges over the smaller side's volume (case-study measure).

    ``conductance(S) = cut(S, V-S) / min(vol(S), vol(V-S))``. Returns 0 for
    the whole graph (no cut) and raises on empty sets.
    """
    member_set = set(int(v) for v in members)
    if not member_set:
        raise GraphError("conductance of an empty node set is undefined")
    vol_s = sum(graph.degree(v) for v in member_set)
    vol_rest = 2 * graph.m - vol_s
    if vol_rest == 0:
        return 0.0
    cut = 0
    for u in member_set:
        for v in graph.neighbors(u):
            if int(v) not in member_set:
                cut += 1
    denom = min(vol_s, vol_rest)
    if denom == 0:
        # members are isolated nodes: every (non-existent) cut edge counts.
        return 0.0
    return cut / denom


def modularity(graph: AttributedGraph, partition: Sequence[Sequence[int]]) -> float:
    """Newman modularity of a node partition (clustering sanity checks)."""
    n = graph.n
    assignment = np.full(n, -1, dtype=np.int64)
    for cid, block in enumerate(partition):
        for v in block:
            v = int(v)
            if assignment[v] != -1:
                raise GraphError(f"node {v} appears in more than one partition block")
            assignment[v] = cid
    if np.any(assignment == -1):
        missing = int(np.flatnonzero(assignment == -1)[0])
        raise GraphError(f"node {missing} is missing from the partition")

    two_m = 2 * graph.m
    if two_m == 0:
        return 0.0
    internal = 0
    degree_sums: dict[int, int] = {}
    for v in range(n):
        degree_sums[int(assignment[v])] = (
            degree_sums.get(int(assignment[v]), 0) + graph.degree(v)
        )
    for u, v in graph.edges():
        if assignment[u] == assignment[v]:
            internal += 1
    q = internal / graph.m if graph.m else 0.0
    q -= sum((d / two_m) ** 2 for d in degree_sums.values())
    return q


def triangle_count(graph: AttributedGraph) -> int:
    """Total number of triangles in the graph.

    Uses the standard forward/degree-ordering algorithm: each triangle is
    counted exactly once at its lowest-ordered vertex.
    """
    order = np.argsort(graph.degrees, kind="stable")
    rank = np.empty(graph.n, dtype=np.int64)
    rank[order] = np.arange(graph.n)
    forward: list[set[int]] = [set() for _ in range(graph.n)]
    count = 0
    for u in range(graph.n):
        higher = [int(v) for v in graph.neighbors(u) if rank[int(v)] > rank[u]]
        for v in higher:
            count += len(forward[u] & forward[v])
        for v in higher:
            forward[v].add(u)
    return count


def _internal_edge_count(graph: AttributedGraph, member_set: set[int]) -> int:
    count = 0
    for u in member_set:
        for v in graph.neighbors(u):
            if int(v) > u and int(v) in member_set:
                count += 1
    return count
