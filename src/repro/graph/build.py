"""Convenience constructors for :class:`~repro.graph.graph.AttributedGraph`."""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.errors import GraphError
from repro.graph.graph import AttributedGraph


def graph_from_edge_list(
    edges: Sequence[tuple[int, int]],
    attributes: Mapping[int, Iterable[int]] | Sequence[Iterable[int]] | None = None,
    n: int | None = None,
) -> AttributedGraph:
    """Build a graph from an edge list, inferring ``n`` when omitted.

    ``attributes`` may be a mapping ``node -> attrs`` (sparse) or a dense
    sequence with one entry per node.
    """
    if not edges and n is None:
        raise GraphError("cannot infer node count from an empty edge list; pass n")
    inferred = 0
    for u, v in edges:
        inferred = max(inferred, int(u) + 1, int(v) + 1)
    if n is None:
        n = inferred
    elif n < inferred:
        raise GraphError(f"n={n} is smaller than the largest endpoint + 1 ({inferred})")

    dense_attrs: list[Iterable[int]] | None = None
    if attributes is not None:
        if isinstance(attributes, Mapping):
            dense_attrs = [attributes.get(v, ()) for v in range(n)]
        else:
            dense_attrs = list(attributes)
    return AttributedGraph(n, edges, attributes=dense_attrs)


def graph_from_networkx_like(graph: object) -> AttributedGraph:
    """Build from any object with ``nodes``, ``edges`` and node-data access.

    Accepts a ``networkx.Graph`` (or anything duck-typed like one) whose
    nodes are hashable; nodes are relabeled to ``0..n-1`` in sorted-by-str
    order. A node-data key ``"attributes"`` (iterable of ints) is honored.
    This keeps networkx an optional dependency: the library never imports
    it, but interoperates with it.
    """
    nodes = list(graph.nodes)  # type: ignore[attr-defined]
    order = sorted(nodes, key=str)
    relabel = {node: i for i, node in enumerate(order)}
    edges = [(relabel[u], relabel[v]) for u, v in graph.edges]  # type: ignore[attr-defined]
    attrs: list[Iterable[int]] = []
    node_data = getattr(graph, "nodes", None)
    for node in order:
        data = {}
        try:
            data = node_data[node]  # type: ignore[index]
        except (TypeError, KeyError):
            data = {}
        attrs.append(data.get("attributes", ()) if isinstance(data, Mapping) else ())
    return AttributedGraph(len(order), edges, attributes=attrs)
