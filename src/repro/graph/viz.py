"""Graphviz (DOT) export for case-study visualization.

The paper's Figs. 1 and 10 visualize discovered communities against the
surrounding graph. These helpers emit plain DOT text (no graphviz
dependency; render with ``dot -Tpng``): the community is highlighted, the
query node doubly so, and an optional halo of neighbors gives context.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import GraphError
from repro.graph.graph import AttributedGraph


def community_to_dot(
    graph: AttributedGraph,
    members: Sequence[int],
    query_node: "int | None" = None,
    halo: int = 0,
    name: str = "community",
) -> str:
    """DOT text for a community and (optionally) its neighborhood halo.

    Parameters
    ----------
    members:
        Community node ids (highlighted, filled).
    query_node:
        Drawn with a double border when given; must be a member.
    halo:
        Number of BFS rings of outside neighbors to include as context
        (dashed, unfilled).
    """
    member_set = {int(v) for v in members}
    if not member_set:
        raise GraphError("cannot render an empty community")
    if query_node is not None and int(query_node) not in member_set:
        raise GraphError(f"query node {query_node} is not a community member")

    context: set[int] = set()
    frontier = set(member_set)
    for _ in range(max(halo, 0)):
        ring: set[int] = set()
        for u in frontier:
            for v in graph.neighbors(u):
                v = int(v)
                if v not in member_set and v not in context:
                    ring.add(v)
        context |= ring
        frontier = ring

    visible = member_set | context
    lines = [f"graph {name} {{", "  node [shape=circle, fontsize=10];"]
    for v in sorted(visible):
        attrs = ",".join(str(a) for a in sorted(graph.attributes_of(v)))
        label = f"{v}" + (f"\\n[{attrs}]" if attrs else "")
        style: list[str] = [f'label="{label}"']
        if v in member_set:
            style.append("style=filled")
            style.append('fillcolor="#9ecae1"')
        else:
            style.append("style=dashed")
        if query_node is not None and v == int(query_node):
            style.append("shape=doublecircle")
            style.append('fillcolor="#fdae6b"')
        lines.append(f"  {v} [{', '.join(style)}];")
    for u, v in graph.edges():
        if u in visible and v in visible:
            if u in member_set and v in member_set:
                lines.append(f"  {u} -- {v};")
            else:
                lines.append(f"  {u} -- {v} [style=dotted];")
    lines.append("}")
    return "\n".join(lines)


def hierarchy_to_dot(
    hierarchy: "CommunityHierarchy",  # noqa: F821 - forward reference
    max_depth: "int | None" = None,
    name: str = "hierarchy",
) -> str:
    """DOT text for a community hierarchy (communities labeled by size).

    Leaves are rendered as small points; pass ``max_depth`` to truncate
    deep dendrograms (a vertex at the cut is labeled with its subtree
    size).
    """
    lines = [f"digraph {name} {{", "  rankdir=TB;",
             "  node [fontsize=10];"]
    stack = [hierarchy.root]
    while stack:
        vertex = stack.pop()
        depth = hierarchy.depth(vertex)
        truncated = max_depth is not None and depth >= max_depth
        if hierarchy.is_leaf(vertex):
            lines.append(f'  n{vertex} [shape=point, label=""];')
            continue
        shape = "box"
        label = f"|C|={hierarchy.size(vertex)}"
        if truncated:
            label += " (...)"
        lines.append(f'  n{vertex} [shape={shape}, label="{label}"];')
        if truncated:
            continue
        for child in hierarchy.children(vertex):
            lines.append(f"  n{vertex} -> n{child};")
            stack.append(child)
    lines.append("}")
    return "\n".join(lines)
