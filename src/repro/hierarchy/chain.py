"""Nested community chains — the evaluator-facing view of ``H(q)``.

The compressed COD evaluator (Algorithm 1) does not care where a chain of
nested communities came from: it only needs, for a query node ``q``, the
communities ``C_0 ⊂ C_1 ⊂ ... ⊂ C_{L-1}`` containing ``q`` (deepest first)
and, for every graph node ``u``, the index of the *smallest* chain
community containing ``u``. :class:`CommunityChain` packages exactly that.

Chains are produced three ways:

* :meth:`CommunityChain.from_hierarchy` — ``H(q)`` from a non-attributed or
  globally reclustered hierarchy (CODU / CODR);
* :meth:`CommunityChain.from_member_lists` — LORE's stitched hierarchy
  ``H_l(q)`` (reclustered communities below ``C_l`` + original ancestors);
* truncated chains for Algorithm 3's fallback (``H_l(q | C_l)``) via
  :meth:`prefix`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import HierarchyError
from repro.hierarchy.dendrogram import CommunityHierarchy


class CommunityChain:
    """A strictly nested chain of communities containing a query node.

    Attributes
    ----------
    q:
        The query node every community must contain.
    n:
        Number of nodes in the ambient graph.
    """

    __slots__ = ("q", "n", "_members", "_sizes", "_node_level", "_depths")

    #: Sentinel level for nodes outside every chain community.
    OUTSIDE = -1

    def __init__(
        self,
        n: int,
        q: int,
        members: list[np.ndarray],
        node_level: np.ndarray,
        depths: Sequence[int] | None = None,
    ) -> None:
        self.n = int(n)
        self.q = int(q)
        self._members = members
        self._sizes = np.asarray([len(m) for m in members], dtype=np.int64)
        self._node_level = node_level
        if depths is None:
            # Synthetic depths: deepest community first, root-most last.
            depths = list(range(len(members), 0, -1))
        self._depths = list(int(d) for d in depths)
        self._validate()

    # ---------------------------------------------------------- construction

    @classmethod
    def from_hierarchy(
        cls, hierarchy: CommunityHierarchy, q: int
    ) -> "CommunityChain":
        """Build ``H(q)`` from a community hierarchy.

        ``node_level`` is derived with one O(1) LCA query per node: the
        smallest chain community containing ``u`` is ``lca(u, q)``.
        """
        path = hierarchy.path_communities(q)
        if not path:
            raise HierarchyError(f"leaf {q} has no ancestor communities")
        level_of_vertex = {vertex: i for i, vertex in enumerate(path)}
        level_of_vertex[q] = 0  # lca(q, q) is the leaf itself.
        n = hierarchy.n_leaves
        node_level = np.empty(n, dtype=np.int64)
        for u in range(n):
            node_level[u] = level_of_vertex[hierarchy.lca(u, q)]
        members = [hierarchy.members(vertex) for vertex in path]
        depths = [hierarchy.depth(vertex) for vertex in path]
        return cls(n, q, members, node_level, depths)

    @classmethod
    def from_member_lists(
        cls,
        n: int,
        q: int,
        member_lists: Sequence[Sequence[int]],
        depths: Sequence[int] | None = None,
    ) -> "CommunityChain":
        """Build from explicit nested member lists, smallest first.

        ``node_level`` is computed by painting levels from largest to
        smallest, O(sum |C_i|).
        """
        members = [np.asarray(sorted(set(int(v) for v in ms)), dtype=np.int64)
                   for ms in member_lists]
        node_level = np.full(n, cls.OUTSIDE, dtype=np.int64)
        for level in range(len(members) - 1, -1, -1):
            node_level[members[level]] = level
        return cls(n, q, members, node_level, depths)

    # ------------------------------------------------------------- interface

    def __len__(self) -> int:
        return len(self._members)

    @property
    def sizes(self) -> np.ndarray:
        """Community sizes, aligned with chain levels (a view)."""
        return self._sizes

    def members(self, level: int) -> np.ndarray:
        """Node ids of the community at ``level`` (0 is deepest/smallest)."""
        return self._members[level]

    def depth(self, level: int) -> int:
        """``dep`` of the community at ``level`` (root-most is smallest)."""
        return self._depths[level]

    def level_of(self, node: int) -> int:
        """Index of the smallest chain community containing ``node``.

        Returns :attr:`OUTSIDE` when the node lies outside even the largest
        chain community (possible for truncated LORE chains).
        """
        return int(self._node_level[node])

    @property
    def node_levels(self) -> np.ndarray:
        """The full node -> level array (a view; do not mutate)."""
        return self._node_level

    def prefix(self, length: int) -> "CommunityChain":
        """The chain truncated to its ``length`` deepest communities.

        Used by Algorithm 3: after the HIMOR index resolves ancestors of
        ``C_l``, compressed evaluation only runs inside ``C_l``.
        """
        if not (1 <= length <= len(self._members)):
            raise HierarchyError(
                f"prefix length {length} out of range 1..{len(self._members)}"
            )
        node_level = self._node_level.copy()
        node_level[node_level >= length] = self.OUTSIDE
        return CommunityChain(
            self.n, self.q, self._members[:length], node_level, self._depths[:length]
        )

    def __repr__(self) -> str:
        return (
            f"CommunityChain(q={self.q}, levels={len(self._members)}, "
            f"sizes={self._sizes.tolist()[:6]}{'...' if len(self) > 6 else ''})"
        )

    # -------------------------------------------------------------- internal

    def _validate(self) -> None:
        """Cheap structural checks run on every construction.

        The O(sum |C_i|) nesting proof lives in :meth:`validate_nesting`,
        which tests invoke explicitly; hot paths only pay O(L).
        """
        if not self._members:
            raise HierarchyError("a community chain must contain at least one community")
        if len(self._depths) != len(self._members):
            raise HierarchyError("depths and members have different lengths")
        if len(self._node_level) != self.n:
            raise HierarchyError("node_level length differs from n")
        if not (0 <= self.q < self.n):
            raise HierarchyError(f"query node {self.q} out of range")
        if self._node_level[self.q] != 0:
            raise HierarchyError("query node must be at level 0 (the deepest community)")
        for level in range(1, len(self._sizes)):
            if self._sizes[level] <= self._sizes[level - 1]:
                raise HierarchyError(
                    f"chain communities must strictly grow; level {level} has size "
                    f"{int(self._sizes[level])} after {int(self._sizes[level - 1])}"
                )

    def validate_nesting(self) -> None:
        """Prove strict nesting and node_level consistency (O(sum |C_i|)).

        Raises :class:`HierarchyError` on the first violation. Intended for
        tests and for validating externally supplied chains.
        """
        previous: set[int] | None = None
        smallest_level = np.full(self.n, self.OUTSIDE, dtype=np.int64)
        for level in range(len(self._members) - 1, -1, -1):
            smallest_level[self._members[level]] = level
        if not np.array_equal(smallest_level, self._node_level):
            raise HierarchyError("node_level disagrees with the member lists")
        for level, ms in enumerate(self._members):
            member_set = set(int(v) for v in ms)
            if len(member_set) != len(ms):
                raise HierarchyError(f"community at level {level} has duplicate members")
            if self.q not in member_set:
                raise HierarchyError(
                    f"community at level {level} does not contain the query node {self.q}"
                )
            if previous is not None and not previous <= member_set:
                raise HierarchyError(
                    f"community at level {level} does not contain level {level - 1}"
                )
            previous = member_set
