"""Hierarchy rebalancing — taming skewed dendrograms.

The paper observes (Table II discussion) that HIMOR construction cost is
linear in ``sum_v dep(v)``, which explodes on skewed hierarchies: on the
Retweet dataset the mean depth is an order of magnitude above
``log2 |V|`` because hubs absorb spokes one at a time, producing
caterpillar dendrograms. It points to balanced hierarchical clustering
([60] there) as the remedy and notes any such method can be plugged in.

This module implements that plug-in as a *post-processing* pass:

1. **Chain collapsing** — maximal caterpillar chains (each step merges the
   running cluster with single leaves) are flattened into one multiway
   vertex, removing the pathological depth while keeping every
   "interesting" community (those combining two non-trivial clusters);
2. **Huffman re-binarization** — each multiway vertex is expanded back
   into binary merges by repeatedly pairing the two smallest children,
   which minimizes the size-weighted depth ``sum_v dep(v)`` over all
   binary expansions of that vertex.

The result is a valid :class:`CommunityHierarchy` over the same leaves
with (provably) no larger ``sum_v dep(v)``, directly reducing HIMOR build
time; ``benchmarks/bench_balance.py`` measures the effect.
"""

from __future__ import annotations

import heapq
import itertools

from repro.hierarchy.dendrogram import CommunityHierarchy


def collapse_chains(
    hierarchy: CommunityHierarchy, alpha: float = 0.3
) -> list[list[int]]:
    """Flatten caterpillar chains into multiway children lists.

    Returns a children list indexed by a *new* vertex numbering: leaves
    keep their ids; the list's entry ``i`` holds the children of new
    internal vertex ``n_leaves + i`` expressed over new vertex ids, with
    the last entry being the root. A *chain step* — an internal vertex
    whose largest ("spine") child is internal and holds at least a
    ``1 - alpha`` fraction of the vertex — is merged into its spine
    child's flattened vertex; this is the hub-absorption pattern (a big
    cluster swallowing small chunks one merge at a time) that makes real
    hierarchies caterpillars. Balanced merges (both sides substantial) are
    preserved as genuine communities.
    """
    if not (0.0 < alpha < 0.5):
        raise ValueError(f"alpha must be in (0, 0.5), got {alpha}")
    n = hierarchy.n_leaves

    def is_chain_vertex(vertex: int) -> "int | None":
        """The spine child when ``vertex`` is a chain step."""
        kids = hierarchy.children(vertex)
        spine = max(kids, key=hierarchy.size)
        if hierarchy.is_leaf(spine):
            return None
        absorbed = hierarchy.size(vertex) - hierarchy.size(spine)
        if absorbed <= alpha * hierarchy.size(vertex):
            return spine
        return None

    # Map each original internal vertex to the new multiway vertex that
    # absorbs it (itself unless it is swallowed from above).
    new_children: list[list[int]] = []
    new_id_of: dict[int, int] = {}

    # Process original vertices bottom-up (children before parents).
    order = sorted(hierarchy.internal_vertices(), key=hierarchy.depth,
                   reverse=True)
    for vertex in order:
        child_lists: list[int] = []
        for child in hierarchy.children(vertex):
            if hierarchy.is_leaf(child):
                child_lists.append(child)
            else:
                child_lists.append(new_id_of[child])
        inner = is_chain_vertex(vertex)
        if inner is not None:
            # Swallow the internal child's multiway vertex: its children
            # plus this vertex's leaves become one flat list.
            inner_new = new_id_of[inner]
            inner_index = inner_new - n
            absorbed = new_children[inner_index]
            flattened = absorbed + [c for c in child_lists if c != inner_new]
            new_children[inner_index] = flattened
            new_id_of[vertex] = inner_new
        else:
            new_children.append(child_lists)
            new_id_of[vertex] = n + len(new_children) - 1
    return new_children


def rebalanced_hierarchy(
    hierarchy: CommunityHierarchy, alpha: float = 0.3
) -> CommunityHierarchy:
    """A balanced binary equivalent of ``hierarchy`` (same leaves).

    Collapses caterpillar chains (see :func:`collapse_chains`), then
    re-binarizes every multiway vertex with Huffman pairing (smallest two
    children merged first), which minimizes ``sum_v dep(v)`` among binary
    expansions of that vertex.
    """
    n = hierarchy.n_leaves
    if n == 1:
        return hierarchy
    multiway = collapse_chains(hierarchy, alpha=alpha)

    merges: list[tuple[int, int]] = []
    # Sizes of produced clusters; leaves have size 1.
    size: dict[int, int] = {v: 1 for v in range(n)}
    # Map a collapsed multiway id to the binary cluster id representing it.
    binary_id: dict[int, int] = {}
    next_id = n
    counter = itertools.count()

    # Chain swallowing can splice later entries into earlier ones, so the
    # creation order is not topological: expand entries in post-order from
    # the root entry (the only one never referenced as a child).
    referenced = {
        c for children in multiway for c in children if c >= n
    }
    root_entry = next(
        i for i in range(len(multiway)) if n + i not in referenced
    )
    order: list[int] = []
    stack = [root_entry]
    while stack:
        index = stack.pop()
        order.append(index)
        stack.extend(c - n for c in multiway[index] if c >= n)
    order.reverse()

    for index in order:
        children = multiway[index]
        resolved = [
            binary_id[c] if c >= n else c for c in children
        ]
        heap = [(size[c], next(counter), c) for c in resolved]
        heapq.heapify(heap)
        while len(heap) > 1:
            sa, _, a = heapq.heappop(heap)
            sb, _, b = heapq.heappop(heap)
            merges.append((a, b))
            merged = next_id
            next_id += 1
            size[merged] = sa + sb
            heapq.heappush(heap, (size[merged], next(counter), merged))
        _, _, top = heap[0]
        binary_id[n + index] = top
    return CommunityHierarchy.from_merges(n, merges)
