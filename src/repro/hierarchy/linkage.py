"""Linkage functions for graph-based agglomerative clustering.

A linkage defines the similarity between two clusters from the aggregated
weight of the edges joining them. The NN-chain algorithm
(:mod:`repro.hierarchy.nnchain`) is exact for *reducible* linkages —
merging two clusters never increases their similarity to a third — which
holds for every linkage here.

The paper's experiments use unweighted-average linkage ([45] there), our
:class:`UnweightedAverageLinkage` default.
"""

from __future__ import annotations


class Linkage:
    """Base class; subclasses define weight aggregation and similarity."""

    #: Human-readable identifier used by the CLI and experiment configs.
    name = "abstract"

    def combine(self, weight_a: float, weight_b: float) -> float:
        """Aggregate the connection weights of two merged clusters toward a
        common neighbor."""
        raise NotImplementedError

    def similarity(self, weight: float, size_a: int, size_b: int) -> float:
        """Similarity of two clusters given their aggregated connection
        weight and sizes. Larger is merged earlier."""
        raise NotImplementedError


class UnweightedAverageLinkage(Linkage):
    """Average connection strength: ``W(A, B) / (|A| * |B|)``.

    "Unweighted" refers to cluster sizes entering symmetrically (UPGMA
    convention), not to edge weights — edge weights are honored, which is
    exactly what makes CODR/LORE reclustering attribute-aware.
    """

    name = "unweighted_average"

    def combine(self, weight_a: float, weight_b: float) -> float:
        return weight_a + weight_b

    def similarity(self, weight: float, size_a: int, size_b: int) -> float:
        return weight / (size_a * size_b)


class SingleLinkage(Linkage):
    """Strongest single connection: ``max`` edge weight between clusters."""

    name = "single"

    def combine(self, weight_a: float, weight_b: float) -> float:
        return max(weight_a, weight_b)

    def similarity(self, weight: float, size_a: int, size_b: int) -> float:
        return weight


class TotalWeightLinkage(Linkage):
    """Total connection weight ``W(A, B)``.

    Not reducible in general (merges can increase similarity to third
    clusters), so NN-chain output is a heuristic under this linkage. Kept
    for ablation experiments only.
    """

    name = "total_weight"

    def combine(self, weight_a: float, weight_b: float) -> float:
        return weight_a + weight_b

    def similarity(self, weight: float, size_a: int, size_b: int) -> float:
        return weight


_REGISTRY = {
    UnweightedAverageLinkage.name: UnweightedAverageLinkage,
    SingleLinkage.name: SingleLinkage,
    TotalWeightLinkage.name: TotalWeightLinkage,
}


def linkage_by_name(name: str) -> Linkage:
    """Instantiate a linkage from its :attr:`Linkage.name`."""
    try:
        return _REGISTRY[name]()
    except KeyError:
        raise ValueError(
            f"unknown linkage {name!r}; expected one of {sorted(_REGISTRY)}"
        ) from None
