"""The community hierarchy ``T`` (Section II-A of the paper).

A :class:`CommunityHierarchy` is a rooted tree whose leaves are the graph's
nodes and whose internal vertices are communities; the community held by an
internal vertex is the set of leaves below it. The root holds all nodes and
``dep(root) = 1`` (matching Example 2, where the root ``C_6`` has the
smallest depth and deeper communities are smaller).

Leaves are arranged in DFS order so every subtree is a contiguous slice of
one permutation array: ``members`` is O(result) and membership tests are
O(1). This layout is what lets the compressed evaluator and HIMOR scale.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.errors import HierarchyError


class CommunityHierarchy:
    """A rooted community tree over leaves ``0..n_leaves-1``.

    Vertices are integers: ``0..n_leaves-1`` are leaves; internal vertices
    follow. Build instances via :meth:`from_merges` (output of agglomerative
    clustering) or :meth:`from_parents`.
    """

    __slots__ = (
        "_n_leaves",
        "_parent",
        "_children",
        "_size",
        "_depth",
        "_leaf_order",
        "_leaf_position",
        "_range_lo",
        "_range_hi",
        "_root",
        "_lca_index",
    )

    def __init__(self, n_leaves: int, parent: np.ndarray, children: list[list[int]]) -> None:
        self._n_leaves = int(n_leaves)
        self._parent = parent
        # Children are kept in ascending vertex-id order so the DFS leaf
        # layout — and therefore ``members()`` ordering — is a pure
        # function of the parent array. Without this, a hierarchy rebuilt
        # via ``from_parents`` (e.g. a persisted index loaded after a
        # worker respawn) would serve member arrays in a different order
        # than the merge-order original, breaking bit-identical replay.
        self._children = [sorted(kids) for kids in children]
        self._lca_index = None
        self._validate_shape()
        self._root = int(np.flatnonzero(parent == -1)[0])
        self._compute_layout()

    # ---------------------------------------------------------- construction

    @classmethod
    def from_merges(cls, n_leaves: int, merges: Sequence[Sequence[int]]) -> "CommunityHierarchy":
        """Build from a merge sequence.

        ``merges[t]`` lists the child cluster ids combined at step ``t``
        into new cluster ``n_leaves + t``. Children may be leaves
        (``< n_leaves``) or earlier merge results. The final merge must
        produce a single root covering every leaf.
        """
        total = n_leaves + len(merges)
        parent = np.full(total, -1, dtype=np.int64)
        children: list[list[int]] = [[] for _ in range(total)]
        for t, merge in enumerate(merges):
            new_id = n_leaves + t
            kids = [int(c) for c in merge]
            if len(kids) < 2:
                raise HierarchyError(f"merge {t} must combine at least two clusters, got {kids}")
            for c in kids:
                if not (0 <= c < new_id):
                    raise HierarchyError(f"merge {t} references invalid cluster {c}")
                if parent[c] != -1:
                    raise HierarchyError(f"cluster {c} is merged twice")
                parent[c] = new_id
            children[new_id] = kids
        return cls(n_leaves, parent, children)

    @classmethod
    def from_parents(cls, n_leaves: int, parent: Sequence[int]) -> "CommunityHierarchy":
        """Build from a parent array (``-1`` marks the root)."""
        parent_arr = np.asarray(parent, dtype=np.int64)
        children: list[list[int]] = [[] for _ in range(len(parent_arr))]
        for v, p in enumerate(parent_arr):
            if p >= 0:
                children[int(p)].append(v)
        return cls(n_leaves, parent_arr, children)

    # -------------------------------------------------------------- topology

    @property
    def n_leaves(self) -> int:
        """Number of graph nodes (leaves)."""
        return self._n_leaves

    @property
    def n_vertices(self) -> int:
        """Total tree vertices (leaves + communities)."""
        return len(self._parent)

    @property
    def root(self) -> int:
        """The root vertex (community holding all nodes)."""
        return self._root

    def is_leaf(self, vertex: int) -> bool:
        """Whether ``vertex`` is a graph node rather than a community."""
        self._check_vertex(vertex)
        return vertex < self._n_leaves

    def parent(self, vertex: int) -> int:
        """Parent vertex, or ``-1`` for the root."""
        self._check_vertex(vertex)
        return int(self._parent[vertex])

    def children(self, vertex: int) -> list[int]:
        """Child vertices (empty for leaves)."""
        self._check_vertex(vertex)
        return list(self._children[vertex])

    def depth(self, vertex: int) -> int:
        """``dep(vertex)``: the root has depth 1; children add 1."""
        self._check_vertex(vertex)
        return int(self._depth[vertex])

    def size(self, vertex: int) -> int:
        """Number of leaves below ``vertex`` (1 for leaves)."""
        self._check_vertex(vertex)
        return int(self._size[vertex])

    def internal_vertices(self) -> Iterator[int]:
        """All community vertices (non-leaves)."""
        return iter(range(self._n_leaves, self.n_vertices))

    # --------------------------------------------------------------- queries

    def members(self, vertex: int) -> np.ndarray:
        """Leaf ids below ``vertex`` (a contiguous slice; do not mutate)."""
        self._check_vertex(vertex)
        return self._leaf_order[self._range_lo[vertex]:self._range_hi[vertex]]

    def contains(self, vertex: int, leaf: int) -> bool:
        """O(1) test of whether ``leaf`` lies below ``vertex``."""
        self._check_vertex(vertex)
        if not (0 <= leaf < self._n_leaves):
            raise HierarchyError(f"{leaf} is not a leaf id")
        pos = self._leaf_position[leaf]
        return bool(self._range_lo[vertex] <= pos < self._range_hi[vertex])

    def ancestors(self, vertex: int, include_self: bool = False) -> Iterator[int]:
        """Vertices on the path to the root, nearest first."""
        self._check_vertex(vertex)
        v = vertex if include_self else int(self._parent[vertex])
        while v != -1:
            yield v
            v = int(self._parent[v])

    def path_communities(self, leaf: int) -> list[int]:
        """``H(q)``: the internal ancestors of ``leaf``, deepest first.

        The leaf itself (a singleton "community") is excluded, matching
        Example 2 where ``H(v_0)`` starts at the smallest multi-node
        community.
        """
        if not (0 <= leaf < self._n_leaves):
            raise HierarchyError(f"{leaf} is not a leaf id")
        return list(self.ancestors(leaf, include_self=False))

    def lca(self, a: int, b: int) -> int:
        """Lowest common ancestor of two tree vertices in O(1).

        The first call builds an Euler-tour sparse table
        (:class:`repro.hierarchy.lca.LcaIndex`) lazily.
        """
        if self._lca_index is None:
            from repro.hierarchy.lca import LcaIndex

            self._lca_index = LcaIndex(self)
        return self._lca_index.lca(a, b)

    def is_ancestor(self, ancestor: int, descendant: int) -> bool:
        """Whether ``ancestor`` contains ``descendant`` (self counts)."""
        self._check_vertex(ancestor)
        self._check_vertex(descendant)
        return bool(
            self._range_lo[ancestor] <= self._range_lo[descendant]
            and self._range_hi[descendant] <= self._range_hi[ancestor]
        )

    def partition_at_size(self, max_size: int) -> list[int]:
        """A flat partition: the shallowest communities of size <= max_size.

        Descends from the root, stopping at the first vertex small enough;
        the returned vertices' member sets partition the leaves. Useful for
        extracting flat clusterings from the hierarchy (e.g., modularity
        sanity checks).
        """
        if max_size < 1:
            raise HierarchyError(f"max_size must be >= 1, got {max_size}")
        partition: list[int] = []
        stack = [self._root]
        while stack:
            vertex = stack.pop()
            if self._size[vertex] <= max_size:
                partition.append(vertex)
            else:
                stack.extend(self._children[vertex])
        return sorted(partition)

    def partition_at_depth(self, depth: int) -> list[int]:
        """A flat partition: vertices at ``depth`` plus shallower leaves.

        Every leaf is covered exactly once: by its ancestor at ``depth``
        when one exists, or by the deepest vertex on its path otherwise.
        """
        if depth < 1:
            raise HierarchyError(f"depth must be >= 1, got {depth}")
        partition: list[int] = []
        stack = [self._root]
        while stack:
            vertex = stack.pop()
            if self._depth[vertex] == depth or not self._children[vertex]:
                partition.append(vertex)
            else:
                stack.extend(self._children[vertex])
        return sorted(partition)

    def total_leaf_depth(self) -> int:
        """``sum_v dep(v)`` over leaves — the HIMOR cost term (Theorem 6)."""
        return int(self._depth[: self._n_leaves].sum())

    def memory_bytes(self) -> int:
        """Approximate footprint, for Table II style reporting."""
        arrays = (
            self._parent,
            self._size,
            self._depth,
            self._leaf_order,
            self._leaf_position,
            self._range_lo,
            self._range_hi,
        )
        total = sum(a.nbytes for a in arrays)
        total += sum(8 * len(kids) for kids in self._children)
        return total

    def __repr__(self) -> str:
        return (
            f"CommunityHierarchy(leaves={self._n_leaves}, "
            f"communities={self.n_vertices - self._n_leaves}, "
            f"height={int(self._depth.max())})"
        )

    # -------------------------------------------------------------- internal

    def _validate_shape(self) -> None:
        total = len(self._parent)
        if not (0 < self._n_leaves <= total):
            raise HierarchyError(
                f"n_leaves={self._n_leaves} inconsistent with {total} vertices"
            )
        if len(self._children) != total:
            raise HierarchyError("children list length differs from parent array")
        roots = np.flatnonzero(self._parent == -1)
        if len(roots) != 1:
            raise HierarchyError(f"hierarchy must have exactly one root, found {len(roots)}")
        for leaf in range(self._n_leaves):
            if self._children[leaf]:
                raise HierarchyError(f"leaf {leaf} has children")
        for vertex in range(self._n_leaves, total):
            if not self._children[vertex]:
                raise HierarchyError(f"internal vertex {vertex} has no children")

    def _compute_layout(self) -> None:
        total = self.n_vertices
        self._depth = np.zeros(total, dtype=np.int64)
        self._size = np.zeros(total, dtype=np.int64)
        self._range_lo = np.zeros(total, dtype=np.int64)
        self._range_hi = np.zeros(total, dtype=np.int64)
        self._leaf_order = np.zeros(self._n_leaves, dtype=np.int64)
        self._leaf_position = np.zeros(self._n_leaves, dtype=np.int64)

        # Iterative DFS: assign depths on the way down, leaf ranges and
        # sizes on the way back up. Recursion is avoided because skewed
        # hierarchies (the paper's Retweet) can be thousands of levels deep.
        cursor = 0
        visited_leaves = 0
        stack: list[tuple[int, bool]] = [(self._root, False)]
        self._depth[self._root] = 1
        while stack:
            vertex, processed = stack.pop()
            if processed:
                lo = self._range_lo[vertex]
                hi = cursor
                self._range_hi[vertex] = hi
                self._size[vertex] = hi - lo
                continue
            self._range_lo[vertex] = cursor
            if vertex < self._n_leaves:
                self._leaf_order[cursor] = vertex
                self._leaf_position[vertex] = cursor
                cursor += 1
                self._range_hi[vertex] = cursor
                self._size[vertex] = 1
                visited_leaves += 1
                continue
            stack.append((vertex, True))
            for child in reversed(self._children[vertex]):
                self._depth[child] = self._depth[vertex] + 1
                stack.append((child, False))
        if visited_leaves != self._n_leaves:
            raise HierarchyError(
                f"root reaches {visited_leaves} of {self._n_leaves} leaves; "
                "the hierarchy must cover every node"
            )

    def _check_vertex(self, vertex: int) -> None:
        if not (0 <= vertex < self.n_vertices):
            raise HierarchyError(
                f"vertex {vertex} out of range (0..{self.n_vertices - 1})"
            )
