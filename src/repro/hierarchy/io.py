"""Serialization for community hierarchies.

Hierarchies are expensive to build on large graphs, and the HIMOR workflow
precomputes them offline; these helpers persist a hierarchy as a compact
JSON document (parent array + leaf count) inside the hardened envelope of
:mod:`repro.utils.persist`: writes are atomic (temp file + ``os.replace``)
and the document embeds a format version plus a SHA-256 checksum that
:func:`load_hierarchy` verifies — corruption raises
:class:`~repro.errors.HierarchyError`, never a raw ``json.JSONDecodeError``.
"""

from __future__ import annotations

from pathlib import Path

from repro.errors import HierarchyError
from repro.hierarchy.dendrogram import CommunityHierarchy
from repro.utils.faults import maybe_fail
from repro.utils.persist import atomic_write_json, load_versioned_json

#: Envelope format name; see :mod:`repro.utils.persist`.
HIERARCHY_FORMAT = "community-hierarchy"


def save_hierarchy(hierarchy: CommunityHierarchy, path: str | Path) -> None:
    """Atomically write ``hierarchy`` (``n_leaves`` + parent array)."""
    maybe_fail("hierarchy_save")
    payload = {
        "n_leaves": hierarchy.n_leaves,
        "parent": [hierarchy.parent(v) for v in range(hierarchy.n_vertices)],
    }
    atomic_write_json(path, payload, kind=HIERARCHY_FORMAT)


def load_hierarchy(path: str | Path) -> CommunityHierarchy:
    """Load a hierarchy written by :func:`save_hierarchy` (verified)."""
    maybe_fail("hierarchy_load")
    payload = load_versioned_json(path, kind=HIERARCHY_FORMAT, error_cls=HierarchyError)
    try:
        n_leaves = int(payload["n_leaves"])
        parent = [int(p) for p in payload["parent"]]
    except (KeyError, TypeError, ValueError) as exc:
        raise HierarchyError(f"malformed hierarchy JSON in {path}: {exc}") from exc
    return CommunityHierarchy.from_parents(n_leaves, parent)
