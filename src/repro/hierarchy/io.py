"""Serialization for community hierarchies.

Hierarchies are expensive to build on large graphs, and the HIMOR workflow
precomputes them offline; these helpers persist a hierarchy as a compact
JSON document (parent array + leaf count).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import HierarchyError
from repro.hierarchy.dendrogram import CommunityHierarchy


def save_hierarchy(hierarchy: CommunityHierarchy, path: str | Path) -> None:
    """Write ``hierarchy`` as JSON (``n_leaves`` + parent array)."""
    payload = {
        "n_leaves": hierarchy.n_leaves,
        "parent": [hierarchy.parent(v) for v in range(hierarchy.n_vertices)],
    }
    Path(path).write_text(json.dumps(payload), encoding="utf-8")


def load_hierarchy(path: str | Path) -> CommunityHierarchy:
    """Load a hierarchy written by :func:`save_hierarchy`."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    try:
        n_leaves = int(payload["n_leaves"])
        parent = [int(p) for p in payload["parent"]]
    except (KeyError, TypeError, ValueError) as exc:
        raise HierarchyError(f"malformed hierarchy JSON in {path}: {exc}") from exc
    return CommunityHierarchy.from_parents(n_leaves, parent)
