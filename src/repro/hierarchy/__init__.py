"""Community-hierarchy substrate: dendrograms, NN-chain clustering, LCA."""

from repro.hierarchy.balance import collapse_chains, rebalanced_hierarchy
from repro.hierarchy.chain import CommunityChain
from repro.hierarchy.dendrogram import CommunityHierarchy
from repro.hierarchy.lca import LcaIndex
from repro.hierarchy.linkage import (
    Linkage,
    SingleLinkage,
    TotalWeightLinkage,
    UnweightedAverageLinkage,
)
from repro.hierarchy.nnchain import agglomerative_hierarchy

__all__ = [
    "CommunityHierarchy",
    "CommunityChain",
    "LcaIndex",
    "rebalanced_hierarchy",
    "collapse_chains",
    "Linkage",
    "UnweightedAverageLinkage",
    "SingleLinkage",
    "TotalWeightLinkage",
    "agglomerative_hierarchy",
]
