"""Constant-time lowest-common-ancestor queries.

Implements the classic Euler-tour + sparse-table reduction of LCA to range
minimum (Bender et al. [48] in the paper): one O(T log T) preprocessing
pass, then O(1) per query. Both the LORE score computation (Theorem 5) and
HIMOR construction (Theorem 6) rely on O(1) ``lca``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import HierarchyError


class LcaIndex:
    """Euler-tour sparse-table LCA index over a :class:`CommunityHierarchy`."""

    __slots__ = ("_first", "_table", "_tour", "_log", "_depths")

    def __init__(self, hierarchy: "CommunityHierarchy") -> None:  # noqa: F821
        total = hierarchy.n_vertices
        tour: list[int] = []
        depths: list[int] = []
        first = np.full(total, -1, dtype=np.int64)

        # Iterative Euler tour: re-visit a vertex after each child subtree.
        stack: list[tuple[int, int]] = [(hierarchy.root, 0)]
        while stack:
            vertex, child_index = stack.pop()
            if first[vertex] == -1:
                first[vertex] = len(tour)
            tour.append(vertex)
            depths.append(hierarchy.depth(vertex))
            kids = hierarchy.children(vertex)
            if child_index < len(kids):
                stack.append((vertex, child_index + 1))
                stack.append((kids[child_index], 0))

        self._first = first
        self._tour = np.asarray(tour, dtype=np.int64)
        depth_arr = np.asarray(depths, dtype=np.int64)

        t = len(tour)
        # table[j][i] is the tour index of the minimum depth in the window
        # [i, i + 2^j). Entries with i > t - 2^j are built with a clamped
        # right half; queries never touch them (both query windows fit).
        table = [np.arange(t, dtype=np.int64)]
        span = 1
        positions = np.arange(t, dtype=np.int64)
        while span * 2 <= t:
            prev = table[-1]
            right = prev[np.minimum(positions + span, t - 1)]
            choose_right = depth_arr[right] < depth_arr[prev]
            table.append(np.where(choose_right, right, prev))
            span *= 2
        self._table = table
        self._log = np.zeros(t + 1, dtype=np.int64)
        for i in range(2, t + 1):
            self._log[i] = self._log[i // 2] + 1
        # Depth is consulted at query time through the tour.
        self._depths = depth_arr

    def lca(self, a: int, b: int) -> int:
        """Lowest common ancestor of tree vertices ``a`` and ``b``."""
        total = len(self._first)
        if not (0 <= a < total) or not (0 <= b < total):
            raise HierarchyError(f"lca arguments ({a}, {b}) out of range 0..{total - 1}")
        i = int(self._first[a])
        j = int(self._first[b])
        if i > j:
            i, j = j, i
        length = j - i + 1
        k = int(self._log[length])
        if k >= len(self._table):
            k = len(self._table) - 1
        left = int(self._table[k][i])
        right = int(self._table[k][j - (1 << k) + 1])
        depths = self._depths
        best = left if depths[left] <= depths[right] else right
        return int(self._tour[best])
