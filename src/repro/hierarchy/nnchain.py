"""Nearest-neighbor-chain agglomerative hierarchical clustering.

This is the hierarchy construction named in Section V-A of the paper: the
nearest-neighbor chain algorithm ([54], [55]) with unweighted-average
linkage ([45]). The algorithm maintains a chain of clusters in which each
element is a nearest neighbor of its predecessor; when two consecutive
chain elements are mutual nearest neighbors they are merged. For reducible
linkages this produces exactly the greedy "merge the globally most similar
pair" dendrogram, in near-linear time on sparse graphs.

Clusters are only ever compared when an edge connects them (similarity 0
otherwise), so the working state is a quotient-graph adjacency map that
shrinks as merges proceed.
"""

from __future__ import annotations

from repro.errors import DisconnectedGraphError
from repro.graph.graph import AttributedGraph
from repro.hierarchy.dendrogram import CommunityHierarchy
from repro.hierarchy.linkage import Linkage, UnweightedAverageLinkage
from repro.utils.faults import maybe_fail


def agglomerative_hierarchy(
    graph: AttributedGraph,
    linkage: Linkage | None = None,
    on_disconnected: str = "merge",
) -> CommunityHierarchy:
    """Cluster ``graph`` into a binary community hierarchy.

    Parameters
    ----------
    graph:
        The graph to cluster; edge weights (if any) drive the linkage,
        which is how attribute-aware reclustering enters the pipeline.
    linkage:
        Cluster-similarity definition; defaults to the paper's
        unweighted-average linkage.
    on_disconnected:
        ``"merge"`` joins exhausted components at the top of the dendrogram
        (largest first, similarity conceptually 0); ``"error"`` raises
        :class:`DisconnectedGraphError` instead.

    Returns
    -------
    CommunityHierarchy
        A binary dendrogram whose leaves are the graph's nodes.
    """
    maybe_fail("clustering")
    if on_disconnected not in ("merge", "error"):
        raise ValueError(f"on_disconnected must be 'merge' or 'error', got {on_disconnected!r}")
    linkage = linkage or UnweightedAverageLinkage()
    n = graph.n
    if n == 1:
        # A single node is its own (degenerate) hierarchy: no communities.
        # Downstream code requires at least a root, so synthesize none here
        # and let callers handle n == 1; in practice datasets are larger.
        raise DisconnectedGraphError("cannot build a hierarchy over a single node")

    # Quotient-graph state. neighbor_weight[c] maps adjacent cluster -> the
    # linkage-aggregated connection weight.
    neighbor_weight: dict[int, dict[int, float]] = {}
    size: dict[int, int] = {}
    for v in range(n):
        row = graph.neighbors(v)
        wrow = graph.neighbor_weights(v)
        neighbor_weight[v] = {int(u): float(w) for u, w in zip(row, wrow)}
        size[v] = 1

    merges: list[tuple[int, int]] = []
    next_id = n
    active: set[int] = set(range(n))
    chain: list[int] = []

    def nearest(cluster: int) -> tuple[int, float] | None:
        best: tuple[float, int] | None = None
        ca = size[cluster]
        for other, weight in neighbor_weight[cluster].items():
            sim = linkage.similarity(weight, ca, size[other])
            # Deterministic tie-break: larger similarity, then smaller id.
            if best is None or sim > best[0] or (sim == best[0] and other < best[1]):
                best = (sim, other)
        if best is None:
            return None
        return best[1], best[0]

    while True:
        if not chain:
            # Seed the chain with the smallest cluster that still has a
            # neighbor; when none exists, every component is fully merged.
            candidates = [c for c in active if neighbor_weight[c]]
            if not candidates:
                break
            chain.append(min(candidates))
        tail = chain[-1]
        found = nearest(tail)
        if found is None:
            # The tail's component collapsed to a single cluster.
            chain.pop()
            continue
        candidate, _sim = found
        if len(chain) >= 2 and candidate == chain[-2]:
            a = chain.pop()
            b = chain.pop()
            new_id = next_id
            next_id += 1
            _merge(neighbor_weight, size, linkage, a, b, new_id)
            active.discard(a)
            active.discard(b)
            active.add(new_id)
            merges.append((a, b))
        else:
            chain.append(candidate)

    remaining = sorted(active, key=lambda c: (-size[c], c))
    if len(remaining) > 1:
        if on_disconnected == "error":
            raise DisconnectedGraphError(
                f"graph has {len(remaining)} components; pass on_disconnected='merge' "
                "to stack them under a synthetic root"
            )
        # Chain the components under one root, largest first so the most
        # meaningful structure stays deepest.
        current = remaining[0]
        for other in remaining[1:]:
            merges.append((current, other))
            current = next_id
            next_id += 1

    return CommunityHierarchy.from_merges(n, merges)


def _merge(
    neighbor_weight: dict[int, dict[int, float]],
    size: dict[int, int],
    linkage: Linkage,
    a: int,
    b: int,
    new_id: int,
) -> None:
    """Collapse clusters ``a`` and ``b`` into ``new_id`` in the quotient graph."""
    wa = neighbor_weight.pop(a)
    wb = neighbor_weight.pop(b)
    wa.pop(b, None)
    wb.pop(a, None)
    if len(wa) < len(wb):
        wa, wb = wb, wa
    for other, weight in wb.items():
        if other in wa:
            wa[other] = linkage.combine(wa[other], weight)
        else:
            wa[other] = weight
    for other in wa:
        row = neighbor_weight[other]
        w_to_a = row.pop(a, None)
        w_to_b = row.pop(b, None)
        if w_to_a is not None and w_to_b is not None:
            row[new_id] = linkage.combine(w_to_a, w_to_b)
        elif w_to_a is not None:
            row[new_id] = w_to_a
        elif w_to_b is not None:
            row[new_id] = w_to_b
    neighbor_weight[new_id] = wa
    size[new_id] = size.pop(a) + size.pop(b)
