"""Structured export of experiment results (CSV / JSON).

The drivers in :mod:`repro.eval.experiments` return nested dictionaries;
these helpers flatten them into tidy long-format rows — one observation
per row — so results can be loaded into pandas/R or archived alongside
EXPERIMENTS.md. Only the standard library is used.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Mapping, Sequence


def flatten_nested(
    results: Mapping,
    key_names: Sequence[str],
) -> list[dict[str, object]]:
    """Flatten nested dicts into long-format rows.

    ``key_names`` labels each nesting level; the innermost mapping's items
    become columns. Example: Fig. 7's ``results[dataset][method][k]``
    flattens with ``key_names=("dataset", "method", "k")`` into rows like
    ``{"dataset": "cora", "method": "CODL", "k": 5, "size": ..., ...}``.
    """
    rows: list[dict[str, object]] = []

    def walk(node: Mapping, prefix: dict[str, object], depth: int) -> None:
        if depth == len(key_names):
            row = dict(prefix)
            for column, value in node.items():
                row[str(column)] = value
            rows.append(row)
            return
        for key, child in node.items():
            walk(child, {**prefix, key_names[depth]: key}, depth + 1)

    walk(results, {}, 0)
    return rows


def write_csv(rows: Sequence[Mapping[str, object]], path: "str | Path") -> None:
    """Write long-format rows as CSV (columns = union of row keys)."""
    path = Path(path)
    if not rows:
        path.write_text("", encoding="utf-8")
        return
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    with path.open("w", encoding="utf-8", newline="") as f:
        writer = csv.DictWriter(f, fieldnames=columns)
        writer.writeheader()
        for row in rows:
            writer.writerow(row)


def read_csv(path: "str | Path") -> list[dict[str, str]]:
    """Read a CSV written by :func:`write_csv` (values as strings)."""
    with Path(path).open("r", encoding="utf-8", newline="") as f:
        return [dict(row) for row in csv.DictReader(f)]


def write_json(results: object, path: "str | Path") -> None:
    """Write any driver result as pretty-printed JSON.

    Integer dict keys (the ``k`` levels) are serialized as strings by
    JSON; :func:`read_json` does not undo that, so prefer the CSV path
    when types matter.
    """
    Path(path).write_text(
        json.dumps(results, indent=2, sort_keys=True, default=_coerce),
        encoding="utf-8",
    )


def read_json(path: "str | Path") -> object:
    """Read JSON written by :func:`write_json`."""
    return json.loads(Path(path).read_text(encoding="utf-8"))


def _coerce(value: object) -> object:
    """JSON fallback for numpy scalars and arrays.

    Arrays are checked first: numpy arrays also expose ``item`` but it
    only works for single elements.
    """
    if hasattr(value, "tolist"):
        return value.tolist()
    if hasattr(value, "item"):
        return value.item()
    raise TypeError(f"cannot serialize {type(value).__name__}")
