"""Experiment drivers — one per table/figure of Section V.

Each driver reproduces the workload of one paper artifact on the registry
datasets and returns structured results; ``print_*`` (or the benchmark
harness in ``benchmarks/``) renders the same rows/series the paper
reports. Paper-vs-measured numbers are recorded in EXPERIMENTS.md.

The drivers default to scaled-down workloads (fewer queries, smaller
graphs) so the whole suite runs in minutes; every size knob is a
parameter.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.baselines.acq import acq_community
from repro.baselines.atc import atc_community
from repro.baselines.cac import cac_community
from repro.core.compressed import compressed_cod
from repro.core.independent import independent_cod
from repro.core.lore import lore_chain
from repro.core.pipeline import CODL, CODR, CODU, CODLMinus
from repro.core.problem import CODQuery
from repro.datasets.queries import generate_queries
from repro.datasets.registry import dataset_spec, load_dataset
from repro.errors import DatasetError
from repro.eval.measures import (
    global_influence_table,
    is_characteristic,
    measure_community,
    oracle_rank,
)
from repro.graph.metrics import conductance
from repro.graph.weighting import (
    AttributeWeighting,
    WeightedGraphCache,
    attribute_weighted_graph,
)
from repro.hierarchy.chain import CommunityChain
from repro.hierarchy.nnchain import agglomerative_hierarchy
from repro.utils.cache import LRUCache
from repro.utils.rng import ensure_rng

#: Datasets used in the effectiveness grid (Fig. 7) — all but livejournal,
#: which the paper reserves for the scalability test.
EFFECTIVENESS_DATASETS = ("cora", "citeseer", "pubmed", "retweet", "amazon", "dblp")

#: Datasets of Fig. 4 (hierarchy-skew comparison).
SKEW_DATASETS = ("cora", "citeseer", "pubmed", "retweet")

BASELINE_METHODS = ("ACQ", "ATC", "CAC")
COD_METHODS = ("CODU", "CODR", "CODL")


@dataclass
class ExperimentConfig:
    """Shared knobs for all drivers (scaled-down defaults)."""

    n_queries: int = 20
    theta: int = 10
    ks: tuple[int, ...] = (1, 2, 3, 4, 5)
    seed: int = 7
    query_seed: int = 3
    eval_seed: int = 11
    scale: float = 1.0
    oracle_samples_per_node: int = 100
    weighting: AttributeWeighting = field(default_factory=AttributeWeighting)
    #: Bound for the drivers' per-attribute memos (weighted graphs,
    #: reclustered hierarchies) — LRU-evicted beyond this.
    cache_capacity: int = 64


# --------------------------------------------------------------- Table I


def table1_dataset_stats(
    names: "tuple[str, ...]" = (*EFFECTIVENESS_DATASETS, "livejournal"),
    config: ExperimentConfig | None = None,
) -> list[dict[str, object]]:
    """Table I: dataset statistics including the mean ``|H_l(q)|``.

    The hierarchy-depth column is measured on the non-attributed hierarchy
    (the quantity that drives HIMOR's cost, Theorem 6).
    """
    config = config or ExperimentConfig()
    rows: list[dict[str, object]] = []
    for name in names:
        data = load_dataset(name, scale=config.scale, seed=config.seed)
        hierarchy = agglomerative_hierarchy(data.graph)
        depths = [len(hierarchy.path_communities(v)) for v in range(data.n)]
        spec = dataset_spec(name)
        rows.append(
            {
                "dataset": name,
                "nodes": data.n,
                "edges": data.m,
                "attributes": len(data.graph.attribute_universe),
                "mean_H_q": float(np.mean(depths)),
                "log2_n": float(np.log2(data.n)),
                "paper_nodes": spec.paper_nodes,
                "paper_edges": spec.paper_edges,
            }
        )
    return rows


# ----------------------------------------------------------------- Fig. 4


def fig4_hierarchy_skew(
    names: "tuple[str, ...]" = SKEW_DATASETS,
    config: ExperimentConfig | None = None,
    deepest: int = 5,
) -> dict[str, dict[str, float]]:
    """Fig. 4: mean size of the ``deepest`` smallest communities containing
    a query node, for the CODU / CODR / CODL hierarchies.

    Returns ``results[dataset][method]``.
    """
    config = config or ExperimentConfig()
    results: dict[str, dict[str, float]] = {}
    for name in names:
        data = load_dataset(name, scale=config.scale, seed=config.seed)
        graph = data.graph
        queries = generate_queries(
            graph, count=config.n_queries, rng=config.query_seed
        )
        base = agglomerative_hierarchy(graph)

        # One bounded cache pair per dataset — the same WeightedGraphCache
        # the server's LORE path uses, so both layers are guaranteed to
        # weight a given attribute identically.
        weighted_cache = WeightedGraphCache(
            graph, config.weighting, capacity=config.cache_capacity
        )
        recl_cache = LRUCache(config.cache_capacity, name="recl")

        def weighted(attribute: int):
            return weighted_cache.get(attribute)

        def reclustered(attribute: int):
            return recl_cache.get_or_create(
                attribute, lambda: agglomerative_hierarchy(weighted(attribute))
            )

        per_method: dict[str, list[float]] = {m: [] for m in COD_METHODS}
        for query in queries:
            q, attribute = query.node, query.attribute
            chain_u = CommunityChain.from_hierarchy(base, q)
            chain_r = CommunityChain.from_hierarchy(reclustered(attribute), q)
            chain_l = lore_chain(
                graph, base, q, attribute,
                weighting=config.weighting, weighted_graph=weighted(attribute),
            ).chain
            for method, chain in (
                ("CODU", chain_u), ("CODR", chain_r), ("CODL", chain_l)
            ):
                sizes = chain.sizes[:deepest]
                per_method[method].append(float(np.mean(sizes)))
        results[name] = {m: float(np.mean(vals)) for m, vals in per_method.items()}
    return results


# ----------------------------------------------------------------- Fig. 7


def fig7_effectiveness(
    names: "tuple[str, ...]" = EFFECTIVENESS_DATASETS,
    config: ExperimentConfig | None = None,
    methods: "tuple[str, ...]" = (*BASELINE_METHODS, *COD_METHODS),
) -> dict[str, dict[str, dict[int, dict[str, float]]]]:
    """Fig. 7: the full effectiveness grid.

    Returns ``results[dataset][method][k]`` with keys ``size``, ``rho``,
    ``phi``, ``influence`` and ``found`` (fraction of queries answered).
    Community-search answers in which the query node is not top-k
    influential score 0, as in the paper.
    """
    config = config or ExperimentConfig()
    rng = ensure_rng(config.eval_seed)
    results: dict[str, dict[str, dict[int, dict[str, float]]]] = {}
    for name in names:
        data = load_dataset(name, scale=config.scale, seed=config.seed)
        graph = data.graph
        queries = generate_queries(graph, count=config.n_queries, rng=config.query_seed)
        influence_of = global_influence_table(
            graph, theta=config.theta, rng=ensure_rng(config.eval_seed)
        )

        pipelines = _build_pipelines(graph, config)
        per_method: dict[str, dict[int, dict[str, float]]] = {}
        for method in methods:
            accum: dict[int, list[dict[str, float]]] = {k: [] for k in config.ks}
            for query in queries:
                answers = _answer_query(
                    method, graph, pipelines, query, config, rng
                )
                for k in config.ks:
                    members = answers[k]
                    record = _measure_answer(
                        graph, members, query, influence_of
                    )
                    accum[k].append(record)
            per_method[method] = {
                k: _aggregate_records(records) for k, records in accum.items()
            }
        results[name] = per_method
    return results


def _build_pipelines(graph, config: ExperimentConfig) -> dict[str, object]:
    common = dict(theta=config.theta, weighting=config.weighting)
    return {
        "CODU": CODU(graph, seed=config.eval_seed, **common),
        "CODR": CODR(graph, seed=config.eval_seed, **common),
        "CODL": CODL(graph, seed=config.eval_seed, **common),
        "CODL-": CODLMinus(graph, seed=config.eval_seed, **common),
    }


def _answer_query(
    method: str,
    graph,
    pipelines: dict[str, object],
    query: CODQuery,
    config: ExperimentConfig,
    rng: np.random.Generator,
) -> dict[int, "np.ndarray | None"]:
    """One query's answer per rank budget, for any compared method."""
    ks = list(config.ks)
    if method in pipelines:
        pipeline = pipelines[method]
        results = pipeline.discover_multi(query.node, query.attribute, ks)
        return {k: results[k].members for k in ks}

    if method == "ACQ":
        members = acq_community(graph, query.node, query.attribute)
    elif method == "ATC":
        members = atc_community(graph, query.node, query.attribute)
    elif method == "CAC":
        members = cac_community(graph, query.node, query.attribute)
    else:
        raise DatasetError(f"unknown method {method!r}")

    # Baseline communities count only when the query node is top-k
    # influential inside them; the check is k-dependent but the community
    # is not, so the oracle rank is estimated once.
    answers: dict[int, np.ndarray | None] = {}
    if members is None:
        return {k: None for k in ks}
    if len(members) <= min(ks):
        rank = 1
    else:
        rank = oracle_rank(
            graph, members, query.node,
            samples_per_node=config.oracle_samples_per_node, rng=rng,
        )
    for k in ks:
        answers[k] = members if rank <= k or len(members) <= k else None
    return answers


def _measure_answer(graph, members, query: CODQuery, influence_of) -> dict[str, float]:
    measures = measure_community(graph, members, query.attribute)
    return {
        "size": float(measures.size),
        "rho": measures.topology_density,
        "phi": measures.attribute_density,
        "found": 1.0 if members is not None else 0.0,
        "influence": influence_of[query.node] if members is not None else float("nan"),
    }


def _aggregate_records(records: list[dict[str, float]]) -> dict[str, float]:
    out: dict[str, float] = {}
    for key in ("size", "rho", "phi", "found"):
        out[key] = float(np.mean([r[key] for r in records])) if records else 0.0
    influences = [r["influence"] for r in records if not np.isnan(r["influence"])]
    out["influence"] = float(np.mean(influences)) if influences else 0.0
    return out


# ----------------------------------------------------------------- Fig. 8


def fig8_compressed_vs_independent(
    names: "tuple[str, ...]" = ("cora", "citeseer"),
    thetas: "tuple[int, ...]" = (10, 20, 40, 80),
    config: ExperimentConfig | None = None,
    k: int = 5,
) -> dict[str, dict[str, dict[int, dict[str, float]]]]:
    """Fig. 8: Compressed vs Independent on the two small datasets.

    Both evaluate the same CODR chain per query. Returns
    ``results[dataset][variant][theta]`` with keys ``precision``,
    ``size_mean``, ``size_min``, ``size_max``, ``time`` and ``samples``.
    """
    config = config or ExperimentConfig()
    results: dict[str, dict[str, dict[int, dict[str, float]]]] = {}
    for name in names:
        data = load_dataset(name, scale=config.scale, seed=config.seed)
        graph = data.graph
        queries = generate_queries(graph, count=config.n_queries, rng=config.query_seed)

        weighted_cache = WeightedGraphCache(
            graph, config.weighting, capacity=config.cache_capacity
        )
        hierarchies = LRUCache(config.cache_capacity, name="fig8.hierarchies")

        def chain_for(query: CODQuery) -> CommunityChain:
            attribute = query.attribute
            hierarchy = hierarchies.get_or_create(
                attribute,
                lambda: agglomerative_hierarchy(weighted_cache.get(attribute)),
            )
            return CommunityChain.from_hierarchy(hierarchy, query.node)

        per_variant: dict[str, dict[int, dict[str, float]]] = {
            "Compressed": {}, "Independent": {},
        }
        for theta in thetas:
            comp_stats = _Fig8Accumulator()
            ind_stats = _Fig8Accumulator()
            rng = ensure_rng(config.eval_seed)
            oracle_rng = ensure_rng(config.eval_seed + 1)
            for query in queries:
                chain = chain_for(query)

                start = time.perf_counter()
                evaluation = compressed_cod(
                    graph, chain, k=k, theta=theta, rng=rng
                )
                members = evaluation.characteristic_community(k)
                comp_stats.add(
                    graph, members, query.node, k, time.perf_counter() - start,
                    theta * graph.n, config, oracle_rng,
                )

                start = time.perf_counter()
                ind_eval = independent_cod(graph, chain, k=k, theta=theta, rng=rng)
                ind_members = ind_eval.characteristic_community(k)
                ind_stats.add(
                    graph, ind_members, query.node, k,
                    time.perf_counter() - start,
                    ind_eval.n_samples_total, config, oracle_rng,
                )
            per_variant["Compressed"][theta] = comp_stats.summary()
            per_variant["Independent"][theta] = ind_stats.summary()
        results[name] = per_variant
    return results


class _Fig8Accumulator:
    """Collects per-query Fig. 8 statistics for one (variant, theta)."""

    def __init__(self) -> None:
        self.sizes: list[int] = []
        self.correct: list[bool] = []
        self.times: list[float] = []
        self.samples: list[int] = []

    def add(
        self, graph, members, q: int, k: int, elapsed: float, samples: int,
        config: ExperimentConfig, oracle_rng: np.random.Generator,
    ) -> None:
        self.times.append(elapsed)
        self.samples.append(samples)
        if members is None:
            return
        self.sizes.append(len(members))
        self.correct.append(
            is_characteristic(
                graph, members, q, k,
                samples_per_node=config.oracle_samples_per_node, rng=oracle_rng,
            )
        )

    def summary(self) -> dict[str, float]:
        return {
            "precision": float(np.mean(self.correct)) if self.correct else 0.0,
            "size_mean": float(np.mean(self.sizes)) if self.sizes else 0.0,
            "size_min": float(np.min(self.sizes)) if self.sizes else 0.0,
            "size_max": float(np.max(self.sizes)) if self.sizes else 0.0,
            "time": float(np.mean(self.times)) if self.times else 0.0,
            "samples": float(np.mean(self.samples)) if self.samples else 0.0,
        }


# ----------------------------------------------------------------- Fig. 9


def fig9_runtime(
    names: "tuple[str, ...]" = EFFECTIVENESS_DATASETS,
    config: ExperimentConfig | None = None,
    k: int = 5,
    include_scalability: bool = False,
) -> dict[str, dict[str, float]]:
    """Fig. 9: mean per-query runtime of CODR, CODL- and CODL.

    CODR's hierarchy cache is disabled so each query pays global
    reclustering, as the paper charges it. Index/hierarchy construction
    shared across queries is excluded (reported by Table II instead).
    Returns ``results[dataset][method]`` in seconds.
    """
    config = config or ExperimentConfig()
    if include_scalability:
        names = (*names, "livejournal")
    results: dict[str, dict[str, float]] = {}
    for name in names:
        data = load_dataset(name, scale=config.scale, seed=config.seed)
        graph = data.graph
        queries = generate_queries(graph, count=config.n_queries, rng=config.query_seed)
        common = dict(theta=config.theta, weighting=config.weighting)

        codr = CODR(graph, cache_hierarchies=False, seed=config.eval_seed, **common)
        codl_minus = CODLMinus(graph, seed=config.eval_seed, **common)
        codl = CODL(graph, seed=config.eval_seed, **common)
        # Shared structures are built outside the timed loop.
        _ = codl_minus.hierarchy
        _ = codl.index

        timings: dict[str, list[float]] = {"CODR": [], "CODL-": [], "CODL": []}
        for query in queries:
            for label, pipeline in (
                ("CODR", codr), ("CODL-", codl_minus), ("CODL", codl)
            ):
                result = pipeline.discover(CODQuery(query.node, query.attribute, k))
                timings[label].append(result.elapsed)
        results[name] = {m: float(np.mean(ts)) for m, ts in timings.items()}
    return results


# ---------------------------------------------------------------- Table II


def table2_himor_overhead(
    names: "tuple[str, ...]" = (*EFFECTIVENESS_DATASETS, "livejournal"),
    config: ExperimentConfig | None = None,
) -> list[dict[str, object]]:
    """Table II: HIMOR construction time and memory vs input size."""
    config = config or ExperimentConfig()
    rows: list[dict[str, object]] = []
    for name in names:
        data = load_dataset(name, scale=config.scale, seed=config.seed)
        graph = data.graph
        codl = CODL(graph, theta=config.theta, seed=config.eval_seed)
        start = time.perf_counter()
        index = codl.index
        build_seconds = time.perf_counter() - start
        input_bytes = graph.memory_bytes() + codl.hierarchy.memory_bytes()
        rows.append(
            {
                "dataset": name,
                "time_s": build_seconds,
                "index_mb": index.memory_bytes() / 2**20,
                "input_mb": input_bytes / 2**20,
                "mean_depth": codl.hierarchy.total_leaf_depth() / graph.n,
            }
        )
    return rows


# --------------------------------------------------------------- Case study


def case_study(
    name: str = "cora",
    config: ExperimentConfig | None = None,
    k: int = 1,
    max_cases: int = 2,
) -> list[dict[str, object]]:
    """Section V-E: CODL vs ATC/ACQ/CAC on individual queries at k=1.

    Picks queries for which CODL finds a characteristic community and
    reports, per method: community size, the query node's oracle rank
    inside it, and conductance — the quantities the paper's case study
    discusses.
    """
    config = config or ExperimentConfig()
    data = load_dataset(name, scale=config.scale, seed=config.seed)
    graph = data.graph
    queries = generate_queries(graph, count=config.n_queries, rng=config.query_seed)
    codl = CODL(graph, theta=config.theta, weighting=config.weighting,
                seed=config.eval_seed)
    oracle_rng = ensure_rng(config.eval_seed + 1)

    cases: list[dict[str, object]] = []
    for query in queries:
        if len(cases) >= max_cases:
            break
        result = codl.discover(CODQuery(query.node, query.attribute, k))
        if not result.found or result.size < 4:
            continue
        case: dict[str, object] = {
            "query": query.node,
            "attribute": query.attribute,
            "methods": {},
        }
        communities = {
            "CODL": result.members,
            "ATC": atc_community(graph, query.node, query.attribute),
            "ACQ": acq_community(graph, query.node, query.attribute),
            "CAC": cac_community(graph, query.node, query.attribute),
        }
        for label, members in communities.items():
            if members is None or len(members) == 0:
                case["methods"][label] = None
                continue
            rank = (
                1 if len(members) == 1 else oracle_rank(
                    graph, members, query.node,
                    samples_per_node=config.oracle_samples_per_node,
                    rng=oracle_rng,
                )
            )
            case["methods"][label] = {
                "size": len(members),
                "rank": rank,
                "conductance": conductance(graph, members),
            }
        cases.append(case)
    return cases


# ---------------------------------------------------------------- Ablation


def ablation_lore(
    names: "tuple[str, ...]" = ("cora", "citeseer"),
    config: ExperimentConfig | None = None,
    k: int = 5,
) -> dict[str, dict[str, dict[str, float]]]:
    """Ablation: LORE design choices (DESIGN.md §4).

    Compares (a) the depth-weighted reclustering score vs plain edge
    counting and (b) the ``g_l`` weighting schemes, reporting mean size,
    attribute density and found-rate of the resulting communities.
    Returns ``results[dataset][variant]``.
    """
    config = config or ExperimentConfig()
    variants: dict[str, dict[str, object]] = {
        "depth+both_endpoints": {
            "depth_weighted": True,
            "weighting": AttributeWeighting(scheme="both_endpoints"),
        },
        "count+both_endpoints": {
            "depth_weighted": False,
            "weighting": AttributeWeighting(scheme="both_endpoints"),
        },
        "depth+endpoint_average": {
            "depth_weighted": True,
            "weighting": AttributeWeighting(scheme="endpoint_average"),
        },
        "depth+jaccard": {
            "depth_weighted": True,
            "weighting": AttributeWeighting(scheme="jaccard"),
        },
    }
    results: dict[str, dict[str, dict[str, float]]] = {}
    for name in names:
        data = load_dataset(name, scale=config.scale, seed=config.seed)
        graph = data.graph
        queries = generate_queries(graph, count=config.n_queries, rng=config.query_seed)
        base = agglomerative_hierarchy(graph)
        per_variant: dict[str, dict[str, float]] = {}
        for label, options in variants.items():
            weighting: AttributeWeighting = options["weighting"]  # type: ignore[assignment]
            depth_weighted: bool = options["depth_weighted"]  # type: ignore[assignment]
            rng = ensure_rng(config.eval_seed)
            sizes: list[float] = []
            phis: list[float] = []
            found = 0
            for query in queries:
                lore = lore_chain(
                    graph, base, query.node, query.attribute,
                    weighting=weighting, depth_weighted=depth_weighted,
                )
                evaluation = compressed_cod(
                    graph, lore.chain, k=k, theta=config.theta, rng=rng
                )
                members = evaluation.characteristic_community(k)
                measures = measure_community(graph, members, query.attribute)
                sizes.append(float(measures.size))
                phis.append(measures.attribute_density)
                found += 1 if members is not None else 0
            per_variant[label] = {
                "size": float(np.mean(sizes)),
                "phi": float(np.mean(phis)),
                "found": found / len(queries),
            }
        results[name] = per_variant
    return results
