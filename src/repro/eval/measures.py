"""Evaluation measures of Section V-A.

* ``|C*|``, topology density ``rho``, attribute density ``phi`` — computed
  by :func:`measure_community`;
* ``I(q)`` — global influence of a query node, via one shared RR pool per
  dataset (:func:`global_influence_table`);
* the characteristic-community check for baseline methods
  (:func:`is_characteristic` / :func:`oracle_rank`) — RR estimation inside
  the returned community, used to assign 0 to non-characteristic answers
  as the paper prescribes, and as the top-k precision oracle of Fig. 8.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.graph.graph import AttributedGraph
from repro.graph.metrics import attribute_density, topology_density
from repro.influence.estimator import estimate_influences, estimate_influences_in_community
from repro.influence.models import InfluenceModel
from repro.utils.rng import ensure_rng


@dataclass(frozen=True)
class CommunityMeasures:
    """The three per-community effectiveness measures (zeros when absent)."""

    size: int
    topology_density: float
    attribute_density: float

    @classmethod
    def zero(cls) -> "CommunityMeasures":
        """The all-zero record the paper assigns to missing communities."""
        return cls(size=0, topology_density=0.0, attribute_density=0.0)


def measure_community(
    graph: AttributedGraph,
    members: "Sequence[int] | np.ndarray | None",
    attribute: int,
) -> CommunityMeasures:
    """Measure one community; ``None`` members yield the zero record."""
    if members is None or len(members) == 0:
        return CommunityMeasures.zero()
    return CommunityMeasures(
        size=len(members),
        topology_density=topology_density(graph, members),
        attribute_density=attribute_density(graph, members, attribute),
    )


def oracle_rank(
    graph: AttributedGraph,
    members: "Sequence[int] | np.ndarray",
    q: int,
    samples_per_node: int = 200,
    model: InfluenceModel | None = None,
    rng: "int | np.random.Generator | None" = None,
) -> int:
    """High-sample RR estimate of ``rank_C(q)`` (1-based).

    The Fig. 8 oracle draws ``samples_per_node * |C|`` restricted RR sets
    (the paper uses 1000 per node; 200 is the scaled default).
    """
    estimate = estimate_influences_in_community(
        graph, members, samples_per_node * len(members), model=model, rng=rng
    )
    return estimate.rank(q)


def is_characteristic(
    graph: AttributedGraph,
    members: "Sequence[int] | np.ndarray | None",
    q: int,
    k: int,
    samples_per_node: int = 200,
    model: InfluenceModel | None = None,
    rng: "int | np.random.Generator | None" = None,
) -> bool:
    """Whether ``q`` is top-``k`` influential inside ``members``.

    Communities no larger than ``k`` qualify trivially; ``None`` never
    qualifies.
    """
    if members is None or len(members) == 0 or int(q) not in set(int(v) for v in members):
        return False
    if len(members) <= k:
        return True
    return oracle_rank(graph, members, q, samples_per_node, model=model, rng=rng) <= k


def global_influence_table(
    graph: AttributedGraph,
    theta: int = 10,
    model: InfluenceModel | None = None,
    rng: "int | np.random.Generator | None" = None,
) -> dict[int, float]:
    """``I(v) = sigma_g(v)`` for every node, from one shared RR pool.

    One pool of ``theta * |V|`` RR sets serves every query of a dataset —
    the Fig. 7 (s)-(x) reporting path.
    """
    rng = ensure_rng(rng)
    estimate = estimate_influences(graph, theta * graph.n, model=model, rng=rng)
    return {v: estimate.influence(v) for v in range(graph.n)}
