"""Plain-text report rendering for the experiment drivers.

Every driver returns structured data; these helpers turn it into the
aligned tables the benchmark harness prints, so paper-vs-measured
comparisons live in one place (EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Iterable, Sequence


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    float_format: str = "{:.3f}",
) -> str:
    """Render an aligned fixed-width table with a title rule."""
    materialized = [[_fmt(cell, float_format) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title, "=" * max(len(title), sum(widths) + 2 * (len(widths) - 1))]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in materialized:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_series(
    title: str,
    x_label: str,
    x_values: Sequence[object],
    series: dict[str, Sequence[float]],
    float_format: str = "{:.3f}",
) -> str:
    """Render one figure panel: an x column plus one column per series."""
    headers = [x_label, *series]
    rows = []
    for i, x in enumerate(x_values):
        rows.append([x, *(values[i] for values in series.values())])
    return render_table(title, headers, rows, float_format=float_format)


def _fmt(cell: object, float_format: str) -> str:
    if isinstance(cell, bool):
        return "yes" if cell else "no"
    if isinstance(cell, float):
        return float_format.format(cell)
    return str(cell)
