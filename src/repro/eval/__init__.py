"""Evaluation measures, experiment drivers, and report formatting."""

from repro.eval.measures import (
    CommunityMeasures,
    global_influence_table,
    is_characteristic,
    measure_community,
    oracle_rank,
)
from repro.eval.reporting import render_table

__all__ = [
    "CommunityMeasures",
    "measure_community",
    "oracle_rank",
    "is_characteristic",
    "global_influence_table",
    "render_table",
]
