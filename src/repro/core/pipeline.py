"""End-to-end COD pipelines — the methods compared in Section V.

* :class:`CODU` — non-attributed hierarchy on ``g`` + compressed evaluation.
* :class:`CODR` — global reclustering: hierarchy on the attribute-weighted
  ``g_l`` + compressed evaluation.
* :class:`CODLMinus` — LORE chain + compressed evaluation (no index); the
  "CODL-" baseline of Section V-D.
* :class:`CODL` — LORE chain + HIMOR index + Algorithm 3; the paper's fully
  optimized method.

Each pipeline exposes ``discover(query)`` returning a :class:`CODResult`
and ``discover_multi(node, attribute, ks)`` that answers several rank
budgets while sharing the expensive sampling — the shape every experiment
driver sweeps.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.compressed import compressed_cod
from repro.core.himor import HimorIndex
from repro.core.lore import lore_chain
from repro.core.problem import CODQuery
from repro.errors import QueryError
from repro.graph.graph import AttributedGraph
from repro.graph.weighting import (
    AttributeWeighting,
    WeightedGraphCache,
    attribute_weighted_graph,
)
from repro.hierarchy.chain import CommunityChain
from repro.hierarchy.dendrogram import CommunityHierarchy
from repro.hierarchy.linkage import Linkage
from repro.hierarchy.nnchain import agglomerative_hierarchy
from repro.influence.models import InfluenceModel, WeightedCascade
from repro.influence.arena import sample_arena
from repro.utils.cache import LRUCache
from repro.utils.rng import ensure_rng


@dataclass
class CODResult:
    """Answer to one COD query.

    Attributes
    ----------
    method:
        Pipeline name (``"CODU"``, ``"CODR"``, ``"CODL-"``, ``"CODL"``).
    query:
        The query answered.
    members:
        Node ids of the characteristic community ``C*(q)``, or ``None``
        when the query node is not top-``k`` influential in any community
        of its chain (the paper scores such queries as 0 in every measure).
    chain_length:
        ``|H_l(q)|`` — number of communities examined.
    elapsed:
        Query wall-clock seconds (hierarchy/index construction shared
        across queries is excluded; per-query reclustering is included).
    """

    method: str
    query: CODQuery
    members: np.ndarray | None
    chain_length: int
    elapsed: float

    @property
    def found(self) -> bool:
        """Whether a characteristic community exists for this query."""
        return self.members is not None

    @property
    def size(self) -> int:
        """``|C*(q)|`` (0 when not found, matching the paper's scoring)."""
        return 0 if self.members is None else len(self.members)


class _BasePipeline:
    """Shared construction knobs for all pipelines."""

    method_name = "abstract"

    def __init__(
        self,
        graph: AttributedGraph,
        theta: int = 10,
        model: InfluenceModel | None = None,
        weighting: AttributeWeighting | None = None,
        linkage: Linkage | None = None,
        seed: "int | np.random.Generator | None" = None,
        rebalance: bool = False,
    ) -> None:
        self.graph = graph
        self.theta = int(theta)
        self.model = model or WeightedCascade()
        self.weighting = weighting or AttributeWeighting()
        self.linkage = linkage
        self.rng = ensure_rng(seed)
        #: Post-process hierarchies with
        #: :func:`repro.hierarchy.balance.rebalanced_hierarchy`; caps the
        #: skew term of HIMOR construction on hub-dominated graphs.
        self.rebalance = bool(rebalance)

    def _build_hierarchy(self, graph: AttributedGraph) -> CommunityHierarchy:
        """Cluster ``graph``, honoring the pipeline's rebalance option."""
        hierarchy = agglomerative_hierarchy(graph, linkage=self.linkage)
        if self.rebalance:
            from repro.hierarchy.balance import rebalanced_hierarchy

            hierarchy = rebalanced_hierarchy(hierarchy)
        return hierarchy

    def discover(self, query: CODQuery) -> CODResult:
        """Answer one COD query."""
        results = self.discover_multi(query.node, query.attribute, [query.k])
        return results[query.k]

    def discover_multi(
        self, node: int, attribute: "int | None", ks: "list[int]"
    ) -> dict[int, CODResult]:
        """Answer one query for several rank budgets, sharing the sampling."""
        raise NotImplementedError

    def discover_batch(self, queries: "list[CODQuery]") -> list[CODResult]:
        """Answer a workload of queries.

        The base implementation loops over :meth:`discover`; pipelines
        whose evaluation can share RR samples across queries (CODU)
        override it with a pooled variant.
        """
        return [self.discover(query) for query in queries]

    def _validate(self, node: int, attribute: "int | None", ks: "list[int]") -> None:
        if not ks:
            raise QueryError("at least one rank budget k is required")
        CODQuery(node, attribute, max(ks)).validate(self.graph)


class CODU(_BasePipeline):
    """Non-attributed hierarchy + compressed evaluation.

    Ignores the query attribute entirely (the Section III setting); serves
    as the no-reclustering control in Figs. 4 and 7.
    """

    method_name = "CODU"

    def __init__(self, graph: AttributedGraph, **kwargs: object) -> None:
        super().__init__(graph, **kwargs)  # type: ignore[arg-type]
        self._hierarchy: CommunityHierarchy | None = None

    @property
    def hierarchy(self) -> CommunityHierarchy:
        """The shared non-attributed hierarchy (built on first use)."""
        if self._hierarchy is None:
            self._hierarchy = self._build_hierarchy(self.graph)
        return self._hierarchy

    def discover_multi(
        self, node: int, attribute: "int | None", ks: "list[int]"
    ) -> dict[int, CODResult]:
        """Answer with the shared non-attributed hierarchy (Algorithm 1)."""
        self._validate(node, attribute, ks)
        hierarchy = self.hierarchy
        start = time.perf_counter()
        chain = CommunityChain.from_hierarchy(hierarchy, node)
        evaluation = compressed_cod(
            self.graph, chain, k=ks, theta=self.theta, model=self.model, rng=self.rng
        )
        elapsed = time.perf_counter() - start
        return {
            k: CODResult(
                method=self.method_name,
                query=CODQuery(node, attribute, k),
                members=evaluation.characteristic_community(k),
                chain_length=len(chain),
                elapsed=elapsed,
            )
            for k in ks
        }


    def discover_batch(self, queries: "list[CODQuery]") -> list[CODResult]:
        """Pooled batch answering: one shared RR pool serves every query.

        Statistically the answers are coupled through the shared samples
        (see :class:`repro.core.pool.SharedSamplePool`); for workload
        sweeps this is the intended trade for a large constant speedup.
        """
        from repro.core.pool import SharedSamplePool

        hierarchy = self.hierarchy
        pool = SharedSamplePool(
            self.graph, theta=self.theta, model=self.model, seed=self.rng
        )
        results: list[CODResult] = []
        for query in queries:
            query.validate(self.graph)
            start = time.perf_counter()
            chain = CommunityChain.from_hierarchy(hierarchy, query.node)
            evaluation = pool.evaluate(chain, k=query.k)
            elapsed = time.perf_counter() - start
            results.append(
                CODResult(
                    method=self.method_name,
                    query=query,
                    members=evaluation.characteristic_community(query.k),
                    chain_length=len(chain),
                    elapsed=elapsed,
                )
            )
        return results


class CODR(_BasePipeline):
    """Global reclustering: hierarchy on ``g_l`` + compressed evaluation.

    Parameters
    ----------
    cache_hierarchies:
        When true (default), the per-attribute hierarchy is built once and
        reused across queries — appropriate for effectiveness sweeps. The
        runtime experiment (Fig. 9) disables the cache because the paper
        charges global reclustering to every query.
    cache_capacity:
        Bound on resident cached hierarchies (LRU eviction): a diverse
        workload no longer leaks one hierarchy per attribute forever.
    """

    method_name = "CODR"

    def __init__(
        self,
        graph: AttributedGraph,
        cache_hierarchies: bool = True,
        cache_capacity: int = 32,
        **kwargs: object,
    ) -> None:
        super().__init__(graph, **kwargs)  # type: ignore[arg-type]
        self.cache_hierarchies = cache_hierarchies
        self._cache = LRUCache(cache_capacity, name="codr.hierarchies")

    def hierarchy_for(self, attribute: int) -> CommunityHierarchy:
        """The attribute-aware hierarchy over ``g_l`` (maybe cached)."""
        cached = self._cache.get(attribute)
        if cached is not None:
            return cached
        weighted = attribute_weighted_graph(self.graph, attribute, self.weighting)
        hierarchy = self._build_hierarchy(weighted)
        if self.cache_hierarchies:
            self._cache.put(attribute, hierarchy)
        return hierarchy

    def discover_multi(
        self, node: int, attribute: "int | None", ks: "list[int]"
    ) -> dict[int, CODResult]:
        """Answer on the attribute-aware hierarchy over ``g_l``."""
        self._validate(node, attribute, ks)
        if attribute is None:
            raise QueryError("CODR requires a query attribute")
        cached = attribute in self._cache
        start = time.perf_counter()
        hierarchy = self.hierarchy_for(attribute)
        if cached:
            # Exclude cache hits from the measured time only when the
            # hierarchy truly was precomputed before this call.
            start = time.perf_counter()
        chain = CommunityChain.from_hierarchy(hierarchy, node)
        evaluation = compressed_cod(
            self.graph, chain, k=ks, theta=self.theta, model=self.model, rng=self.rng
        )
        elapsed = time.perf_counter() - start
        return {
            k: CODResult(
                method=self.method_name,
                query=CODQuery(node, attribute, k),
                members=evaluation.characteristic_community(k),
                chain_length=len(chain),
                elapsed=elapsed,
            )
            for k in ks
        }


class CODLMinus(_BasePipeline):
    """LORE chain + compressed evaluation over the full ``H_l(q)``.

    The "CODL-" baseline of Section V-D: pays local reclustering per query
    (cheap) but still evaluates influence ranks bottom-to-root with global
    sampling (expensive).
    """

    method_name = "CODL-"

    def __init__(
        self,
        graph: AttributedGraph,
        cache_capacity: int = 32,
        **kwargs: object,
    ) -> None:
        super().__init__(graph, **kwargs)  # type: ignore[arg-type]
        self._hierarchy: CommunityHierarchy | None = None
        self._weighted_cache = WeightedGraphCache(
            graph, self.weighting, capacity=cache_capacity
        )

    @property
    def hierarchy(self) -> CommunityHierarchy:
        """The shared non-attributed hierarchy (built on first use)."""
        if self._hierarchy is None:
            self._hierarchy = self._build_hierarchy(self.graph)
        return self._hierarchy

    def _weighted(self, attribute: int) -> AttributedGraph:
        return self._weighted_cache.get(attribute)

    def discover_multi(
        self, node: int, attribute: "int | None", ks: "list[int]"
    ) -> dict[int, CODResult]:
        """Answer with LORE's chain and full compressed evaluation."""
        self._validate(node, attribute, ks)
        if attribute is None:
            raise QueryError(f"{self.method_name} requires a query attribute")
        hierarchy = self.hierarchy
        start = time.perf_counter()
        lore = lore_chain(
            self.graph,
            hierarchy,
            node,
            attribute,
            weighting=self.weighting,
            linkage=self.linkage,
            weighted_graph=self._weighted(attribute),
        )
        evaluation = compressed_cod(
            self.graph, lore.chain, k=ks, theta=self.theta, model=self.model, rng=self.rng
        )
        elapsed = time.perf_counter() - start
        return {
            k: CODResult(
                method=self.method_name,
                query=CODQuery(node, attribute, k),
                members=evaluation.characteristic_community(k),
                chain_length=len(lore.chain),
                elapsed=elapsed,
            )
            for k in ks
        }


class CODL(CODLMinus):
    """The fully optimized method: LORE + HIMOR index (Algorithm 3)."""

    method_name = "CODL"

    def __init__(self, graph: AttributedGraph, **kwargs: object) -> None:
        super().__init__(graph, **kwargs)
        self._index: HimorIndex | None = None
        self.index_build_seconds: float | None = None

    @property
    def index(self) -> HimorIndex:
        """The shared HIMOR index (built on first use; timed)."""
        if self._index is None:
            start = time.perf_counter()
            self._index = HimorIndex.build(
                self.graph,
                self.hierarchy,
                theta=self.theta,
                model=self.model,
                rng=self.rng,
            )
            self.index_build_seconds = time.perf_counter() - start
        return self._index

    def discover_multi(
        self, node: int, attribute: "int | None", ks: "list[int]"
    ) -> dict[int, CODResult]:
        """Answer via Algorithm 3: index scan, then local fallback."""
        self._validate(node, attribute, ks)
        if attribute is None:
            raise QueryError("CODL requires a query attribute")
        index = self.index  # ensure built outside the timed window
        start = time.perf_counter()
        lore = lore_chain(
            self.graph,
            self.hierarchy,
            node,
            attribute,
            weighting=self.weighting,
            linkage=self.linkage,
            weighted_graph=self._weighted(attribute),
        )

        # Algorithm 3, answering all budgets jointly: the index scan
        # resolves each k independently; the fallback (compressed
        # evaluation inside C_l, restricted sampling) runs at most once and
        # serves every unresolved budget.
        members_by_k: dict[int, np.ndarray | None] = {}
        fallback_ks: list[int] = []
        for k in ks:
            ancestor = index.largest_qualifying_ancestor(
                node, k, floor_vertex=lore.c_ell_vertex
            )
            if ancestor is not None:
                members_by_k[k] = index.hierarchy.members(ancestor)
            else:
                members_by_k[k] = None
                fallback_ks.append(k)
        if fallback_ks and lore.c_ell_chain_level > 0:
            inner_chain = lore.chain.prefix(lore.c_ell_chain_level)
            allowed = set(
                int(v) for v in index.hierarchy.members(lore.c_ell_vertex)
            )
            n_local = self.theta * len(allowed)
            local_samples = sample_arena(
                self.graph, n_local, model=self.model, rng=self.rng, allowed=allowed
            )
            evaluation = compressed_cod(
                self.graph,
                inner_chain,
                k=fallback_ks,
                rr_graphs=local_samples,
                n_samples=n_local,
            )
            for k in fallback_ks:
                members_by_k[k] = evaluation.characteristic_community(k)
        elapsed = time.perf_counter() - start

        return {
            k: CODResult(
                method=self.method_name,
                query=CODQuery(node, attribute, k),
                members=members_by_k[k],
                chain_length=len(lore.chain),
                elapsed=elapsed,
            )
            for k in ks
        }
