"""Human-readable explanations of COD decisions.

`explain_evaluation` turns a :class:`CompressedEvaluation` into a
per-level report — community size, depth, the query node's cumulative RR
count, the top-k threshold it was compared against, and the verdict —
which is exactly the evidence trail behind "why is *this* the
characteristic community?". `explain_lore` does the same for LORE's
reclustering choice. Both power the examples and the CLI's verbose mode.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.compressed import CompressedEvaluation
from repro.core.lore import LoreResult
from repro.hierarchy.dendrogram import CommunityHierarchy


@dataclass(frozen=True)
class LevelReport:
    """One chain level's evidence in a compressed evaluation."""

    level: int
    size: int
    depth: int
    query_count: int
    threshold: int
    qualifies: bool
    selected: bool

    def render(self) -> str:
        """One aligned report line."""
        verdict = "top-k" if self.qualifies else "  -  "
        marker = "  <= C*(q)" if self.selected else ""
        return (
            f"level {self.level:3d}: |C|={self.size:6d} dep={self.depth:3d}  "
            f"count(q)={self.query_count:6d} vs k-th={self.threshold:6d}  "
            f"[{verdict}]{marker}"
        )


@dataclass(frozen=True)
class CODExplanation:
    """The full per-level evidence trail for one (query, k)."""

    q: int
    k: int
    n_samples: int
    levels: tuple[LevelReport, ...]
    best_level: "int | None"

    def render(self) -> str:
        """The multi-line report."""
        header = (
            f"COD evidence for q={self.q}, k={self.k} "
            f"({self.n_samples} shared RR samples)"
        )
        lines = [header, "-" * len(header)]
        lines.extend(report.render() for report in self.levels)
        if self.best_level is None:
            lines.append(
                "verdict: no characteristic community — q is never top-k"
            )
        else:
            size = self.levels[self.best_level].size
            lines.append(
                f"verdict: C*(q) is the level-{self.best_level} community "
                f"({size} nodes), the largest where q stays top-{self.k}"
            )
        return "\n".join(lines)


def explain_evaluation(evaluation: CompressedEvaluation, k: int) -> CODExplanation:
    """Build the per-level evidence trail from a compressed evaluation."""
    best = evaluation.best_level(k)
    j = evaluation._k_index(k)
    levels = []
    for level in range(len(evaluation.chain)):
        levels.append(
            LevelReport(
                level=level,
                size=int(evaluation.chain.sizes[level]),
                depth=evaluation.chain.depth(level),
                query_count=evaluation.query_counts[level],
                threshold=evaluation.thresholds[level][j],
                qualifies=evaluation.qualifies(level, k),
                selected=(level == best),
            )
        )
    return CODExplanation(
        q=evaluation.chain.q,
        k=k,
        n_samples=evaluation.n_samples,
        levels=tuple(levels),
        best_level=best,
    )


@dataclass(frozen=True)
class LoreExplanation:
    """LORE's reclustering decision, level by level."""

    q: int
    attribute: int
    levels: tuple[tuple[int, int, float], ...]  # (level, |C|, r(C))
    selected_level: int
    selected_size: int

    def render(self) -> str:
        """The multi-line report."""
        header = f"LORE reclustering scores for q={self.q}, l_q={self.attribute}"
        lines = [header, "-" * len(header)]
        for level, size, score in self.levels:
            marker = "  <- C_l (reclustered)" if level == self.selected_level else ""
            lines.append(f"level {level:3d}: |C|={size:6d}  r(C)={score:.4f}{marker}")
        return "\n".join(lines)


def explain_lore(
    lore: LoreResult, hierarchy: CommunityHierarchy, q: int, attribute: int
) -> LoreExplanation:
    """Build the reclustering-score report for one LORE run."""
    path = hierarchy.path_communities(q)
    levels = tuple(
        (level, hierarchy.size(vertex), float(lore.scores[level]))
        for level, vertex in enumerate(path)
    )
    selected_level = path.index(lore.c_ell_vertex)
    return LoreExplanation(
        q=q,
        attribute=attribute,
        levels=levels,
        selected_level=selected_level,
        selected_size=hierarchy.size(lore.c_ell_vertex),
    )
