"""The HIMOR index (Section IV-B) and index-accelerated COD (Algorithm 3).

LORE only changes the hierarchy *below* the reclustered community ``C_l``;
everything above it comes unchanged from the non-attributed hierarchy
``T``. HIMOR exploits that invariant: it precomputes, for every node ``v``
and every ancestor community ``C`` of ``v`` in ``T``, the influence rank
``rank_C(v)`` — so a query first walks the ranks of ``q`` over the
ancestors of ``C_l`` top-down (largest community first) and only falls back
to compressed evaluation *inside* ``C_l`` when no ancestor qualifies.

Construction is the compressed tree variant of Algorithm 1: one pool of
``Theta = theta * |V|`` RR graphs is HFS-traversed over the whole tree ``T``
(each RR-graph node charged to the smallest community containing its path
from the source — ``lca`` along the path), then buckets are combined
bottom-up, sorting each community's cumulative counts once and recording
every member's rank. Total work matches Theorem 6:
``O(Theta * omega + |R| log |V| + sum_v dep(v))``.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left
from pathlib import Path
from typing import Iterable

import numpy as np

from repro.core.compressed import CompressedEvaluation, compressed_cod
from repro.core.lore import LoreResult
from repro.errors import IndexError_, QueryError
from repro.graph.graph import AttributedGraph
from repro.hierarchy.dendrogram import CommunityHierarchy
from repro.influence.arena import RRArena, sample_arena
from repro.influence.models import InfluenceModel, WeightedCascade
from repro.influence.rr import RRGraph
from repro.utils.faults import maybe_fail
from repro.utils.persist import atomic_write_json, load_versioned_json
from repro.utils.rng import ensure_rng


class HimorIndex:
    """Precomputed influence ranks over a non-attributed hierarchy.

    ``ranks_of(v)`` returns the 1-based influence rank of ``v`` in each of
    its ancestor communities, deepest first — aligned with
    ``hierarchy.path_communities(v)``. Build with :meth:`build`.
    """

    def __init__(
        self,
        hierarchy: CommunityHierarchy,
        ranks: list[np.ndarray],
        theta: int,
        n_samples: int,
    ) -> None:
        if len(ranks) != hierarchy.n_leaves:
            raise IndexError_(
                f"rank table covers {len(ranks)} nodes but the hierarchy has "
                f"{hierarchy.n_leaves} leaves"
            )
        self.hierarchy = hierarchy
        self.theta = int(theta)
        self.n_samples = int(n_samples)
        self._ranks = ranks

    # ---------------------------------------------------------- construction

    @classmethod
    def build(
        cls,
        graph: AttributedGraph,
        hierarchy: CommunityHierarchy,
        theta: int = 10,
        model: InfluenceModel | None = None,
        rng: "int | np.random.Generator | None" = None,
        rr_graphs: "Iterable[RRGraph] | RRArena | None" = None,
        budget: "object | None" = None,
    ) -> "HimorIndex":
        """Compressed HIMOR construction over ``hierarchy``.

        Samples are drawn into (or supplied as) a flat
        :class:`~repro.influence.arena.RRArena` and traversed without
        materializing per-sample adjacency dicts; an iterable of legacy
        ``RRGraph`` objects still works and runs the dict-based traversal
        (the two are equivalence-tested in ``tests/oracle``).

        ``budget`` is an optional cooperative execution budget (see
        :class:`repro.serving.budget.ExecutionBudget`) ticked per sample
        drawn and checked periodically during the HFS traversal.
        """
        maybe_fail("himor_build")
        if hierarchy.n_leaves != graph.n:
            raise IndexError_(
                f"hierarchy has {hierarchy.n_leaves} leaves but graph has {graph.n} nodes"
            )
        model = model or WeightedCascade()
        rng = ensure_rng(rng)
        n_samples = theta * graph.n
        if rr_graphs is None:
            rr_graphs = sample_arena(
                graph, n_samples, model=model, rng=rng, budget=budget
            )
        if isinstance(rr_graphs, RRArena):
            n_samples = rr_graphs.n_samples
            buckets = _tree_hfs_arena(hierarchy, rr_graphs, budget=budget)
        else:
            rr_graphs = list(rr_graphs)
            n_samples = len(rr_graphs)
            buckets = _tree_hfs(hierarchy, rr_graphs, budget=budget)
        ranks = _bottom_up_ranks(hierarchy, buckets)
        return cls(hierarchy, ranks, theta=theta, n_samples=n_samples)

    # --------------------------------------------------------------- queries

    def ranks_of(self, node: int) -> np.ndarray:
        """Ranks of ``node`` along its ancestor path, deepest first."""
        if not (0 <= node < self.hierarchy.n_leaves):
            raise QueryError(f"node {node} is not in the indexed graph")
        return self._ranks[node]

    def rank_in(self, node: int, community_vertex: int) -> int:
        """Rank of ``node`` within a specific ancestor community."""
        path = self.hierarchy.path_communities(node)
        try:
            position = path.index(community_vertex)
        except ValueError:
            raise QueryError(
                f"community vertex {community_vertex} is not an ancestor of node {node}"
            ) from None
        return int(self._ranks[node][position])

    def largest_qualifying_ancestor(
        self, node: int, k: int, floor_vertex: int | None = None
    ) -> int | None:
        """Algorithm 3's index scan.

        Walks the ancestors of ``floor_vertex`` (default: all of
        ``H(node)``) top-down and returns the first — i.e. largest —
        community in which ``node`` has rank <= ``k``; ``None`` when no
        ancestor qualifies.
        """
        if k <= 0:
            raise QueryError(f"k must be positive, got {k}")
        path = self.hierarchy.path_communities(node)
        ranks = self._ranks[node]
        start = 0
        if floor_vertex is not None:
            try:
                start = path.index(floor_vertex)
            except ValueError:
                raise QueryError(
                    f"floor vertex {floor_vertex} is not an ancestor of node {node}"
                ) from None
        for position in range(len(path) - 1, start - 1, -1):
            if ranks[position] <= k:
                return path[position]
        return None

    # ------------------------------------------------------------- overhead

    def memory_bytes(self) -> int:
        """Index footprint (rank arrays only), for Table II reporting."""
        return sum(r.nbytes for r in self._ranks)

    # ----------------------------------------------------------- persistence

    #: Envelope format name; see :mod:`repro.utils.persist`.
    FORMAT = "himor-index"

    def save(self, path: "str | Path") -> None:
        """Persist the index atomically with a format version and checksum.

        The document is written to a temp file and moved into place, so a
        crash mid-save never corrupts an existing index on disk.
        """
        maybe_fail("himor_save")
        payload = {
            "theta": self.theta,
            "n_samples": self.n_samples,
            "n_leaves": self.hierarchy.n_leaves,
            "parent": [self.hierarchy.parent(v) for v in range(self.hierarchy.n_vertices)],
            "ranks": [r.tolist() for r in self._ranks],
        }
        atomic_write_json(path, payload, kind=self.FORMAT)

    @classmethod
    def load(cls, path: "str | Path") -> "HimorIndex":
        """Load an index written by :meth:`save`.

        Verifies the envelope's format version and SHA-256 checksum and
        raises :class:`IndexError_` — never a raw ``json.JSONDecodeError``
        — on any corruption or mismatch.
        """
        maybe_fail("himor_load")
        payload = load_versioned_json(path, kind=cls.FORMAT, error_cls=IndexError_)
        try:
            hierarchy = CommunityHierarchy.from_parents(
                int(payload["n_leaves"]), [int(p) for p in payload["parent"]]
            )
            ranks = [np.asarray(r, dtype=np.int64) for r in payload["ranks"]]
            return cls(
                hierarchy, ranks,
                theta=int(payload["theta"]),
                n_samples=int(payload["n_samples"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise IndexError_(f"malformed HIMOR index in {path}: {exc}") from exc


def himor_cod(
    graph: AttributedGraph,
    index: HimorIndex,
    lore: LoreResult,
    k: int,
    theta: int = 10,
    model: InfluenceModel | None = None,
    rng: "int | np.random.Generator | None" = None,
) -> "tuple[np.ndarray | None, CompressedEvaluation | None]":
    """Algorithm 3: HIMOR-accelerated COD for one query.

    Returns ``(members, fallback_evaluation)``: when the index scan
    resolves the query, ``fallback_evaluation`` is ``None``; otherwise
    compressed evaluation runs on the reclustered communities strictly
    inside ``C_l`` and its result is returned alongside the community (or
    ``None`` when no characteristic community exists).
    """
    q = lore.chain.q
    ancestor = index.largest_qualifying_ancestor(q, k, floor_vertex=lore.c_ell_vertex)
    if ancestor is not None:
        return index.hierarchy.members(ancestor), None

    if lore.c_ell_chain_level == 0:
        # No reclustered community strictly inside C_l: nothing to evaluate.
        return None, None
    inner_chain = lore.chain.prefix(lore.c_ell_chain_level)

    # Sources outside C_l can never reach q's communities (all lie inside
    # C_l), so sampling is confined to C_l: theta * |C_l| restricted RR
    # graphs are statistically equivalent to the theta * |V| global samples
    # Algorithm 1 would draw, at a |C_l| / |V| fraction of the cost. This
    # restriction is the evaluation-side speedup of CODL over CODL-.
    model = model or WeightedCascade()
    rng = ensure_rng(rng)
    allowed = set(int(v) for v in index.hierarchy.members(lore.c_ell_vertex))
    n_local = theta * len(allowed)
    local_samples = sample_arena(
        graph, n_local, model=model, rng=rng, allowed=allowed
    )
    evaluation = compressed_cod(
        graph, inner_chain, k=k, rr_graphs=local_samples, n_samples=n_local
    )
    return evaluation.characteristic_community(k), evaluation


# ---------------------------------------------------------------- internals


def _tree_hfs(
    hierarchy: CommunityHierarchy,
    rr_graphs: Iterable[RRGraph],
    budget: "object | None" = None,
) -> dict[int, dict[int, int]]:
    """HFS over the whole tree: charge each RR node to the smallest
    community containing its best path from the source.

    The tag of a node ``u`` reached from a node tagged ``C`` is
    ``lca(u, C)``; tags only move up the tree along a path, so a
    depth-keyed heap (deepest first) pops every node with its final tag.
    """
    buckets: dict[int, dict[int, int]] = {}
    for i, rr in enumerate(rr_graphs):
        if budget is not None and i % 32 == 0:
            budget.check()
        adjacency = rr.adjacency
        source = rr.source
        start_tag = hierarchy.parent(source)
        assigned: dict[int, int] = {}
        heap: list[tuple[int, int, int]] = [(-hierarchy.depth(start_tag), source, start_tag)]
        while heap:
            neg_depth, v, tag = heapq.heappop(heap)
            if v in assigned:
                continue
            assigned[v] = tag
            bucket = buckets.setdefault(tag, {})
            bucket[v] = bucket.get(v, 0) + 1
            for u in adjacency[v]:
                if u in assigned:
                    continue
                u_tag = hierarchy.lca(u, tag)
                heapq.heappush(heap, (-hierarchy.depth(u_tag), u, u_tag))
    return buckets


def _tree_hfs_arena(
    hierarchy: CommunityHierarchy,
    arena: RRArena,
    budget: "object | None" = None,
) -> dict[int, dict[int, int]]:
    """:func:`_tree_hfs` walking the arena's flat arrays directly.

    Same depth-keyed heap, same pop order (the tie-breaking tuple prefix
    ``(-depth, node, tag)`` is preserved; the appended entry id is a
    function of the node within one sample, so it never reorders pops),
    but adjacency comes from CSR slices instead of per-sample dicts.
    """
    buckets: dict[int, dict[int, int]] = {}
    nodes = arena.nodes
    offsets = arena.node_offsets
    edge_start = arena.edge_start
    edge_count = arena.edge_count
    edge_dst = arena.edge_dst_entry
    for i in range(arena.n_samples):
        if budget is not None and i % 32 == 0:
            budget.check()
        source = int(arena.sources[i])
        start_tag = hierarchy.parent(source)
        assigned: set[int] = set()
        heap: list[tuple[int, int, int, int]] = [
            (-hierarchy.depth(start_tag), source, start_tag, int(offsets[i]))
        ]
        while heap:
            neg_depth, v, tag, entry = heapq.heappop(heap)
            if v in assigned:
                continue
            assigned.add(v)
            bucket = buckets.setdefault(tag, {})
            bucket[v] = bucket.get(v, 0) + 1
            s = int(edge_start[entry])
            for dst in edge_dst[s: s + int(edge_count[entry])]:
                dst = int(dst)
                u = int(nodes[dst])
                if u in assigned:
                    continue
                u_tag = hierarchy.lca(u, tag)
                heapq.heappush(heap, (-hierarchy.depth(u_tag), u, u_tag, dst))
    return buckets


def _bottom_up_ranks(
    hierarchy: CommunityHierarchy, buckets: dict[int, dict[int, int]]
) -> list[np.ndarray]:
    """Combine buckets bottom-up; record every member's rank per community.

    At each internal vertex the children's cumulative count dictionaries
    are merged smaller-into-larger, the vertex's own bucket added, and the
    positive counts sorted once; a member's rank is
    ``1 + #{counts strictly above its own}`` (0-count members rank just
    below every scored node).
    """
    n = hierarchy.n_leaves
    depth_of = [len(hierarchy.path_communities(v)) for v in range(n)]
    ranks = [np.zeros(d, dtype=np.int64) for d in depth_of]
    position = [0] * n  # next path slot to fill, per leaf (deepest first)

    cumulative: dict[int, dict[int, int]] = {}
    order = sorted(
        hierarchy.internal_vertices(), key=hierarchy.depth, reverse=True
    )
    for vertex in order:
        merged: dict[int, int] = {}
        for child in hierarchy.children(vertex):
            child_counts = cumulative.pop(child, None)
            if child_counts is None:
                continue
            if len(child_counts) > len(merged):
                merged, child_counts = child_counts, merged
            for node, count in child_counts.items():
                merged[node] = merged.get(node, 0) + count
        own = buckets.get(vertex)
        if own:
            for node, count in own.items():
                merged[node] = merged.get(node, 0) + count
        cumulative[vertex] = merged

        sorted_counts = sorted(merged.values())  # ascending for bisect
        total_scored = len(sorted_counts)
        for node in hierarchy.members(vertex):
            node = int(node)
            count = merged.get(node, 0)
            strictly_above = total_scored - bisect_left(sorted_counts, count + 1)
            slot = position[node]
            ranks[node][slot] = 1 + strictly_above
            position[node] += 1
    return ranks
