"""The HIMOR index (Section IV-B) and index-accelerated COD (Algorithm 3).

LORE only changes the hierarchy *below* the reclustered community ``C_l``;
everything above it comes unchanged from the non-attributed hierarchy
``T``. HIMOR exploits that invariant: it precomputes, for every node ``v``
and every ancestor community ``C`` of ``v`` in ``T``, the influence rank
``rank_C(v)`` — so a query first walks the ranks of ``q`` over the
ancestors of ``C_l`` top-down (largest community first) and only falls back
to compressed evaluation *inside* ``C_l`` when no ancestor qualifies.

Construction is the compressed tree variant of Algorithm 1: one pool of
``Theta = theta * |V|`` RR graphs is HFS-traversed over the whole tree ``T``
(each RR-graph node charged to the smallest community containing its path
from the source — ``lca`` along the path), then buckets are combined
bottom-up, sorting each community's cumulative counts once and recording
every member's rank. Total work matches Theorem 6:
``O(Theta * omega + |R| log |V| + sum_v dep(v))``.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left
from contextlib import nullcontext
from pathlib import Path
from typing import Callable, Iterable

import numpy as np

from repro.core.compressed import CompressedEvaluation, compressed_cod
from repro.core.lore import LoreResult
from repro.errors import CheckpointError, IndexError_, QueryError
from repro.graph.graph import AttributedGraph
from repro.hierarchy.dendrogram import CommunityHierarchy
from repro.influence.arena import RRArena, sample_arena
from repro.influence.models import InfluenceModel, WeightedCascade
from repro.influence.rr import RRGraph
from repro.utils.faults import maybe_fail
from repro.utils.persist import (
    atomic_write_json,
    load_versioned_json,
    payload_checksum,
)
from repro.utils.rng import ensure_rng


class HimorIndex:
    """Precomputed influence ranks over a non-attributed hierarchy.

    ``ranks_of(v)`` returns the 1-based influence rank of ``v`` in each of
    its ancestor communities, deepest first — aligned with
    ``hierarchy.path_communities(v)``. Build with :meth:`build`.
    """

    def __init__(
        self,
        hierarchy: CommunityHierarchy,
        ranks: list[np.ndarray],
        theta: int,
        n_samples: int,
        buckets: "dict[int, dict[int, int]] | None" = None,
        graph_sha: "str | None" = None,
    ) -> None:
        if len(ranks) != hierarchy.n_leaves:
            raise IndexError_(
                f"rank table covers {len(ranks)} nodes but the hierarchy has "
                f"{hierarchy.n_leaves} leaves"
            )
        self.hierarchy = hierarchy
        self.theta = int(theta)
        self.n_samples = int(n_samples)
        #: Samples restored from a build checkpoint (0 = built fresh).
        self.resumed_from = 0
        #: Checksum of the edge set the index was built for (``None`` on
        #: legacy artifacts); lets a server reject a stale persisted index
        #: after the graph moved to a new epoch.
        self.graph_sha = graph_sha
        #: Per-tag HFS own-charges, kept (when available) so
        #: :meth:`repair` can delta-update instead of re-traversing the
        #: whole pool.
        self._buckets = buckets
        self._ranks = ranks

    @property
    def has_buckets(self) -> bool:
        """Whether incremental :meth:`repair` is possible on this index."""
        return self._buckets is not None

    # ---------------------------------------------------------- construction

    @classmethod
    def build(
        cls,
        graph: AttributedGraph,
        hierarchy: CommunityHierarchy,
        theta: int = 10,
        model: InfluenceModel | None = None,
        rng: "int | np.random.Generator | None" = None,
        rr_graphs: "Iterable[RRGraph] | RRArena | None" = None,
        budget: "object | None" = None,
        checkpoint_path: "str | Path | None" = None,
        checkpoint_every: int = 256,
        resume: bool = True,
        trace: "object | None" = None,
        sample_mode: str = "stream",
    ) -> "HimorIndex":
        """Compressed HIMOR construction over ``hierarchy``.

        Samples are drawn into (or supplied as) a flat
        :class:`~repro.influence.arena.RRArena` and traversed without
        materializing per-sample adjacency dicts; an iterable of legacy
        ``RRGraph`` objects still works and runs the dict-based traversal
        (the two are equivalence-tested in ``tests/oracle``).

        ``budget`` is an optional cooperative execution budget (see
        :class:`repro.serving.budget.ExecutionBudget`) ticked per sample
        drawn and checked periodically during the HFS traversal.

        **Crash-safe builds.** With ``checkpoint_path`` set, per-tree-bucket
        progress is persisted atomically every ``checkpoint_every`` samples
        under the versioned/checksummed envelope, keyed by a fingerprint of
        the graph, hierarchy, ``theta``, sample count, and (integer) seed.
        A later call with ``resume=True`` validates the checkpoint against
        that fingerprint and continues the HFS traversal where it stopped;
        a stale, corrupt, or mismatched checkpoint is discarded and the
        build restarts from sample zero. Because the sample stream is
        re-derived from the seed, a resumed build produces bit-identical
        ranks to an uninterrupted one (asserted in ``tests/serving``). The
        checkpoint file is removed once the build completes. The index's
        :attr:`resumed_from` records how many samples the checkpoint
        contributed (0 for a fresh build).

        ``trace`` is an optional duck-typed span recorder (``span(name,
        **meta)`` context manager, e.g. ``repro.obs.QueryTrace``): the
        build runs inside a ``himor_build`` span annotated with the sample
        count, ``theta``, and resume progress. Tracing never changes the
        built ranks.
        """
        span_cm = (
            trace.span("himor_build") if trace is not None else nullcontext()
        )
        with span_cm as span:
            maybe_fail("himor_build")
            if hierarchy.n_leaves != graph.n:
                raise IndexError_(
                    f"hierarchy has {hierarchy.n_leaves} leaves but graph "
                    f"has {graph.n} nodes"
                )
            if checkpoint_path is not None and checkpoint_every < 1:
                raise ValueError(
                    f"checkpoint_every must be >= 1, got {checkpoint_every!r}"
                )
            model = model or WeightedCascade()
            seed = int(rng) if isinstance(rng, (int, np.integer)) else None
            rng = ensure_rng(rng)
            n_samples = theta * graph.n
            if rr_graphs is None:
                rr_graphs = sample_arena(
                    graph, n_samples, model=model, rng=rng, budget=budget,
                    trace=trace,
                )
            resumed_from = 0
            if isinstance(rr_graphs, RRArena):
                n_samples = rr_graphs.n_samples
                start = 0
                initial_buckets: "dict[int, dict[int, int]] | None" = None
                on_checkpoint = None
                if checkpoint_path is not None:
                    checkpoint_path = Path(checkpoint_path)
                    fingerprint = build_fingerprint(
                        graph, hierarchy, theta=theta, n_samples=n_samples,
                        seed=seed, sample_mode=sample_mode,
                    )
                    if resume and checkpoint_path.exists():
                        try:
                            start, initial_buckets = _load_checkpoint(
                                checkpoint_path, fingerprint, n_samples
                            )
                            resumed_from = start
                        except CheckpointError:
                            start, initial_buckets = 0, None

                    def on_checkpoint(next_sample: int, buckets: dict) -> None:
                        _save_checkpoint(
                            checkpoint_path, fingerprint, next_sample, n_samples, buckets
                        )

                buckets = _tree_hfs_arena(
                    hierarchy,
                    rr_graphs,
                    budget=budget,
                    start=start,
                    buckets=initial_buckets,
                    checkpoint_every=checkpoint_every if on_checkpoint else None,
                    on_checkpoint=on_checkpoint,
                )
                if checkpoint_path is not None:
                    Path(checkpoint_path).unlink(missing_ok=True)
            else:
                if checkpoint_path is not None:
                    raise ValueError(
                        "checkpointing requires arena sampling; legacy RRGraph "
                        "iterables cannot be replayed deterministically"
                    )
                rr_graphs = list(rr_graphs)
                n_samples = len(rr_graphs)
                buckets = _tree_hfs(hierarchy, rr_graphs, budget=budget)
            ranks = _bottom_up_ranks(hierarchy, buckets)
            index = cls(
                hierarchy, ranks, theta=theta, n_samples=n_samples,
                buckets=buckets, graph_sha=graph_checksum(graph),
            )
            index.resumed_from = resumed_from
            if span is not None:
                span.note(
                    n_samples=int(n_samples),
                    theta=int(theta),
                    resumed_from=int(resumed_from),
                )
            return index

    # ----------------------------------------------------------------- repair

    def repair(
        self,
        removed: RRArena,
        added: RRArena,
        graph_sha: "str | None" = None,
        budget: "object | None" = None,
    ) -> dict:
        """Incrementally repair the index after an arena repair.

        ``removed``/``added`` are the old and new versions of the redrawn
        samples (an :class:`~repro.influence.arena.ArenaRepair`'s delta);
        the hierarchy must be unchanged by the update (callers compare
        parent arrays via :func:`same_hierarchy` and rebuild otherwise).

        The per-sample HFS traversal — the dominant build cost — runs only
        over the removed and added samples: their charges are subtracted
        from / added to the retained buckets, which restores the buckets
        a from-scratch HFS over the repaired pool would produce exactly
        (per-sample charges are independent). Rank recombination then
        reruns over the stored buckets; only communities in the ancestor
        closure of changed buckets actually change ranks (reported as
        ``repaired_subtrees``), but recombination is pure counting — no
        sampling, no traversal.

        Returns ``{"changed_buckets", "repaired_subtrees"}``.
        """
        if self._buckets is None:
            raise IndexError_(
                "index carries no HFS buckets (legacy artifact); "
                "incremental repair needs a bucket-retaining build"
            )
        if removed.n_samples != added.n_samples:
            raise IndexError_(
                f"repair delta is lopsided: {removed.n_samples} removed vs "
                f"{added.n_samples} added samples"
            )
        changed: set[int] = set()
        for sign, delta_arena in ((-1, removed), (1, added)):
            delta = _tree_hfs_arena(self.hierarchy, delta_arena, budget=budget)
            for tag, bucket in delta.items():
                own = self._buckets.setdefault(tag, {})
                for node, count in bucket.items():
                    value = own.get(node, 0) + sign * count
                    if value < 0:
                        raise IndexError_(
                            "bucket charge went negative during repair: the "
                            "removed samples do not match this index's pool"
                        )
                    if value:
                        own[node] = value
                    else:
                        own.pop(node, None)
                if not own:
                    self._buckets.pop(tag, None)
                changed.add(tag)
        affected: set[int] = set()
        for tag in changed:
            vertex = tag
            while vertex not in affected:
                affected.add(vertex)
                parent = self.hierarchy.parent(vertex)
                if parent < 0:
                    break
                vertex = parent
        if changed:
            self._ranks = _bottom_up_ranks(self.hierarchy, self._buckets)
        if graph_sha is not None:
            self.graph_sha = graph_sha
        return {
            "changed_buckets": len(changed),
            "repaired_subtrees": len(affected),
        }

    # --------------------------------------------------------------- queries

    def ranks_of(self, node: int) -> np.ndarray:
        """Ranks of ``node`` along its ancestor path, deepest first."""
        if not (0 <= node < self.hierarchy.n_leaves):
            raise QueryError(f"node {node} is not in the indexed graph")
        return self._ranks[node]

    def rank_in(self, node: int, community_vertex: int) -> int:
        """Rank of ``node`` within a specific ancestor community."""
        path = self.hierarchy.path_communities(node)
        try:
            position = path.index(community_vertex)
        except ValueError:
            raise QueryError(
                f"community vertex {community_vertex} is not an ancestor of node {node}"
            ) from None
        return int(self._ranks[node][position])

    def largest_qualifying_ancestor(
        self, node: int, k: int, floor_vertex: int | None = None
    ) -> int | None:
        """Algorithm 3's index scan.

        Walks the ancestors of ``floor_vertex`` (default: all of
        ``H(node)``) top-down and returns the first — i.e. largest —
        community in which ``node`` has rank <= ``k``; ``None`` when no
        ancestor qualifies.
        """
        if k <= 0:
            raise QueryError(f"k must be positive, got {k}")
        path = self.hierarchy.path_communities(node)
        ranks = self._ranks[node]
        start = 0
        if floor_vertex is not None:
            try:
                start = path.index(floor_vertex)
            except ValueError:
                raise QueryError(
                    f"floor vertex {floor_vertex} is not an ancestor of node {node}"
                ) from None
        for position in range(len(path) - 1, start - 1, -1):
            if ranks[position] <= k:
                return path[position]
        return None

    # ------------------------------------------------------------- overhead

    def memory_bytes(self) -> int:
        """Index footprint (rank arrays only), for Table II reporting."""
        return sum(r.nbytes for r in self._ranks)

    # ----------------------------------------------------------- persistence

    #: Envelope format name; see :mod:`repro.utils.persist`.
    FORMAT = "himor-index"

    def save(self, path: "str | Path") -> None:
        """Persist the index atomically with a format version and checksum.

        The document is written to a temp file and moved into place, so a
        crash mid-save never corrupts an existing index on disk.
        """
        maybe_fail("himor_save")
        payload = {
            "theta": self.theta,
            "n_samples": self.n_samples,
            "n_leaves": self.hierarchy.n_leaves,
            "parent": [self.hierarchy.parent(v) for v in range(self.hierarchy.n_vertices)],
            "ranks": [r.tolist() for r in self._ranks],
            "graph_sha": self.graph_sha,
        }
        if self._buckets is not None:
            # Persisting the HFS buckets keeps a reloaded index repairable
            # (a respawned worker can keep delta-updating across epochs
            # instead of rebuilding on the first post-load update).
            payload["buckets"] = {
                str(tag): {str(node): int(count) for node, count in bucket.items()}
                for tag, bucket in self._buckets.items()
            }
        atomic_write_json(path, payload, kind=self.FORMAT)

    @classmethod
    def load(cls, path: "str | Path") -> "HimorIndex":
        """Load an index written by :meth:`save`.

        Verifies the envelope's format version and SHA-256 checksum and
        raises :class:`IndexError_` — never a raw ``json.JSONDecodeError``
        — on any corruption or mismatch.
        """
        maybe_fail("himor_load")
        payload = load_versioned_json(path, kind=cls.FORMAT, error_cls=IndexError_)
        try:
            hierarchy = CommunityHierarchy.from_parents(
                int(payload["n_leaves"]), [int(p) for p in payload["parent"]]
            )
            ranks = [np.asarray(r, dtype=np.int64) for r in payload["ranks"]]
            buckets = None
            if payload.get("buckets") is not None:
                buckets = {
                    int(tag): {int(node): int(count)
                               for node, count in bucket.items()}
                    for tag, bucket in payload["buckets"].items()
                }
            return cls(
                hierarchy, ranks,
                theta=int(payload["theta"]),
                n_samples=int(payload["n_samples"]),
                buckets=buckets,
                graph_sha=payload.get("graph_sha"),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise IndexError_(f"malformed HIMOR index in {path}: {exc}") from exc


def himor_cod(
    graph: AttributedGraph,
    index: HimorIndex,
    lore: LoreResult,
    k: int,
    theta: int = 10,
    model: InfluenceModel | None = None,
    rng: "int | np.random.Generator | None" = None,
) -> "tuple[np.ndarray | None, CompressedEvaluation | None]":
    """Algorithm 3: HIMOR-accelerated COD for one query.

    Returns ``(members, fallback_evaluation)``: when the index scan
    resolves the query, ``fallback_evaluation`` is ``None``; otherwise
    compressed evaluation runs on the reclustered communities strictly
    inside ``C_l`` and its result is returned alongside the community (or
    ``None`` when no characteristic community exists).
    """
    q = lore.chain.q
    ancestor = index.largest_qualifying_ancestor(q, k, floor_vertex=lore.c_ell_vertex)
    if ancestor is not None:
        return index.hierarchy.members(ancestor), None

    if lore.c_ell_chain_level == 0:
        # No reclustered community strictly inside C_l: nothing to evaluate.
        return None, None
    inner_chain = lore.chain.prefix(lore.c_ell_chain_level)

    # Sources outside C_l can never reach q's communities (all lie inside
    # C_l), so sampling is confined to C_l: theta * |C_l| restricted RR
    # graphs are statistically equivalent to the theta * |V| global samples
    # Algorithm 1 would draw, at a |C_l| / |V| fraction of the cost. This
    # restriction is the evaluation-side speedup of CODL over CODL-.
    model = model or WeightedCascade()
    rng = ensure_rng(rng)
    allowed = set(int(v) for v in index.hierarchy.members(lore.c_ell_vertex))
    n_local = theta * len(allowed)
    local_samples = sample_arena(
        graph, n_local, model=model, rng=rng, allowed=allowed
    )
    evaluation = compressed_cod(
        graph, inner_chain, k=k, rr_graphs=local_samples, n_samples=n_local
    )
    return evaluation.characteristic_community(k), evaluation


# ------------------------------------------------------------- checkpoints


#: Envelope format name for mid-build checkpoints.
CHECKPOINT_FORMAT = "himor-checkpoint"


def graph_checksum(graph: AttributedGraph) -> str:
    """Checksum of a graph's edge set — the index's notion of identity.

    HIMOR is attribute-blind (the tree and the RR samples read topology
    only), so attribute-only epochs keep a persisted index loadable; any
    edge change yields a new checksum and forces repair or rebuild.
    """
    return payload_checksum(sorted((int(u), int(v)) for u, v in graph.edges()))


def same_hierarchy(a: CommunityHierarchy, b: CommunityHierarchy) -> bool:
    """Structural equality of two hierarchies (same leaves, same parents).

    Agglomerative construction is deterministic, so equal parent arrays
    mean identical vertex layout — the precondition for repairing an
    index in place rather than rebuilding after a topology update.
    """
    if a.n_leaves != b.n_leaves or a.n_vertices != b.n_vertices:
        return False
    return all(a.parent(v) == b.parent(v) for v in range(a.n_vertices))


def build_fingerprint(
    graph: AttributedGraph,
    hierarchy: CommunityHierarchy,
    theta: int,
    n_samples: int,
    seed: "int | None",
    sample_mode: str = "stream",
) -> str:
    """Identity of one deterministic build: graph + tree + sampling plan.

    A checkpoint is only resumable into a build with the same fingerprint;
    anything else (edges changed, hierarchy re-clustered, different theta
    or seed) must be rejected rather than silently merged. ``seed`` is
    ``None`` when the caller sampled from an opaque generator — such
    builds still checkpoint, but the fingerprint then cannot distinguish
    two different sample streams, so pass an integer seed whenever
    resume-equals-fresh matters. ``sample_mode`` separates the shared
    stream sampler (``"stream"``) from per-sample-seeded pools
    (``"per-sample"``): the two draw different arenas from the same seed,
    so their checkpoints must never cross-resume.
    """
    payload = {
        "n": graph.n,
        "m": graph.m,
        "edges_sha": graph_checksum(graph),
        "parent": [int(hierarchy.parent(v)) for v in range(hierarchy.n_vertices)],
        "theta": int(theta),
        "n_samples": int(n_samples),
        "seed": seed,
        "sample_mode": str(sample_mode),
    }
    return payload_checksum(payload)


def _save_checkpoint(
    path: Path,
    fingerprint: str,
    next_sample: int,
    n_samples: int,
    buckets: dict[int, dict[int, int]],
) -> None:
    """Atomically persist per-tree-bucket progress through ``next_sample``."""
    maybe_fail("himor_checkpoint_save")
    payload = {
        "fingerprint": fingerprint,
        "next_sample": int(next_sample),
        "n_samples": int(n_samples),
        "buckets": {
            str(tag): {str(node): int(count) for node, count in bucket.items()}
            for tag, bucket in buckets.items()
        },
    }
    atomic_write_json(path, payload, kind=CHECKPOINT_FORMAT)


def _load_checkpoint(
    path: Path, fingerprint: str, n_samples: int
) -> "tuple[int, dict[int, dict[int, int]]]":
    """Load and validate a checkpoint; raise :class:`CheckpointError` if unusable."""
    payload = load_versioned_json(path, kind=CHECKPOINT_FORMAT, error_cls=CheckpointError)
    try:
        stored_fingerprint = payload["fingerprint"]
        next_sample = int(payload["next_sample"])
        stored_n_samples = int(payload["n_samples"])
        buckets = {
            int(tag): {int(node): int(count) for node, count in bucket.items()}
            for tag, bucket in payload["buckets"].items()
        }
    except (KeyError, TypeError, ValueError, AttributeError) as exc:
        raise CheckpointError(f"malformed HIMOR checkpoint in {path}: {exc}") from exc
    if stored_fingerprint != fingerprint:
        raise CheckpointError(
            f"checkpoint {path} was taken for a different build "
            f"(fingerprint {stored_fingerprint!r}, expected {fingerprint!r})"
        )
    if not 0 <= next_sample <= stored_n_samples or stored_n_samples != n_samples:
        raise CheckpointError(
            f"checkpoint {path} progress {next_sample}/{stored_n_samples} is "
            f"inconsistent with a {n_samples}-sample build"
        )
    return next_sample, buckets


# ---------------------------------------------------------------- internals


def _tree_hfs(
    hierarchy: CommunityHierarchy,
    rr_graphs: Iterable[RRGraph],
    budget: "object | None" = None,
) -> dict[int, dict[int, int]]:
    """HFS over the whole tree: charge each RR node to the smallest
    community containing its best path from the source.

    The tag of a node ``u`` reached from a node tagged ``C`` is
    ``lca(u, C)``; tags only move up the tree along a path, so a
    depth-keyed heap (deepest first) pops every node with its final tag.
    """
    buckets: dict[int, dict[int, int]] = {}
    for i, rr in enumerate(rr_graphs):
        maybe_fail("himor_sample")
        if budget is not None and i % 32 == 0:
            budget.check()
        adjacency = rr.adjacency
        source = rr.source
        start_tag = hierarchy.parent(source)
        assigned: dict[int, int] = {}
        heap: list[tuple[int, int, int]] = [(-hierarchy.depth(start_tag), source, start_tag)]
        while heap:
            neg_depth, v, tag = heapq.heappop(heap)
            if v in assigned:
                continue
            assigned[v] = tag
            bucket = buckets.setdefault(tag, {})
            bucket[v] = bucket.get(v, 0) + 1
            for u in adjacency[v]:
                if u in assigned:
                    continue
                u_tag = hierarchy.lca(u, tag)
                heapq.heappush(heap, (-hierarchy.depth(u_tag), u, u_tag))
    return buckets


def _tree_hfs_arena(
    hierarchy: CommunityHierarchy,
    arena: RRArena,
    budget: "object | None" = None,
    start: int = 0,
    buckets: "dict[int, dict[int, int]] | None" = None,
    checkpoint_every: "int | None" = None,
    on_checkpoint: "Callable[[int, dict], None] | None" = None,
) -> dict[int, dict[int, int]]:
    """:func:`_tree_hfs` walking the arena's flat arrays directly.

    Same depth-keyed heap, same pop order (the tie-breaking tuple prefix
    ``(-depth, node, tag)`` is preserved; the appended entry id is a
    function of the node within one sample, so it never reorders pops),
    but adjacency comes from CSR slices instead of per-sample dicts.

    ``start``/``buckets`` resume a traversal from checkpointed progress
    (samples ``0..start-1`` already charged into ``buckets``); with
    ``checkpoint_every`` set, ``on_checkpoint(next_sample, buckets)``
    fires after every that-many samples.
    """
    buckets = {} if buckets is None else buckets
    nodes = arena.nodes
    offsets = arena.node_offsets
    edge_start = arena.edge_start
    edge_count = arena.edge_count
    edge_dst = arena.edge_dst_entry
    for i in range(start, arena.n_samples):
        maybe_fail("himor_sample")
        if budget is not None and i % 32 == 0:
            budget.check()
        source = int(arena.sources[i])
        start_tag = hierarchy.parent(source)
        assigned: set[int] = set()
        heap: list[tuple[int, int, int, int]] = [
            (-hierarchy.depth(start_tag), source, start_tag, int(offsets[i]))
        ]
        while heap:
            neg_depth, v, tag, entry = heapq.heappop(heap)
            if v in assigned:
                continue
            assigned.add(v)
            bucket = buckets.setdefault(tag, {})
            bucket[v] = bucket.get(v, 0) + 1
            s = int(edge_start[entry])
            for dst in edge_dst[s: s + int(edge_count[entry])]:
                dst = int(dst)
                u = int(nodes[dst])
                if u in assigned:
                    continue
                u_tag = hierarchy.lca(u, tag)
                heapq.heappush(heap, (-hierarchy.depth(u_tag), u, u_tag, dst))
        if (
            checkpoint_every is not None
            and on_checkpoint is not None
            and (i + 1) % checkpoint_every == 0
            and (i + 1) < arena.n_samples
        ):
            on_checkpoint(i + 1, buckets)
    return buckets


def _bottom_up_ranks(
    hierarchy: CommunityHierarchy, buckets: dict[int, dict[int, int]]
) -> list[np.ndarray]:
    """Combine buckets bottom-up; record every member's rank per community.

    At each internal vertex the children's cumulative count dictionaries
    are merged smaller-into-larger, the vertex's own bucket added, and the
    positive counts sorted once; a member's rank is
    ``1 + #{counts strictly above its own}`` (0-count members rank just
    below every scored node).
    """
    n = hierarchy.n_leaves
    depth_of = [len(hierarchy.path_communities(v)) for v in range(n)]
    ranks = [np.zeros(d, dtype=np.int64) for d in depth_of]
    position = [0] * n  # next path slot to fill, per leaf (deepest first)

    cumulative: dict[int, dict[int, int]] = {}
    order = sorted(
        hierarchy.internal_vertices(), key=hierarchy.depth, reverse=True
    )
    for vertex in order:
        merged: dict[int, int] = {}
        for child in hierarchy.children(vertex):
            child_counts = cumulative.pop(child, None)
            if child_counts is None:
                continue
            if len(child_counts) > len(merged):
                merged, child_counts = child_counts, merged
            for node, count in child_counts.items():
                merged[node] = merged.get(node, 0) + count
        own = buckets.get(vertex)
        if own:
            for node, count in own.items():
                merged[node] = merged.get(node, 0) + count
        cumulative[vertex] = merged

        sorted_counts = sorted(merged.values())  # ascending for bisect
        total_scored = len(sorted_counts)
        for node in hierarchy.members(vertex):
            node = int(node)
            count = merged.get(node, 0)
            strictly_above = total_scored - bisect_left(sorted_counts, count + 1)
            slot = position[node]
            ranks[node][slot] = 1 + strictly_above
            position[node] += 1
    return ranks
