"""Adaptive sample sizing for compressed COD evaluation.

The paper fixes ``theta`` (RR graphs per node) globally; Fig. 8 shows the
precision/cost trade-off that choice controls. This module provides an
adaptive alternative in the spirit of the stop-and-stare family ([23],
[24] in the paper): start from a small pool, and keep doubling it while
any level's top-k decision is statistically uncertain — i.e., the gap
between the query node's cumulative count and the k-th-largest count is
within ``z`` standard deviations (normal approximation of the count
difference). The pool is shared across rounds, so the total sampling cost
is at most twice that of the final round.

This is a documented engineering extension, not a claim from the paper:
the stopping rule is a heuristic (no formal union bound over levels), but
it empirically matches fixed high-theta decisions at a fraction of the
samples on easy queries while spending more only on genuinely borderline
ones.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.compressed import CompressedEvaluation, compressed_cod
from repro.errors import InfluenceError
from repro.graph.graph import AttributedGraph
from repro.hierarchy.chain import CommunityChain
from repro.influence.arena import concatenate_arenas, sample_arena
from repro.influence.models import InfluenceModel, WeightedCascade
from repro.utils.rng import ensure_rng


@dataclass
class AdaptiveResult:
    """Outcome of an adaptive evaluation.

    Attributes
    ----------
    evaluation:
        The final :class:`CompressedEvaluation` (largest pool).
    theta:
        The final per-node sample rate reached.
    rounds:
        Number of doubling rounds executed.
    converged:
        Whether every level's decision cleared the confidence margin
        (``False`` means the ``max_theta`` budget was exhausted first).
    """

    evaluation: CompressedEvaluation
    theta: int
    rounds: int
    converged: bool


def adaptive_compressed_cod(
    graph: AttributedGraph,
    chain: CommunityChain,
    k: int,
    theta_start: int = 2,
    theta_max: int = 64,
    z: float = 2.0,
    model: InfluenceModel | None = None,
    rng: "int | np.random.Generator | None" = None,
) -> AdaptiveResult:
    """Compressed COD evaluation with doubling sample pools.

    Parameters
    ----------
    theta_start / theta_max:
        Initial and maximum per-node sample rates; each round doubles the
        current rate by drawing as many *new* samples as already pooled.
    z:
        Confidence width in standard deviations; a level is settled when
        ``|count(q) - kth| >= z * sqrt(count(q) + kth)`` (both counts
        behave like Poisson totals under the shared-sample coupling).
    """
    if theta_start <= 0 or theta_max < theta_start:
        raise InfluenceError(
            f"need 0 < theta_start <= theta_max, got {theta_start}, {theta_max}"
        )
    if z < 0:
        raise InfluenceError(f"z must be non-negative, got {z}")
    model = model or WeightedCascade()
    rng = ensure_rng(rng)

    pool = sample_arena(graph, theta_start * graph.n, model=model, rng=rng)
    theta = theta_start
    rounds = 0
    while True:
        rounds += 1
        evaluation = compressed_cod(
            graph, chain, k=k, rr_graphs=pool, n_samples=pool.n_samples
        )
        if _all_levels_settled(evaluation, k, z) or theta >= theta_max:
            converged = _all_levels_settled(evaluation, k, z)
            return AdaptiveResult(
                evaluation=evaluation, theta=theta, rounds=rounds,
                converged=converged,
            )
        # Double the pool (samples append; earlier draws are reused).
        pool = concatenate_arenas(
            [pool, sample_arena(graph, theta * graph.n, model=model, rng=rng)]
        )
        theta *= 2


def _all_levels_settled(
    evaluation: CompressedEvaluation, k: int, z: float
) -> bool:
    """Whether every level's top-k decision clears the z-margin."""
    j = evaluation._k_index(k)
    for level in range(len(evaluation.chain)):
        if evaluation.chain.sizes[level] <= k:
            continue  # trivially qualified, no uncertainty
        count_q = evaluation.query_counts[level]
        kth = evaluation.thresholds[level][j]
        gap = abs(count_q - kth)
        spread = math.sqrt(max(count_q + kth, 1))
        if gap < z * spread:
            return False
    return True
