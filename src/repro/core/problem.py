"""COD problem statement objects (Definition 1).

A :class:`CODQuery` bundles the query node, query attribute, and required
influence rank ``k``. The *answer* to a query is the largest community in
the (attribute-aware) hierarchy containing the query node in which the node
is top-``k`` influential; evaluators return richer per-level diagnostics,
but every pipeline ultimately reports a :class:`~repro.core.pipeline.CODResult`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import QueryError
from repro.graph.graph import AttributedGraph


@dataclass(frozen=True)
class CODQuery:
    """One COD query ``(q, l_q, k)``.

    Attributes
    ----------
    node:
        The query node ``q``.
    attribute:
        The query attribute ``l_q``; ``None`` runs the non-attributed
        variant (the Section III setting, used by CODU).
    k:
        Required influence rank: the answer community must satisfy
        ``rank_C(q) <= k`` (1-based; the paper's default is ``k = 5``).
    """

    node: int
    attribute: int | None
    k: int = 5

    def validate(self, graph: AttributedGraph) -> None:
        """Raise :class:`QueryError` when the query is malformed for ``graph``."""
        if not (0 <= self.node < graph.n):
            raise QueryError(f"query node {self.node} is not in the graph (n={graph.n})")
        if self.k <= 0:
            raise QueryError(f"k must be positive, got {self.k}")
        if self.attribute is not None:
            if self.attribute not in graph.attribute_universe:
                raise QueryError(
                    f"query attribute {self.attribute} is not present on any node"
                )
