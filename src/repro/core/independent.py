"""The Independent (naive) COD evaluator — the Section V-C baseline.

Follows the generic two-stage framework with *no* sharing: each community
in the chain is processed from scratch with its own RR samples
(``theta * |C|`` per community, sources uniform in the community, diffusion
confined to it). Its total sampling cost is ``theta * sum_C |C|``, which is
what makes it prohibitive on large graphs — the effect Fig. 8 measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.compressed import _normalize_ks
from repro.graph.graph import AttributedGraph
from repro.hierarchy.chain import CommunityChain
from repro.influence.estimator import estimate_influences_in_community
from repro.influence.models import InfluenceModel, WeightedCascade
from repro.utils.rng import ensure_rng


@dataclass
class IndependentEvaluation:
    """Per-level outcome of one independent COD evaluation.

    Mirrors :class:`~repro.core.compressed.CompressedEvaluation` where it
    matters to the experiments; levels carry an independent rank estimate
    for ``q`` per community.
    """

    chain: CommunityChain
    k_values: tuple[int, ...]
    n_samples_total: int
    query_ranks: list[int] = field(default_factory=list)

    def qualifies(self, level: int, k: int) -> bool:
        """Whether ``q`` ranked top-``k`` in the level's community."""
        if k not in self.k_values:
            raise ValueError(f"k={k} was not evaluated; budgets: {self.k_values}")
        return self.query_ranks[level] <= k

    def best_level(self, k: int) -> int | None:
        """The largest (highest) qualifying level, or ``None``."""
        for level in range(len(self.chain) - 1, -1, -1):
            if self.qualifies(level, k):
                return level
        return None

    def characteristic_community(self, k: int) -> np.ndarray | None:
        """Members of ``C*(q)`` for budget ``k``, or ``None`` when absent."""
        level = self.best_level(k)
        if level is None:
            return None
        return self.chain.members(level)


def independent_cod(
    graph: AttributedGraph,
    chain: CommunityChain,
    k: "int | Sequence[int]" = 5,
    theta: int = 10,
    model: InfluenceModel | None = None,
    rng: "int | np.random.Generator | None" = None,
) -> IndependentEvaluation:
    """Evaluate ``rank_C(q)`` independently for every chain community.

    Uses ``theta * |C|`` RR samples per community ``C`` (the paper's
    ``Theta = theta * sum_C |C|`` total).
    """
    k_values = _normalize_ks(k)
    model = model or WeightedCascade()
    rng = ensure_rng(rng)
    q = chain.q

    ranks: list[int] = []
    total_samples = 0
    for level in range(len(chain)):
        members = chain.members(level)
        n_samples = theta * len(members)
        total_samples += n_samples
        estimate = estimate_influences_in_community(
            graph, members, n_samples, model=model, rng=rng
        )
        ranks.append(estimate.rank(q))
    return IndependentEvaluation(
        chain=chain,
        k_values=k_values,
        n_samples_total=total_samples,
        query_ranks=ranks,
    )
