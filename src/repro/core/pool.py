"""Shared RR-sample pools for multi-query workloads.

RR-graph sampling depends only on the graph and the diffusion model —
never on the query — so a workload of many COD queries over one graph can
draw its samples once and induce them per query. This is the same
observation that powers the compressed evaluator *within* one query
(Theorem 2), lifted across queries: the pool plays the role of a
materialized possible-world sample.

Trade-off: answers to different queries become correlated (they share
randomness). For effectiveness sweeps averaging over many queries this is
immaterial and buys a large constant speedup; for statistically
independent per-query guarantees, draw fresh samples (the pipelines'
default behaviour).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.compressed import CompressedEvaluation, compressed_cod
from repro.errors import InfluenceError
from repro.graph.graph import AttributedGraph
from repro.hierarchy.chain import CommunityChain
from repro.influence.arena import (
    ArenaRepair,
    RRArena,
    RRView,
    repair_arena,
    sample_arena,
    sample_arena_seeded,
)
from repro.influence.fastsample import (
    sample_arena_fast,
    sample_arena_seeded_fast,
)
from repro.influence.models import InfluenceModel, WeightedCascade
from repro.utils.rng import ensure_rng


class SharedSamplePool:
    """A materialized pool of RR graphs over one graph.

    Parameters
    ----------
    graph:
        The graph the samples were (or will be) drawn on.
    theta:
        Samples per node; the pool holds ``theta * graph.n`` RR graphs.
    model:
        Diffusion model; defaults to weighted cascade.
    seed:
        Sampling seed.
    lazy:
        When true (default) the pool materializes on first use.
    per_sample_seeds:
        When true, draw with :func:`sample_arena_seeded` — every sample's
        stream depends only on ``(seed, sample_index)`` — which makes the
        pool **incrementally repairable** under graph updates
        (:meth:`repair`) with results bit-identical to resampling from
        scratch. Requires an integer ``seed``. Off by default: the
        stream-compatible sampler stays the pool's seed-for-seed contract
        with the legacy per-dict sampler.
    fast:
        When true, draw with the vectorized batch kernel
        (:func:`~repro.influence.fastsample.sample_arena_fast`, or its
        seeded variant when ``per_sample_seeds`` is also set). Samples
        come from the same RR-graph distribution but **not** the same
        RNG stream as the compatible samplers, so a fast pool's answers
        are statistically — not bitwise — equivalent to a compatible
        pool's at the same seed. Repair of a fast seeded pool stays
        bit-identical to a from-scratch fast seeded draw.
    """

    def __init__(
        self,
        graph: AttributedGraph,
        theta: int = 10,
        model: InfluenceModel | None = None,
        seed: "int | np.random.Generator | None" = None,
        lazy: bool = True,
        per_sample_seeds: bool = False,
        fast: bool = False,
    ) -> None:
        if theta <= 0:
            raise InfluenceError(f"theta must be positive, got {theta}")
        if per_sample_seeds and not isinstance(seed, (int, np.integer)):
            raise InfluenceError(
                "per_sample_seeds requires an integer seed (the base seed "
                "every sample's private stream is derived from)"
            )
        self.graph = graph
        self.theta = int(theta)
        self.model = model or WeightedCascade()
        self.per_sample_seeds = bool(per_sample_seeds)
        self.fast = bool(fast)
        self.base_seed = int(seed) if per_sample_seeds else None
        self.repaired_samples_total = 0
        self._rng = ensure_rng(seed)
        self._arena: RRArena | None = None
        self._views: list[RRView] | None = None
        if not lazy:
            self._materialize()

    # ------------------------------------------------------------ sampling

    @property
    def n_samples(self) -> int:
        """Number of RR graphs in the pool."""
        return self.theta * self.graph.n

    @property
    def arena(self) -> RRArena:
        """The pooled samples as a flat arena (materialized on first use)."""
        if self._arena is None:
            self._materialize()
        assert self._arena is not None
        return self._arena

    @property
    def samples(self) -> list[RRView]:
        """The pooled RR graphs as lazy per-sample views (compat surface).

        Views expose the legacy ``RRGraph`` interface; the backing store
        stays the flat arena, so iterating the views costs nothing until a
        caller asks for an ``adjacency`` dict.
        """
        if self._views is None:
            self._views = [self.arena.view(i) for i in range(self.arena.n_samples)]
        return self._views

    def materialize(
        self, budget: "object | None" = None, trace: "object | None" = None
    ) -> RRArena:
        """Draw the pool now (idempotent) and return the arena.

        ``budget``/``trace`` are forwarded to :func:`sample_arena` only on
        the draw that actually happens; they never change the samples.
        Callers that amortize the pool across a batch (e.g. the serving
        planner) call this once up front so the sampling cost is not
        charged to whichever query happens to run first.
        """
        if self._arena is None:
            self._materialize(budget=budget, trace=trace)
        assert self._arena is not None
        return self._arena

    def _materialize(
        self, budget: "object | None" = None, trace: "object | None" = None
    ) -> None:
        if self.per_sample_seeds:
            if self.fast:
                self._arena = sample_arena_seeded_fast(
                    self.graph,
                    self.n_samples,
                    base_seed=self.base_seed,
                    model=self.model,
                    budget=budget,
                    trace=trace,
                )
            else:
                self._arena = sample_arena_seeded(
                    self.graph,
                    self.n_samples,
                    base_seed=self.base_seed,
                    model=self.model,
                    budget=budget,
                    trace=trace,
                )
        elif self.fast:
            self._arena = sample_arena_fast(
                self.graph,
                self.n_samples,
                model=self.model,
                rng=self._rng,
                budget=budget,
                trace=trace,
            )
        else:
            self._arena = sample_arena(
                self.graph,
                self.n_samples,
                model=self.model,
                rng=self._rng,
                budget=budget,
                trace=trace,
            )

    def repair(
        self,
        graph: AttributedGraph,
        touched_nodes: "set[int]",
        budget: "object | None" = None,
    ) -> "ArenaRepair | None":
        """Swap in the post-update ``graph`` and repair the pool in place.

        Per-sample-seeded pools with a materialized arena get incremental
        repair (:func:`repair_arena`): only samples that activated a
        touched node are redrawn, and the result is bit-identical to a
        from-scratch draw on the new graph. Returns the
        :class:`~repro.influence.arena.ArenaRepair` (its ``removed`` /
        ``added`` delta feeds incremental HIMOR repair).

        Stream-sampled pools cannot be repaired sample-by-sample (one
        shared RNG stream), so their arena is dropped and lazily redrawn
        on the new graph; unmaterialized pools just adopt the new graph.
        Both return ``None`` — "no per-sample delta available".
        """
        if graph.n != self.graph.n:
            raise InfluenceError(
                f"update changed the node count ({self.graph.n} -> "
                f"{graph.n}); pools only survive same-node-set updates"
            )
        self.graph = graph
        self._views = None
        if self._arena is None:
            return None
        if not self.per_sample_seeds:
            self._arena = None
            return None
        result = repair_arena(
            self._arena,
            graph,
            touched_nodes,
            base_seed=self.base_seed,
            model=self.model,
            budget=budget,
            fast=self.fast,
        )
        self._arena = result.arena
        self.repaired_samples_total += result.n_repaired
        return result

    def restricted(self, allowed: "set[int] | np.ndarray") -> RRArena:
        """The pool induced on ``allowed`` nodes (Definition 3).

        Deterministic — a pure function of the materialized arena and the
        node set, drawing nothing from the pool's RNG — so pooled callers
        can serve restricted evaluations (CODL's local fallback) while
        staying bit-identical across query orderings. See
        :meth:`RRArena.restrict` for semantics.
        """
        return self.arena.restrict(allowed)

    def total_nodes(self) -> int:
        """``|R|``: total activated nodes across the pool (cost diagnostics)."""
        return self.arena.total_nodes

    def total_edges(self) -> int:
        """``vol(R)``: total activated edges across the pool."""
        return self.arena.total_edges

    # ---------------------------------------------------------- evaluation

    def evaluate(
        self,
        chain: CommunityChain,
        k: "int | Sequence[int]" = 5,
    ) -> CompressedEvaluation:
        """Run compressed COD evaluation for one chain against the pool."""
        if chain.n != self.graph.n:
            raise InfluenceError(
                f"chain is over {chain.n} nodes but the pool's graph has "
                f"{self.graph.n}"
            )
        return compressed_cod(
            self.graph,
            chain,
            k=k,
            rr_graphs=self.arena,
            n_samples=self.n_samples,
        )

    def influence_counts(self) -> dict[int, int]:
        """RR-occurrence counts of every node over the pool.

        Equivalent to :func:`repro.influence.estimator.estimate_influences`
        on the pooled samples; reused by experiment drivers for ``I(q)``.
        """
        return self.arena.influence_counts()

    def __repr__(self) -> str:
        state = "materialized" if self._arena is not None else "lazy"
        return (
            f"SharedSamplePool(n={self.graph.n}, theta={self.theta}, "
            f"samples={self.n_samples}, {state})"
        )
