"""Shared RR-sample pools for multi-query workloads.

RR-graph sampling depends only on the graph and the diffusion model —
never on the query — so a workload of many COD queries over one graph can
draw its samples once and induce them per query. This is the same
observation that powers the compressed evaluator *within* one query
(Theorem 2), lifted across queries: the pool plays the role of a
materialized possible-world sample.

Trade-off: answers to different queries become correlated (they share
randomness). For effectiveness sweeps averaging over many queries this is
immaterial and buys a large constant speedup; for statistically
independent per-query guarantees, draw fresh samples (the pipelines'
default behaviour).
"""

from __future__ import annotations

import threading
from typing import Sequence

import numpy as np

from repro.core.compressed import CompressedEvaluation, compressed_cod
from repro.errors import InfluenceError
from repro.graph.graph import AttributedGraph
from repro.hierarchy.chain import CommunityChain
from repro.influence.arena import (
    ArenaRepair,
    RRArena,
    RRView,
    repair_arena,
    sample_arena,
    sample_arena_seeded,
)
from repro.influence.fastsample import (
    sample_arena_fast,
    sample_arena_seeded_fast,
)
from repro.influence.models import InfluenceModel, WeightedCascade
from repro.utils.rng import ensure_rng


class SharedSamplePool:
    """A materialized pool of RR graphs over one graph.

    Parameters
    ----------
    graph:
        The graph the samples were (or will be) drawn on.
    theta:
        Samples per node; the pool holds ``theta * graph.n`` RR graphs.
    model:
        Diffusion model; defaults to weighted cascade.
    seed:
        Sampling seed.
    lazy:
        When true (default) the pool materializes on first use.
    per_sample_seeds:
        When true, draw with :func:`sample_arena_seeded` — every sample's
        stream depends only on ``(seed, sample_index)`` — which makes the
        pool **incrementally repairable** under graph updates
        (:meth:`repair`) with results bit-identical to resampling from
        scratch. Requires an integer ``seed``. Off by default: the
        stream-compatible sampler stays the pool's seed-for-seed contract
        with the legacy per-dict sampler.
    fast:
        When true, draw with the vectorized batch kernel
        (:func:`~repro.influence.fastsample.sample_arena_fast`, or its
        seeded variant when ``per_sample_seeds`` is also set). Samples
        come from the same RR-graph distribution but **not** the same
        RNG stream as the compatible samplers, so a fast pool's answers
        are statistically — not bitwise — equivalent to a compatible
        pool's at the same seed. Repair of a fast seeded pool stays
        bit-identical to a from-scratch fast seeded draw.
    """

    def __init__(
        self,
        graph: AttributedGraph,
        theta: int = 10,
        model: InfluenceModel | None = None,
        seed: "int | np.random.Generator | None" = None,
        lazy: bool = True,
        per_sample_seeds: bool = False,
        fast: bool = False,
    ) -> None:
        if theta <= 0:
            raise InfluenceError(f"theta must be positive, got {theta}")
        if per_sample_seeds and not isinstance(seed, (int, np.integer)):
            raise InfluenceError(
                "per_sample_seeds requires an integer seed (the base seed "
                "every sample's private stream is derived from)"
            )
        self.graph = graph
        self.theta = int(theta)
        self.model = model or WeightedCascade()
        self.per_sample_seeds = bool(per_sample_seeds)
        self.fast = bool(fast)
        self.base_seed = int(seed) if per_sample_seeds else None
        self.repaired_samples_total = 0
        self._rng = ensure_rng(seed)
        self._arena: RRArena | None = None
        self._views: list[RRView] | None = None
        #: Serializes materialize/repair/publish: concurrent ``warm()``
        #: calls must not double-sample the pool or publish two segments.
        self._lock = threading.RLock()
        #: Cached :class:`~repro.utils.shm.SharedSegment` once published.
        self._segment = None
        if not lazy:
            self._materialize()

    # ------------------------------------------------------------ sampling

    @property
    def n_samples(self) -> int:
        """Number of RR graphs in the pool."""
        return self.theta * self.graph.n

    @property
    def arena(self) -> RRArena:
        """The pooled samples as a flat arena (materialized on first use)."""
        return self.materialize()

    @property
    def is_materialized(self) -> bool:
        """Whether the arena has been drawn (or attached) yet."""
        return self._arena is not None

    @property
    def is_attached(self) -> bool:
        """Whether the arena is a read-only view over a shared segment."""
        return self._arena is not None and self._arena.is_shared

    def arena_bytes(self) -> int:
        """Arena footprint in bytes; 0 while still lazy (never forces a draw)."""
        return 0 if self._arena is None else int(self._arena.memory_bytes())

    @property
    def samples(self) -> list[RRView]:
        """The pooled RR graphs as lazy per-sample views (compat surface).

        Views expose the legacy ``RRGraph`` interface; the backing store
        stays the flat arena, so iterating the views costs nothing until a
        caller asks for an ``adjacency`` dict.
        """
        if self._views is None:
            self._views = [self.arena.view(i) for i in range(self.arena.n_samples)]
        return self._views

    def materialize(
        self, budget: "object | None" = None, trace: "object | None" = None
    ) -> RRArena:
        """Draw the pool now (idempotent) and return the arena.

        ``budget``/``trace`` are forwarded to :func:`sample_arena` only on
        the draw that actually happens; they never change the samples.
        Callers that amortize the pool across a batch (e.g. the serving
        planner) call this once up front so the sampling cost is not
        charged to whichever query happens to run first.

        Thread-safe: concurrent calls (e.g. two ``warm()`` threads)
        serialize on the pool lock and exactly one of them draws; the
        losers observe the winner's arena. The double-checked fast path
        keeps the served steady state lock-free.
        """
        if self._arena is None:
            with self._lock:
                if self._arena is None:
                    self._materialize(budget=budget, trace=trace)
        assert self._arena is not None
        return self._arena

    def _materialize(
        self, budget: "object | None" = None, trace: "object | None" = None
    ) -> None:
        if self.per_sample_seeds:
            if self.fast:
                self._arena = sample_arena_seeded_fast(
                    self.graph,
                    self.n_samples,
                    base_seed=self.base_seed,
                    model=self.model,
                    budget=budget,
                    trace=trace,
                )
            else:
                self._arena = sample_arena_seeded(
                    self.graph,
                    self.n_samples,
                    base_seed=self.base_seed,
                    model=self.model,
                    budget=budget,
                    trace=trace,
                )
        elif self.fast:
            self._arena = sample_arena_fast(
                self.graph,
                self.n_samples,
                model=self.model,
                rng=self._rng,
                budget=budget,
                trace=trace,
            )
        else:
            self._arena = sample_arena(
                self.graph,
                self.n_samples,
                model=self.model,
                rng=self._rng,
                budget=budget,
                trace=trace,
            )

    def repair(
        self,
        graph: AttributedGraph,
        touched_nodes: "set[int]",
        budget: "object | None" = None,
    ) -> "ArenaRepair | None":
        """Swap in the post-update ``graph`` and repair the pool in place.

        Per-sample-seeded pools with a materialized arena get incremental
        repair (:func:`repair_arena`): only samples that activated a
        touched node are redrawn, and the result is bit-identical to a
        from-scratch draw on the new graph. Returns the
        :class:`~repro.influence.arena.ArenaRepair` (its ``removed`` /
        ``added`` delta feeds incremental HIMOR repair).

        Stream-sampled pools cannot be repaired sample-by-sample (one
        shared RNG stream), so their arena is dropped and lazily redrawn
        on the new graph; unmaterialized pools just adopt the new graph.
        Both return ``None`` — "no per-sample delta available".
        """
        if graph.n != self.graph.n:
            raise InfluenceError(
                f"update changed the node count ({self.graph.n} -> "
                f"{graph.n}); pools only survive same-node-set updates"
            )
        with self._lock:
            self.graph = graph
            self._views = None
            self._segment = None  # any published segment is now stale
            old = self._arena
            if old is None:
                return None
            if not self.per_sample_seeds:
                self._arena = None
                old.detach()
                return None
            result = repair_arena(
                old,
                graph,
                touched_nodes,
                base_seed=self.base_seed,
                model=self.model,
                budget=budget,
                fast=self.fast,
            )
            self._arena = result.arena
            if result.arena is not old:
                old.detach()
            self.repaired_samples_total += result.n_repaired
            return result

    # ---------------------------------------------------------- shared memory

    def to_shared(
        self,
        name: "str | None" = None,
        extra: "dict | None" = None,
        adopt: bool = True,
    ):
        """Publish the materialized arena into a shared segment (idempotent).

        Exactly one segment exists per pool state: concurrent callers
        serialize on the pool lock and the second one receives the first
        one's :class:`~repro.utils.shm.SharedSegment` instead of
        publishing a duplicate. :meth:`repair` invalidates the cache, so
        the next call publishes the repaired arena under a fresh name.

        With ``adopt`` (default) the pool swaps its private arrays for
        the segment's read-only views, so the publishing process keeps a
        single copy of the samples. The caller owns the segment's
        lifetime (:meth:`~repro.utils.shm.SharedSegment.destroy`).
        """
        with self._lock:
            if self._segment is None:
                arena = self.materialize()
                self._segment = arena.to_shared(name=name, extra=extra)
                if adopt:
                    self._arena = RRArena.from_segment(self._segment)
                    self._views = None
            return self._segment

    @classmethod
    def attach(
        cls,
        graph: AttributedGraph,
        name: str,
        theta: int = 10,
        model: InfluenceModel | None = None,
        seed: "int | np.random.Generator | None" = None,
        per_sample_seeds: bool = False,
        fast: bool = False,
    ) -> "SharedSamplePool":
        """A pool whose arena is attached read-only from segment ``name``.

        The configuration must match the publisher's: an attached worker
        pool answers queries bit-identically to a private pool built
        with the same ``(graph, theta, seed, ...)`` because pooled
        answers are a pure function of the arena. Geometry mismatches
        (wrong graph, wrong sample count for ``theta * n``) are rejected
        — attaching a stale segment must fail loudly, not skew answers.
        """
        pool = cls(
            graph,
            theta=theta,
            model=model,
            seed=seed,
            per_sample_seeds=per_sample_seeds,
            fast=fast,
        )
        arena = RRArena.attach(name)
        if arena.n != graph.n:
            arena.detach()
            raise InfluenceError(
                f"segment {name!r} holds an arena over {arena.n} nodes "
                f"but the graph has {graph.n}"
            )
        if arena.n_samples != pool.n_samples:
            count = arena.n_samples
            arena.detach()
            raise InfluenceError(
                f"segment {name!r} holds {count} samples but "
                f"theta={theta} over {graph.n} nodes needs {pool.n_samples}"
            )
        pool._arena = arena
        return pool

    def adopt(self, graph: AttributedGraph, arena: RRArena) -> None:
        """Swap in a post-update graph and an externally built arena.

        The epoch-rotation primitive for attached workers: the
        supervisor repairs *its* pool, publishes a fresh segment, and
        each worker adopts the new graph + attached arena here — no
        local resampling. The previous arena's mapping (if any) is
        released.
        """
        with self._lock:
            if graph.n != self.graph.n:
                raise InfluenceError(
                    f"adopted graph has {graph.n} nodes but the pool served "
                    f"{self.graph.n}"
                )
            if arena.n != graph.n:
                raise InfluenceError(
                    f"adopted arena covers {arena.n} nodes but the graph "
                    f"has {graph.n}"
                )
            if arena.n_samples != self.n_samples:
                raise InfluenceError(
                    f"adopted arena holds {arena.n_samples} samples but the "
                    f"pool is configured for {self.n_samples}"
                )
            old = self._arena
            self.graph = graph
            self._arena = arena
            self._views = None
            self._segment = None
            if old is not None and old is not arena:
                old.detach()

    def restricted(self, allowed: "set[int] | np.ndarray") -> RRArena:
        """The pool induced on ``allowed`` nodes (Definition 3).

        Deterministic — a pure function of the materialized arena and the
        node set, drawing nothing from the pool's RNG — so pooled callers
        can serve restricted evaluations (CODL's local fallback) while
        staying bit-identical across query orderings. See
        :meth:`RRArena.restrict` for semantics.
        """
        return self.arena.restrict(allowed)

    def total_nodes(self) -> int:
        """``|R|``: total activated nodes across the pool (cost diagnostics)."""
        return self.arena.total_nodes

    def total_edges(self) -> int:
        """``vol(R)``: total activated edges across the pool."""
        return self.arena.total_edges

    # ---------------------------------------------------------- evaluation

    def evaluate(
        self,
        chain: CommunityChain,
        k: "int | Sequence[int]" = 5,
    ) -> CompressedEvaluation:
        """Run compressed COD evaluation for one chain against the pool."""
        if chain.n != self.graph.n:
            raise InfluenceError(
                f"chain is over {chain.n} nodes but the pool's graph has "
                f"{self.graph.n}"
            )
        return compressed_cod(
            self.graph,
            chain,
            k=k,
            rr_graphs=self.arena,
            n_samples=self.n_samples,
        )

    def influence_counts(self) -> dict[int, int]:
        """RR-occurrence counts of every node over the pool.

        Equivalent to :func:`repro.influence.estimator.estimate_influences`
        on the pooled samples; reused by experiment drivers for ``I(q)``.
        """
        return self.arena.influence_counts()

    def __repr__(self) -> str:
        state = "materialized" if self._arena is not None else "lazy"
        return (
            f"SharedSamplePool(n={self.graph.n}, theta={self.theta}, "
            f"samples={self.n_samples}, {state})"
        )
