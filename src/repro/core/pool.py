"""Shared RR-sample pools for multi-query workloads.

RR-graph sampling depends only on the graph and the diffusion model —
never on the query — so a workload of many COD queries over one graph can
draw its samples once and induce them per query. This is the same
observation that powers the compressed evaluator *within* one query
(Theorem 2), lifted across queries: the pool plays the role of a
materialized possible-world sample.

Trade-off: answers to different queries become correlated (they share
randomness). For effectiveness sweeps averaging over many queries this is
immaterial and buys a large constant speedup; for statistically
independent per-query guarantees, draw fresh samples (the pipelines'
default behaviour).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.compressed import CompressedEvaluation, compressed_cod
from repro.errors import InfluenceError
from repro.graph.graph import AttributedGraph
from repro.hierarchy.chain import CommunityChain
from repro.influence.arena import RRArena, RRView, sample_arena
from repro.influence.models import InfluenceModel, WeightedCascade
from repro.utils.rng import ensure_rng


class SharedSamplePool:
    """A materialized pool of RR graphs over one graph.

    Parameters
    ----------
    graph:
        The graph the samples were (or will be) drawn on.
    theta:
        Samples per node; the pool holds ``theta * graph.n`` RR graphs.
    model:
        Diffusion model; defaults to weighted cascade.
    seed:
        Sampling seed.
    lazy:
        When true (default) the pool materializes on first use.
    """

    def __init__(
        self,
        graph: AttributedGraph,
        theta: int = 10,
        model: InfluenceModel | None = None,
        seed: "int | np.random.Generator | None" = None,
        lazy: bool = True,
    ) -> None:
        if theta <= 0:
            raise InfluenceError(f"theta must be positive, got {theta}")
        self.graph = graph
        self.theta = int(theta)
        self.model = model or WeightedCascade()
        self._rng = ensure_rng(seed)
        self._arena: RRArena | None = None
        self._views: list[RRView] | None = None
        if not lazy:
            self._materialize()

    # ------------------------------------------------------------ sampling

    @property
    def n_samples(self) -> int:
        """Number of RR graphs in the pool."""
        return self.theta * self.graph.n

    @property
    def arena(self) -> RRArena:
        """The pooled samples as a flat arena (materialized on first use)."""
        if self._arena is None:
            self._materialize()
        assert self._arena is not None
        return self._arena

    @property
    def samples(self) -> list[RRView]:
        """The pooled RR graphs as lazy per-sample views (compat surface).

        Views expose the legacy ``RRGraph`` interface; the backing store
        stays the flat arena, so iterating the views costs nothing until a
        caller asks for an ``adjacency`` dict.
        """
        if self._views is None:
            self._views = [self.arena.view(i) for i in range(self.arena.n_samples)]
        return self._views

    def materialize(
        self, budget: "object | None" = None, trace: "object | None" = None
    ) -> RRArena:
        """Draw the pool now (idempotent) and return the arena.

        ``budget``/``trace`` are forwarded to :func:`sample_arena` only on
        the draw that actually happens; they never change the samples.
        Callers that amortize the pool across a batch (e.g. the serving
        planner) call this once up front so the sampling cost is not
        charged to whichever query happens to run first.
        """
        if self._arena is None:
            self._materialize(budget=budget, trace=trace)
        assert self._arena is not None
        return self._arena

    def _materialize(
        self, budget: "object | None" = None, trace: "object | None" = None
    ) -> None:
        self._arena = sample_arena(
            self.graph,
            self.n_samples,
            model=self.model,
            rng=self._rng,
            budget=budget,
            trace=trace,
        )

    def restricted(self, allowed: "set[int] | np.ndarray") -> RRArena:
        """The pool induced on ``allowed`` nodes (Definition 3).

        Deterministic — a pure function of the materialized arena and the
        node set, drawing nothing from the pool's RNG — so pooled callers
        can serve restricted evaluations (CODL's local fallback) while
        staying bit-identical across query orderings. See
        :meth:`RRArena.restrict` for semantics.
        """
        return self.arena.restrict(allowed)

    def total_nodes(self) -> int:
        """``|R|``: total activated nodes across the pool (cost diagnostics)."""
        return self.arena.total_nodes

    def total_edges(self) -> int:
        """``vol(R)``: total activated edges across the pool."""
        return self.arena.total_edges

    # ---------------------------------------------------------- evaluation

    def evaluate(
        self,
        chain: CommunityChain,
        k: "int | Sequence[int]" = 5,
    ) -> CompressedEvaluation:
        """Run compressed COD evaluation for one chain against the pool."""
        if chain.n != self.graph.n:
            raise InfluenceError(
                f"chain is over {chain.n} nodes but the pool's graph has "
                f"{self.graph.n}"
            )
        return compressed_cod(
            self.graph,
            chain,
            k=k,
            rr_graphs=self.arena,
            n_samples=self.n_samples,
        )

    def influence_counts(self) -> dict[int, int]:
        """RR-occurrence counts of every node over the pool.

        Equivalent to :func:`repro.influence.estimator.estimate_influences`
        on the pooled samples; reused by experiment drivers for ``I(q)``.
        """
        return self.arena.influence_counts()

    def __repr__(self) -> str:
        state = "materialized" if self._arena is not None else "lazy"
        return (
            f"SharedSamplePool(n={self.graph.n}, theta={self.theta}, "
            f"samples={self.n_samples}, {state})"
        )
