"""The paper's contribution: COD problem, evaluators, LORE, HIMOR, pipelines."""

from repro.core.adaptive import AdaptiveResult, adaptive_compressed_cod
from repro.core.compressed import CompressedEvaluation, compressed_cod
from repro.core.explain import (
    CODExplanation,
    LoreExplanation,
    explain_evaluation,
    explain_lore,
)
from repro.core.himor import HimorIndex, himor_cod
from repro.core.independent import independent_cod
from repro.core.lore import LoreResult, lore_chain, reclustering_scores
from repro.core.pipeline import CODL, CODR, CODU, CODLMinus, CODResult
from repro.core.pool import SharedSamplePool
from repro.core.problem import CODQuery

__all__ = [
    "CODQuery",
    "AdaptiveResult",
    "adaptive_compressed_cod",
    "CODResult",
    "compressed_cod",
    "CompressedEvaluation",
    "independent_cod",
    "lore_chain",
    "reclustering_scores",
    "LoreResult",
    "HimorIndex",
    "himor_cod",
    "CODU",
    "CODR",
    "CODL",
    "CODLMinus",
    "SharedSamplePool",
    "explain_evaluation",
    "explain_lore",
    "CODExplanation",
    "LoreExplanation",
]
