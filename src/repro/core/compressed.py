"""Compressed COD evaluation (Section III, Algorithm 1).

Two stages over one shared pool of RR graphs:

1. **Shared sample generation / hierarchical-first search (HFS).** Each RR
   graph is traversed once. A node ``v`` is charged to the bucket of the
   *smallest* chain community within which ``v`` is reachable from the
   source — the minimax over source-to-``v`` paths of the largest node
   level on the path. We compute that assignment with a Dijkstra-style
   search keyed by level (levels only grow along a path, so the first pop
   is final), which realizes the paper's level-ordered queues with a heap
   instead of ``|H(q)|`` hash maps.

2. **Incremental top-k evaluation.** One pass over the buckets from the
   deepest community to the root, maintaining cumulative counts ``tau`` and
   the current top-k set. Theorem 3 guarantees that only nodes in the
   current bucket or the previous top-k can enter the new top-k, so each
   bucket item is touched once. ``q`` is top-k in ``C_h`` iff
   ``tau(q) >= m_k`` where ``m_k`` is the k-th largest cumulative count —
   maintained as the minimum of the running top-k set.

The evaluator answers *all* ranks ``1..k_max`` in one pass (the experiments
sweep ``k``), at the cost of tracking a top-``k_max`` set.
"""

from __future__ import annotations

import heapq
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.errors import QueryError
from repro.graph.graph import AttributedGraph
from repro.hierarchy.chain import CommunityChain
from repro.influence.arena import RRArena, sample_arena
from repro.influence.models import InfluenceModel, WeightedCascade
from repro.influence.rr import RRGraph
from repro.utils.rng import ensure_rng


@dataclass
class CompressedEvaluation:
    """Per-level outcome of one compressed COD evaluation.

    Attributes
    ----------
    chain:
        The evaluated community chain (deepest community first).
    k_values:
        The rank budgets answered, ascending.
    n_samples:
        Number of RR graphs drawn (``Theta``).
    population:
        Source-population size used for Theorem-1 scaling (``|V|``).
    query_counts:
        ``query_counts[h]`` = cumulative RR count of ``q`` within ``C_h``.
    thresholds:
        ``thresholds[h][j]`` = the ``k_values[j]``-th largest cumulative
        count in ``C_h`` (0 when fewer than ``k`` nodes scored).
    """

    chain: CommunityChain
    k_values: tuple[int, ...]
    n_samples: int
    population: int
    query_counts: list[int] = field(default_factory=list)
    thresholds: list[list[int]] = field(default_factory=list)

    def qualifies(self, level: int, k: int) -> bool:
        """Whether ``q`` is top-``k`` influential in the level's community."""
        j = self._k_index(k)
        if self.chain.sizes[level] <= k:
            return True
        return self.query_counts[level] >= self.thresholds[level][j]

    def best_level(self, k: int) -> int | None:
        """The largest (highest) qualifying level, or ``None``."""
        for level in range(len(self.chain) - 1, -1, -1):
            if self.qualifies(level, k):
                return level
        return None

    def characteristic_community(self, k: int) -> np.ndarray | None:
        """Members of ``C*(q)`` for budget ``k``, or ``None`` when absent."""
        level = self.best_level(k)
        if level is None:
            return None
        return self.chain.members(level)

    def query_influence(self, level: int) -> float:
        """Estimated ``sigma_{C_level}(q)`` (Theorem 2 scaling)."""
        if self.n_samples == 0:
            raise QueryError("no samples were drawn; influence is undefined")
        return self.query_counts[level] * self.population / self.n_samples

    def _k_index(self, k: int) -> int:
        try:
            return self.k_values.index(k)
        except ValueError:
            raise QueryError(
                f"k={k} was not evaluated; available budgets: {self.k_values}"
            ) from None


def compressed_cod(
    graph: AttributedGraph,
    chain: CommunityChain,
    k: "int | Sequence[int]" = 5,
    theta: int = 10,
    model: InfluenceModel | None = None,
    rng: "int | np.random.Generator | None" = None,
    rr_graphs: "Iterable[RRGraph] | RRArena | None" = None,
    n_samples: int | None = None,
    budget: "object | None" = None,
    trace: "object | None" = None,
) -> CompressedEvaluation:
    """Run Algorithm 1 over ``chain`` for the query node ``chain.q``.

    Parameters
    ----------
    k:
        A rank budget or a collection of budgets answered jointly.
    theta:
        RR graphs per node: ``Theta = theta * graph.n`` samples are drawn
        (the paper's parameterization; default ``theta = 10``).
    rr_graphs:
        Optional pre-drawn samples; overrides ``theta``. An
        :class:`~repro.influence.arena.RRArena` runs through the
        vectorized arena evaluator; any other iterable of RR graphs runs
        through the legacy per-sample HFS (the two are equivalence-tested
        against each other in ``tests/oracle``). Pass ``n_samples`` with a
        plain iterable when its length is not ``theta * graph.n``.
    budget:
        Optional cooperative execution budget (duck-typed; see
        :class:`repro.serving.budget.ExecutionBudget`). Fresh sampling
        ticks it per draw; the HFS pass checks the deadline every few
        RR graphs (legacy) or once per relaxation sweep (arena) so
        pre-drawn pools cannot blow a deadline unobserved.
    trace:
        Optional duck-typed span recorder (``span(name, **meta)`` context
        manager, e.g. ``repro.obs.QueryTrace``). The evaluation runs
        inside a ``compressed_eval`` span annotated with the chain depth
        and sample count; fresh sampling nests its own ``sampling`` span.
        Tracing never changes the evaluation.
    """
    k_values = _normalize_ks(k)
    k_max = k_values[-1]
    if chain.n != graph.n:
        raise QueryError(
            f"chain covers {chain.n} nodes but the graph has {graph.n}"
        )
    model = model or WeightedCascade()
    rng = ensure_rng(rng)

    span_cm = (
        trace.span("compressed_eval", levels=len(chain))
        if trace is not None
        else nullcontext()
    )
    with span_cm as span:
        if rr_graphs is None:
            total = theta * graph.n
            rr_graphs = sample_arena(
                graph, total, model=model, rng=rng, budget=budget, trace=trace
            )
            n_samples = total

        if isinstance(rr_graphs, RRArena):
            if rr_graphs.n != graph.n:
                raise QueryError(
                    f"arena was sampled over {rr_graphs.n} nodes but the graph "
                    f"has {graph.n}"
                )
            if n_samples is None:
                n_samples = rr_graphs.n_samples
            if span is not None:
                span.note(n_samples=int(n_samples), evaluator="arena")
            return _evaluate_arena(
                graph, chain, k_values, rr_graphs, int(n_samples), budget
            )

        if n_samples is None:
            rr_graphs = list(rr_graphs)
            n_samples = len(rr_graphs)
        if span is not None:
            span.note(n_samples=int(n_samples), evaluator="legacy")

        levels = chain.node_levels
        n_levels = len(chain)
        buckets: list[dict[int, int]] = [dict() for _ in range(n_levels)]

        # Stage 1: HFS over every RR graph.
        for i, rr in enumerate(rr_graphs):
            if budget is not None and i % 32 == 0:
                budget.check()
            _assign_to_buckets(rr, levels, buckets)

        # Stage 2: incremental top-k (answers every budget in k_values).
        evaluation = CompressedEvaluation(
            chain=chain,
            k_values=k_values,
            n_samples=int(n_samples),
            population=graph.n,
        )
        q = chain.q
        tau: dict[int, int] = {}
        top: dict[int, int] = {}
        for h in range(n_levels):
            bucket = buckets[h]
            for v, c in bucket.items():
                tau[v] = tau.get(v, 0) + c
            if bucket or len(top) < k_max:
                candidates = set(bucket) | set(top)
                best = heapq.nlargest(
                    k_max, candidates, key=lambda v: (tau.get(v, 0), -v)
                )
                top = {v: tau.get(v, 0) for v in best}
            ordered = sorted(top.values(), reverse=True)
            thresholds = [
                ordered[kv - 1] if kv <= len(ordered) else 0 for kv in k_values
            ]
            evaluation.thresholds.append(thresholds)
            evaluation.query_counts.append(tau.get(q, 0))
        return evaluation


def _evaluate_arena(
    graph: AttributedGraph,
    chain: CommunityChain,
    k_values: tuple[int, ...],
    arena: RRArena,
    n_samples: int,
    budget: "object | None",
) -> CompressedEvaluation:
    """Both Algorithm-1 stages on the flat arena arrays.

    Stage 1 is the vectorized minimax relaxation
    (:meth:`RRArena.level_bucket_counts`); stage 2 folds the per-level
    count rows into cumulative counts and reads the k-th largest positive
    cumulative count per level — exactly the thresholds the incremental
    dict pass maintains (Theorem 3 guarantees the top-k it tracks is the
    global top-k of the cumulative counts).
    """
    n_levels = len(chain)
    counts = arena.level_bucket_counts(chain.node_levels, n_levels, budget=budget)
    evaluation = CompressedEvaluation(
        chain=chain,
        k_values=k_values,
        n_samples=n_samples,
        population=graph.n,
    )
    q = chain.q
    cumulative = np.zeros(graph.n, dtype=np.int64)
    for h in range(n_levels):
        cumulative += counts[h]
        scored = np.sort(cumulative[cumulative > 0])[::-1]
        evaluation.thresholds.append(
            [int(scored[kv - 1]) if kv <= len(scored) else 0 for kv in k_values]
        )
        evaluation.query_counts.append(int(cumulative[q]))
    return evaluation


def _assign_to_buckets(
    rr: RRGraph, levels: np.ndarray, buckets: list[dict[int, int]]
) -> None:
    """Charge each RR-graph node to its HFS bucket (minimax level search)."""
    source_level = int(levels[rr.source])
    if source_level == CommunityChain.OUTSIDE:
        return
    adjacency = rr.adjacency
    assigned: dict[int, int] = {}
    heap: list[tuple[int, int]] = [(source_level, rr.source)]
    while heap:
        level, v = heapq.heappop(heap)
        if v in assigned:
            continue
        assigned[v] = level
        bucket = buckets[level]
        bucket[v] = bucket.get(v, 0) + 1
        for u in adjacency[v]:
            if u in assigned:
                continue
            u_level = int(levels[u])
            if u_level == CommunityChain.OUTSIDE:
                continue
            heapq.heappush(heap, (max(level, u_level), u))


def _normalize_ks(k: "int | Sequence[int]") -> tuple[int, ...]:
    if isinstance(k, int):
        k_values: tuple[int, ...] = (k,)
    else:
        k_values = tuple(sorted(set(int(x) for x in k)))
    if not k_values:
        raise QueryError("at least one rank budget k is required")
    if k_values[0] <= 0:
        raise QueryError(f"rank budgets must be positive, got {k_values}")
    return k_values
