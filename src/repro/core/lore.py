"""LORE — LOcal hierarchical REclustering (Section IV-A, Algorithm 2).

Global reclustering (CODR) rebuilds the whole hierarchy on the
attribute-weighted graph ``g_l`` and tends to produce hub-dominated, skewed
hierarchies in which even the deepest community containing a query node is
too large for the node to be influential (Fig. 4). LORE instead:

1. scores every community ``C`` in the *non-attributed* ``H(q)`` with the
   reclustering score ``r(C)`` (Definition 4) — the depth-weighted count of
   query-attributed edges split inside ``C``, normalized by ``|C|``;
2. reclusters only ``C_l = argmax r(C)`` on the induced ``g_l`` subgraph;
3. splices the reclustered communities below ``C_l`` into the original
   hierarchy above it, yielding the attribute-aware chain ``H_l(q)``.

Score computation follows the Eq. 3 recursion: each query-attributed edge
``(u, v)`` whose LCA ``D = lca(u, v)`` is an ancestor of ``q`` contributes
``dep(D)`` to the numerator of every ``C ⊇ D`` in ``H(q)``. One O(1) LCA
query per edge gives all scores in O(|E|) (Theorem 5).
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass

import numpy as np

from repro.errors import QueryError
from repro.graph.graph import AttributedGraph
from repro.graph.subgraph import induced_subgraph
from repro.graph.weighting import AttributeWeighting, attribute_weighted_graph
from repro.hierarchy.chain import CommunityChain
from repro.hierarchy.dendrogram import CommunityHierarchy
from repro.hierarchy.linkage import Linkage
from repro.hierarchy.nnchain import agglomerative_hierarchy
from repro.utils.faults import maybe_fail


@dataclass
class LoreResult:
    """Output of LORE for one query.

    Attributes
    ----------
    chain:
        ``H_l(q)``: reclustered communities inside ``C_l`` (deepest first),
        then ``C_l`` itself and its original ancestors.
    c_ell_vertex:
        The reclustered community ``C_l`` as a vertex of the original
        hierarchy.
    c_ell_chain_level:
        Index of ``C_l`` within :attr:`chain`.
    scores:
        ``r(C)`` for every community of the non-attributed ``H(q)``
        (aligned with ``hierarchy.path_communities(q)``, deepest first).
    """

    chain: CommunityChain
    c_ell_vertex: int
    c_ell_chain_level: int
    scores: np.ndarray


def reclustering_scores(
    graph: AttributedGraph,
    hierarchy: CommunityHierarchy,
    q: int,
    attribute: int,
    depth_weighted: bool = True,
) -> np.ndarray:
    """``r(C)`` for every community of ``H(q)``, deepest first (Eq. 2/3).

    Runs in O(|E|) total: one pass over the query-attributed edges with an
    O(1) LCA each, then a prefix accumulation along ``H(q)``.

    ``depth_weighted=False`` replaces the Definition-4 depth weights with a
    plain edge count (every divided edge contributes 1) — the ablation
    variant that ignores proximity to the query node.
    """
    path = hierarchy.path_communities(q)
    if not path:
        raise QueryError(f"query node {q} has no ancestor communities")
    level_of_vertex = {vertex: level for level, vertex in enumerate(path)}

    # delta[level] = number of query-attributed edges whose LCA is exactly
    # the level-th community of H(q); edges with LCAs off the path do not
    # involve q's hierarchy and are skipped.
    delta = np.zeros(len(path), dtype=np.int64)
    for u, v in graph.attribute_edges(attribute):
        lca = hierarchy.lca(u, v)
        level = level_of_vertex.get(lca)
        if level is not None:
            delta[level] += 1

    if depth_weighted:
        weights = np.asarray(
            [hierarchy.depth(vertex) for vertex in path], dtype=np.int64
        )
    else:
        weights = np.ones(len(path), dtype=np.int64)
    sizes = np.asarray([hierarchy.size(vertex) for vertex in path], dtype=np.int64)
    numerators = np.cumsum(delta * weights)
    return numerators / sizes


def select_reclustering_community(
    scores: np.ndarray, path: list[int]
) -> tuple[int, int]:
    """Pick ``C_l = argmax r(C)`` over ``H(q)`` excluding the deepest level.

    Algorithm 2 scans levels ``1..|H(q)|-1`` (reclustering the already
    deepest community cannot refine the hierarchy below it). Ties keep the
    deepest (most local) candidate. Returns ``(vertex, level)``. When
    ``H(q)`` has a single community (the root), that community is chosen.
    """
    if len(path) == 1:
        return path[0], 0
    start = 1
    best_level = start + int(np.argmax(scores[start:]))
    return path[best_level], best_level


def lore_chain(
    graph: AttributedGraph,
    hierarchy: CommunityHierarchy,
    q: int,
    attribute: int,
    weighting: AttributeWeighting | None = None,
    linkage: Linkage | None = None,
    weighted_graph: AttributedGraph | None = None,
    depth_weighted: bool = True,
    budget: "object | None" = None,
    trace: "object | None" = None,
) -> LoreResult:
    """Run LORE end-to-end: score, select ``C_l``, recluster, splice.

    Parameters
    ----------
    weighted_graph:
        Optional precomputed ``g_l`` (must match ``attribute``); avoids
        rebuilding the weighting per query in experiment sweeps.
    depth_weighted:
        Reclustering-score variant; see :func:`reclustering_scores`.
    budget:
        Optional cooperative execution budget (duck-typed; see
        :class:`repro.serving.budget.ExecutionBudget`): the deadline is
        checked before scoring and again before the local reclustering,
        the two expensive phases.
    trace:
        Optional duck-typed span recorder (``span(name, **meta)`` context
        manager, e.g. ``repro.obs.QueryTrace``): the whole run nests in a
        ``lore`` span annotated with the chosen level and chain length.
        Tracing never changes the result.
    """
    span_cm = trace.span("lore") if trace is not None else nullcontext()
    with span_cm as span:
        maybe_fail("lore")
        if budget is not None:
            budget.check()
        scores = reclustering_scores(
            graph, hierarchy, q, attribute, depth_weighted=depth_weighted
        )
        path = hierarchy.path_communities(q)
        c_ell, c_ell_level = select_reclustering_community(scores, path)

        if weighted_graph is None:
            weighted_graph = attribute_weighted_graph(graph, attribute, weighting)

        # Recluster g_l induced on C_l; the local subgraph may be
        # disconnected even when g is connected, so components are stacked
        # under the root.
        if budget is not None:
            budget.check()
        members = hierarchy.members(c_ell)
        view = induced_subgraph(weighted_graph, members, keep_weights=True)
        local = agglomerative_hierarchy(
            view.graph, linkage=linkage, on_disconnected="merge"
        )

        # Reclustered communities strictly inside C_l containing q, deepest
        # first, translated back to parent ids. The local root equals C_l
        # and is dropped (C_l re-enters from the original hierarchy).
        q_local = view.to_sub[q]
        member_lists: list[list[int]] = []
        depths: list[int] = []
        c_ell_depth = hierarchy.depth(c_ell)
        for vertex in local.path_communities(q_local):
            if local.size(vertex) >= len(members):
                continue
            member_lists.append(view.parent_ids(local.members(vertex)))
            depths.append(c_ell_depth + local.depth(vertex) - 1)

        c_ell_chain_level = len(member_lists)
        for vertex in [c_ell, *hierarchy.ancestors(c_ell)]:
            member_lists.append([int(v) for v in hierarchy.members(vertex)])
            depths.append(hierarchy.depth(vertex))

        chain = CommunityChain.from_member_lists(graph.n, q, member_lists, depths)
        if span is not None:
            span.note(
                chain=len(chain),
                c_ell_level=int(c_ell_level),
                c_ell_size=int(len(members)),
            )
        return LoreResult(
            chain=chain,
            c_ell_vertex=c_ell,
            c_ell_chain_level=c_ell_chain_level,
            scores=scores,
        )
