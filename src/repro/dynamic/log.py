"""Epoch-versioned update log for live-graph serving.

The unit of graph mutation in the serving layer is the
:class:`UpdateBatch` — an atomic, order-free set of
:class:`~repro.dynamic.updates.EdgeUpdate` /
:class:`~repro.dynamic.updates.AttrUpdate` operations. The
:class:`UpdateLog` numbers batches into **epochs**: epoch 0 is the graph
a session started on, and appending batch *i* moves the log from epoch
``i-1`` to epoch ``i``. Replaying a prefix of the log reconstructs the
exact graph of any epoch, which is what lets the chaos drill rebuild a
from-scratch oracle per epoch and compare it against the live fleet.

Wire format (one JSON object per line in a ``.jsonl`` file)::

    {"at": 40, "label": "night-batch",
     "updates": [{"type": "edge", "u": 0, "v": 5, "add": true},
                 {"type": "attr", "node": 3, "attribute": 1, "add": false}]}

``at`` is an optional scheduling hint — the admission sequence number
*before* which ``serve-sim --updates`` injects the batch — and ``label``
is free-form. Both survive a round-trip; neither affects application.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from repro.dynamic.updates import (
    AttrUpdate,
    EdgeUpdate,
    GraphUpdate,
    apply_updates,
    touched_attributes,
    touched_nodes,
)
from repro.errors import GraphError
from repro.graph.graph import AttributedGraph
from repro.utils.persist import fsync_dir


@dataclass(frozen=True)
class UpdateBatch:
    """One atomic epoch transition: a validated-together set of updates."""

    updates: "tuple[GraphUpdate, ...]"
    label: "str | None" = None
    #: Optional scheduling hint for workload replay: inject this batch
    #: just before the query with this admission sequence number.
    at: "int | None" = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "updates", tuple(self.updates))

    def __len__(self) -> int:
        return len(self.updates)

    @property
    def has_edge_updates(self) -> bool:
        """True when the batch changes topology (not just attributes)."""
        return any(isinstance(u, EdgeUpdate) for u in self.updates)

    def touched_nodes(self) -> set[int]:
        """Endpoints of the batch's edge updates (see :func:`touched_nodes`)."""
        return touched_nodes(self.updates)

    def touched_attributes(self) -> set[int]:
        """Attribute values the batch's attribute updates change."""
        return touched_attributes(self.updates)

    # ---------------------------------------------------------------- wire

    def to_wire(self) -> dict:
        """JSON-able form (the JSONL line payload)."""
        updates = []
        for update in self.updates:
            if isinstance(update, EdgeUpdate):
                updates.append({"type": "edge", "u": int(update.u),
                                "v": int(update.v), "add": bool(update.add)})
            elif isinstance(update, AttrUpdate):
                updates.append({"type": "attr", "node": int(update.node),
                                "attribute": int(update.attribute),
                                "add": bool(update.add)})
            else:  # pragma: no cover - constructor accepts anything
                raise GraphError(
                    f"unknown update type {type(update).__name__!r}"
                )
        doc: dict = {"updates": updates}
        if self.label is not None:
            doc["label"] = str(self.label)
        if self.at is not None:
            doc["at"] = int(self.at)
        return doc

    @classmethod
    def from_wire(cls, doc: dict) -> "UpdateBatch":
        """Parse a wire dict, raising :class:`GraphError` on malformed input."""
        if not isinstance(doc, dict) or "updates" not in doc:
            raise GraphError(f"update batch must be a dict with 'updates': {doc!r}")
        updates: list[GraphUpdate] = []
        for entry in doc["updates"]:
            try:
                kind = entry["type"]
                if kind == "edge":
                    updates.append(EdgeUpdate(int(entry["u"]), int(entry["v"]),
                                              add=bool(entry.get("add", True))))
                elif kind == "attr":
                    updates.append(AttrUpdate(int(entry["node"]),
                                              int(entry["attribute"]),
                                              add=bool(entry.get("add", True))))
                else:
                    raise GraphError(f"unknown update type {kind!r}")
            except (KeyError, TypeError, ValueError) as exc:
                raise GraphError(f"malformed update entry {entry!r}: {exc}") from exc
        at = doc.get("at")
        return cls(updates=tuple(updates),
                   label=doc.get("label"),
                   at=None if at is None else int(at))


def as_batch(updates: "UpdateBatch | Iterable[GraphUpdate]",
             label: "str | None" = None) -> UpdateBatch:
    """Coerce a bare update iterable into an :class:`UpdateBatch`."""
    if isinstance(updates, UpdateBatch):
        return updates
    return UpdateBatch(updates=tuple(updates), label=label)


@dataclass
class UpdateLog:
    """An append-only, epoch-numbered sequence of update batches.

    ``epoch`` equals the number of appended batches; ``batch_for(e)`` is
    the batch whose application moved the graph from epoch ``e - 1`` to
    epoch ``e`` (1-based, matching the epoch it *produced*).
    """

    _batches: "list[UpdateBatch]" = field(default_factory=list)

    @property
    def epoch(self) -> int:
        """The epoch the log currently describes (0 = initial graph)."""
        return len(self._batches)

    def __len__(self) -> int:
        return len(self._batches)

    def __iter__(self) -> Iterator[UpdateBatch]:
        return iter(self._batches)

    def append(self, batch: "UpdateBatch | Iterable[GraphUpdate]") -> int:
        """Append a batch, returning the epoch it produces."""
        self._batches.append(as_batch(batch))
        return self.epoch

    def batch_for(self, epoch: int) -> UpdateBatch:
        """The batch that produced ``epoch`` (``1 <= epoch <= self.epoch``)."""
        if not 1 <= epoch <= self.epoch:
            raise GraphError(
                f"no batch for epoch {epoch}; log covers 1..{self.epoch}"
            )
        return self._batches[epoch - 1]

    def replay(self, graph: AttributedGraph,
               through_epoch: "int | None" = None) -> AttributedGraph:
        """The graph at ``through_epoch`` (default: the latest epoch).

        ``graph`` must be the epoch-0 graph the log was recorded against;
        validation errors during replay therefore indicate a log/graph
        mismatch and surface as :class:`GraphError`.
        """
        end = self.epoch if through_epoch is None else int(through_epoch)
        if not 0 <= end <= self.epoch:
            raise GraphError(
                f"epoch {end} out of range; log covers 0..{self.epoch}"
            )
        for batch in self._batches[:end]:
            graph = apply_updates(graph, batch.updates)
        return graph

    def graphs(self, graph: AttributedGraph) -> "Iterator[tuple[int, AttributedGraph]]":
        """Yield ``(epoch, graph_at_epoch)`` for every epoch, 0 included."""
        yield 0, graph
        for epoch, batch in enumerate(self._batches, start=1):
            graph = apply_updates(graph, batch.updates)
            yield epoch, graph

    # ---------------------------------------------------------------- jsonl

    def to_jsonl(self, path) -> None:
        """Write one wire-form JSON object per batch, durably.

        The file is staged next to the target, flushed and fsynced before
        an atomic ``os.replace``, and the parent directory is fsynced
        after the rename — so when this call returns the log is actually
        on disk, and a crash mid-write can never leave a half-written log
        at the final path (the previous log, if any, survives intact).
        """
        path = Path(path)
        fd, tmp_name = tempfile.mkstemp(
            prefix=f"{path.name}.{os.getpid()}.", suffix=".tmp",
            dir=path.parent or ".",
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                for batch in self._batches:
                    fh.write(json.dumps(batch.to_wire(), sort_keys=True) + "\n")
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp_name, path)
            fsync_dir(path.parent or ".")
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    @classmethod
    def from_jsonl(cls, path) -> "UpdateLog":
        """Load a log from a JSONL batch file (blank lines ignored)."""
        return cls(_batches=read_batches(path))


def read_batches(path) -> "list[UpdateBatch]":
    """Parse a JSONL batch file into :class:`UpdateBatch` objects.

    Lines may carry an explicit ``"epoch"`` key (WAL exports do); when
    present, epochs must be strictly increasing — a duplicate or
    out-of-order epoch means the file was assembled from overlapping
    logs, and replaying it would double-apply a batch.
    """
    batches: list[UpdateBatch] = []
    last_epoch: "int | None" = None
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
            except json.JSONDecodeError as exc:
                raise GraphError(
                    f"{path}:{lineno}: invalid JSON in update batch: {exc}"
                ) from exc
            if isinstance(doc, dict) and doc.get("epoch") is not None:
                try:
                    epoch = int(doc["epoch"])
                except (TypeError, ValueError) as exc:
                    raise GraphError(
                        f"{path}:{lineno}: non-integer epoch "
                        f"{doc['epoch']!r} in update batch"
                    ) from exc
                if last_epoch is not None and epoch <= last_epoch:
                    raise GraphError(
                        f"{path}:{lineno}: duplicate or out-of-order epoch "
                        f"{epoch} (previous was {last_epoch}) — overlapping "
                        f"logs? refusing to double-apply"
                    )
                last_epoch = epoch
            batches.append(UpdateBatch.from_wire(doc))
    return batches
