"""Edge-update objects and batch application.

Graphs in this library are immutable, so updates produce a *new*
:class:`AttributedGraph`; :func:`apply_updates` validates the batch
against the current graph (no double-inserts, no phantom deletes) and
rebuilds once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.errors import GraphError
from repro.graph.graph import AttributedGraph


@dataclass(frozen=True)
class EdgeUpdate:
    """One edge insertion (``add=True``) or deletion (``add=False``)."""

    u: int
    v: int
    add: bool = True

    def key(self) -> tuple[int, int]:
        """The normalized ``(min, max)`` endpoint pair."""
        return (min(self.u, self.v), max(self.u, self.v))


def apply_updates(
    graph: AttributedGraph, updates: Iterable[EdgeUpdate]
) -> AttributedGraph:
    """Apply an update batch, returning the new graph.

    Raises :class:`GraphError` on inserting an existing edge, deleting a
    missing one, or self-loops — silent no-ops would hide upstream bugs
    in update feeds.
    """
    edges = set(graph.edges())
    for update in updates:
        key = update.key()
        if key[0] == key[1]:
            raise GraphError(f"self-loop update ({key[0]}, {key[1]})")
        if not (0 <= key[0] and key[1] < graph.n):
            raise GraphError(f"update endpoint out of range: {key}")
        if update.add:
            if key in edges:
                raise GraphError(f"edge {key} already exists")
            edges.add(key)
        else:
            if key not in edges:
                raise GraphError(f"edge {key} does not exist")
            edges.discard(key)
    attributes = [graph.attributes_of(v) for v in range(graph.n)]
    return AttributedGraph(graph.n, sorted(edges), attributes=attributes)
