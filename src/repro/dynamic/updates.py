"""Edge/attribute update objects and batch application.

Graphs in this library are immutable, so updates produce a *new*
:class:`AttributedGraph`; :func:`apply_updates` validates the batch
against the current graph (no double-inserts, no phantom deletes, no
conflicting operations on the same edge or node-attribute pair inside
one batch) and rebuilds once.

A batch is **atomic and order-free**: either every update applies or a
:class:`GraphError` is raised and the input graph is untouched. To keep
batches order-free, two updates in the same batch may not touch the same
edge key or the same ``(node, attribute)`` pair — an insert+delete of
one edge in a single batch used to be an order-sensitive net no-op and
is now rejected up front (split it across two batches if the transient
state is intended).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Union

from repro.errors import GraphError
from repro.graph.graph import AttributedGraph


@dataclass(frozen=True)
class EdgeUpdate:
    """One edge insertion (``add=True``) or deletion (``add=False``)."""

    u: int
    v: int
    add: bool = True

    def key(self) -> tuple[int, int]:
        """The normalized ``(min, max)`` endpoint pair."""
        return (min(self.u, self.v), max(self.u, self.v))


@dataclass(frozen=True)
class AttrUpdate:
    """Add (``add=True``) or remove one attribute value on one node."""

    node: int
    attribute: int
    add: bool = True

    def key(self) -> tuple[int, int]:
        """The ``(node, attribute)`` pair this update touches."""
        return (int(self.node), int(self.attribute))


GraphUpdate = Union[EdgeUpdate, AttrUpdate]


def touched_nodes(updates: Iterable[GraphUpdate]) -> set[int]:
    """Nodes whose *adjacency* an update batch changes (edge endpoints).

    Attribute updates do not appear here: RR sampling is topology-only,
    so they can never invalidate an RR sample (the incremental-repair
    machinery keys off this set).
    """
    out: set[int] = set()
    for update in updates:
        if isinstance(update, EdgeUpdate):
            out.update(update.key())
    return out


def touched_attributes(updates: Iterable[GraphUpdate]) -> set[int]:
    """Attribute values whose carrier sets an update batch changes."""
    return {u.attribute for u in updates if isinstance(u, AttrUpdate)}


def _check_conflicts(updates: "list[GraphUpdate]") -> None:
    """Reject batches that touch one edge / node-attribute pair twice."""
    seen_edges: set[tuple[int, int]] = set()
    seen_attrs: set[tuple[int, int]] = set()
    for update in updates:
        if isinstance(update, EdgeUpdate):
            key = update.key()
            if key in seen_edges:
                raise GraphError(
                    f"conflicting updates for edge {key} in one batch: a "
                    "batch may touch each edge at most once (split "
                    "order-dependent sequences across batches)"
                )
            seen_edges.add(key)
        elif isinstance(update, AttrUpdate):
            key = update.key()
            if key in seen_attrs:
                raise GraphError(
                    f"conflicting updates for node-attribute pair {key} in "
                    "one batch: a batch may touch each pair at most once"
                )
            seen_attrs.add(key)
        else:
            raise GraphError(
                f"unknown update type {type(update).__name__!r}; expected "
                "EdgeUpdate or AttrUpdate"
            )


def apply_updates(
    graph: AttributedGraph, updates: Iterable[GraphUpdate]
) -> AttributedGraph:
    """Apply an update batch, returning the new graph.

    Raises :class:`GraphError` on inserting an existing edge, deleting a
    missing one, self-loops, adding an attribute a node already carries,
    removing one it does not, or intra-batch conflicts (two updates on
    the same edge / node-attribute pair) — silent no-ops would hide
    upstream bugs in update feeds.
    """
    updates = list(updates)
    _check_conflicts(updates)
    edges = set(graph.edges())
    attributes = [set(graph.attributes_of(v)) for v in range(graph.n)]
    for update in updates:
        if isinstance(update, EdgeUpdate):
            key = update.key()
            if key[0] == key[1]:
                raise GraphError(f"self-loop update ({key[0]}, {key[1]})")
            if not (0 <= key[0] and key[1] < graph.n):
                raise GraphError(f"update endpoint out of range: {key}")
            if update.add:
                if key in edges:
                    raise GraphError(f"edge {key} already exists")
                edges.add(key)
            else:
                if key not in edges:
                    raise GraphError(f"edge {key} does not exist")
                edges.discard(key)
        else:
            node, attribute = update.key()
            if not 0 <= node < graph.n:
                raise GraphError(f"update node out of range: {node}")
            if attribute < 0:
                raise GraphError(f"negative attribute value: {attribute}")
            if update.add:
                if attribute in attributes[node]:
                    raise GraphError(
                        f"node {node} already carries attribute {attribute}"
                    )
                attributes[node].add(attribute)
            else:
                if attribute not in attributes[node]:
                    raise GraphError(
                        f"node {node} does not carry attribute {attribute}"
                    )
                attributes[node].discard(attribute)
    return AttributedGraph(graph.n, sorted(edges), attributes=attributes)
