"""Staleness-bounded dynamic COD serving.

:class:`DynamicCOD` wraps a CODL pipeline for an evolving graph. The
offline structures (hierarchy + HIMOR index) are expensive; the paper's
Section IV-B discussion concludes that updating the compressed
computation incrementally is non-trivial and defers it. The session
therefore:

1. **serves** queries from the (possibly stale) structures built at the
   last rebuild;
2. **verifies** each answer against the *current* graph: the query node's
   rank inside the returned community is re-estimated with fresh
   restricted RR sampling (cheap — proportional to the community, not the
   graph);
3. **repairs** on verification failure: a fresh LORE + compressed
   evaluation on the current graph (a CODL- pass) replaces the stale
   answer;
4. **rebuilds** hierarchy and index once the number of applied edge
   updates exceeds ``rebuild_budget`` (drift bound).

This makes the stale index an accelerator, never a correctness risk: every
returned community is certified top-k on the live graph (up to sampling
confidence).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.core.compressed import compressed_cod
from repro.core.lore import lore_chain
from repro.core.pipeline import CODL
from repro.core.problem import CODQuery
from repro.dynamic.updates import GraphUpdate, apply_updates
from repro.errors import QueryError
from repro.graph.graph import AttributedGraph
from repro.hierarchy.nnchain import agglomerative_hierarchy
from repro.influence.estimator import estimate_influences_in_community
from repro.influence.models import InfluenceModel, WeightedCascade
from repro.utils.rng import ensure_rng


@dataclass
class DynamicAnswer:
    """One dynamic query's certified answer.

    Attributes
    ----------
    members:
        The certified characteristic community on the *current* graph, or
        ``None``.
    source:
        ``"index"`` (stale structures verified OK), ``"repair"`` (stale
        answer failed verification; fresh evaluation used), or
        ``"fresh"`` (structures had just been rebuilt).
    verified_rank:
        The query node's rank inside the answer, re-estimated on the
        current graph (``None`` when no community exists).
    """

    members: "np.ndarray | None"
    source: str
    verified_rank: "int | None"

    @property
    def found(self) -> bool:
        """Whether a characteristic community exists."""
        return self.members is not None


class DynamicCOD:
    """A COD query session over an evolving graph.

    Parameters
    ----------
    graph:
        The initial graph.
    rebuild_budget:
        Number of applied edge updates after which the hierarchy and
        HIMOR index are rebuilt (the drift bound).
    verify_samples_per_node:
        Sampling rate of the per-answer certification step.
    server:
        Optional server backend (duck-typed as
        :class:`~repro.serving.CODServer`: ``answer(query)`` and
        ``apply_updates(batch)``). When set, stale answers come from the
        server instead of a private CODL pipeline, and the rebuild path
        replays the pending update batches through
        ``server.apply_updates`` — which rebinds/invalidate the server's
        weighted/LORE/restricted LRU caches and repairs its sample pool,
        so the server never keeps serving cache entries from a graph the
        session has already moved past.
    """

    def __init__(
        self,
        graph: AttributedGraph,
        theta: int = 10,
        rebuild_budget: int = 50,
        verify_samples_per_node: int = 50,
        model: InfluenceModel | None = None,
        seed: "int | np.random.Generator | None" = None,
        server: "object | None" = None,
    ) -> None:
        if rebuild_budget < 1:
            raise QueryError(f"rebuild_budget must be >= 1, got {rebuild_budget}")
        self.theta = int(theta)
        self.rebuild_budget = int(rebuild_budget)
        self.verify_samples_per_node = int(verify_samples_per_node)
        self.model = model or WeightedCascade()
        self.rng = ensure_rng(seed)
        self._graph = graph
        self.server = server
        if server is not None and server.graph.n != graph.n:
            raise QueryError(
                f"server serves a {server.graph.n}-node graph but the "
                f"session starts from {graph.n} nodes"
            )
        self._pipeline = (
            None
            if server is not None
            else CODL(graph, theta=theta, model=self.model, seed=self.rng)
        )
        #: Batches applied to the live graph but not yet replayed into the
        #: server (batch boundaries preserved: each was validated as one
        #: atomic, conflict-free unit and must be replayed the same way).
        self._pending_batches: "list[list[GraphUpdate]]" = []
        self._updates_since_build = 0
        self.rebuild_count = 0
        self.repair_count = 0

    # --------------------------------------------------------------- state

    @property
    def graph(self) -> AttributedGraph:
        """The current (live) graph."""
        return self._graph

    @property
    def updates_since_build(self) -> int:
        """Edge updates applied since the structures were last rebuilt."""
        return self._updates_since_build

    def apply(self, updates: Iterable[GraphUpdate]) -> None:
        """Apply an update batch; rebuild when the drift budget is hit."""
        updates = list(updates)
        self._graph = apply_updates(self._graph, updates)
        if self.server is not None:
            self._pending_batches.append(updates)
        self._updates_since_build += len(updates)
        if self._updates_since_build >= self.rebuild_budget:
            self._rebuild()

    def _rebuild(self) -> None:
        if self.server is not None:
            # Replay the pending batches through the server's epoch
            # machinery: each apply rebinds the weighted-graph cache,
            # invalidates stale LORE/restricted entries, and repairs the
            # sample pool — the server's caches and the session's live
            # graph re-converge here.
            for batch in self._pending_batches:
                self.server.apply_updates(batch)
            self._pending_batches = []
        else:
            self._pipeline = CODL(
                self._graph, theta=self.theta, model=self.model, seed=self.rng
            )
        self._updates_since_build = 0
        self.rebuild_count += 1

    # -------------------------------------------------------------- queries

    def query(self, query: CODQuery, budget: "object | None" = None) -> DynamicAnswer:
        """Answer one query with a certified community on the live graph.

        ``budget`` is an optional cooperative execution budget (see
        :class:`repro.serving.budget.ExecutionBudget`): the verification
        sampling and any repair evaluation run under it, so a deadline or
        sample cap bounds the certification work too.
        """
        query.validate(self._graph)
        if budget is not None:
            budget.check()
        fresh = self._updates_since_build == 0
        if self.server is not None:
            members = self.server.answer(query).members
        else:
            members = self._pipeline.discover(query).members
        if members is not None:
            rank = self._verify_rank(members, query.node, budget=budget)
            if rank <= query.k:
                return DynamicAnswer(
                    members=members,
                    source="fresh" if fresh else "index",
                    verified_rank=rank,
                )
            if fresh:
                # Even a fresh evaluation can be flipped by verification
                # noise at the boundary; accept the verifier's verdict and
                # repair below.
                pass

        # Stale (or borderline) answer failed: evaluate on the live graph.
        self.repair_count += 1
        repaired = self._fresh_answer(query, budget=budget)
        if repaired is None:
            return DynamicAnswer(members=None, source="repair", verified_rank=None)
        rank = self._verify_rank(repaired, query.node, budget=budget)
        if rank > query.k:
            return DynamicAnswer(members=None, source="repair", verified_rank=None)
        return DynamicAnswer(members=repaired, source="repair", verified_rank=rank)

    # ------------------------------------------------------------- internal

    def _verify_rank(
        self, members: np.ndarray, q: int, budget: "object | None" = None
    ) -> int:
        estimate = estimate_influences_in_community(
            self._graph,
            [int(v) for v in members],
            self.verify_samples_per_node * len(members),
            model=self.model,
            rng=self.rng,
            budget=budget,
        )
        return estimate.rank(q)

    def _fresh_answer(
        self, query: CODQuery, budget: "object | None" = None
    ) -> "np.ndarray | None":
        # A CODL- pass on the live graph, with every expensive phase
        # (clustering, LORE, sampling) under the caller's budget.
        hierarchy = agglomerative_hierarchy(self._graph)
        lore = lore_chain(
            self._graph, hierarchy, query.node, query.attribute, budget=budget
        )
        evaluation = compressed_cod(
            self._graph,
            lore.chain,
            k=query.k,
            theta=self.theta,
            model=self.model,
            rng=self.rng,
            budget=budget,
        )
        return evaluation.characteristic_community(query.k)
