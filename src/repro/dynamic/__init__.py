"""Dynamic-graph support (the paper's Section IV-B discussion).

The paper notes that real graphs are dynamic, that hierarchies and
influence estimates both shift under updates, and that the compressed
HIMOR computation "cannot be updated efficiently" — leaving dynamic
maintenance as future work. This package implements the honest practical
middle ground that caveat suggests:

* edge insertions/deletions as first-class update objects
  (:mod:`repro.dynamic.updates`);
* :class:`~repro.dynamic.session.DynamicCOD` — a query session that keeps
  serving from the stale hierarchy/index, *verifies* each answer against
  the current graph with fresh restricted sampling (falling back to a
  fresh evaluation when verification fails), and rebuilds the offline
  structures once the accumulated drift crosses a budget.
"""

from repro.dynamic.session import DynamicCOD
from repro.dynamic.updates import EdgeUpdate, apply_updates

__all__ = ["EdgeUpdate", "apply_updates", "DynamicCOD"]
