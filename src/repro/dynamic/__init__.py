"""Dynamic-graph support (the paper's Section IV-B discussion).

The paper notes that real graphs are dynamic, that hierarchies and
influence estimates both shift under updates, and that the compressed
HIMOR computation "cannot be updated efficiently" — leaving dynamic
maintenance as future work. This package implements the honest practical
middle ground that caveat suggests:

* edge insertions/deletions and per-node attribute flips as first-class
  update objects (:mod:`repro.dynamic.updates`), applied as atomic
  conflict-checked batches;
* epoch-versioned batch bookkeeping (:mod:`repro.dynamic.log`):
  :class:`~repro.dynamic.log.UpdateBatch` / an append-only
  :class:`~repro.dynamic.log.UpdateLog` whose epoch ``e`` graph is the
  seed graph with batches ``1..e`` applied — the replayable history the
  serving layer's incremental-repair machinery and its rebuild oracle
  both run from;
* :class:`~repro.dynamic.session.DynamicCOD` — a query session that keeps
  serving from the stale hierarchy/index, *verifies* each answer against
  the current graph with fresh restricted sampling (falling back to a
  fresh evaluation when verification fails), and rebuilds the offline
  structures once the accumulated drift crosses a budget.
"""

from repro.dynamic.log import UpdateBatch, UpdateLog, as_batch, read_batches
from repro.dynamic.session import DynamicCOD
from repro.dynamic.updates import (
    AttrUpdate,
    EdgeUpdate,
    GraphUpdate,
    apply_updates,
    touched_attributes,
    touched_nodes,
)

__all__ = [
    "AttrUpdate",
    "EdgeUpdate",
    "GraphUpdate",
    "UpdateBatch",
    "UpdateLog",
    "apply_updates",
    "as_batch",
    "read_batches",
    "touched_attributes",
    "touched_nodes",
    "DynamicCOD",
]
