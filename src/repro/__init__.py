"""repro — reproduction of "Discovering Personalized Characteristic
Communities in Attributed Graphs" (ICDE 2024).

The package implements the COD problem end to end: the attributed-graph
substrate, hierarchical agglomerative clustering, RR-graph influence
machinery, the compressed COD evaluator (Algorithm 1), LORE local
reclustering (Algorithm 2), the HIMOR index (Algorithm 3), the community
search baselines the paper compares against (ACQ/ATC/CAC), and the full
experiment harness for its tables and figures.

Quickstart::

    from repro import load_dataset, generate_queries, CODL

    data = load_dataset("cora", seed=7)
    pipeline = CODL(data.graph, seed=11)
    query = generate_queries(data.graph, count=1, rng=3)[0]
    result = pipeline.discover(query)
    print(result.size, result.found)
"""

from repro._version import __version__
from repro.core.pipeline import CODL, CODR, CODU, CODLMinus, CODResult
from repro.core.problem import CODQuery
from repro.datasets.queries import generate_queries
from repro.datasets.registry import DATASET_NAMES, Dataset, load_dataset
from repro.graph.graph import AttributedGraph
from repro.hierarchy.chain import CommunityChain
from repro.hierarchy.dendrogram import CommunityHierarchy
from repro.hierarchy.nnchain import agglomerative_hierarchy
from repro.serving import CODServer, ExecutionBudget, ServedAnswer

__all__ = [
    "__version__",
    "AttributedGraph",
    "CommunityHierarchy",
    "CommunityChain",
    "agglomerative_hierarchy",
    "CODQuery",
    "CODResult",
    "CODU",
    "CODR",
    "CODL",
    "CODLMinus",
    "Dataset",
    "DATASET_NAMES",
    "load_dataset",
    "generate_queries",
    "CODServer",
    "ExecutionBudget",
    "ServedAnswer",
]
