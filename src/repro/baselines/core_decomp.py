"""k-core decomposition — the structural substrate of ACQ.

A *k-core* is a maximal subgraph in which every node has degree >= k. The
peeling algorithm (repeatedly delete minimum-degree nodes) assigns every
node its *core number*: the largest k for which it belongs to a k-core.
Linear time via bucketed degrees.
"""

from __future__ import annotations

import numpy as np

from repro.errors import NodeNotFoundError
from repro.graph.graph import AttributedGraph


def core_numbers(graph: AttributedGraph) -> np.ndarray:
    """Core number of every node (Batagelj-Zaversnik peeling)."""
    n = graph.n
    degree = graph.degrees.copy()
    max_degree = int(degree.max()) if n else 0

    # Bucket sort nodes by degree.
    bins = np.zeros(max_degree + 2, dtype=np.int64)
    for d in degree:
        bins[d] += 1
    starts = np.zeros(max_degree + 2, dtype=np.int64)
    np.cumsum(bins[:-1], out=starts[1:])
    position = np.zeros(n, dtype=np.int64)
    order = np.zeros(n, dtype=np.int64)
    fill = starts.copy()
    for v in range(n):
        position[v] = fill[degree[v]]
        order[position[v]] = v
        fill[degree[v]] += 1

    core = degree.copy()
    for i in range(n):
        v = int(order[i])
        for u in graph.neighbors(v):
            u = int(u)
            if core[u] > core[v]:
                # Move u one slot toward the front of its degree bucket and
                # decrement its effective degree.
                du = int(core[u])
                pu = int(position[u])
                pw = int(starts[du])
                w = int(order[pw])
                if u != w:
                    order[pu], order[pw] = w, u
                    position[u], position[w] = pw, pu
                starts[du] += 1
                core[u] -= 1
    return core


def max_core_community(
    graph: AttributedGraph, q: int, k: int | None = None
) -> tuple[np.ndarray, int] | None:
    """The maximal connected k-core containing ``q``.

    With ``k = None``, uses the largest feasible value — ``q``'s own core
    number. Returns ``(members, k)``; ``None`` when ``q``'s core number is
    0 and no non-trivial core contains it.
    """
    if not (0 <= q < graph.n):
        raise NodeNotFoundError(q, graph.n)
    core = core_numbers(graph)
    k_q = int(core[q])
    if k is None:
        k = k_q
    if k <= 0 or k_q < k:
        return None

    # Connected component of q within {v : core(v) >= k}.
    members = {q}
    stack = [q]
    while stack:
        u = stack.pop()
        for v in graph.neighbors(u):
            v = int(v)
            if core[v] >= k and v not in members:
                members.add(v)
                stack.append(v)
    return np.asarray(sorted(members), dtype=np.int64), k
