"""CAC — cohesive attributed community search (Zhu et al. [3]).

As characterized in the paper's experimental setup: "CAC finds a
triangle-connected k-truss containing the query node in which all nodes
share the query attribute". We restrict the graph to the attribute's
carriers and return the triangle-connected k-truss community containing
the query node at the largest feasible ``k``.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.truss import triangle_connected_truss_community
from repro.errors import NodeNotFoundError
from repro.graph.graph import AttributedGraph
from repro.graph.subgraph import induced_subgraph


def cac_community(
    graph: AttributedGraph, q: int, attribute: int, k: int | None = None
) -> np.ndarray | None:
    """CAC's community for ``(q, attribute)``, or ``None``.

    Returns ``None`` when ``q`` does not carry the attribute or has no
    incident edge inside a (>= 3)-truss of the carrier subgraph — the
    strict community model that makes CAC return small, dense communities
    (or nothing) in Fig. 7.
    """
    if not (0 <= q < graph.n):
        raise NodeNotFoundError(q, graph.n)
    if not graph.has_attribute(q, attribute):
        return None
    carriers = graph.nodes_with_attribute(attribute)
    if len(carriers) < 3:
        return None
    view = induced_subgraph(graph, carriers)
    found = triangle_connected_truss_community(view.graph, view.to_sub[q], k=k)
    if found is None:
        return None
    members, _k = found
    return np.asarray(view.parent_ids(members), dtype=np.int64)
