"""k-truss decomposition and triangle connectivity — ATC/CAC substrate.

A *k-truss* is a maximal subgraph in which every edge participates in at
least ``k - 2`` triangles (support peeling gives every edge its *truss
number*, the largest such k). CAC additionally requires *triangle
connectivity*: any two edges of the community are joined by a chain of
triangles lying inside the community.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.errors import NodeNotFoundError
from repro.graph.graph import AttributedGraph

Edge = tuple[int, int]


def _edge_key(u: int, v: int) -> Edge:
    return (u, v) if u < v else (v, u)


def truss_numbers(graph: AttributedGraph) -> dict[Edge, int]:
    """Truss number of every edge via support peeling.

    The truss number of edge ``e`` is the largest ``k`` such that ``e``
    belongs to the k-truss; edges in no triangle have truss number 2.
    """
    neighbor_sets: list[set[int]] = [
        set(int(u) for u in graph.neighbors(v)) for v in range(graph.n)
    ]
    support: dict[Edge, int] = {}
    for u, v in graph.edges():
        support[(u, v)] = len(neighbor_sets[u] & neighbor_sets[v])

    # Lazy-deletion heap peeling: repeatedly remove the minimum-support
    # edge; its truss number is (current support + 2) clamped monotonically.
    heap: list[tuple[int, Edge]] = [(s, e) for e, s in support.items()]
    heapq.heapify(heap)
    alive = {e: True for e in support}
    truss: dict[Edge, int] = {}
    current_floor = 0
    while heap:
        s, e = heapq.heappop(heap)
        if not alive.get(e, False):
            continue
        if support[e] != s:
            continue  # stale heap entry
        current_floor = max(current_floor, s)
        truss[e] = current_floor + 2
        alive[e] = False
        u, v = e
        neighbor_sets[u].discard(v)
        neighbor_sets[v].discard(u)
        for w in neighbor_sets[u] & neighbor_sets[v]:
            for other in (_edge_key(u, w), _edge_key(v, w)):
                if alive.get(other, False):
                    support[other] -= 1
                    heapq.heappush(heap, (support[other], other))
    return truss


def max_truss_community(
    graph: AttributedGraph, q: int, k: int | None = None
) -> tuple[np.ndarray, int] | None:
    """The connected k-truss component containing ``q``.

    With ``k = None``, uses the largest ``k`` for which ``q`` has an
    incident edge with truss >= k. Returns ``(members, k)``; ``None`` when
    ``q`` has no incident edge in any non-trivial truss (k >= 3).
    """
    if not (0 <= q < graph.n):
        raise NodeNotFoundError(q, graph.n)
    truss = truss_numbers(graph)
    incident = [
        truss[_edge_key(q, int(v))] for v in graph.neighbors(q)
    ]
    if not incident:
        return None
    k_q = max(incident)
    if k is None:
        k = k_q
    if k < 3 or k_q < k:
        return None

    # BFS over edges with truss >= k, starting from q.
    members = {q}
    stack = [q]
    while stack:
        u = stack.pop()
        for v in graph.neighbors(u):
            v = int(v)
            if truss.get(_edge_key(u, v), 0) >= k and v not in members:
                members.add(v)
                stack.append(v)
    return np.asarray(sorted(members), dtype=np.int64), k


def triangle_connected_truss_community(
    graph: AttributedGraph, q: int, k: int | None = None
) -> tuple[np.ndarray, int] | None:
    """The triangle-connected k-truss community containing ``q`` (CAC model).

    Edges are triangle-adjacent when they co-occur in a triangle whose
    three edges all have truss >= k; the community is the union of edges
    triangle-reachable from ``q``'s incident truss edges. With ``k = None``
    the largest feasible ``k`` for ``q`` is used.
    """
    if not (0 <= q < graph.n):
        raise NodeNotFoundError(q, graph.n)
    truss = truss_numbers(graph)
    incident = [truss[_edge_key(q, int(v))] for v in graph.neighbors(q)]
    if not incident:
        return None
    k_q = max(incident)
    if k is None:
        k = k_q
    if k < 3 or k_q < k:
        return None

    strong = {e for e, t in truss.items() if t >= k}
    neighbor_sets: list[set[int]] = [
        set(int(u) for u in graph.neighbors(v)) for v in range(graph.n)
    ]

    seeds = [
        _edge_key(q, int(v))
        for v in graph.neighbors(q)
        if _edge_key(q, int(v)) in strong
    ]
    if not seeds:
        return None
    seen_edges: set[Edge] = set(seeds)
    stack = list(seeds)
    while stack:
        u, v = stack.pop()
        for w in neighbor_sets[u] & neighbor_sets[v]:
            e1 = _edge_key(u, w)
            e2 = _edge_key(v, w)
            if e1 in strong and e2 in strong:
                for e in (e1, e2):
                    if e not in seen_edges:
                        seen_edges.add(e)
                        stack.append(e)
    members = {q}
    for u, v in seen_edges:
        members.add(u)
        members.add(v)
    return np.asarray(sorted(members), dtype=np.int64), k
