"""ACQ — attributed community query via k-cores (Fang et al. [2]).

As characterized in the paper's experimental setup: "ACQ finds a k-core
containing the query node such that all nodes in the k-core share the
query attribute". We restrict the graph to the carriers of the query
attribute and return the maximal connected k-core containing the query
node at the largest feasible ``k``.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.core_decomp import max_core_community
from repro.errors import NodeNotFoundError
from repro.graph.graph import AttributedGraph
from repro.graph.subgraph import induced_subgraph


def acq_community(
    graph: AttributedGraph, q: int, attribute: int, k: int | None = None
) -> np.ndarray | None:
    """ACQ's community for ``(q, attribute)``, or ``None``.

    Returns ``None`` when ``q`` does not carry the attribute or lies in no
    non-trivial core of the carrier-induced subgraph.
    """
    if not (0 <= q < graph.n):
        raise NodeNotFoundError(q, graph.n)
    if not graph.has_attribute(q, attribute):
        return None
    carriers = graph.nodes_with_attribute(attribute)
    if len(carriers) < 2:
        return None
    view = induced_subgraph(graph, carriers)
    found = max_core_community(view.graph, view.to_sub[q], k=k)
    if found is None:
        return None
    members, _k = found
    return np.asarray(view.parent_ids(members), dtype=np.int64)
