"""Attributed community-search baselines (Section V-A): ACQ, ATC, CAC."""

from repro.baselines.acq import acq_community
from repro.baselines.atc import atc_community
from repro.baselines.cac import cac_community
from repro.baselines.core_decomp import core_numbers, max_core_community
from repro.baselines.truss import (
    max_truss_community,
    triangle_connected_truss_community,
    truss_numbers,
)

__all__ = [
    "acq_community",
    "atc_community",
    "cac_community",
    "core_numbers",
    "max_core_community",
    "truss_numbers",
    "max_truss_community",
    "triangle_connected_truss_community",
]
