"""ATC — attribute-driven truss community search (Huang & Lakshmanan [1]).

ATC's community model is a connected (k, d)-truss containing the query
node that maximizes an attribute score; the original paper develops an
elaborate peeling framework ("LocATC"). We reproduce its community model
and objective with a documented, faithful greedy (see DESIGN.md §2/§3):

1. take the connected k-truss component containing ``q`` at the largest
   feasible ``k`` (distance bound ``d`` treated as unbounded, the common
   evaluation setting);
2. greedily peel nodes (never ``q``) while the attribute score
   ``f(H) = |carriers(H)|^2 / |H|`` improves, keeping ``q``'s component
   connected.

The result matches the qualitative behaviour the COD paper reports for
ATC: small, dense, attribute-pure communities around the query node.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.truss import max_truss_community
from repro.errors import NodeNotFoundError
from repro.graph.graph import AttributedGraph


def attribute_score(
    graph: AttributedGraph, members: "set[int] | np.ndarray", attribute: int
) -> float:
    """ATC's objective for a single query attribute: ``carriers^2 / |H|``."""
    member_list = [int(v) for v in members]
    if not member_list:
        return 0.0
    carriers = sum(1 for v in member_list if graph.has_attribute(v, attribute))
    return carriers * carriers / len(member_list)


def atc_community(
    graph: AttributedGraph,
    q: int,
    attribute: int,
    k: int | None = None,
    max_peels: int | None = None,
) -> np.ndarray | None:
    """ATC's community for ``(q, attribute)``, or ``None``.

    Parameters
    ----------
    k:
        Truss parameter; defaults to the largest feasible value for ``q``.
    max_peels:
        Safety cap on greedy iterations (defaults to the initial community
        size).
    """
    if not (0 <= q < graph.n):
        raise NodeNotFoundError(q, graph.n)
    found = max_truss_community(graph, q, k=k)
    if found is None:
        return None
    members_arr, _k = found
    members = set(int(v) for v in members_arr)
    if max_peels is None:
        max_peels = len(members)

    score = attribute_score(graph, members, attribute)
    for _ in range(max_peels):
        if len(members) <= 2:
            break
        improved = _best_connected_removal(graph, members, q, attribute, score)
        if improved is None:
            break
        members, score = improved
    return np.asarray(sorted(members), dtype=np.int64)


def _best_connected_removal(
    graph: AttributedGraph,
    members: set[int],
    q: int,
    attribute: int,
    score: float,
) -> "tuple[set[int], float] | None":
    """The best strictly improving removal that keeps ``q`` connected.

    The post-removal score depends only on whether the removed node is a
    carrier — ``c^2/(n-1)`` vs ``(c-1)^2/(n-1)`` — so candidates fall into
    two classes. Within a class, low-degree nodes are tried first: they
    almost never disconnect the community, which keeps each peel step
    near-linear instead of quadratic.
    """
    n = len(members)
    carriers = sum(1 for u in members if graph.has_attribute(u, attribute))

    def in_community_degree(v: int) -> int:
        return sum(1 for u in graph.neighbors(v) if int(u) in members)

    classes: list[tuple[float, list[int]]] = []
    non_carrier_score = carriers**2 / (n - 1)
    if non_carrier_score > score:
        pool = [v for v in members
                if v != q and not graph.has_attribute(v, attribute)]
        classes.append((non_carrier_score, pool))
    carrier_score = (carriers - 1) ** 2 / (n - 1)
    if carrier_score > score:
        pool = [v for v in members
                if v != q and graph.has_attribute(v, attribute)]
        classes.append((carrier_score, pool))
    classes.sort(key=lambda item: -item[0])

    for new_score, pool in classes:
        pool.sort(key=lambda v: (in_community_degree(v), v))
        for v in pool:
            trial = members - {v}
            if _connected_with(graph, trial, q):
                return trial, new_score
    return None


def _connected_with(graph: AttributedGraph, members: set[int], q: int) -> bool:
    """Whether the subgraph induced by ``members`` is connected and has q."""
    if q not in members:
        return False
    seen = {q}
    stack = [q]
    while stack:
        u = stack.pop()
        for v in graph.neighbors(u):
            v = int(v)
            if v in members and v not in seen:
                seen.add(v)
                stack.append(v)
    return len(seen) == len(members)
