"""Heterogeneous information network (HIN) extension.

The paper's conclusion names COD over HINs as future work: "finding a
community hierarchy for COD with multiple node and edge types and
evaluating the influences of nodes in different contexts". This package
provides the standard first step of that programme — meta-path projection:
a typed network is projected onto a homogeneous attributed graph over one
node type (two nodes linked when a path matching the meta-path connects
them), and the full COD machinery runs on the projection. Different
meta-paths realize the "different contexts" the paper alludes to.
"""

from repro.hin.hetero import HeterogeneousGraph
from repro.hin.metapath import MetaPath, project_metapath
from repro.hin.search import hin_characteristic_community
from repro.hin.synthetic import bibliographic_hin

__all__ = [
    "HeterogeneousGraph",
    "MetaPath",
    "project_metapath",
    "hin_characteristic_community",
    "bibliographic_hin",
]
