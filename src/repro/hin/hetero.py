"""Typed-graph storage for the HIN extension.

A :class:`HeterogeneousGraph` is an undirected multigraph whose nodes
carry a *type* (small int) plus the usual attribute sets, and whose edges
carry an edge type. Storage is per-edge-type adjacency so meta-path
projection can walk one relation at a time.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import GraphError, NodeNotFoundError


class HeterogeneousGraph:
    """An undirected node- and edge-typed attributed graph.

    Parameters
    ----------
    node_types:
        One type id per node (dense ints, ``0..T-1``).
    edges:
        Triples ``(u, v, edge_type)``; duplicates collapse per type.
    attributes:
        Optional per-node attribute sets (as in
        :class:`~repro.graph.graph.AttributedGraph`).
    """

    def __init__(
        self,
        node_types: Sequence[int],
        edges: Iterable[tuple[int, int, int]],
        attributes: "Sequence[Iterable[int]] | None" = None,
    ) -> None:
        self._node_types = np.asarray(list(node_types), dtype=np.int64)
        n = len(self._node_types)
        if n == 0:
            raise GraphError("a HIN must have at least one node")

        per_type: dict[int, list[set[int]]] = {}
        for u, v, etype in edges:
            u, v, etype = int(u), int(v), int(etype)
            if u == v:
                raise GraphError(f"self-loop ({u}, {v}) is not allowed")
            for x in (u, v):
                if not (0 <= x < n):
                    raise NodeNotFoundError(x, n)
            adjacency = per_type.setdefault(
                etype, [set() for _ in range(n)]
            )
            adjacency[u].add(v)
            adjacency[v].add(u)
        self._adjacency = {
            etype: [np.asarray(sorted(nbrs), dtype=np.int64) for nbrs in rows]
            for etype, rows in per_type.items()
        }

        if attributes is None:
            self._attributes: tuple[frozenset[int], ...] = tuple(
                frozenset() for _ in range(n)
            )
        else:
            if len(attributes) != n:
                raise GraphError(
                    f"got {len(attributes)} attribute sets for {n} nodes"
                )
            self._attributes = tuple(
                frozenset(int(a) for a in attrs) for attrs in attributes
            )

    # ----------------------------------------------------------------- size

    @property
    def n(self) -> int:
        """Number of nodes."""
        return len(self._node_types)

    @property
    def edge_types(self) -> frozenset[int]:
        """Edge types present in the network."""
        return frozenset(self._adjacency)

    @property
    def node_type_universe(self) -> frozenset[int]:
        """Node types present in the network."""
        return frozenset(int(t) for t in np.unique(self._node_types))

    def node_type(self, v: int) -> int:
        """Type of node ``v``."""
        self._check_node(v)
        return int(self._node_types[v])

    def nodes_of_type(self, node_type: int) -> np.ndarray:
        """Sorted ids of nodes with the given type."""
        return np.flatnonzero(self._node_types == node_type)

    def neighbors(self, v: int, edge_type: int) -> np.ndarray:
        """Neighbors of ``v`` over edges of ``edge_type`` (sorted)."""
        self._check_node(v)
        rows = self._adjacency.get(edge_type)
        if rows is None:
            return np.empty(0, dtype=np.int64)
        return rows[v]

    def attributes_of(self, v: int) -> frozenset[int]:
        """The attribute set of node ``v``."""
        self._check_node(v)
        return self._attributes[v]

    def edge_count(self, edge_type: int) -> int:
        """Number of edges of one type."""
        rows = self._adjacency.get(edge_type)
        if rows is None:
            return 0
        return sum(len(r) for r in rows) // 2

    def __repr__(self) -> str:
        counts = ", ".join(
            f"{etype}:{self.edge_count(etype)}" for etype in sorted(self._adjacency)
        )
        return (
            f"HeterogeneousGraph(n={self.n}, "
            f"types={len(self.node_type_universe)}, edges=[{counts}])"
        )

    # ------------------------------------------------------------- internal

    def _check_node(self, v: int) -> None:
        if not (0 <= v < self.n):
            raise NodeNotFoundError(v, self.n)
