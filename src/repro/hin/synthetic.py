"""Synthetic bibliographic HIN generator.

A three-type network in the DBLP mold: authors write papers, papers are
published at venues. Research topics act as node attributes, planted per
author community so meta-path projections expose topic-coherent
structure.

Node types: 0 = author, 1 = paper, 2 = venue.
Edge types: 0 = writes (author-paper), 1 = published_in (paper-venue).
"""

from __future__ import annotations

import numpy as np

from repro.errors import DatasetError
from repro.hin.hetero import HeterogeneousGraph
from repro.utils.rng import ensure_rng

AUTHOR, PAPER, VENUE = 0, 1, 2
WRITES, PUBLISHED_IN = 0, 1


def bibliographic_hin(
    n_authors: int = 120,
    n_papers: int = 240,
    n_venues: int = 6,
    n_topics: int = 4,
    group_size: int = 12,
    authors_per_paper: int = 3,
    cross_group_rate: float = 0.15,
    rng: "int | np.random.Generator | None" = None,
) -> HeterogeneousGraph:
    """Generate a bibliographic HIN with planted author groups.

    Authors form groups of ``group_size``; each paper draws its authors
    from one group (with an occasional outside co-author) and is published
    at the venue associated with the group's topic. Authors carry their
    group's topic as an attribute.
    """
    if min(n_authors, n_papers, n_venues, n_topics, group_size) < 1:
        raise DatasetError("all HIN size parameters must be positive")
    if authors_per_paper < 1:
        raise DatasetError("authors_per_paper must be >= 1")
    if not (0.0 <= cross_group_rate < 1.0):
        raise DatasetError("cross_group_rate must be in [0, 1)")
    rng = ensure_rng(rng)

    n = n_authors + n_papers + n_venues
    node_types = (
        [AUTHOR] * n_authors + [PAPER] * n_papers + [VENUE] * n_venues
    )
    paper_offset = n_authors
    venue_offset = n_authors + n_papers

    n_groups = max(1, n_authors // group_size)
    group_of = [a // group_size if a // group_size < n_groups else n_groups - 1
                for a in range(n_authors)]
    topic_of_group = [int(rng.integers(0, n_topics)) for _ in range(n_groups)]
    venue_of_group = [int(rng.integers(0, n_venues)) for _ in range(n_groups)]

    attributes: list[list[int]] = [[] for _ in range(n)]
    for author in range(n_authors):
        attributes[author] = [topic_of_group[group_of[author]]]

    edges: list[tuple[int, int, int]] = []
    for p in range(n_papers):
        paper = paper_offset + p
        group = int(rng.integers(0, n_groups))
        pool = [a for a in range(n_authors) if group_of[a] == group]
        count = min(authors_per_paper, len(pool))
        chosen = list(rng.choice(pool, size=count, replace=False))
        if cross_group_rate > 0 and rng.random() < cross_group_rate:
            outsider = int(rng.integers(0, n_authors))
            if outsider not in chosen:
                chosen.append(outsider)
        for author in chosen:
            edges.append((int(author), paper, WRITES))
        venue = venue_offset + venue_of_group[group]
        edges.append((paper, venue, PUBLISHED_IN))
        # Papers inherit the group topic too (handy for paper-anchored
        # meta-paths).
        attributes[paper] = [topic_of_group[group]]

    return HeterogeneousGraph(node_types, edges, attributes=attributes)
