"""COD over HINs via meta-path projection.

``hin_characteristic_community`` is the end-to-end entry point: project
the typed network along a meta-path, run the CODL pipeline on the
projection, and translate the answer back to original node ids. Running
the same query under different meta-paths yields the node's
characteristic communities in different relational contexts — the paper's
future-work scenario.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.pipeline import CODL, CODResult
from repro.core.problem import CODQuery
from repro.errors import QueryError
from repro.hin.hetero import HeterogeneousGraph
from repro.hin.metapath import MetaPath, project_metapath


@dataclass
class HinCODResult:
    """A COD answer on a HIN projection, in original node ids."""

    metapath: MetaPath
    members: "np.ndarray | None"
    projection_nodes: int
    projection_edges: int
    inner: CODResult

    @property
    def found(self) -> bool:
        """Whether a characteristic community exists under this meta-path."""
        return self.members is not None

    @property
    def size(self) -> int:
        """Community size (0 when not found)."""
        return 0 if self.members is None else len(self.members)


def hin_characteristic_community(
    hin: HeterogeneousGraph,
    metapath: MetaPath,
    query_node: int,
    attribute: int,
    k: int = 5,
    theta: int = 10,
    seed: "int | None" = None,
) -> HinCODResult:
    """Find the characteristic community of ``query_node`` in one context.

    The query node must have the meta-path's anchor type and carry (or at
    least name) a valid attribute of the projection.
    """
    if hin.node_type(query_node) != metapath.anchor_type:
        raise QueryError(
            f"query node {query_node} has type {hin.node_type(query_node)}, "
            f"but the meta-path anchors on type {metapath.anchor_type}"
        )
    view = project_metapath(hin, metapath)
    projected_q = view.to_sub[int(query_node)]
    pipeline = CODL(view.graph, theta=theta, seed=seed)
    result = pipeline.discover(CODQuery(projected_q, attribute, k))
    members = None
    if result.members is not None:
        members = np.asarray(
            view.parent_ids([int(v) for v in result.members]), dtype=np.int64
        )
    return HinCODResult(
        metapath=metapath,
        members=members,
        projection_nodes=view.graph.n,
        projection_edges=view.graph.m,
        inner=result,
    )
