"""Meta-path projection of a HIN onto a homogeneous attributed graph.

A *meta-path* is a sequence of edge types; two nodes of the anchor type
are linked in the projection when a path whose edges follow the sequence
connects them (e.g., Author -writes- Paper -writes- Author is the
co-authorship projection of a bibliographic HIN). Path multiplicity
becomes the projected edge weight, which the attribute-aware clustering
honors downstream.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GraphError
from repro.graph.graph import AttributedGraph
from repro.graph.subgraph import SubgraphView
from repro.hin.hetero import HeterogeneousGraph


@dataclass(frozen=True)
class MetaPath:
    """A meta-path: the anchor node type plus an edge-type sequence.

    The sequence must be symmetric in effect (start and end at
    ``anchor_type``) for the projection to be an undirected homogeneous
    graph; this is the caller's responsibility — the projection simply
    drops walks that do not end on an anchor-typed node.
    """

    anchor_type: int
    edge_types: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.edge_types:
            raise GraphError("a meta-path needs at least one edge type")


def project_metapath(
    hin: HeterogeneousGraph,
    metapath: MetaPath,
    max_weight: int = 16,
) -> SubgraphView:
    """Project ``hin`` onto its ``metapath.anchor_type`` nodes.

    Returns a :class:`~repro.graph.subgraph.SubgraphView`: the projected
    :class:`AttributedGraph` over re-labeled anchor nodes plus the id
    translation tables. Edge weights count path multiplicity (capped at
    ``max_weight`` to keep hub projections bounded). Anchor nodes keep
    their attributes.
    """
    anchors = hin.nodes_of_type(metapath.anchor_type)
    if len(anchors) == 0:
        raise GraphError(
            f"no node has the anchor type {metapath.anchor_type}"
        )
    to_sub = {int(v): i for i, v in enumerate(anchors)}
    to_parent = np.asarray([int(v) for v in anchors], dtype=np.int64)

    weights: dict[tuple[int, int], int] = {}
    for start in anchors:
        start = int(start)
        # Multiset frontier: node -> number of partial walks reaching it.
        frontier: dict[int, int] = {start: 1}
        for etype in metapath.edge_types:
            nxt: dict[int, int] = {}
            for node, count in frontier.items():
                for nbr in hin.neighbors(node, etype):
                    nbr = int(nbr)
                    nxt[nbr] = nxt.get(nbr, 0) + count
            frontier = nxt
            if not frontier:
                break
        for end, count in frontier.items():
            if end == start or end not in to_sub:
                continue
            a, b = to_sub[start], to_sub[end]
            if a < b:  # count each unordered pair once (walks are symmetric)
                weights[(a, b)] = min(
                    weights.get((a, b), 0) + count, max_weight
                )

    edges = list(weights)
    attributes = [hin.attributes_of(int(v)) for v in to_parent]
    projected = AttributedGraph(
        len(anchors),
        edges,
        attributes=attributes,
        edge_weights={e: float(w) for e, w in weights.items()},
    )
    return SubgraphView(graph=projected, to_parent=to_parent, to_sub=to_sub)
