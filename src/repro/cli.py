"""Command-line interface: run queries and regenerate paper artifacts.

Installed as the ``cod`` console script::

    cod datasets                      # Table-I style dataset statistics
    cod query cora --node 17 --k 5    # one COD query through CODL
    cod explain cora --node 17        # LORE decision + per-level evidence
    cod trace cora --node 17 --k 5    # one query's span tree (wall time per stage)
    cod serve-sim cora --fault-site lore --fault-rate 1.0
    cod serve-sim cora --metrics-out metrics.json   # stage timers + counters
    cod fig4 | cod fig7 | cod fig8 | cod fig9
    cod table2 | cod casestudy | cod ablation

Experiments accept ``--export PATH`` (.json or .csv) to archive results.

Every experiment accepts ``--queries`` / ``--scale`` / ``--seed`` to trade
fidelity for runtime.

Library errors (:class:`~repro.errors.ReproError`) are reported as a
one-line message on stderr with exit code 2, not a traceback.
"""

from __future__ import annotations

import argparse
import contextlib
import sys

from repro.core.pipeline import CODL
from repro.core.problem import CODQuery
from repro.datasets.queries import generate_queries
from repro.datasets.registry import DATASET_NAMES, load_dataset
from repro.errors import (
    HierarchyError,
    IndexError_,
    InfluenceError,
    ReproError,
)
from repro.eval import experiments
from repro.eval.reporting import render_table

#: Exception class injected per fault site by ``cod serve-sim`` — matches
#: what the real subsystem would plausibly raise at that site.
_SIM_FAULT_EXC = {
    "rr_sampling": InfluenceError,
    "lore": HierarchyError,
    "clustering": HierarchyError,
    "himor_build": IndexError_,
    "himor_load": IndexError_,
}


def _probability(text: str) -> float:
    value = float(text)
    if not 0.0 <= value <= 1.0:
        raise argparse.ArgumentTypeError(f"must be in [0, 1], got {text}")
    return value


def _non_negative_float(text: str) -> float:
    value = float(text)
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be non-negative, got {text}")
    return value


def _non_negative_int(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be non-negative, got {text}")
    return value


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="cod",
        description="Characteristic community discovery (ICDE 2024 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--queries", type=int, default=20,
                       help="queries per dataset (default 20)")
        p.add_argument("--theta", type=int, default=10,
                       help="RR graphs per node (default 10)")
        p.add_argument("--scale", type=float, default=1.0,
                       help="dataset size multiplier (default 1.0)")
        p.add_argument("--seed", type=int, default=7, help="generation seed")
        p.add_argument("--export", type=str, default=None, metavar="PATH",
                       help="also write results to PATH (.json or .csv)")

    p = sub.add_parser("datasets", help="print Table-I style dataset statistics")
    common(p)

    for command_name, help_text in (
        ("query", "answer one COD query with CODL"),
        ("explain", "show LORE's decision and the per-level evidence"),
    ):
        p = sub.add_parser(command_name, help=help_text)
        p.add_argument("dataset", choices=DATASET_NAMES)
        p.add_argument("--node", type=int, default=None,
                       help="query node (default: sampled)")
        p.add_argument("--attribute", type=int, default=None,
                       help="query attribute (default: one of the node's)")
        p.add_argument("--k", type=int, default=5,
                       help="required influence rank")
        common(p)

    p = sub.add_parser(
        "serve-sim",
        help="replay a query workload through CODServer with injected faults",
    )
    p.add_argument("dataset", choices=DATASET_NAMES)
    p.add_argument("--k", type=int, default=5, help="required influence rank")
    p.add_argument("--deadline", type=_non_negative_float, default=None,
                   metavar="SECONDS",
                   help="per-query wall-clock deadline (default: none)")
    p.add_argument("--sample-budget", type=_non_negative_int, default=None,
                   metavar="N",
                   help="per-query RR-sample budget (default: none)")
    p.add_argument("--fault-site", choices=sorted(_SIM_FAULT_EXC), default=None,
                   help="inject deterministic faults at this site")
    p.add_argument("--fault-rate", type=_probability, default=0.3,
                   help="per-call failure probability at --fault-site")
    p.add_argument("--breaker-threshold", type=int, default=3,
                   help="consecutive LORE failures that open the breaker")
    p.add_argument("--breaker-cooldown", type=_non_negative_float, default=1.0,
                   help="breaker cool-down in seconds")
    p.add_argument("--workers", type=_non_negative_int, default=0, metavar="N",
                   help="serve through N supervised worker processes "
                        "(default 0: in-process CODServer)")
    p.add_argument("--chaos", type=str, default=None, metavar="SPEC",
                   help="scripted chaos schedule for supervised mode, "
                        "e.g. 'kill@3,wedge@7,corrupt-checkpoint@1'")
    p.add_argument("--queue-capacity", type=int, default=64, metavar="N",
                   help="admission queue bound in supervised mode (default 64)")
    p.add_argument("--task-timeout", type=_non_negative_float, default=30.0,
                   metavar="SECONDS",
                   help="wedge-detection deadline per dispatched task "
                        "(default 30)")
    p.add_argument("--index-dir", type=str, default=None, metavar="DIR",
                   help="persist per-worker HIMOR indexes (and build "
                        "checkpoints) under DIR in supervised mode")
    p.add_argument("--metrics-out", type=str, default=None, metavar="PATH",
                   help="profile every stage and write the metrics "
                        "snapshot (JSON) to PATH; in supervised mode the "
                        "snapshot is the fleet-wide rollup")
    p.add_argument("--batch-size", type=_non_negative_int, default=None,
                   metavar="N",
                   help="in-process mode: answer through the batch planner "
                        "in windows of N queries over a shared RR-sample "
                        "pool (grouped by attribute; answers stay "
                        "bit-identical to sequential)")
    p.add_argument("--pool", action="store_true",
                   help="share one RR-sample pool across queries (per "
                        "worker in supervised mode); answers become "
                        "correlated but sampling is paid once")
    p.add_argument("--pool-seeded", action="store_true",
                   help="draw the pool with per-sample seeds (implies "
                        "--pool; requires an integer --seed) so graph "
                        "updates repair it incrementally instead of "
                        "resampling")
    p.add_argument("--shared-pool", action="store_true",
                   help="supervised mode: materialize one RR-sample pool "
                        "in the supervisor and publish graph + arena as "
                        "shared-memory segments workers attach read-only "
                        "(zero-copy, no per-worker resampling; implies "
                        "--pool)")
    p.add_argument("--shard-attributes", type=str, default="auto",
                   metavar="SPEC",
                   help="shared-pool mode: restricted-shard policy — "
                        "'auto' (default) shards attributes that cross "
                        "--shard-hot-threshold, 'none' disables, or a "
                        "comma-separated attribute list shards exactly "
                        "those (hot at first query)")
    p.add_argument("--shard-hot-threshold", type=int, default=4, metavar="N",
                   help="admitted queries an attribute needs before the "
                        "supervisor publishes its restricted shard "
                        "(default 4)")
    p.add_argument("--fast", action="store_true",
                   help="use the vectorized batch RR sampler for the pool "
                        "and for fresh per-query draws; statistically "
                        "equivalent answers, not the same RNG stream as "
                        "the compatible sampler")
    p.add_argument("--updates", type=str, default=None, metavar="FILE",
                   help="JSONL update batches replayed mid-workload (one "
                        "{\"updates\": [...], \"at\": N} object per line); "
                        "each batch applies at a safe point before query "
                        "'at' (default: batches spread evenly) and bumps "
                        "the serving epoch")
    p.add_argument("--cache-capacity", type=int, default=64, metavar="N",
                   help="bound for the per-attribute LRU caches (weighted "
                        "graphs, LORE chains, restricted arenas; "
                        "default 64)")
    p.add_argument("--state-dir", type=str, default=None, metavar="DIR",
                   help="durable state directory (WAL + epoch snapshots): "
                        "startup recovers the newest proven state, every "
                        "applied batch is fsynced before acknowledgement, "
                        "and a kill -9 loses nothing acknowledged")
    p.add_argument("--snapshot-every", type=_non_negative_int, default=None,
                   metavar="N",
                   help="write a full-state snapshot every N epochs (and "
                        "compact the WAL behind the oldest retained "
                        "snapshot); requires --state-dir")
    common(p)

    p = sub.add_parser(
        "trace",
        help="answer one query and print its span tree (per-stage timings)",
    )
    p.add_argument("dataset", choices=DATASET_NAMES)
    p.add_argument("--node", type=int, default=None,
                   help="query node (default: sampled)")
    p.add_argument("--attribute", type=int, default=None,
                   help="query attribute (default: one of the node's)")
    p.add_argument("--k", type=int, default=5,
                   help="required influence rank")
    common(p)

    for name, help_text in (
        ("fig4", "hierarchy-skew comparison (Fig. 4)"),
        ("fig7", "effectiveness grid (Fig. 7)"),
        ("fig8", "Compressed vs Independent (Fig. 8)"),
        ("fig9", "runtime comparison (Fig. 9)"),
        ("table2", "HIMOR overhead (Table II)"),
        ("casestudy", "case study (Section V-E)"),
        ("ablation", "LORE design ablation"),
    ):
        p = sub.add_parser(name, help=help_text)
        common(p)
    return parser


def main(argv: "list[str] | None" = None) -> int:
    """CLI entry point; returns a process exit code.

    Library failures (any :class:`ReproError`) print a one-line message to
    stderr and exit with code 2 — never a traceback.
    """
    args = build_parser().parse_args(argv)
    try:
        return _dispatch(args)
    except ReproError as exc:
        print(f"cod: error: {exc}", file=sys.stderr)
        return 2


def _dispatch(args: argparse.Namespace) -> int:
    config = experiments.ExperimentConfig(
        n_queries=args.queries, theta=args.theta,
        scale=args.scale, seed=args.seed,
    )
    command = args.command
    results: object = None
    key_names: "tuple[str, ...] | None" = None
    if command == "datasets":
        results = _cmd_datasets(config)
    elif command == "query":
        _cmd_query(args, config)
    elif command == "explain":
        _cmd_explain(args, config)
    elif command == "trace":
        _cmd_trace(args)
    elif command == "serve-sim":
        results = _cmd_serve_sim(args)
    elif command == "fig4":
        results = _cmd_fig4(config)
        key_names = ("dataset",)
    elif command == "fig7":
        results = _cmd_fig7(config)
        key_names = ("dataset", "method", "k")
    elif command == "fig8":
        results = _cmd_fig8(config)
        key_names = ("dataset", "variant", "theta")
    elif command == "fig9":
        results = _cmd_fig9(config)
        key_names = ("dataset",)
    elif command == "table2":
        results = _cmd_table2(config)
    elif command == "casestudy":
        results = _cmd_casestudy(config)
    elif command == "ablation":
        results = _cmd_ablation(config)
        key_names = ("dataset", "variant")
    export_path = getattr(args, "export", None)
    if export_path and results is not None:
        _export(results, key_names, export_path)
    return 0


def _export(
    results: object, key_names: "tuple[str, ...] | None", path: str
) -> None:
    """Write results to ``path`` as JSON or (flattened) CSV by suffix."""
    from repro.eval.export import flatten_nested, write_csv, write_json

    if path.endswith(".csv"):
        if key_names is not None:
            rows = flatten_nested(results, key_names)  # type: ignore[arg-type]
        elif isinstance(results, list):
            rows = results  # row-dict lists (tables, case study)
        else:
            rows = [results]  # type: ignore[list-item]
        write_csv(rows, path)
    else:
        write_json(results, path)
    print(f"results written to {path}")


def _cmd_datasets(config: experiments.ExperimentConfig):
    rows = experiments.table1_dataset_stats(config=config)
    print(render_table(
        "Table I: dataset statistics (synthetic analogues)",
        ["dataset", "|V|", "|E|", "|A|", "mean |H(q)|", "log2 |V|",
         "paper |V|", "paper |E|"],
        [[r["dataset"], r["nodes"], r["edges"], r["attributes"],
          r["mean_H_q"], r["log2_n"], r["paper_nodes"], r["paper_edges"]]
         for r in rows],
    ))
    return rows


def _cmd_query(args: argparse.Namespace, config: experiments.ExperimentConfig) -> None:
    data = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    graph = data.graph
    query = _resolve_query(args, graph)
    pipeline = CODL(graph, theta=args.theta, seed=args.seed)
    result = pipeline.discover(query)
    print(f"dataset    : {args.dataset} (n={graph.n}, m={graph.m})")
    print(f"query      : node={query.node} attribute={query.attribute} k={query.k}")
    if result.found:
        members = sorted(int(v) for v in result.members)
        preview = ", ".join(str(v) for v in members[:20])
        ellipsis = ", ..." if len(members) > 20 else ""
        print(f"community  : size={result.size} [{preview}{ellipsis}]")
    else:
        print("community  : none (query node is not top-k influential anywhere)")
    print(f"chain      : {result.chain_length} communities examined")
    print(f"query time : {result.elapsed:.3f}s")


def _resolve_query(args: argparse.Namespace, graph) -> CODQuery:
    """Resolve node/attribute defaults shared by query and explain."""
    if args.node is None:
        return generate_queries(graph, count=1, k=args.k, rng=args.seed)[0]
    attribute = args.attribute
    if attribute is None:
        attrs = sorted(graph.attributes_of(args.node))
        if not attrs:
            print(f"node {args.node} has no attributes; pass --attribute",
                  file=sys.stderr)
            raise SystemExit(2)
        attribute = attrs[0]
    return CODQuery(args.node, attribute, args.k)


def _cmd_explain(args: argparse.Namespace, config: experiments.ExperimentConfig) -> None:
    from repro.core.compressed import compressed_cod
    from repro.core.explain import explain_evaluation, explain_lore
    from repro.core.lore import lore_chain
    from repro.hierarchy.nnchain import agglomerative_hierarchy

    data = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    graph = data.graph
    query = _resolve_query(args, graph)
    hierarchy = agglomerative_hierarchy(graph)
    lore = lore_chain(graph, hierarchy, query.node, query.attribute)
    print(explain_lore(lore, hierarchy, query.node, query.attribute).render())
    print()
    evaluation = compressed_cod(
        graph, lore.chain, k=query.k, theta=args.theta, rng=args.seed
    )
    print(explain_evaluation(evaluation, query.k).render())


def _cmd_trace(args: argparse.Namespace) -> None:
    """Answer one query with tracing on and print the span tree."""
    from repro.obs import QueryTrace
    from repro.serving import CODServer

    data = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    graph = data.graph
    query = _resolve_query(args, graph)
    server = CODServer(graph, theta=args.theta, seed=args.seed)
    trace = QueryTrace()
    answer = server.answer(query, trace=trace)
    size = 0 if answer.members is None else len(answer.members)
    print(f"dataset : {args.dataset} (n={graph.n}, m={graph.m})")
    print(f"query   : node={query.node} attribute={query.attribute} k={query.k}")
    print(f"answer  : rung={answer.rung} size={size} "
          f"retries={answer.retries} t={answer.elapsed * 1000:.1f}ms")
    print()
    print(trace.render())


def _write_metrics(path: str, mode: str, health: dict, metrics: dict) -> None:
    """Persist one ``cod-metrics/1`` snapshot document."""
    import json

    document = {
        "schema": "cod-metrics/1",
        "mode": mode,
        "health": health,
        "metrics": metrics,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
    print(f"metrics written to {path}")


def _parse_update_batches(args: argparse.Namespace) -> list:
    """Load ``--updates`` JSONL batches (empty list when the flag is off)."""
    if args.updates is None:
        return []
    from repro.dynamic.log import read_batches

    if args.batch_size is not None:
        raise ReproError(
            "--updates cannot be combined with --batch-size: the planner "
            "reorders queries, which would blur the epoch boundary"
        )
    batches = read_batches(args.updates)
    print(f"update log: {len(batches)} batches from {args.updates}")
    return batches


def _update_schedule(batches: list, n_queries: int) -> "dict[int, list]":
    """Map query index -> batches applied just before it.

    File order is preserved: a batch never applies before one that
    precedes it in the log (explicit ``at`` hints are clamped up to keep
    replay order equal to validation order).
    """
    schedule: dict[int, list] = {}
    floor = 0
    for position, batch in enumerate(batches):
        if batch.at is not None:
            at = max(floor, min(int(batch.at), n_queries))
        else:
            at = max(floor, (position + 1) * n_queries // (len(batches) + 1))
        floor = at
        schedule.setdefault(at, []).append(batch)
    return schedule


def _cmd_serve_sim(args: argparse.Namespace):
    """Replay a workload through CODServer, optionally under faults."""
    from repro.serving import CODServer
    from repro.utils import faults

    if args.batch_size is not None and args.batch_size < 1:
        raise ReproError(f"--batch-size must be >= 1, got {args.batch_size}")
    if args.cache_capacity < 1:
        raise ReproError(
            f"--cache-capacity must be >= 1, got {args.cache_capacity}"
        )
    if args.pool_seeded and not isinstance(args.seed, int):
        raise ReproError("--pool-seeded requires an integer --seed")
    if args.shared_pool and args.workers < 1:
        raise ReproError("--shared-pool requires supervised mode (--workers N)")
    if args.snapshot_every is not None and args.state_dir is None:
        raise ReproError("--snapshot-every requires --state-dir")
    data = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    graph = data.graph
    queries = generate_queries(graph, count=args.queries, k=args.k, rng=args.seed)
    update_batches = _parse_update_batches(args)
    if args.workers > 0:
        return _serve_sim_supervised(args, graph, queries, update_batches)
    registry = None
    if args.metrics_out is not None or args.state_dir is not None:
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
    state_store = None
    if args.state_dir is not None:
        from repro.serving.durability import DurableStateStore

        state_store = DurableStateStore(
            args.state_dir,
            snapshot_every=args.snapshot_every,
            metrics=registry,
        )
        recovery = state_store.recover(base_graph=graph)
        graph = recovery.graph
        print(f"durability: {recovery.describe()}")
    pool = None
    if args.pool or args.pool_seeded or args.batch_size is not None:
        from repro.core.pool import SharedSamplePool

        pool = SharedSamplePool(
            graph,
            theta=args.theta,
            seed=args.seed,
            per_sample_seeds=args.pool_seeded,
            fast=args.fast,
        )
    server = CODServer(
        graph,
        theta=args.theta,
        seed=args.seed,
        deadline_s=args.deadline,
        sample_budget=args.sample_budget,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown_s=args.breaker_cooldown,
        metrics=registry,
        pool=pool,
        cache_capacity=args.cache_capacity,
        fast_sampling=args.fast,
        state_store=state_store,
    )
    if state_store is not None:
        server.epoch = state_store.epoch
    if args.fault_site is not None:
        injection = faults.inject(
            site=args.fault_site,
            rate=args.fault_rate,
            exc=_SIM_FAULT_EXC[args.fault_site],
            seed=args.seed,
        )
        print(f"injecting {_SIM_FAULT_EXC[args.fault_site].__name__} at "
              f"{args.fault_site!r} with rate {args.fault_rate}")
    else:
        injection = contextlib.nullcontext()

    planner = None
    schedule = _update_schedule(update_batches, len(queries))
    with injection:
        if args.batch_size is not None:
            from repro.serving.planner import BatchPlanner

            planner = BatchPlanner(server)
            answers = planner.execute(queries, batch_size=args.batch_size)
        else:
            answers = []
            for i, query in enumerate(queries):
                for batch in schedule.get(i, ()):
                    _print_epoch_report(server.apply_updates(batch))
                answers.append(server.answer(query))
            # Trailing batches (at >= n_queries) still apply, so the
            # replayed log and the final health epoch stay complete.
            for batch in schedule.get(len(queries), ()):
                _print_epoch_report(server.apply_updates(batch))
    for i, (query, answer) in enumerate(zip(queries, answers)):
        size = 0 if answer.members is None else len(answer.members)
        line = (
            f"[{i:03d}] node={query.node:5d} attr={query.attribute:3d} "
            f"k={query.k} -> {answer.rung:8s} size={size:5d} "
            f"retries={answer.retries} t={answer.elapsed * 1000:7.1f}ms"
        )
        if update_batches:
            line += f" epoch={answer.epoch}"
        if answer.notes:
            line += f"  ({answer.notes[-1]})"
        print(line)

    health = server.health()
    print()
    print("health report")
    if update_batches:
        updates = health["updates"]
        print(f"  epoch              : {health['epoch']} "
              f"(batches={updates['batches_applied']}, "
              f"updates={updates['updates_applied']}, "
              f"repaired_samples={updates['repaired_samples']}, "
              f"cache_invalidated={updates['cache_invalidated']})")
    print(f"  queries            : {health['queries']}")
    for rung, count in sorted(health["answered_per_rung"].items()):
        print(f"  answered via {rung:7s}: {count}")
    print(f"  refused            : {health['refused']}")
    print(f"  retries            : {health['retries']}")
    print(f"  deadline exceeded  : {health['deadline_exceeded']}")
    print(f"  budget exhausted   : {health['budget_exhausted']}")
    print(f"  breaker state      : {health['breaker_state']} "
          f"(short-circuits: {health['breaker_short_circuits']})")
    latency = health["latency"]
    print(f"  latency p50/p95    : {latency['p50_s'] * 1000:.1f}ms / "
          f"{latency['p95_s'] * 1000:.1f}ms")
    for name, stats in sorted(health["caches"].items()):
        print(f"  cache {name:12s} : entries={stats['entries']}/"
              f"{stats['capacity']} hits={stats['hits']} "
              f"misses={stats['misses']} evictions={stats['evictions']}")
    if planner is not None and planner.last_plan is not None:
        plan = planner.last_plan.describe()
        print(f"  planner            : batches={planner.batches} "
              f"last_groups={plan['groups']} "
              f"grouped={plan['grouped_execution']}")
    if state_store is not None:
        print(f"  durable epoch      : {state_store.epoch} "
              f"(snapshots: {state_store.snapshots.epochs() or 'none'})")
        state_store.close()
    if registry is not None and args.metrics_out is not None:
        _write_metrics(
            args.metrics_out, "in-process", health, registry.snapshot()
        )
    return health


def _print_epoch_report(report: dict) -> None:
    """One line per applied batch in ``serve-sim --updates`` replay."""
    print(f"-- epoch {report['epoch']}: {report['updates']} updates applied "
          f"(repaired_samples={report['repaired_samples']}, "
          f"cache_invalidated={report['cache_invalidated']}, "
          f"index={report['index']})")


def _serve_sim_supervised(args: argparse.Namespace, graph, queries,
                          update_batches: "list | None" = None):
    """Replay the workload through a supervised multi-worker fleet."""
    from repro.serving import ChaosSchedule, ServingSupervisor

    update_batches = update_batches or []

    chaos = None
    if args.chaos is not None:
        try:
            chaos = ChaosSchedule.parse(args.chaos)
        except ValueError as exc:
            raise ReproError(f"--chaos: {exc}") from exc
        print(f"chaos schedule: {chaos.actions}")
    fault_specs = []
    if args.fault_site is not None:
        fault_specs.append({
            "site": args.fault_site,
            "rate": args.fault_rate,
            "exc": _SIM_FAULT_EXC[args.fault_site],
            "seed": args.seed,
        })
        print(f"injecting {_SIM_FAULT_EXC[args.fault_site].__name__} at "
              f"{args.fault_site!r} with rate {args.fault_rate} in every worker")
    shard_spec = (args.shard_attributes or "auto").strip().lower()
    if shard_spec == "auto":
        shard_attributes = "auto"
    elif shard_spec in ("none", "off"):
        shard_attributes = None
    else:
        try:
            shard_attributes = [
                int(a) for a in shard_spec.split(",") if a.strip()
            ]
        except ValueError as exc:
            raise ReproError(
                f"--shard-attributes: expected 'auto', 'none', or a "
                f"comma-separated attribute list, got {args.shard_attributes!r}"
            ) from exc
    supervisor = ServingSupervisor(
        graph,
        n_workers=args.workers,
        queue_capacity=args.queue_capacity,
        task_timeout_s=args.task_timeout,
        index_dir=args.index_dir,
        profile=args.metrics_out is not None,
        chaos=chaos,
        worker_fault_specs=fault_specs,
        use_pool=args.pool,
        pool_seeded=args.pool_seeded,
        shared_pool=args.shared_pool,
        shard_attributes=shard_attributes,
        shard_hot_threshold=args.shard_hot_threshold,
        state_dir=args.state_dir,
        snapshot_every=args.snapshot_every,
        server_options={
            "theta": args.theta,
            "seed": args.seed,
            "deadline_s": args.deadline,
            "sample_budget": args.sample_budget,
            "breaker_threshold": args.breaker_threshold,
            "breaker_cooldown_s": args.breaker_cooldown,
            "cache_capacity": args.cache_capacity,
            "fast_sampling": args.fast,
        },
    )
    if supervisor.recovery is not None:
        print(f"durability: {supervisor.recovery.describe()}")
    with supervisor:
        if update_batches:
            schedule = _update_schedule(update_batches, len(queries))
            seqs = []
            for i, query in enumerate(queries):
                for batch in schedule.get(i, ()):
                    epoch = supervisor.submit_updates(
                        batch.updates, label=batch.label
                    )
                    print(f"-- submitted update batch "
                          f"({len(batch)} updates) -> epoch {epoch}")
                seqs.append(supervisor.submit(query))
                # Interleave supervision with admission so updates land
                # mid-workload rather than after a fully drained queue.
                supervisor.poll(0.0)
            for batch in schedule.get(len(queries), ()):
                epoch = supervisor.submit_updates(
                    batch.updates, label=batch.label
                )
                print(f"-- submitted update batch "
                      f"({len(batch)} updates) -> epoch {epoch}")
            supervisor.drain(timeout_s=300.0)
            answers = [supervisor.answer_for(seq) for seq in seqs]
        else:
            answers = supervisor.serve(queries, drain_timeout_s=300.0)
        health = supervisor.health()
    for i, (query, answer) in enumerate(zip(queries, answers)):
        size = 0 if answer.members is None else len(answer.members)
        line = (
            f"[{i:03d}] node={query.node:5d} attr={query.attribute:3d} "
            f"k={query.k} -> {answer.rung:16s} size={size:5d} "
            f"t={answer.elapsed * 1000:7.1f}ms"
        )
        if update_batches:
            line += f" epoch={answer.epoch}"
        if answer.notes:
            line += f"  ({answer.notes[-1]})"
        print(line)
    print()
    print("fleet health report")
    print(f"  workers            : {health['n_workers']}")
    if update_batches:
        updates = health["updates"]
        print(f"  epoch              : {health['epoch']} "
              f"(batches={updates['batches_submitted']}, "
              f"acks={updates['acks']}, skipped={updates['skipped']})")
        for epoch, report in sorted(
            updates["per_epoch"].items(), key=lambda item: int(item[0])
        ):
            print(f"    epoch {epoch}          : "
                  f"workers_applied={report['workers_applied']} "
                  f"repaired_samples={report['repaired_samples']} "
                  f"cache_invalidated={report['cache_invalidated']} "
                  f"index={report['index']}")
    print(f"  admitted/completed : {health['admitted']}/{health['completed']}")
    for rung, count in sorted(health["answered_per_rung"].items()):
        print(f"  answered via {rung:7s}: {count}")
    print(f"  refused            : {health['refused']} "
          f"(overload: {health['refused_overload']}, "
          f"crash: {health['refused_crash']})")
    print(f"  shed               : {health['shed']}")
    print(f"  restarts           : {health['restarts']} "
          f"(wedge kills: {health['wedge_kills']}, "
          f"heartbeat kills: {health['heartbeat_kills']})")
    print(f"  duplicate results  : {health['duplicate_results']}")
    affinity = health["affinity"]
    print(f"  affinity dispatch  : attributes={affinity['attributes']} "
          f"claims={affinity['claims']} hits={affinity['hits']} "
          f"misses={affinity['misses']} evictions={affinity['evictions']}")
    if affinity.get("shard_slots"):
        print(f"  shard routing      : "
              f"hits={affinity['shard_hits']} "
              f"misses={affinity['shard_misses']} "
              f"slots={affinity['shard_slots']}")
    latency = health["latency"]
    print(f"  latency p50/p95    : {latency['p50_s'] * 1000:.1f}ms / "
          f"{latency['p95_s'] * 1000:.1f}ms")
    shm = health.get("shm", {})
    if shm.get("enabled"):
        print(f"  shared memory      : "
              f"{shm['segment_bytes'] / 1024:.1f} KiB in "
              f"{len(shm['segments'])} segments, "
              f"attaches={shm['attaches']} publishes={shm['publishes']} "
              f"sweeps={shm['sweeps']} "
              f"(reclaimed {shm['swept_segments']} stale)")
        for kind, block in sorted(shm["segments"].items()):
            print(f"    {kind:7s}          : {block['name']} "
                  f"({block['bytes'] / 1024:.1f} KiB, "
                  f"attached {block['attaches']}x)")
        shards = shm.get("shards", {})
        if shards.get("enabled") and shards.get("published"):
            print(f"    shards           : {len(shards['published'])} "
                  f"({shards['bytes'] / 1024:.1f} KiB, "
                  f"publishes={shards['publishes']} "
                  f"rotations={shards['rotations']})")
            for attr, block in sorted(shards["published"].items()):
                print(f"      attr {attr:4s}     : {block['name']} "
                      f"(vertex {block['vertex']}, epoch {block['epoch']}, "
                      f"{block['samples']} samples)")
    for worker_id, info in sorted(health["workers"].items()):
        line = (
            f"  worker {worker_id}           : {info['state']:10s} "
            f"tasks={info['tasks_done']} restarts={info['restarts']}"
        )
        line += f" resumed_builds={info['resumed_builds']}"
        if update_batches:
            line += f" epoch={info['epoch']}"
        if info["death_reasons"]:
            line += f"  deaths: {'; '.join(info['death_reasons'])}"
        print(line)
    durability = health.get("durability")
    if durability is not None:
        recovery = durability["recovery"] or {}
        print(f"  durability         : epoch={health['epoch']} "
              f"snapshots={durability['snapshots'] or 'none'} "
              f"replayed={recovery.get('replayed_epochs', 0)} "
              f"quarantined={len(durability['quarantined'])}")
    if args.metrics_out is not None:
        _write_metrics(
            args.metrics_out, "supervised", health, health["fleet_metrics"]
        )
    return health


def _cmd_fig4(config: experiments.ExperimentConfig):
    results = experiments.fig4_hierarchy_skew(config=config)
    methods = ("CODU", "CODR", "CODL")
    print(render_table(
        "Fig. 4: mean size of the 5 deepest communities containing a query node",
        ["dataset", *methods],
        [[name, *(results[name][m] for m in methods)] for name in results],
        float_format="{:.1f}",
    ))
    return results


def _cmd_fig7(config: experiments.ExperimentConfig):
    results = experiments.fig7_effectiveness(config=config)
    for measure, label in (
        ("size", "average size |C*| (a-f)"),
        ("rho", "average topology density rho (g-l)"),
        ("phi", "average attribute density phi (m-r)"),
        ("influence", "average query influence I(q) (s-x)"),
    ):
        for name, per_method in results.items():
            methods = list(per_method)
            rows = []
            for k in config.ks:
                rows.append([k, *(per_method[m][k][measure] for m in methods)])
            print(render_table(
                f"Fig. 7 {label} — {name}", ["k", *methods], rows,
                float_format="{:.3f}",
            ))
            print()
    return results


def _cmd_fig8(config: experiments.ExperimentConfig):
    results = experiments.fig8_compressed_vs_independent(config=config)
    for name, per_variant in results.items():
        thetas = sorted(next(iter(per_variant.values())))
        for metric, label in (
            ("precision", "top-k precision (a/d)"),
            ("size_mean", "average |C*| (b/e)"),
            ("time", "execution time, s (c/f)"),
        ):
            rows = [
                [theta, *(per_variant[v][theta][metric]
                          for v in ("Compressed", "Independent"))]
                for theta in thetas
            ]
            print(render_table(
                f"Fig. 8 {label} — {name}",
                ["theta", "Compressed", "Independent"], rows,
            ))
            print()
    return results


def _cmd_fig9(config: experiments.ExperimentConfig):
    results = experiments.fig9_runtime(config=config)
    methods = ("CODR", "CODL-", "CODL")
    print(render_table(
        "Fig. 9: mean COD query runtime (seconds)",
        ["dataset", *methods],
        [[name, *(results[name][m] for m in methods)] for name in results],
        float_format="{:.4f}",
    ))
    return results


def _cmd_table2(config: experiments.ExperimentConfig):
    rows = experiments.table2_himor_overhead(config=config)
    print(render_table(
        "Table II: HIMOR index overhead",
        ["dataset", "build time (s)", "index (MB)", "input (MB)", "mean depth"],
        [[r["dataset"], r["time_s"], r["index_mb"], r["input_mb"], r["mean_depth"]]
         for r in rows],
    ))
    return rows


def _cmd_casestudy(config: experiments.ExperimentConfig):
    cases = experiments.case_study(config=config)
    for case in cases:
        print(f"query node {case['query']} (attribute {case['attribute']}):")
        for method, info in case["methods"].items():
            if info is None:
                print(f"  {method:5s}: no community")
            else:
                print(
                    f"  {method:5s}: size={info['size']:4d} "
                    f"rank={info['rank']:3d} conductance={info['conductance']:.3f}"
                )
        print()
    return cases


def _cmd_ablation(config: experiments.ExperimentConfig):
    results = experiments.ablation_lore(config=config)
    for name, per_variant in results.items():
        rows = [
            [variant, stats["size"], stats["phi"], stats["found"]]
            for variant, stats in per_variant.items()
        ]
        print(render_table(
            f"LORE ablation — {name}",
            ["variant", "mean |C*|", "mean phi", "found rate"], rows,
        ))
        print()
    return results


if __name__ == "__main__":
    raise SystemExit(main())
