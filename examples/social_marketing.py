"""Community-based social marketing (CBSM): choosing promoter audiences.

The paper's motivating application (Section I): a brand recruits community
promoters and wants each promoter to address the *widest* community in
which they are genuinely influential — not just any dense community they
belong to. This script simulates a campaign on the retweet-network
analogue:

1. sample candidate promoters;
2. for each, compute the characteristic community (CODL) and the
   communities traditional attributed community search would target
   (ACQ / ATC / CAC);
3. verify with an influence oracle whether the promoter is actually
   top-k influential in each proposed audience;
4. report total verified audience reach per strategy.

Run:  python examples/social_marketing.py
"""

import numpy as np

from repro import CODL, CODQuery, generate_queries, load_dataset
from repro.baselines import acq_community, atc_community, cac_community
from repro.eval.measures import is_characteristic

K = 5  # the promoter must be among the top-5 influencers of the audience


def main() -> None:
    data = load_dataset("retweet", seed=7)
    graph = data.graph
    print(f"campaign network: |V|={graph.n} |E|={graph.m} "
          f"(retweet analogue)\n")

    promoters = generate_queries(graph, count=6, k=K, rng=13)
    pipeline = CODL(graph, theta=25, seed=11)
    oracle_rng = np.random.default_rng(17)

    reach: dict[str, int] = {"CODL": 0, "ACQ": 0, "ATC": 0, "CAC": 0}
    verified: dict[str, int] = dict.fromkeys(reach, 0)

    header = f"{'promoter':>8}  {'topic':>5}  " + "  ".join(
        f"{m:>10}" for m in reach
    )
    print(header)
    print("-" * len(header))
    for query in promoters:
        q, topic = query.node, query.attribute
        audiences = {
            "CODL": pipeline.discover(CODQuery(q, topic, K)).members,
            "ACQ": acq_community(graph, q, topic),
            "ATC": atc_community(graph, q, topic),
            "CAC": cac_community(graph, q, topic),
        }
        cells = []
        for method, members in audiences.items():
            ok = is_characteristic(
                graph, members, q, K, samples_per_node=40, rng=oracle_rng
            )
            size = 0 if members is None else len(members)
            if ok:
                reach[method] += size
                verified[method] += 1
            cells.append(f"{size:>6}{'*' if ok else ' ':>4}")
        print(f"{q:>8}  {topic:>5}  " + "  ".join(cells))

    print("\n(* = promoter verified top-%d influential in the audience)" % K)
    print("\nverified campaign reach (sum of audience sizes where the")
    print("promoter actually carries influence):")
    for method in reach:
        print(f"  {method:5s}: {reach[method]:6d} nodes "
              f"({verified[method]}/{len(promoters)} promoters usable)")
    best = max(reach, key=lambda m: reach[m])
    print(f"\n-> {best} delivers the widest verified reach: characteristic "
          "communities maximize audience size under an influence guarantee.")


if __name__ == "__main__":
    main()
