"""Academic collaboration analysis (the paper's Example 1 scenario).

On the DBLP-analogue co-authorship network, compare — for one researcher
and one research-area attribute — the community an attributed community
search method (ATC) returns against the researcher's characteristic
community (CODL). The paper's Fig. 1 observation: ATC's community need not
center on the researcher, while the characteristic community does.

Also demonstrates LORE introspection: the reclustering scores over the
researcher's hierarchy and which community got reclustered.

Run:  python examples/academic_communities.py
"""

import numpy as np

from repro import CODQuery, CODL, generate_queries, load_dataset
from repro.baselines import atc_community
from repro.core.lore import lore_chain
from repro.eval.measures import measure_community, oracle_rank
from repro.graph.metrics import conductance


def main() -> None:
    data = load_dataset("dblp", seed=7)
    graph = data.graph
    print(f"co-authorship network: |V|={graph.n} |E|={graph.m} "
          f"venues={len(graph.attribute_universe)}\n")

    # Pick a researcher whose characteristic community is non-trivial and
    # for whom ATC also returns a community (so the comparison is shown).
    pipeline = CODL(graph, theta=30, seed=11)
    oracle_rng = np.random.default_rng(23)
    chosen = None
    fallback = None
    for query in generate_queries(graph, count=30, k=1, rng=29):
        result = pipeline.discover(CODQuery(query.node, query.attribute, 1))
        if result.found and result.size >= 5:
            if fallback is None:
                fallback = (query, result)
            if atc_community(graph, query.node, query.attribute) is not None:
                chosen = (query, result)
                break
    if chosen is None:
        chosen = fallback
    if chosen is None:
        print("no suitable researcher found at k=1; rerun with another seed")
        return
    query, codl_result = chosen
    q, venue = query.node, query.attribute
    print(f"researcher {q}, venue attribute {venue} (k = 1: the researcher "
          "must be the single most influential member)\n")

    # LORE introspection: which community of H(q) was reclustered?
    lore = lore_chain(graph, pipeline.hierarchy, q, venue,
                      weighting=pipeline.weighting)
    path = pipeline.hierarchy.path_communities(q)
    print("reclustering scores along H(q) (deepest -> root):")
    for level, (vertex, score) in enumerate(zip(path, lore.scores)):
        size = pipeline.hierarchy.size(vertex)
        marker = "  <- C_l (reclustered)" if vertex == lore.c_ell_vertex else ""
        print(f"  level {level:2d}: |C|={size:5d}  r(C)={score:.4f}{marker}")

    # Compare against ATC.
    atc_members = atc_community(graph, q, venue)
    print("\nmethod comparison:")
    for label, members in (("CODL", codl_result.members), ("ATC", atc_members)):
        if members is None:
            print(f"  {label:5s}: no community")
            continue
        measures = measure_community(graph, members, venue)
        rank = oracle_rank(graph, members, q, samples_per_node=100,
                           rng=oracle_rng)
        cond = conductance(graph, members)
        print(f"  {label:5s}: size={measures.size:4d}  "
              f"researcher-rank={rank:2d}  rho={measures.topology_density:.3f}  "
              f"phi={measures.attribute_density:.3f}  conductance={cond:.3f}")

    print("\n-> the characteristic community is the widest community the "
          "researcher dominates; the community-search answer optimizes "
          "cohesion only and may rank the researcher lower.")


if __name__ == "__main__":
    main()
