"""COD on heterogeneous information networks (the paper's future work).

The conclusion of the paper names COD over HINs — multiple node and edge
types, influence "in different contexts" — as an open direction. This
example runs the meta-path-projection realization shipped in
``repro.hin`` on a synthetic bibliographic network:

* context 1 (co-authorship): Author -writes- Paper -writes- Author;
* context 2 (venue communities): Author -writes- Paper -publishedIn-
  Venue -publishedIn- Paper -writes- Author.

The same researcher's characteristic community is computed in both
contexts; the venue context typically yields a wider community (venue
co-location is a weaker tie than co-authorship).

Run:  python examples/hin_contexts.py
"""

from repro.hin import MetaPath, bibliographic_hin, hin_characteristic_community
from repro.hin.synthetic import AUTHOR, PUBLISHED_IN, WRITES


def main() -> None:
    hin = bibliographic_hin(
        n_authors=120, n_papers=300, n_venues=6, n_topics=4, rng=7
    )
    print(f"bibliographic HIN: {hin}\n")

    contexts = {
        "co-authorship (A-P-A)": MetaPath(AUTHOR, (WRITES, WRITES)),
        "venue (A-P-V-P-A)": MetaPath(
            AUTHOR, (WRITES, PUBLISHED_IN, PUBLISHED_IN, WRITES)
        ),
    }

    shown = 0
    for author in (int(a) for a in hin.nodes_of_type(AUTHOR)):
        topic = sorted(hin.attributes_of(author))[0]
        results = {
            label: hin_characteristic_community(
                hin, metapath, author, topic, k=5, theta=10, seed=11
            )
            for label, metapath in contexts.items()
        }
        if not all(r.found for r in results.values()):
            continue
        shown += 1
        print(f"author {author} (topic {topic}):")
        for label, result in results.items():
            print(
                f"  {label:22s}: projection |V|={result.projection_nodes:4d} "
                f"|E|={result.projection_edges:5d} -> |C*|={result.size:4d}"
            )
        sizes = [r.size for r in results.values()]
        print(f"  -> context changes the characteristic community "
              f"({'wider in the venue context' if sizes[1] > sizes[0] else 'sizes: ' + str(sizes)})\n")
        if shown >= 3:
            break

    if shown == 0:
        print("no author had a characteristic community in both contexts; "
              "rerun with another seed")


if __name__ == "__main__":
    main()
