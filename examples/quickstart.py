"""Quickstart: find a node's characteristic community in one minute.

Loads the Cora analogue, asks one COD query through the fully optimized
CODL pipeline, and prints the answer alongside the paper's quality
measures.

Run:  python examples/quickstart.py
"""

from repro import CODL, CODQuery, generate_queries, load_dataset
from repro.eval.measures import measure_community

def main() -> None:
    # 1. A dataset: synthetic analogue of Cora (see DESIGN.md §3).
    data = load_dataset("cora", seed=7)
    graph = data.graph
    print(f"dataset: {data.name}  |V|={graph.n}  |E|={graph.m}  "
          f"|A|={len(graph.attribute_universe)}")

    # 2. A query: a random node plus one of its own attributes (the
    #    paper's workload protocol), with rank budget k = 5.
    query = generate_queries(graph, count=1, k=5, rng=3)[0]
    print(f"query:   node={query.node}  attribute={query.attribute}  k={query.k}")

    # 3. The CODL pipeline: non-attributed hierarchy + LORE local
    #    reclustering + HIMOR index (built lazily on first use).
    pipeline = CODL(graph, theta=10, seed=11)
    result = pipeline.discover(query)

    # 4. The characteristic community and its quality measures.
    if not result.found:
        print("no characteristic community: the node is not top-k "
              "influential in any community of its hierarchy")
        return
    measures = measure_community(graph, result.members, query.attribute)
    print(f"answer:  |C*|={measures.size}  "
          f"rho={measures.topology_density:.3f}  "
          f"phi={measures.attribute_density:.3f}  "
          f"({result.elapsed * 1000:.1f} ms, "
          f"{result.chain_length} communities examined)")

    # 5. Sweep the rank budget: looser k -> larger community.
    print("\nrank budget sweep:")
    results = pipeline.discover_multi(query.node, query.attribute, [1, 2, 3, 4, 5])
    for k in (1, 2, 3, 4, 5):
        r = results[k]
        print(f"  k={k}: |C*|={r.size}")


if __name__ == "__main__":
    main()
