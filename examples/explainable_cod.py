"""Explainable COD: evidence trails, adaptive sampling, shared pools.

Three production-minded extensions around the paper's core algorithms:

1. **Evidence trails** — ``explain_lore`` shows why LORE reclustered the
   community it did; ``explain_evaluation`` shows, level by level, the
   sample counts behind the top-k verdicts (the full audit trail for one
   answer).
2. **Adaptive sampling** — instead of a fixed ``theta``, keep doubling the
   shared RR pool until every level's decision clears a confidence margin;
   easy queries stop early, borderline ones automatically get more
   samples.
3. **Shared sample pools** — a workload of many queries over one graph can
   reuse one RR pool; this measures the speedup against per-query
   sampling.

Run:  python examples/explainable_cod.py
"""

import time

from repro import CommunityChain, agglomerative_hierarchy, load_dataset
from repro.core import (
    SharedSamplePool,
    adaptive_compressed_cod,
    compressed_cod,
    explain_evaluation,
    explain_lore,
    lore_chain,
)
from repro.datasets import generate_queries


def main() -> None:
    data = load_dataset("citeseer", seed=7)
    graph = data.graph
    hierarchy = agglomerative_hierarchy(graph)
    queries = generate_queries(graph, count=12, k=5, rng=3)
    q0 = queries[0]

    # --- 1. evidence trails -------------------------------------------------
    print("=" * 72)
    lore = lore_chain(graph, hierarchy, q0.node, q0.attribute)
    print(explain_lore(lore, hierarchy, q0.node, q0.attribute).render())
    print()
    evaluation = compressed_cod(graph, lore.chain, k=5, theta=10, rng=11)
    print(explain_evaluation(evaluation, 5).render())

    # --- 2. adaptive sampling ----------------------------------------------
    print()
    print("=" * 72)
    print("adaptive sampling (z = 2.0, theta doubling 2 -> 64):")
    for query in queries[:5]:
        chain = CommunityChain.from_hierarchy(hierarchy, query.node)
        result = adaptive_compressed_cod(
            graph, chain, k=5, theta_start=2, theta_max=64, rng=11
        )
        best = result.evaluation.best_level(5)
        size = 0 if best is None else int(chain.sizes[best])
        print(f"  q={query.node:4d}: stopped at theta={result.theta:3d} "
              f"({result.rounds} rounds, "
              f"{'converged' if result.converged else 'budget-capped'})  "
              f"|C*|={size}")

    # --- 3. shared pools ----------------------------------------------------
    print()
    print("=" * 72)
    start = time.perf_counter()
    pool = SharedSamplePool(graph, theta=10, seed=11, lazy=False)
    pool_build = time.perf_counter() - start

    start = time.perf_counter()
    for query in queries:
        chain = CommunityChain.from_hierarchy(hierarchy, query.node)
        pool.evaluate(chain, k=5)
    pooled = time.perf_counter() - start

    start = time.perf_counter()
    for query in queries:
        chain = CommunityChain.from_hierarchy(hierarchy, query.node)
        compressed_cod(graph, chain, k=5, theta=10, rng=11)
    fresh = time.perf_counter() - start

    print(f"shared pool over {len(queries)} queries: "
          f"build {pool_build:.2f}s + evaluate {pooled:.2f}s "
          f"vs per-query sampling {fresh:.2f}s "
          f"({fresh / max(pool_build + pooled, 1e-9):.1f}x)")


if __name__ == "__main__":
    main()
