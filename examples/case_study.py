"""Section V-E case study: CODL vs ATC/ACQ/CAC on individual queries.

Reproduces the paper's Cora case study at k = 1: for query nodes where
CODL finds a characteristic community, compare every method's community by
size, the query node's influence rank inside it, and conductance. The
paper's findings (both reproduced here in shape):

* the query node ranks first in the CODL community but often lower in the
  ATC/ACQ community;
* the CODL community has lower conductance (a better-separated cut) and is
  larger at equal query-node rank.

Run:  python examples/case_study.py
"""

from repro.eval.experiments import ExperimentConfig, case_study


def main() -> None:
    config = ExperimentConfig(n_queries=40, theta=10,
                              oracle_samples_per_node=150)
    cases = case_study(name="cora", config=config, k=1, max_cases=3)
    if not cases:
        print("no k=1 characteristic communities found; rerun with another seed")
        return
    for case in cases:
        print(f"query node {case['query']} (attribute {case['attribute']}):")
        print(f"  {'method':6s} {'size':>5} {'rank':>5} {'conductance':>12}")
        for method, info in case["methods"].items():
            if info is None:
                print(f"  {method:6s} {'-':>5} {'-':>5} {'-':>12}")
                continue
            print(f"  {method:6s} {info['size']:>5} {info['rank']:>5} "
                  f"{info['conductance']:>12.3f}")
        codl = case["methods"]["CODL"]
        rivals = [
            info for m, info in case["methods"].items()
            if m != "CODL" and info is not None
        ]
        if codl and rivals:
            larger = sum(1 for r in rivals if codl["size"] >= r["size"])
            better_rank = sum(1 for r in rivals if codl["rank"] <= r["rank"])
            print(f"  -> CODL at least as large as {larger}/{len(rivals)} rivals, "
                  f"query-rank at least as good as {better_rank}/{len(rivals)}")
        print()


if __name__ == "__main__":
    main()
