"""Operational workflow: precompute the HIMOR index offline, serve online.

The HIMOR index depends only on the graph and the non-attributed
hierarchy, so it can be built once (batch job), persisted, and shared by
every query-serving process. This script shows the full offline/online
split, including hierarchy and graph serialization, and measures the
online speedup the index buys over index-free evaluation.

Run:  python examples/index_persistence.py
"""

import tempfile
import time
from pathlib import Path

from repro import CODL, CODLMinus, CODQuery, generate_queries, load_dataset
from repro.core.himor import HimorIndex
from repro.graph.io import load_json, save_json
from repro.hierarchy.io import load_hierarchy, save_hierarchy


def offline_phase(workdir: Path) -> None:
    """Batch job: generate/ingest the graph, cluster it, build the index."""
    data = load_dataset("amazon", seed=7)
    pipeline = CODL(data.graph, theta=10, seed=11)

    start = time.perf_counter()
    index = pipeline.index  # builds hierarchy + index
    build = time.perf_counter() - start

    save_json(data.graph, workdir / "graph.json")
    save_hierarchy(pipeline.hierarchy, workdir / "hierarchy.json")
    index.save(workdir / "himor.json")
    print(f"offline: built HIMOR in {build:.2f}s "
          f"(index {index.memory_bytes() / 2**20:.2f} MB), artifacts in {workdir}")


def online_phase(workdir: Path) -> None:
    """Query server: load artifacts, answer queries, report latency."""
    graph = load_json(workdir / "graph.json")
    hierarchy = load_hierarchy(workdir / "hierarchy.json")
    index = HimorIndex.load(workdir / "himor.json")

    # Wire the precomputed pieces into a CODL pipeline.
    pipeline = CODL(graph, theta=10, seed=19)
    pipeline._hierarchy = hierarchy
    pipeline._index = index

    baseline = CODLMinus(graph, theta=10, seed=19)
    baseline._hierarchy = hierarchy

    queries = generate_queries(graph, count=10, k=5, rng=31)
    indexed_ms, unindexed_ms = [], []
    for query in queries:
        r1 = pipeline.discover(CODQuery(query.node, query.attribute, 5))
        r2 = baseline.discover(CODQuery(query.node, query.attribute, 5))
        indexed_ms.append(r1.elapsed * 1000)
        unindexed_ms.append(r2.elapsed * 1000)
        agree = "==" if r1.size == r2.size else "~"
        print(f"  node {query.node:5d}: CODL {r1.elapsed * 1000:7.1f} ms "
              f"(|C*|={r1.size:4d}) {agree} CODL- "
              f"{r2.elapsed * 1000:7.1f} ms (|C*|={r2.size:4d})")

    speedup = (sum(unindexed_ms) / max(sum(indexed_ms), 1e-9))
    print(f"online: mean latency {sum(indexed_ms) / len(indexed_ms):.1f} ms "
          f"with index vs {sum(unindexed_ms) / len(unindexed_ms):.1f} ms "
          f"without ({speedup:.1f}x)")


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="himor-") as tmp:
        workdir = Path(tmp)
        offline_phase(workdir)
        online_phase(workdir)


if __name__ == "__main__":
    main()
