"""Dynamic COD: serving certified answers over an evolving graph.

The paper's Section IV-B discussion defers efficient dynamic HIMOR
maintenance to future work; `repro.dynamic` implements the practical
middle ground: serve from the stale structures, certify every answer
against the live graph with restricted sampling, repair on failure, and
rebuild once drift crosses a budget. This example streams random edge
updates into the cora analogue and shows the session's bookkeeping.

Run:  python examples/dynamic_stream.py
"""

import numpy as np

from repro import CODQuery, load_dataset
from repro.dynamic import DynamicCOD, EdgeUpdate


def main() -> None:
    data = load_dataset("cora", scale=0.5, seed=7)
    session = DynamicCOD(
        data.graph, theta=10, rebuild_budget=20,
        verify_samples_per_node=80, seed=11,
    )
    rng = np.random.default_rng(3)
    existing = set(data.graph.edges())
    n = data.graph.n
    print(f"initial graph: |V|={n} |E|={data.graph.m}, "
          f"rebuild budget = {session.rebuild_budget} updates\n")

    for step in range(1, 41):
        # Stream one random insertion (deletions work the same way).
        while True:
            u, v = sorted(int(x) for x in rng.integers(0, n, size=2))
            if u != v and (u, v) not in existing:
                break
        existing.add((u, v))
        session.apply([EdgeUpdate(u, v)])

        if step % 8 == 0:
            q = int(rng.integers(0, n))
            attribute = sorted(session.graph.attributes_of(q))[0]
            answer = session.query(CODQuery(q, attribute, 5))
            status = (
                f"|C*|={len(answer.members):4d} rank={answer.verified_rank}"
                if answer.found else "none"
            )
            print(f"step {step:3d}: q={q:4d} -> {status:22s} "
                  f"[{answer.source}; {session.updates_since_build} stale "
                  f"updates; {session.rebuild_count} rebuilds; "
                  f"{session.repair_count} repairs]")

    print(f"\nfinal: {session.rebuild_count} rebuilds, "
          f"{session.repair_count} repairs over 40 updates — every served "
          "community was certified top-k on the live graph.")


if __name__ == "__main__":
    main()
