"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper at a reduced
scale and prints the same rows/series the paper reports (run with ``-s``
or check the captured stdout). The scale knobs live here so a single edit
grows the whole harness toward paper-scale fidelity.
"""

from __future__ import annotations

import pytest

from repro.eval.experiments import ExperimentConfig

#: Workload used by most benchmarks: big enough for stable shapes, small
#: enough that the whole harness finishes in minutes.
BENCH_CONFIG = ExperimentConfig(
    n_queries=6,
    theta=8,
    ks=(1, 2, 3, 4, 5),
    seed=7,
    query_seed=3,
    eval_seed=11,
    scale=0.5,
    oracle_samples_per_node=50,
)

#: Smaller workload for the quadratic-cost comparisons (Fig. 8).
SMALL_CONFIG = ExperimentConfig(
    n_queries=4,
    theta=8,
    ks=(1, 2, 3, 4, 5),
    seed=7,
    query_seed=3,
    eval_seed=11,
    scale=0.35,
    oracle_samples_per_node=50,
)


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    return BENCH_CONFIG


@pytest.fixture(scope="session")
def small_config() -> ExperimentConfig:
    return SMALL_CONFIG
