"""Fig. 7: the effectiveness grid — |C*|, rho, phi, I(q) vs k for
{ACQ, ATC, CAC} x {CODU, CODR, CODL} on six datasets.

Paper shapes asserted below:
* COD methods return (much) larger characteristic communities than the
  community-search baselines (subfigures a-f);
* |C*| grows with k for the COD methods;
* the mean influence I(q) of answerable queries decreases with k
  (subfigures s-x).
"""

import numpy as np

from repro.eval.experiments import fig7_effectiveness
from repro.eval.reporting import render_table


def test_fig7(benchmark, bench_config):
    results = benchmark.pedantic(
        fig7_effectiveness,
        kwargs={"config": bench_config},
        rounds=1,
        iterations=1,
    )
    ks = bench_config.ks
    for measure, label in (
        ("size", "|C*| (a-f)"),
        ("rho", "rho (g-l)"),
        ("phi", "phi (m-r)"),
        ("influence", "I(q) (s-x)"),
    ):
        for name, per_method in results.items():
            methods = list(per_method)
            rows = [[k, *(per_method[m][k][measure] for m in methods)] for k in ks]
            print()
            print(render_table(
                f"Fig. 7 {label} — {name}", ["k", *methods], rows,
            ))

    # Shape assertions, aggregated over datasets to smooth query noise.
    def mean_over_datasets(method, k, measure):
        return float(np.mean([results[n][method][k][measure] for n in results]))

    # (1) COD methods find larger communities than ACQ/ATC/CAC at k = 5.
    cod_size = np.mean([mean_over_datasets(m, 5, "size")
                        for m in ("CODU", "CODR", "CODL")])
    base_size = np.mean([mean_over_datasets(m, 5, "size")
                         for m in ("ACQ", "ATC", "CAC")])
    assert cod_size > base_size

    # (2) |C*| non-decreasing in k for CODL.
    sizes = [mean_over_datasets("CODL", k, "size") for k in ks]
    assert all(a <= b + 1e-9 for a, b in zip(sizes, sizes[1:]))

    # (3) I(q) of answerable queries decreases (weakly) with k for CODL.
    influences = [mean_over_datasets("CODL", k, "influence") for k in ks]
    assert influences[-1] <= influences[0] + 1e-9
