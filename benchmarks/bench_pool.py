"""Ablation: shared RR pools vs per-query sampling (DESIGN.md extensions).

RR sampling is query-independent (Theorem 2), so a workload over one
graph can reuse one pool. This benchmark measures the workload-level
speedup of `CODU.discover_batch` (pooled) against the per-query default
and checks the answers stay consistent in aggregate.
"""

import time

import numpy as np

from repro.core.pipeline import CODU
from repro.core.problem import CODQuery
from repro.datasets.queries import generate_queries
from repro.datasets.registry import load_dataset
from repro.eval.reporting import render_table


def test_pool(benchmark, bench_config):
    def run():
        data = load_dataset("cora", scale=bench_config.scale,
                            seed=bench_config.seed)
        graph = data.graph
        queries = [
            CODQuery(q.node, q.attribute, 5)
            for q in generate_queries(graph, count=12,
                                      rng=bench_config.query_seed)
        ]
        pooled_pipeline = CODU(graph, theta=bench_config.theta,
                               seed=bench_config.eval_seed)
        _ = pooled_pipeline.hierarchy
        start = time.perf_counter()
        pooled = pooled_pipeline.discover_batch(queries)
        pooled_s = time.perf_counter() - start

        fresh_pipeline = CODU(graph, theta=bench_config.theta,
                              seed=bench_config.eval_seed)
        _ = fresh_pipeline.hierarchy
        start = time.perf_counter()
        fresh = [fresh_pipeline.discover(q) for q in queries]
        fresh_s = time.perf_counter() - start
        return {
            "queries": len(queries),
            "pooled_s": pooled_s,
            "fresh_s": fresh_s,
            "pooled_found": sum(1 for r in pooled if r.found),
            "fresh_found": sum(1 for r in fresh if r.found),
            "pooled_mean_size": float(np.mean([r.size for r in pooled])),
            "fresh_mean_size": float(np.mean([r.size for r in fresh])),
        }

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(render_table(
        "Shared RR pool vs per-query sampling (CODU, cora)",
        ["queries", "pooled (s)", "per-query (s)", "speedup",
         "found (pooled/fresh)", "mean |C*| (pooled/fresh)"],
        [[stats["queries"], stats["pooled_s"], stats["fresh_s"],
          stats["fresh_s"] / max(stats["pooled_s"], 1e-9),
          f"{stats['pooled_found']}/{stats['fresh_found']}",
          f"{stats['pooled_mean_size']:.1f}/{stats['fresh_mean_size']:.1f}"]],
        float_format="{:.3f}",
    ))
    # The pool amortizes sampling: at least ~3x on a 12-query workload.
    assert stats["pooled_s"] < stats["fresh_s"] / 3
    # Aggregate answer quality stays comparable.
    assert abs(stats["pooled_found"] - stats["fresh_found"]) <= 3
