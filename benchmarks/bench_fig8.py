"""Fig. 8: Compressed vs Independent evaluation on Cora and CiteSeer.

Paper shapes asserted below:
* Independent draws far more RR samples (theta * sum |C| vs theta * |V|)
  and is several times slower;
* Compressed top-k precision is equal or better;
* Compressed returns equal-or-smaller communities (sample-correlation
  effect discussed in Section V-C).
"""

import numpy as np

from repro.eval.experiments import fig8_compressed_vs_independent
from repro.eval.reporting import render_table


def test_fig8(benchmark, small_config):
    thetas = (4, 8, 16)
    results = benchmark.pedantic(
        fig8_compressed_vs_independent,
        kwargs={"names": ("cora", "citeseer"), "thetas": thetas,
                "config": small_config},
        rounds=1,
        iterations=1,
    )
    for name, per_variant in results.items():
        for metric, label in (
            ("precision", "top-k precision (a/d)"),
            ("size_mean", "avg |C*| (b/e)"),
            ("time", "time s (c/f)"),
            ("samples", "RR samples drawn"),
        ):
            rows = [
                [theta, per_variant["Compressed"][theta][metric],
                 per_variant["Independent"][theta][metric]]
                for theta in thetas
            ]
            print()
            print(render_table(
                f"Fig. 8 {label} — {name}",
                ["theta", "Compressed", "Independent"], rows,
                float_format="{:.4f}",
            ))

    for name in results:
        comp = results[name]["Compressed"]
        ind = results[name]["Independent"]
        # Sample-count blow-up of Independent at every theta.
        for theta in thetas:
            assert ind[theta]["samples"] > 2 * comp[theta]["samples"]
        # Wall-clock: Independent slower on average across thetas.
        assert np.mean([ind[t]["time"] for t in thetas]) > np.mean(
            [comp[t]["time"] for t in thetas]
        )
