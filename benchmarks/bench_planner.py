"""Batched planner vs sequential per-query serving on one CODServer.

Measures what the batch planner was built to amortize: a mixed-attribute
workload answered

* **sequentially** — a server with no sample pool, one
  :meth:`CODServer.answer` per query, drawing fresh RR samples for every
  compressed evaluation (the pre-planner ``answer_batch`` behaviour), vs
* **batched** — a server with a :class:`SharedSamplePool`, answering
  through :class:`BatchPlanner`: queries grouped by attribute, one
  materialized arena shared across every evaluation, restricted arenas
  derived from the pool per hierarchy vertex.

The HIMOR index build is identical on both sides and excluded
(``warm()`` before timing); the pool's one-off sampling cost is *included*
in the batched time, so the speedup is end-to-end honest. A third,
untimed pooled server answers the same workload sequentially to assert
the planner's bit-identity guarantee on this workload too.

The workload is **skewed**: ``--hot`` distinct (node, attribute) queries
drawn with replacement to fill ``--queries`` slots, modelling the
repeated popular queries of a real serving stream. Repetition is where
pooling pays: the sequential server re-samples a fresh restricted arena
for every occurrence, the pooled server restricts its arena once per
distinct hierarchy vertex and serves repeats from the bounded cache.
Pass ``--hot 0`` for an all-distinct workload (the pessimal case for
amortization — expect a speedup near 1x there).

Run standalone (not under pytest):

    PYTHONPATH=src python benchmarks/bench_planner.py            # full run
    PYTHONPATH=src python benchmarks/bench_planner.py --smoke    # CI-sized

The full run writes a ``BENCH_planner.json`` snapshot next to the repo
root and fails (exit 1) below a 2x batched speedup; ``--smoke`` only
validates agreement and prints timings.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.core.pool import SharedSamplePool
from repro.datasets.queries import generate_queries
from repro.datasets.registry import load_dataset
from repro.serving.planner import BatchPlanner
from repro.serving.server import CODServer


def _members(answer) -> "list[int] | None":
    return None if answer.members is None else [int(v) for v in answer.members]


def run(
    dataset: str,
    scale: float,
    theta: int,
    n_queries: int,
    k: int,
    seed: int,
    hot: int = 12,
    cache_capacity: int = 64,
) -> dict:
    data = load_dataset(dataset, scale=scale, seed=seed)
    graph = data.graph
    if hot and hot < n_queries:
        base = generate_queries(graph, count=hot, k=k, rng=seed + 1)
        draw = np.random.default_rng(seed + 3)
        picks = draw.integers(0, len(base), size=n_queries)
        queries = [base[int(i)] for i in picks]
    else:
        queries = generate_queries(graph, count=n_queries, k=k, rng=seed + 1)
    attributes = {q.attribute for q in queries}

    def make_server(pool: "SharedSamplePool | None") -> CODServer:
        return CODServer(
            graph,
            theta=theta,
            seed=seed,
            pool=pool,
            cache_capacity=cache_capacity,
        )

    sequential = make_server(pool=None)
    sequential.warm()
    start = time.perf_counter()
    seq_answers = sequential.answer_batch(queries)
    sequential_s = time.perf_counter() - start

    pool = SharedSamplePool(graph, theta=theta, seed=seed + 2)
    batched = make_server(pool=pool)
    batched.warm(pool=False)  # index excluded, pool sampling charged below
    planner = BatchPlanner(batched)
    start = time.perf_counter()
    batch_answers = planner.execute(queries)
    batched_s = time.perf_counter() - start

    # Bit-identity: a pooled server answering sequentially (same pool
    # seed, fresh caches) must produce exactly the planner's answers.
    oracle = make_server(pool=SharedSamplePool(graph, theta=theta, seed=seed + 2))
    oracle.warm(pool=False)
    identical = True
    for query, batch_answer in zip(queries, batch_answers):
        oracle_answer = oracle.answer(query)
        if (
            _members(oracle_answer) != _members(batch_answer)
            or oracle_answer.rung != batch_answer.rung
        ):
            identical = False
            break
    assert identical, "planner answers diverged from sequential pooled answers"

    plan = planner.last_plan
    health = batched.health()
    return {
        "config": {
            "dataset": dataset,
            "scale": scale,
            "n": graph.n,
            "edges": graph.m,
            "theta": theta,
            "queries": n_queries,
            "hot_set": hot if hot and hot < n_queries else n_queries,
            "distinct_queries": len({(q.node, q.attribute) for q in queries}),
            "distinct_attributes": len(attributes),
            "k": k,
            "seed": seed,
            "cache_capacity": cache_capacity,
        },
        "sequential": {
            "total_s": round(sequential_s, 4),
            "per_query_ms": round(1000.0 * sequential_s / n_queries, 3),
            "rungs": {a.rung: sum(1 for b in seq_answers if b.rung == a.rung)
                      for a in seq_answers},
        },
        "batched": {
            "total_s": round(batched_s, 4),
            "per_query_ms": round(1000.0 * batched_s / n_queries, 3),
            "groups": plan.n_groups if plan is not None else 0,
            "pool_samples": pool.n_samples,
            "caches": {
                name: {key: stats[key]
                       for key in ("hits", "misses", "evictions", "entries")}
                for name, stats in health["caches"].items()
            },
        },
        "speedup": round(sequential_s / max(batched_s, 1e-9), 2),
        "identical_to_sequential_pooled": identical,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny CI-sized run; no snapshot written")
    parser.add_argument("--dataset", type=str, default="cora")
    parser.add_argument("--scale", type=float, default=0.35)
    parser.add_argument("--theta", type=int, default=64)
    parser.add_argument("--queries", type=int, default=64)
    parser.add_argument("--hot", type=int, default=8,
                        help="distinct queries in the skewed workload "
                        "(0 = all distinct)")
    parser.add_argument("--k", type=int, default=2)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--out", type=Path,
                        default=Path(__file__).resolve().parent.parent
                        / "BENCH_planner.json")
    args = parser.parse_args(argv)

    if args.smoke:
        result = run(dataset="cora", scale=0.15, theta=2, n_queries=12,
                     k=args.k, seed=args.seed, hot=6)
    else:
        result = run(dataset=args.dataset, scale=args.scale, theta=args.theta,
                     n_queries=args.queries, k=args.k, seed=args.seed,
                     hot=args.hot)

    print(json.dumps(result, indent=2))
    speedup = result["speedup"]
    if args.smoke:
        # Smoke mode only proves bit-identity and that the script runs;
        # timing on a tiny graph under CI noise is not meaningful.
        print(f"smoke ok: answers bit-identical; speedup {speedup:.2f}x")
        return 0

    args.out.write_text(json.dumps(result, indent=2) + "\n")
    print(f"snapshot written to {args.out}")
    if speedup < 2.0:
        print(f"FAIL: batched speedup {speedup:.2f}x < 2x", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
