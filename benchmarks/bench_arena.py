"""Arena engine vs legacy dict sampler on the pool evaluation path.

Measures the two costs the flat CSR arena was built to cut:

* **sampling** — ``sample_arena`` vs materializing legacy ``RRGraph``
  dicts with ``sample_rr_graphs``;
* **evaluation** — multi-query compressed COD over one shared sample
  set: the vectorized arena HFS vs the legacy per-sample dict HFS.

Both paths consume the same RNG stream, so answers are compared
exactly, not statistically. Run standalone (not under pytest):

    PYTHONPATH=src python benchmarks/bench_arena.py            # full run
    PYTHONPATH=src python benchmarks/bench_arena.py --smoke    # CI-sized

The full run writes a ``BENCH_arena.json`` snapshot next to the repo
root; ``--smoke`` only validates agreement and prints timings.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.core.compressed import compressed_cod
from repro.datasets.synthetic import hierarchical_planted_partition
from repro.graph.graph import AttributedGraph
from repro.hierarchy.chain import CommunityChain
from repro.hierarchy.nnchain import agglomerative_hierarchy
from repro.influence.arena import sample_arena
from repro.influence.rr import sample_rr_graphs


def build_graph(n: int, seed: int) -> AttributedGraph:
    edges, _ = hierarchical_planted_partition(n, rng=seed)
    return AttributedGraph(n, edges)


def run(n: int, theta: int, n_queries: int, seed: int, k=(1, 5, 10)) -> dict:
    graph = build_graph(n, seed)
    hierarchy = agglomerative_hierarchy(graph)
    rng = np.random.default_rng(seed + 1)
    queries = [int(q) for q in rng.choice(n, size=n_queries, replace=False)]
    chains = [CommunityChain.from_hierarchy(hierarchy, q) for q in queries]
    count = theta * n

    start = time.perf_counter()
    legacy = list(sample_rr_graphs(graph, count, rng=seed))
    legacy_sample_s = time.perf_counter() - start

    start = time.perf_counter()
    arena = sample_arena(graph, count, rng=seed)
    arena_sample_s = time.perf_counter() - start

    start = time.perf_counter()
    legacy_evals = [
        compressed_cod(graph, chain, k=list(k), rr_graphs=legacy,
                       n_samples=count)
        for chain in chains
    ]
    legacy_eval_s = time.perf_counter() - start

    start = time.perf_counter()
    arena_evals = [
        compressed_cod(graph, chain, k=list(k), rr_graphs=arena,
                       n_samples=count)
        for chain in chains
    ]
    arena_eval_s = time.perf_counter() - start

    for a, b in zip(arena_evals, legacy_evals):
        assert a.query_counts == b.query_counts, "engines disagree on counts"
        assert a.thresholds == b.thresholds, "engines disagree on thresholds"

    return {
        "config": {
            "n": n,
            "edges": graph.m,
            "theta": theta,
            "samples": count,
            "queries": n_queries,
            "k": list(k),
            "seed": seed,
        },
        "sampling": {
            "legacy_s": round(legacy_sample_s, 4),
            "arena_s": round(arena_sample_s, 4),
            "speedup": round(legacy_sample_s / max(arena_sample_s, 1e-9), 2),
        },
        "pool_evaluation": {
            "legacy_s": round(legacy_eval_s, 4),
            "arena_s": round(arena_eval_s, 4),
            "speedup": round(legacy_eval_s / max(arena_eval_s, 1e-9), 2),
        },
        "end_to_end": {
            "legacy_s": round(legacy_sample_s + legacy_eval_s, 4),
            "arena_s": round(arena_sample_s + arena_eval_s, 4),
            "speedup": round(
                (legacy_sample_s + legacy_eval_s)
                / max(arena_sample_s + arena_eval_s, 1e-9), 2
            ),
        },
        "arena_memory_bytes": arena.memory_bytes(),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny CI-sized run; no snapshot written")
    parser.add_argument("--n", type=int, default=2000)
    parser.add_argument("--theta", type=int, default=10)
    parser.add_argument("--queries", type=int, default=20)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--out", type=Path,
                        default=Path(__file__).resolve().parent.parent
                        / "BENCH_arena.json")
    args = parser.parse_args(argv)

    if args.smoke:
        result = run(n=200, theta=3, n_queries=4, seed=args.seed)
    else:
        result = run(n=args.n, theta=args.theta, n_queries=args.queries,
                     seed=args.seed)

    print(json.dumps(result, indent=2))
    speedup = result["pool_evaluation"]["speedup"]
    if args.smoke:
        # Smoke mode only proves the engines agree and the script runs;
        # timing on a tiny graph under CI noise is not meaningful.
        print(f"smoke ok: engines agree; eval speedup {speedup:.2f}x")
        return 0

    args.out.write_text(json.dumps(result, indent=2) + "\n")
    print(f"snapshot written to {args.out}")
    if speedup < 3.0:
        print(f"FAIL: pool evaluation speedup {speedup:.2f}x < 3x", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
