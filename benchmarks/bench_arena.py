"""Arena engine vs legacy dict sampler on the pool evaluation path.

Measures the three costs the RR sampling stack has been rebuilt around:

* **sampling (compatible)** — ``sample_arena`` vs materializing legacy
  ``RRGraph`` dicts with ``sample_rr_graphs``; both consume the same RNG
  stream, so their outputs are compared exactly (a digest gate runs
  before any timing — see below).
* **sampling (fast)** — ``sample_arena_fast``, the stream-incompatible
  vectorized batch kernel. Its correctness story is statistical
  (``tests/oracle/test_statistical.py``), so this benchmark only times
  it and sanity-checks its output shape.
* **evaluation** — multi-query compressed COD over one shared sample
  set: the vectorized arena HFS vs the legacy per-sample dict HFS.

Every timing arm reseeds its own generator (``np.random.default_rng``)
so arms stay identical when run independently or reordered; before any
clock starts, the legacy and compatible arena arms are drawn once at a
reduced count and their sample digests are asserted equal — if the
stream contract drifts, the run aborts instead of timing two different
workloads. Run standalone (not under pytest):

    PYTHONPATH=src python benchmarks/bench_arena.py            # full run
    PYTHONPATH=src python benchmarks/bench_arena.py --smoke    # CI-sized

The full run writes a ``BENCH_arena.json`` snapshot next to the repo
root; ``--smoke`` validates agreement, prints timings, and asserts the
fast path is not slower than the compatible one.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.core.compressed import compressed_cod
from repro.datasets.synthetic import hierarchical_planted_partition
from repro.graph.graph import AttributedGraph
from repro.hierarchy.chain import CommunityChain
from repro.hierarchy.nnchain import agglomerative_hierarchy
from repro.influence.arena import sample_arena
from repro.influence.fastsample import sample_arena_fast
from repro.influence.rr import sample_rr_graphs

#: Samples drawn (per arm, untimed) for the pre-timing digest gate.
DIGEST_GATE_COUNT = 2_000

#: Repeats per sampling arm; the minimum is reported. Sampling arms are
#: short enough that scheduler noise on a loaded box can swamp a single
#: measurement — best-of-N is the standard antidote.
SAMPLING_REPEATS = 3


def _best_of(repeats: int, fn):
    """Return ``(min_seconds, last_result)`` over ``repeats`` calls."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def build_graph(n: int, seed: int) -> AttributedGraph:
    edges, _ = hierarchical_planted_partition(n, rng=seed)
    return AttributedGraph(n, edges)


def _digest(samples) -> str:
    """Canonical SHA-256 over sources, RR-set order, and adjacencies.

    Mirrors ``tests/oracle/reference.digest_samples`` (kept local so the
    benchmark runs without the test tree on ``sys.path``).
    """
    h = hashlib.sha256()
    stream: list[int] = []
    for item in samples:
        stream.append(int(item.source))
        adjacency = item.adjacency
        stream.append(len(adjacency))
        for v, targets in adjacency.items():
            stream.append(int(v))
            stream.append(len(targets))
            stream.extend(int(u) for u in targets)
    h.update(np.asarray(stream, dtype=np.int64).tobytes())
    return h.hexdigest()


def _assert_compatible_digests(graph: AttributedGraph, count: int, seed: int):
    """Abort before timing if the legacy/arena stream contract drifted."""
    legacy = list(
        sample_rr_graphs(graph, count, rng=np.random.default_rng(seed))
    )
    arena = sample_arena(graph, count, rng=np.random.default_rng(seed))
    legacy_hex = _digest(legacy)
    arena_hex = _digest(list(arena))
    assert legacy_hex == arena_hex, (
        f"compatible-path digest mismatch before timing: legacy "
        f"{legacy_hex[:12]} vs arena {arena_hex[:12]} — the two arms "
        f"would not sample identical streams"
    )


def run(n: int, theta: int, n_queries: int, seed: int, k=(1, 5, 10)) -> dict:
    graph = build_graph(n, seed)
    hierarchy = agglomerative_hierarchy(graph)
    rng = np.random.default_rng(seed + 1)
    queries = [int(q) for q in rng.choice(n, size=n_queries, replace=False)]
    chains = [CommunityChain.from_hierarchy(hierarchy, q) for q in queries]
    count = theta * n

    _assert_compatible_digests(graph, min(count, DIGEST_GATE_COUNT), seed)

    # Each arm reseeds its own generator inside the timed callable:
    # timings stay comparable when arms are reordered or run in
    # isolation, and every repeat draws the identical stream.
    legacy_sample_s, legacy = _best_of(
        SAMPLING_REPEATS,
        lambda: list(
            sample_rr_graphs(graph, count, rng=np.random.default_rng(seed))
        ),
    )

    arena_sample_s, arena = _best_of(
        SAMPLING_REPEATS,
        lambda: sample_arena(graph, count, rng=np.random.default_rng(seed)),
    )

    fast_sample_s, fast = _best_of(
        SAMPLING_REPEATS,
        lambda: sample_arena_fast(
            graph, count, rng=np.random.default_rng(seed)
        ),
    )
    assert fast.n_samples == count

    start = time.perf_counter()
    legacy_evals = [
        compressed_cod(graph, chain, k=list(k), rr_graphs=legacy,
                       n_samples=count)
        for chain in chains
    ]
    legacy_eval_s = time.perf_counter() - start

    start = time.perf_counter()
    arena_evals = [
        compressed_cod(graph, chain, k=list(k), rr_graphs=arena,
                       n_samples=count)
        for chain in chains
    ]
    arena_eval_s = time.perf_counter() - start

    start = time.perf_counter()
    fast_evals = [
        compressed_cod(graph, chain, k=list(k), rr_graphs=fast,
                       n_samples=count)
        for chain in chains
    ]
    fast_eval_s = time.perf_counter() - start

    for a, b in zip(arena_evals, legacy_evals):
        assert a.query_counts == b.query_counts, "engines disagree on counts"
        assert a.thresholds == b.thresholds, "engines disagree on thresholds"
    # The fast arm shares no stream with the others; its answers are
    # pinned statistically in tests/oracle. Here we only require it to
    # have evaluated every chain.
    assert len(fast_evals) == len(chains)

    legacy_e2e = legacy_sample_s + legacy_eval_s
    arena_e2e = arena_sample_s + arena_eval_s
    fast_e2e = fast_sample_s + fast_eval_s

    return {
        "config": {
            "n": n,
            "edges": graph.m,
            "theta": theta,
            "samples": count,
            "queries": n_queries,
            "k": list(k),
            "seed": seed,
            "sampling_timing": f"best of {SAMPLING_REPEATS}",
        },
        "sampling": {
            "legacy_s": round(legacy_sample_s, 4),
            "arena_s": round(arena_sample_s, 4),
            "speedup": round(legacy_sample_s / max(arena_sample_s, 1e-9), 2),
        },
        "sampling_fast": {
            "fast_s": round(fast_sample_s, 4),
            "speedup_vs_legacy": round(
                legacy_sample_s / max(fast_sample_s, 1e-9), 2
            ),
            "speedup_vs_compatible": round(
                arena_sample_s / max(fast_sample_s, 1e-9), 2
            ),
        },
        "pool_evaluation": {
            "legacy_s": round(legacy_eval_s, 4),
            "arena_s": round(arena_eval_s, 4),
            "speedup": round(legacy_eval_s / max(arena_eval_s, 1e-9), 2),
        },
        "end_to_end": {
            "legacy_s": round(legacy_e2e, 4),
            "arena_s": round(arena_e2e, 4),
            "speedup": round(legacy_e2e / max(arena_e2e, 1e-9), 2),
        },
        "end_to_end_fast": {
            "fast_s": round(fast_e2e, 4),
            "speedup_vs_legacy": round(legacy_e2e / max(fast_e2e, 1e-9), 2),
        },
        "arena_memory_bytes": arena.memory_bytes(),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny CI-sized run; no snapshot written")
    parser.add_argument("--n", type=int, default=2000)
    parser.add_argument("--theta", type=int, default=10)
    parser.add_argument("--queries", type=int, default=20)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--out", type=Path,
                        default=Path(__file__).resolve().parent.parent
                        / "BENCH_arena.json")
    args = parser.parse_args(argv)

    if args.smoke:
        # Sized so the vectorized fast path's fixed overheads are
        # amortized (at ~600 samples they dominate and the comparison
        # is meaningless) while the whole run stays CI-cheap.
        result = run(n=400, theta=10, n_queries=4, seed=args.seed)
    else:
        result = run(n=args.n, theta=args.theta, n_queries=args.queries,
                     seed=args.seed)

    print(json.dumps(result, indent=2))
    speedup = result["pool_evaluation"]["speedup"]
    fast_vs_legacy = result["sampling_fast"]["speedup_vs_legacy"]
    fast_vs_compat = result["sampling_fast"]["speedup_vs_compatible"]
    if args.smoke:
        # Smoke mode proves the engines agree and the script runs; exact
        # speedups on a tiny graph under CI noise are not meaningful, but
        # the fast path must at least not be *slower* than the
        # compatible sampler it replaces.
        if fast_vs_compat < 1.0:
            print(
                f"FAIL: fast sampler slower than compatible on smoke "
                f"config ({fast_vs_compat:.2f}x)",
                file=sys.stderr,
            )
            return 1
        print(f"smoke ok: engines agree; eval speedup {speedup:.2f}x; "
              f"fast sampling {fast_vs_compat:.2f}x vs compatible")
        return 0

    args.out.write_text(json.dumps(result, indent=2) + "\n")
    print(f"snapshot written to {args.out}")
    failed = False
    if speedup < 3.0:
        print(f"FAIL: pool evaluation speedup {speedup:.2f}x < 3x",
              file=sys.stderr)
        failed = True
    if fast_vs_legacy < 5.0:
        print(f"FAIL: fast sampling speedup {fast_vs_legacy:.2f}x < 5x vs "
              f"legacy", file=sys.stderr)
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
