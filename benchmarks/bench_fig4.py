"""Fig. 4: mean size of the 5 deepest communities containing a query node.

Paper shape: the CODU (non-attributed) and CODR (global reclustering)
hierarchies produce large deepest communities on the hub-dominated
datasets (PubMed, Retweet), while CODL's local reclustering produces
smaller ones. Our synthetic analogues reproduce the dataset ordering
(retweet >> cora) and CODL <= CODU on the skewed dataset; the CODU/CODR
gap magnitude is generator-dependent (see EXPERIMENTS.md).
"""

from repro.eval.experiments import fig4_hierarchy_skew
from repro.eval.reporting import render_table


def test_fig4(benchmark, bench_config):
    results = benchmark.pedantic(
        fig4_hierarchy_skew,
        kwargs={"config": bench_config},
        rounds=1,
        iterations=1,
    )
    methods = ("CODU", "CODR", "CODL")
    print()
    print(render_table(
        "Fig. 4: mean size of 5-deepest communities",
        ["dataset", *methods],
        [[name, *(results[name][m] for m in methods)] for name in results],
        float_format="{:.1f}",
    ))
    # Shape: hub datasets dominate the planted-partition ones for the
    # non-attributed hierarchy, and CODL does not exceed CODU there.
    assert results["retweet"]["CODU"] > results["cora"]["CODU"]
    assert results["retweet"]["CODL"] <= results["retweet"]["CODU"]
