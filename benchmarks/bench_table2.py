"""Table II: HIMOR construction time and memory vs input size.

Paper shapes asserted below: construction succeeds on every dataset with
index memory within a small constant of the input size, and the
skew-hierarchy dataset (retweet) pays disproportionally more construction
time per node than the balanced one (the sum-of-depths term of Theorem 6).
"""

from repro.eval.experiments import table2_himor_overhead
from repro.eval.reporting import render_table


def test_table2(benchmark, bench_config):
    rows = benchmark.pedantic(
        table2_himor_overhead,
        kwargs={"names": ("cora", "citeseer", "pubmed", "retweet",
                          "amazon", "dblp"),
                "config": bench_config},
        rounds=1,
        iterations=1,
    )
    print()
    print(render_table(
        "Table II: HIMOR index overhead",
        ["dataset", "time (s)", "index (MB)", "input (MB)", "mean depth"],
        [[r["dataset"], r["time_s"], r["index_mb"], r["input_mb"],
          r["mean_depth"]] for r in rows],
        float_format="{:.3f}",
    ))
    by_name = {r["dataset"]: r for r in rows}
    for r in rows:
        assert r["index_mb"] > 0
        # Index memory stays within a small constant of the input.
        assert r["index_mb"] < 20 * r["input_mb"]
    # The skewed hierarchy costs more per node (Theorem 6's sum-dep term).
    assert by_name["retweet"]["mean_depth"] > by_name["cora"]["mean_depth"]
