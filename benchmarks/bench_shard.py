"""Shard-affinity dispatch vs plain shared-pool fleet serving.

Measures what restricted-shard publication was built to eliminate:
per-worker ``RRArena.restrict`` work. Both sides run the same skewed
workload through a :class:`ServingSupervisor` fleet over one shared
sample pool:

* **baseline** — ``shared_pool=True`` with sharding disabled
  (``shard_attributes=None``): every worker that hits CODL's restricted
  local fallback restricts the full shared arena itself, so the same
  per-attribute restriction is recomputed once per worker that serves
  the attribute.
* **sharded** — ``shard_attributes="auto"``: the supervisor restricts
  the arena **once** per hot attribute, publishes the result as a
  ``rr-shard`` shared-memory segment, and dispatch routes the
  attribute's queries to the worker with the shard mapped; workers
  attach instead of restricting.

The gate metric is the fleet total of each worker server's
``local_restricts`` counter (actual ``pool.restricted()`` builds
executed), averaged per worker: the sharded fleet must do **>= 2x
less** restrict work per worker than the baseline, with every answer
bit-identical (shards are exact restrictions, verified by
``allowed_sha`` before being served — see ``CODServer._attach_shard``).

The workload is the planner benchmark's skewed shape: ``--hot``
distinct (node, attribute) queries drawn with replacement to fill
``--queries`` slots.

Run standalone (not under pytest):

    PYTHONPATH=src python benchmarks/bench_shard.py            # full run
    PYTHONPATH=src python benchmarks/bench_shard.py --smoke    # CI-sized

The full run writes a ``BENCH_shard.json`` snapshot next to the repo
root and fails (exit 1) below the 2x restrict-work reduction;
``--smoke`` only validates bit-identity and shard publication.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.datasets.queries import generate_queries
from repro.datasets.registry import load_dataset
from repro.serving.supervisor import ServingSupervisor
from repro.utils.shm import close_all_segments, list_segments


def _members(answer) -> "list[int] | None":
    return None if answer.members is None else [int(v) for v in answer.members]


def _run_fleet(
    graph,
    queries,
    *,
    n_workers: int,
    theta: int,
    seed: int,
    shard_attributes,
    shard_hot_threshold: int,
) -> dict:
    supervisor = ServingSupervisor(
        graph,
        n_workers=n_workers,
        server_options={"theta": theta, "seed": seed},
        shared_pool=True,
        pool_seeded=True,
        shard_attributes=shard_attributes,
        shard_hot_threshold=shard_hot_threshold,
        warm_index=False,
        heartbeat_interval_s=0.02,
    )
    start = time.perf_counter()
    with supervisor:
        answers = supervisor.serve(queries, drain_timeout_s=600.0)
        health = supervisor.health()
    elapsed = time.perf_counter() - start

    restricts = 0
    shard_hits = shard_attaches = 0
    for info in health["workers"].values():
        worker_health = info.get("health")
        if not worker_health:
            continue
        shards = worker_health.get("shards", {})
        restricts += int(shards.get("local_restricts", 0))
        shard_hits += int(shards.get("hits", 0))
        shard_attaches += int(shards.get("attaches", 0))
    return {
        "answers": answers,
        "health": health,
        "total_s": elapsed,
        "local_restricts": restricts,
        "restricts_per_worker": restricts / n_workers,
        "worker_shard_hits": shard_hits,
        "worker_shard_attaches": shard_attaches,
    }


def run(
    dataset: str,
    scale: float,
    theta: int,
    n_queries: int,
    k: int,
    seed: int,
    hot: int = 8,
    n_workers: int = 4,
    shard_hot_threshold: int = 2,
) -> dict:
    data = load_dataset(dataset, scale=scale, seed=seed)
    graph = data.graph
    if hot and hot < n_queries:
        base = generate_queries(graph, count=hot, k=k, rng=seed + 1)
        draw = np.random.default_rng(seed + 3)
        picks = draw.integers(0, len(base), size=n_queries)
        queries = [base[int(i)] for i in picks]
    else:
        queries = generate_queries(graph, count=n_queries, k=k, rng=seed + 1)

    baseline = _run_fleet(
        graph,
        queries,
        n_workers=n_workers,
        theta=theta,
        seed=seed,
        shard_attributes=None,
        shard_hot_threshold=shard_hot_threshold,
    )
    sharded = _run_fleet(
        graph,
        queries,
        n_workers=n_workers,
        theta=theta,
        seed=seed,
        shard_attributes="auto",
        shard_hot_threshold=shard_hot_threshold,
    )

    identical = all(
        _members(a) == _members(b) and a.rung == b.rung
        for a, b in zip(baseline["answers"], sharded["answers"])
    )
    assert identical, "sharded fleet answers diverged from the baseline fleet"
    leaked = list_segments()
    assert not leaked, f"segments leaked after shutdown: {leaked}"

    shard_block = sharded["health"]["shm"]["shards"]
    affinity = sharded["health"]["affinity"]
    reduction = baseline["restricts_per_worker"] / max(
        sharded["restricts_per_worker"], 1e-9
    )
    return {
        "config": {
            "dataset": dataset,
            "scale": scale,
            "n": graph.n,
            "edges": graph.m,
            "theta": theta,
            "queries": n_queries,
            "hot_set": hot if hot and hot < n_queries else n_queries,
            "distinct_queries": len({(q.node, q.attribute) for q in queries}),
            "distinct_attributes": len({q.attribute for q in queries}),
            "k": k,
            "seed": seed,
            "workers": n_workers,
            "shard_hot_threshold": shard_hot_threshold,
        },
        "baseline": {
            "total_s": round(baseline["total_s"], 4),
            "local_restricts": baseline["local_restricts"],
            "restricts_per_worker": round(baseline["restricts_per_worker"], 2),
        },
        "sharded": {
            "total_s": round(sharded["total_s"], 4),
            "local_restricts": sharded["local_restricts"],
            "restricts_per_worker": round(sharded["restricts_per_worker"], 2),
            "shards_published": len(shard_block["published"]),
            "shard_bytes": shard_block["bytes"],
            "worker_shard_attaches": sharded["worker_shard_attaches"],
            "worker_shard_hits": sharded["worker_shard_hits"],
            "dispatch_shard_hits": affinity["shard_hits"],
            "dispatch_shard_misses": affinity["shard_misses"],
        },
        "restrict_reduction": round(reduction, 2),
        "identical_to_baseline": identical,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny CI-sized run; no snapshot written")
    parser.add_argument("--dataset", type=str, default="cora")
    parser.add_argument("--scale", type=float, default=0.35)
    parser.add_argument("--theta", type=int, default=16)
    parser.add_argument("--queries", type=int, default=64)
    parser.add_argument("--hot", type=int, default=8,
                        help="distinct queries in the skewed workload "
                        "(0 = all distinct)")
    parser.add_argument("--k", type=int, default=2)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--out", type=Path,
                        default=Path(__file__).resolve().parent.parent
                        / "BENCH_shard.json")
    args = parser.parse_args(argv)

    try:
        if args.smoke:
            result = run(dataset="cora", scale=0.1, theta=3, n_queries=12,
                         k=args.k, seed=args.seed, hot=4, n_workers=2)
        else:
            result = run(dataset=args.dataset, scale=args.scale,
                         theta=args.theta, n_queries=args.queries, k=args.k,
                         seed=args.seed, hot=args.hot, n_workers=args.workers)
    finally:
        close_all_segments()

    print(json.dumps(result, indent=2))
    reduction = result["restrict_reduction"]
    if args.smoke:
        # Smoke mode only proves bit-identity, shard publication, and no
        # leaks; restrict ratios on a tiny graph are not meaningful.
        if result["sharded"]["shards_published"] < 1:
            print("FAIL: smoke run published no shards", file=sys.stderr)
            return 1
        print(f"smoke ok: answers bit-identical; "
              f"restrict reduction {reduction:.2f}x")
        return 0

    args.out.write_text(json.dumps(result, indent=2) + "\n")
    print(f"snapshot written to {args.out}")
    if reduction < 2.0:
        print(f"FAIL: per-worker restrict reduction {reduction:.2f}x < 2x",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
