"""Fig. 9: COD query runtime — CODR vs CODL- vs CODL.

Paper shapes asserted below: CODL is the fastest (it reclusters locally
and evaluates only inside C_l via the HIMOR index); CODR is the slowest
(global reclustering per query); the CODL speedup over CODR grows with
graph size (up to 25x in the paper).
"""

import numpy as np

from repro.eval.experiments import fig9_runtime
from repro.eval.reporting import render_table


def test_fig9(benchmark, bench_config):
    results = benchmark.pedantic(
        fig9_runtime,
        kwargs={"config": bench_config},
        rounds=1,
        iterations=1,
    )
    methods = ("CODR", "CODL-", "CODL")
    print()
    print(render_table(
        "Fig. 9: mean COD query runtime (seconds)",
        ["dataset", *methods, "CODR/CODL"],
        [[name, *(results[name][m] for m in methods),
          results[name]["CODR"] / max(results[name]["CODL"], 1e-9)]
         for name in results],
        float_format="{:.4f}",
    ))
    speedups = []
    for name, timing in results.items():
        # CODL must beat CODR on every dataset; CODL- sits in between on
        # average (it skips global reclustering but pays full evaluation).
        assert timing["CODL"] < timing["CODR"], name
        speedups.append(timing["CODR"] / max(timing["CODL"], 1e-9))
    assert np.mean(speedups) > 2.0
    mean_minus = np.mean([results[n]["CODL-"] for n in results])
    mean_codr = np.mean([results[n]["CODR"] for n in results])
    assert mean_minus < mean_codr
