"""Ablation: hierarchy rebalancing (the paper's future-work pointer).

The paper notes HIMOR construction is linear in ``sum_v dep(v)`` and that
a balanced hierarchical clustering method can be plugged in to tame the
skew (its Table II discussion and ref. [60]). This benchmark measures the
effect of :func:`repro.hierarchy.balance.rebalanced_hierarchy` on the two
skewed datasets: the depth sum must drop substantially on hub-dominated
hierarchies and stay put on already balanced ones.
"""

from repro.datasets.registry import load_dataset
from repro.eval.reporting import render_table
from repro.hierarchy.balance import rebalanced_hierarchy
from repro.hierarchy.nnchain import agglomerative_hierarchy


def test_balance(benchmark, bench_config):
    def run():
        rows = []
        for name in ("cora", "pubmed", "retweet"):
            data = load_dataset(name, scale=bench_config.scale,
                                seed=bench_config.seed)
            skewed = agglomerative_hierarchy(data.graph)
            balanced = rebalanced_hierarchy(skewed)
            rows.append(
                {
                    "dataset": name,
                    "sum_dep": skewed.total_leaf_depth(),
                    "sum_dep_balanced": balanced.total_leaf_depth(),
                    "reduction": skewed.total_leaf_depth()
                    / balanced.total_leaf_depth(),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(render_table(
        "Hierarchy rebalancing: sum of leaf depths (HIMOR's cost term)",
        ["dataset", "sum dep(v)", "rebalanced", "reduction"],
        [[r["dataset"], r["sum_dep"], r["sum_dep_balanced"], r["reduction"]]
         for r in rows],
        float_format="{:.2f}",
    ))
    by_name = {r["dataset"]: r for r in rows}
    # The skewed datasets benefit substantially; cora (already near
    # balanced) changes little.
    assert by_name["retweet"]["reduction"] > 1.5
    assert by_name["pubmed"]["reduction"] > 1.2
    assert by_name["cora"]["reduction"] < 1.3
