"""Ablation: LORE design choices (reclustering-score variant and g_l
weighting scheme), as indexed in DESIGN.md §4.

Printed for inspection; asserted only to produce valid aggregates for
every variant (the ranking between variants is data-dependent).
"""

from repro.eval.experiments import ablation_lore
from repro.eval.reporting import render_table


def test_ablation(benchmark, small_config):
    results = benchmark.pedantic(
        ablation_lore,
        kwargs={"names": ("cora", "citeseer"), "config": small_config},
        rounds=1,
        iterations=1,
    )
    for name, per_variant in results.items():
        print()
        print(render_table(
            f"LORE ablation — {name}",
            ["variant", "mean |C*|", "mean phi", "found rate"],
            [[variant, stats["size"], stats["phi"], stats["found"]]
             for variant, stats in per_variant.items()],
        ))
    for per_variant in results.values():
        assert set(per_variant) == {
            "depth+both_endpoints", "count+both_endpoints",
            "depth+endpoint_average", "depth+jaccard",
        }
        for stats in per_variant.values():
            assert 0.0 <= stats["found"] <= 1.0
            assert 0.0 <= stats["phi"] <= 1.0
