"""Scalability test on the largest dataset (paper: LiveJournal).

Paper shape: the fully optimized CODL handles queries on the largest
graph within the time limit while CODR (global reclustering per query)
does not — reproduced here as a large per-query speedup on the
livejournal analogue, alongside the HIMOR build-once cost.
"""

import numpy as np

from repro.core.pipeline import CODL, CODR
from repro.core.problem import CODQuery
from repro.datasets.queries import generate_queries
from repro.datasets.registry import load_dataset
from repro.eval.reporting import render_table


def test_scalability(benchmark, bench_config):
    def run():
        data = load_dataset("livejournal", scale=bench_config.scale,
                            seed=bench_config.seed)
        graph = data.graph
        queries = generate_queries(graph, count=4, rng=bench_config.query_seed)
        codl = CODL(graph, theta=bench_config.theta, seed=bench_config.eval_seed)
        _ = codl.index  # one-time cost, reported separately
        codr = CODR(graph, cache_hierarchies=False,
                    theta=bench_config.theta, seed=bench_config.eval_seed)
        codl_times, codr_times = [], []
        for query in queries:
            q = CODQuery(query.node, query.attribute, 5)
            codl_times.append(codl.discover(q).elapsed)
            codr_times.append(codr.discover(q).elapsed)
        return {
            "n": graph.n,
            "m": graph.m,
            "index_build_s": codl.index_build_seconds,
            "codl_query_s": float(np.mean(codl_times)),
            "codr_query_s": float(np.mean(codr_times)),
        }

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(render_table(
        "Scalability (livejournal analogue)",
        ["|V|", "|E|", "HIMOR build (s)", "CODL query (s)", "CODR query (s)",
         "speedup"],
        [[stats["n"], stats["m"], stats["index_build_s"],
          stats["codl_query_s"], stats["codr_query_s"],
          stats["codr_query_s"] / max(stats["codl_query_s"], 1e-9)]],
        float_format="{:.3f}",
    ))
    # The paper's qualitative claim: only CODL stays within budget.
    assert stats["codl_query_s"] < stats["codr_query_s"] / 3
