"""Shared-memory fleet vs per-worker private pools: memory and cold-start.

The supervisor can materialize one RR-sample arena, publish graph +
arena as shared-memory segments, and let every worker attach read-only
(``--shared-pool``). This benchmark measures what that buys at fleet
scale against the per-worker baseline (each worker draws its own
private pool):

* **fleet arena memory** — shared mode pays for one segment regardless
  of fleet size; private mode pays ``n_workers`` copies. The issue's
  acceptance bound: a 4-worker shared fleet's total arena bytes stay
  within 1.25x of a single worker's.
* **cold-start** — wall time from ``start()`` to the first served
  batch. Shared workers attach instead of resampling.
* **bit-identity** — at every fleet size, shared answers must equal the
  per-worker-pool fleet's answers exactly (the supervisor's builder
  pool mirrors the worker pool config, and per-sample seeding makes the
  sharded draw order-independent).

Per-worker RSS (``/proc/<pid>/status`` VmRSS) is recorded as an
informative side channel; it includes the interpreter and graph, so the
arena-byte accounting is the honest comparison.

Run standalone (not under pytest):

    PYTHONPATH=src python benchmarks/bench_shm.py           # full run
    PYTHONPATH=src python benchmarks/bench_shm.py --smoke   # CI-sized

The full run writes ``BENCH_shm.json`` next to the repo root and fails
(exit 1) if answers diverge or the 4-worker memory bound is missed;
``--smoke`` validates bit-identity at 1 and 2 workers only.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.core.problem import CODQuery
from repro.datasets.queries import generate_queries
from repro.datasets.registry import load_dataset
from repro.serving import BackoffPolicy, ServingSupervisor
from repro.utils.shm import list_segments

FAST = dict(
    task_timeout_s=30.0,
    heartbeat_timeout_s=30.0,
    start_timeout_s=120.0,
    restart_backoff=BackoffPolicy(base_s=0.05, factor=2.0, cap_s=0.5,
                                  jitter=0.0),
)


def read_rss_kib(pid: int) -> "int | None":
    """VmRSS of a live process in KiB, or None off-Linux."""
    try:
        with open(f"/proc/{pid}/status", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1])
    except OSError:
        return None
    return None


def members(answers) -> list:
    return [
        None if a.members is None else [int(v) for v in a.members]
        for a in answers
    ]


def run_fleet(graph, queries, *, n_workers: int, shared: bool,
              theta: int, seed: int) -> dict:
    """One fleet run: cold-start timing, answers, memory accounting."""
    supervisor = ServingSupervisor(
        graph,
        n_workers=n_workers,
        shared_pool=shared,
        pool_seeded=True,
        warm_index=False,
        server_options={"theta": theta, "seed": seed},
        **FAST,
    )
    start = time.perf_counter()
    supervisor.start()
    answers = supervisor.serve(queries, drain_timeout_s=300.0)
    cold_start_s = time.perf_counter() - start
    try:
        health = supervisor.health()
        rss = [
            read_rss_kib(slot.proc.pid)
            for slot in supervisor._slots
            if slot.proc is not None and slot.proc.is_alive()
        ]
        worker_arena_bytes = []
        for worker in health["workers"].values():
            pool = (worker["health"] or {}).get("pool") or {}
            worker_arena_bytes.append(int(pool.get("arena_bytes", 0)))
        if shared:
            shm = health["shm"]
            segment_bytes = shm["segment_bytes"]
            # One shared arena segment serves the whole fleet: count it
            # once, no matter how many workers attached it.
            fleet_arena_bytes = shm["segments"]["arena"]["bytes"]
            attaches = shm["attaches"]
        else:
            segment_bytes = 0
            fleet_arena_bytes = sum(worker_arena_bytes)
            attaches = 0
    finally:
        supervisor.shutdown()
    return {
        "workers": n_workers,
        "cold_start_s": round(cold_start_s, 4),
        "fleet_arena_bytes": int(fleet_arena_bytes),
        "worker_arena_bytes": worker_arena_bytes,
        "segment_bytes": int(segment_bytes),
        "attaches": int(attaches),
        "worker_rss_kib": [r for r in rss if r is not None],
        "answers": members(answers),
    }


def run(*, dataset: str, scale: float, theta: int, seed: int,
        n_queries: int, worker_counts: "list[int]") -> dict:
    data = load_dataset(dataset, scale=scale, seed=seed)
    graph = data.graph
    queries = [
        CODQuery(q.node, q.attribute, 5)
        for q in generate_queries(graph, count=n_queries, rng=seed)
    ]

    rows = []
    baseline_arena = None
    for n_workers in worker_counts:
        shared = run_fleet(graph, queries, n_workers=n_workers, shared=True,
                           theta=theta, seed=seed)
        private = run_fleet(graph, queries, n_workers=n_workers, shared=False,
                            theta=theta, seed=seed)
        identical = shared.pop("answers") == private.pop("answers")
        if baseline_arena is None:
            # A single private worker's arena: the issue's memory yardstick.
            baseline_arena = max(private["fleet_arena_bytes"], 1)
        rows.append({
            "workers": n_workers,
            "identical_answers": identical,
            "shared": shared,
            "private": private,
            "shared_memory_ratio_vs_one_worker": round(
                shared["fleet_arena_bytes"] / baseline_arena, 3
            ),
            "private_memory_ratio_vs_one_worker": round(
                private["fleet_arena_bytes"] / baseline_arena, 3
            ),
        })
        print(
            f"workers={n_workers}: identical={identical} "
            f"shared arena={shared['fleet_arena_bytes']}B "
            f"({rows[-1]['shared_memory_ratio_vs_one_worker']}x of one "
            f"worker) vs private={private['fleet_arena_bytes']}B; "
            f"cold-start shared={shared['cold_start_s']}s "
            f"private={private['cold_start_s']}s",
            file=sys.stderr,
        )

    leftovers = [entry["name"] for entry in list_segments()]
    return {
        "config": {
            "dataset": dataset,
            "scale": scale,
            "n": graph.n,
            "edges": graph.m,
            "theta": theta,
            "seed": seed,
            "queries": n_queries,
            "worker_counts": worker_counts,
        },
        "rows": rows,
        "all_identical": all(row["identical_answers"] for row in rows),
        "segments_leaked": leftovers,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized: 1 and 2 workers, tiny graph, "
                        "no snapshot written")
    parser.add_argument("--dataset", type=str, default="cora")
    parser.add_argument("--scale", type=float, default=0.3)
    parser.add_argument("--theta", type=int, default=64)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--queries", type=int, default=8)
    parser.add_argument("--out", type=Path,
                        default=Path(__file__).resolve().parent.parent
                        / "BENCH_shm.json")
    args = parser.parse_args(argv)

    if args.smoke:
        result = run(dataset="cora", scale=0.05, theta=8, seed=args.seed,
                     n_queries=4, worker_counts=[1, 2])
    else:
        result = run(dataset=args.dataset, scale=args.scale, theta=args.theta,
                     seed=args.seed, n_queries=args.queries,
                     worker_counts=[1, 2, 4, 8])

    print(json.dumps(result, indent=2))
    failures = []
    if not result["all_identical"]:
        failures.append("shared fleet answers diverged from per-worker pools")
    if result["segments_leaked"]:
        failures.append(f"segments leaked: {result['segments_leaked']}")
    four = next((row for row in result["rows"] if row["workers"] == 4), None)
    if four is not None and four["shared_memory_ratio_vs_one_worker"] > 1.25:
        failures.append(
            "4-worker shared fleet arena memory "
            f"{four['shared_memory_ratio_vs_one_worker']}x exceeds the "
            "1.25x-of-one-worker bound"
        )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    if not args.smoke:
        args.out.write_text(json.dumps(result, indent=2) + "\n")
        print(f"snapshot written to {args.out}")
    else:
        print("smoke ok: shared fleet bit-identical, no segments leaked")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
