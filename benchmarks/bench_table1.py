"""Table I: dataset statistics (|V|, |E|, |A|, mean |H(q)|).

Paper shape: the Retweet hierarchy depth is an order of magnitude above
log2 |V| (165.3 vs 14.2); the planted-partition datasets sit near log2 |V|.
"""

from repro.eval.experiments import table1_dataset_stats
from repro.eval.reporting import render_table


def test_table1(benchmark, bench_config):
    rows = benchmark.pedantic(
        table1_dataset_stats,
        kwargs={"config": bench_config},
        rounds=1,
        iterations=1,
    )
    print()
    print(render_table(
        "Table I: dataset statistics",
        ["dataset", "|V|", "|E|", "|A|", "mean |H(q)|", "log2 |V|"],
        [[r["dataset"], r["nodes"], r["edges"], r["attributes"],
          r["mean_H_q"], r["log2_n"]] for r in rows],
        float_format="{:.1f}",
    ))
    by_name = {r["dataset"]: r for r in rows}
    # Shape assertions: hub-dominated datasets are skewed.
    assert by_name["retweet"]["mean_H_q"] > by_name["cora"]["mean_H_q"]
    assert by_name["retweet"]["mean_H_q"] > 1.3 * by_name["retweet"]["log2_n"]
