"""Cold rebuild-from-log vs snapshot+replay recovery on one state dir.

Measures what epoch snapshots were built to amortize: a serving process
that applied ``--epochs`` durable update batches is restarted, and the
time back to a proven serveable graph is compared between

* **cold** — a WAL-only state dir (no ``snapshot_every``): recovery
  starts from the base graph and replays every epoch in the log, and
* **warm** — the same epoch history written with a snapshot cadence:
  recovery loads the newest checksummed snapshot and replays only the
  short WAL suffix past it (at most ``--snapshot-every`` epochs, since
  compaction truncates the log behind the retained snapshots).

Both sides run the full :meth:`DurableStateStore.recover` path — stale
tmp sweep, torn-tail scan, snapshot verification, per-epoch
``graph_sha`` proof — so the comparison is end-to-end honest. The two
recovered graphs are asserted bit-identical to each other *and* to an
in-memory :class:`UpdateLog` replay oracle before any timing is
reported.

Run standalone (not under pytest):

    PYTHONPATH=src python benchmarks/bench_recovery.py           # full run
    PYTHONPATH=src python benchmarks/bench_recovery.py --smoke   # CI-sized

The full run writes a ``BENCH_recovery.json`` snapshot next to the repo
root and fails (exit 1) unless snapshot+replay beats cold rebuild;
``--smoke`` only validates agreement and prints timings.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
import time
from pathlib import Path

from repro.core.himor import graph_checksum
from repro.datasets.registry import load_dataset
from repro.dynamic import AttrUpdate, EdgeUpdate, UpdateBatch, UpdateLog
from repro.dynamic.updates import apply_updates
from repro.serving.durability import DurableStateStore


def make_batches(graph, n_epochs: int, extra_attr: int) -> list[UpdateBatch]:
    """Toggle pairs over non-edges: every prefix is a valid history."""
    non_edges = (
        (u, v)
        for u in range(graph.n)
        for v in range(u + 1, graph.n)
        if not graph.has_edge(u, v)
    )
    batches: list[UpdateBatch] = []
    for j in range(n_epochs // 2):
        u, v = next(non_edges)
        batches.append(UpdateBatch(
            updates=(EdgeUpdate(u, v, add=True),
                     AttrUpdate(j % graph.n, extra_attr, add=True)),
            label=f"grow-{j}",
        ))
        batches.append(UpdateBatch(
            updates=(EdgeUpdate(u, v, add=False),
                     AttrUpdate(j % graph.n, extra_attr, add=False)),
            label=f"shrink-{j}",
        ))
    return batches


def write_history(state_dir: Path, graph, batches,
                  snapshot_every: "int | None") -> None:
    """Apply every batch through a durable store, as a serving run would."""
    store = DurableStateStore(state_dir, snapshot_every=snapshot_every)
    result = store.recover(base_graph=graph)
    current = result.graph
    for batch in batches:
        current = apply_updates(current, batch.updates)
        epoch = store.append(batch, graph_sha=graph_checksum(current))
        store.maybe_snapshot(current, epoch)
    store.close()


def time_recovery(state_dir: Path, graph,
                  snapshot_every: "int | None", repeats: int) -> dict:
    """Best-of-``repeats`` cold-start timing plus the recovery's own stats."""
    best_s = None
    result = None
    for _ in range(repeats):
        store = DurableStateStore(state_dir, snapshot_every=snapshot_every)
        start = time.perf_counter()
        result = store.recover(base_graph=graph)
        elapsed = time.perf_counter() - start
        store.close()
        best_s = elapsed if best_s is None else min(best_s, elapsed)
    return {
        "seconds": round(best_s, 4),
        "epoch": result.epoch,
        "snapshot_epoch": result.snapshot_epoch,
        "replayed_epochs": result.replayed_epochs,
        "graph_sha": result.graph_sha,
        "graph": result.graph,
    }


def run(dataset: str, scale: float, n_epochs: int, snapshot_every: int,
        seed: int, repeats: int) -> dict:
    data = load_dataset(dataset, scale=scale, seed=seed)
    graph = data.graph
    # An attribute id past the universe, so it is never in the base graph.
    extra_attr = max(graph.attribute_universe, default=0) + 1
    batches = make_batches(graph, n_epochs, extra_attr)

    workdir = Path(tempfile.mkdtemp(prefix="bench_recovery."))
    try:
        cold_dir = workdir / "cold"
        warm_dir = workdir / "warm"
        write_history(cold_dir, graph, batches, snapshot_every=None)
        write_history(warm_dir, graph, batches, snapshot_every=snapshot_every)

        cold = time_recovery(cold_dir, graph, None, repeats)
        warm = time_recovery(warm_dir, graph, snapshot_every, repeats)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    # Bit-identity before timing means anything: both recoveries and the
    # in-memory replay oracle must land on the same graph.
    log = UpdateLog()
    for batch in batches:
        log.append(batch)
    oracle_sha = graph_checksum(log.replay(graph))
    for side, recovered in (("cold", cold), ("warm", warm)):
        assert recovered["epoch"] == len(batches), side
        assert recovered["graph_sha"] == oracle_sha, (
            f"{side} recovery diverged from the replay oracle"
        )
        for v in range(graph.n):
            assert (recovered["graph"].attributes_of(v)
                    == log.replay(graph).attributes_of(v)), (side, v)
        del recovered["graph"]

    return {
        "config": {
            "dataset": dataset,
            "scale": scale,
            "n": graph.n,
            "edges": graph.m,
            "epochs": n_epochs,
            "snapshot_every": snapshot_every,
            "seed": seed,
            "repeats": repeats,
        },
        "cold_rebuild": cold,
        "snapshot_replay": warm,
        "speedup": round(cold["seconds"] / max(warm["seconds"], 1e-9), 2),
        "identical_to_replay_oracle": True,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny CI-sized run; no snapshot written")
    parser.add_argument("--dataset", type=str, default="cora")
    parser.add_argument("--scale", type=float, default=0.25)
    parser.add_argument("--epochs", type=int, default=410,
                        help="offset from the snapshot cadence so the warm "
                        "side replays a real WAL suffix")
    parser.add_argument("--snapshot-every", type=int, default=25)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats per side (best-of)")
    parser.add_argument("--out", type=Path,
                        default=Path(__file__).resolve().parent.parent
                        / "BENCH_recovery.json")
    args = parser.parse_args(argv)

    if args.smoke:
        result = run(dataset="cora", scale=0.08, n_epochs=26,
                     snapshot_every=6, seed=args.seed, repeats=1)
    else:
        result = run(dataset=args.dataset, scale=args.scale,
                     n_epochs=args.epochs,
                     snapshot_every=args.snapshot_every, seed=args.seed,
                     repeats=args.repeats)

    print(json.dumps(result, indent=2))
    speedup = result["speedup"]
    if args.smoke:
        # Smoke mode only proves bit-identity and that the script runs;
        # timing on a tiny history under CI noise is not meaningful.
        print(f"smoke ok: recoveries bit-identical; speedup {speedup:.2f}x")
        return 0

    args.out.write_text(json.dumps(result, indent=2) + "\n")
    print(f"snapshot written to {args.out}")
    if speedup <= 1.0:
        print(f"FAIL: snapshot+replay speedup {speedup:.2f}x <= 1x",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
