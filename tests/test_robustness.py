"""Robustness and failure-injection tests across subsystems.

These exercise the unhappy paths: mismatched inputs, degenerate
communities, disconnected reclustering subgraphs, corrupted persisted
artifacts, and numpy-typed inputs — the places a downstream user's
mistakes must surface as clear errors (or be silently absorbed where the
paper's semantics say so).
"""

import json

import numpy as np
import pytest

from repro.core.compressed import compressed_cod
from repro.core.himor import HimorIndex
from repro.core.lore import lore_chain
from repro.core.pipeline import CODL, CODU
from repro.core.problem import CODQuery
from repro.errors import IndexError_, QueryError
from repro.graph.graph import AttributedGraph
from repro.hierarchy.chain import CommunityChain
from repro.hierarchy.nnchain import agglomerative_hierarchy


class TestInputMismatches:
    def test_chain_graph_mismatch_rejected(self, paper_graph, triangle_graph):
        h = agglomerative_hierarchy(triangle_graph)
        chain = CommunityChain.from_hierarchy(h, 0)
        with pytest.raises(QueryError, match="chain covers"):
            compressed_cod(paper_graph, chain, k=2, theta=2, rng=0)

    def test_numpy_integer_inputs(self, paper_graph):
        # Query machinery must accept numpy ints transparently.
        pipeline = CODU(paper_graph, theta=20, seed=0)
        result = pipeline.discover(
            CODQuery(int(np.int64(0)), int(np.int64(1)), int(np.int64(5)))
        )
        assert result.query.node == 0

    def test_numpy_edges_accepted(self):
        edges = [(np.int64(0), np.int64(1)), (np.int64(1), np.int64(2))]
        g = AttributedGraph(3, edges)
        assert g.m == 2


class TestDegenerateCommunities:
    def test_lore_on_disconnected_weighted_subgraph(self):
        # C_l's induced subgraph can be disconnected (the ancestors connect
        # through nodes outside it); LORE must stack components, not fail.
        # Construct: two triangles joined only via node 6, which sits
        # outside their common ancestor in a handcrafted hierarchy... use a
        # generated graph where this occurs naturally by reclustering a
        # sparse community.
        edges = [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5),
                 (2, 6), (6, 3), (0, 7), (7, 5)]
        attrs = [[0]] * 8
        g = AttributedGraph(8, edges, attributes=attrs)
        h = agglomerative_hierarchy(g)
        for q in range(8):
            result = lore_chain(g, h, q, 0)
            result.chain.validate_nesting()

    def test_no_query_attributed_edges(self):
        # The attribute exists but only on one node: no DB-DB edges, all
        # scores zero; LORE must still produce a valid chain.
        g = AttributedGraph(
            6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (0, 5)],
            attributes=[[7], [], [], [], [], []],
        )
        h = agglomerative_hierarchy(g)
        result = lore_chain(g, h, 0, 7)
        assert np.all(result.scores == 0)
        result.chain.validate_nesting()

    def test_query_without_the_attribute(self, paper_graph, paper_hierarchy):
        # LORE does not require q to carry l_q (Definition 4 never uses
        # A(q)); node 8 carries ML only, querying DB must still work.
        result = lore_chain(paper_graph, paper_hierarchy, 8, 0)
        result.chain.validate_nesting()

    def test_k_larger_than_graph(self, paper_graph):
        pipeline = CODU(paper_graph, theta=5, seed=0)
        result = pipeline.discover(CODQuery(0, None, 99))
        assert result.found
        assert result.size == paper_graph.n


class TestCorruptedArtifacts:
    def test_himor_truncated_json(self, tmp_path):
        path = tmp_path / "index.json"
        path.write_text('{"theta": 5, "n_samples": 10, "n_leaves": 3}')
        with pytest.raises(IndexError_):
            HimorIndex.load(path)

    def test_himor_inconsistent_ranks(self, tmp_path, paper_graph,
                                      paper_hierarchy):
        index = HimorIndex.build(paper_graph, paper_hierarchy, theta=10, rng=0)
        path = tmp_path / "index.json"
        index.save(path)
        document = json.loads(path.read_text())
        document["payload"]["ranks"] = document["payload"]["ranks"][:-1]
        path.write_text(json.dumps(document))
        with pytest.raises(IndexError_):  # caught by the payload checksum
            HimorIndex.load(path)

    def test_graph_json_garbage(self, tmp_path):
        from repro.errors import GraphError
        from repro.graph.io import load_json

        path = tmp_path / "g.json"
        path.write_text('{"n": "not-a-number", "edges": []}')
        with pytest.raises(GraphError):
            load_json(path)


class TestWeightInvariance:
    def test_weighted_cascade_ignores_edge_weights(self, paper_graph,
                                                   paper_hierarchy):
        # WC probabilities depend on degree only; identical seeds over the
        # weighted and unweighted graph must produce identical evaluations.
        weighted = paper_graph.with_edge_weights({(0, 1): 9.0, (3, 7): 5.0})
        chain_a = CommunityChain.from_hierarchy(paper_hierarchy, 0)
        ev_a = compressed_cod(paper_graph, chain_a, k=3, theta=30, rng=42)
        ev_b = compressed_cod(weighted, chain_a, k=3, theta=30, rng=42)
        assert ev_a.query_counts == ev_b.query_counts
        assert ev_a.thresholds == ev_b.thresholds


class TestAlternativeModelsEndToEnd:
    @pytest.mark.parametrize("model_name,kwargs", [
        ("uniform_ic", {"p": 0.3}),
        ("linear_threshold", {}),
    ])
    def test_codl_with_other_models(self, paper_graph, model_name, kwargs):
        from repro.influence.models import model_by_name

        model = model_by_name(model_name, **kwargs)
        pipeline = CODL(paper_graph, theta=30, model=model, seed=1)
        result = pipeline.discover(CODQuery(0, 0, 5))
        assert result.chain_length >= 1
        if result.found:
            assert 0 in set(int(v) for v in result.members)

    def test_montecarlo_agreement_uniform_ic(self, paper_graph):
        from repro.influence.estimator import estimate_influences
        from repro.influence.models import UniformIC
        from repro.influence.montecarlo import simulate_influence

        model = UniformIC(p=0.25)
        est = estimate_influences(paper_graph, 6000, model=model, rng=2)
        forward = simulate_influence(paper_graph, 3, trials=3000, model=model,
                                     rng=3)
        assert est.influence(3) == pytest.approx(forward, rel=0.15, abs=0.3)

    def test_montecarlo_agreement_linear_threshold(self, paper_graph):
        from repro.influence.estimator import estimate_influences
        from repro.influence.models import LinearThreshold
        from repro.influence.montecarlo import simulate_influence

        model = LinearThreshold()
        est = estimate_influences(paper_graph, 6000, model=model, rng=4)
        forward = simulate_influence(paper_graph, 0, trials=3000, model=model,
                                     rng=5)
        assert est.influence(0) == pytest.approx(forward, rel=0.2, abs=0.5)
