"""Unit tests for hierarchy serialization."""

import pytest

from repro.errors import HierarchyError
from repro.hierarchy.io import load_hierarchy, save_hierarchy
from repro.hierarchy.nnchain import agglomerative_hierarchy


class TestHierarchyIO:
    def test_roundtrip_paper_tree(self, paper_hierarchy, tmp_path):
        path = tmp_path / "h.json"
        save_hierarchy(paper_hierarchy, path)
        loaded = load_hierarchy(path)
        assert loaded.n_leaves == paper_hierarchy.n_leaves
        assert [loaded.parent(v) for v in range(loaded.n_vertices)] == [
            paper_hierarchy.parent(v) for v in range(paper_hierarchy.n_vertices)
        ]

    def test_roundtrip_preserves_queries(self, paper_graph, tmp_path):
        h = agglomerative_hierarchy(paper_graph)
        path = tmp_path / "h.json"
        save_hierarchy(h, path)
        loaded = load_hierarchy(path)
        for q in range(paper_graph.n):
            assert loaded.path_communities(q) == h.path_communities(q)
        for v in range(h.n_vertices):
            assert loaded.depth(v) == h.depth(v)
            assert loaded.size(v) == h.size(v)

    def test_malformed_rejected(self, tmp_path):
        path = tmp_path / "h.json"
        path.write_text('{"n_leaves": 2}')
        with pytest.raises(HierarchyError):
            load_hierarchy(path)
