"""Unit tests for the CommunityHierarchy tree."""

import numpy as np
import pytest

from repro.errors import HierarchyError
from repro.hierarchy.dendrogram import CommunityHierarchy

from tests.conftest import C0, C1, C2, C3, C4, C5, C6


class TestFromMerges:
    def test_binary_merges(self):
        # ((0,1),(2,3)) -> root
        h = CommunityHierarchy.from_merges(4, [(0, 1), (2, 3), (4, 5)])
        assert h.n_vertices == 7
        assert h.root == 6
        assert h.size(4) == 2
        assert h.size(6) == 4

    def test_cluster_merged_twice_rejected(self):
        with pytest.raises(HierarchyError, match="twice"):
            CommunityHierarchy.from_merges(3, [(0, 1), (0, 2)])

    def test_future_cluster_rejected(self):
        with pytest.raises(HierarchyError):
            CommunityHierarchy.from_merges(3, [(0, 4), (1, 2)])

    def test_singleton_merge_rejected(self):
        with pytest.raises(HierarchyError, match="at least two"):
            CommunityHierarchy.from_merges(2, [(0,), (1,)])

    def test_partial_cover_rejected(self):
        # Root covering only 2 of 3 leaves.
        with pytest.raises(HierarchyError):
            CommunityHierarchy.from_merges(3, [(0, 1)])


class TestPaperHierarchy:
    def test_depths_match_example2(self, paper_hierarchy):
        assert paper_hierarchy.depth(C6) == 1
        assert paper_hierarchy.depth(C4) == 2
        assert paper_hierarchy.depth(C3) == 3
        assert paper_hierarchy.depth(C0) == 4

    def test_sizes(self, paper_hierarchy):
        assert paper_hierarchy.size(C0) == 4
        assert paper_hierarchy.size(C3) == 6
        assert paper_hierarchy.size(C4) == 8
        assert paper_hierarchy.size(C6) == 10

    def test_members(self, paper_hierarchy):
        assert sorted(paper_hierarchy.members(C0)) == [0, 1, 2, 3]
        assert sorted(paper_hierarchy.members(C3)) == [0, 1, 2, 3, 6, 7]
        assert sorted(paper_hierarchy.members(C4)) == [0, 1, 2, 3, 4, 5, 6, 7]
        assert sorted(paper_hierarchy.members(C6)) == list(range(10))

    def test_h_of_v0_matches_example2(self, paper_hierarchy):
        # H(v0) = {C0, C3, C4, C6}, deepest first.
        assert paper_hierarchy.path_communities(0) == [C0, C3, C4, C6]

    def test_h_of_v5(self, paper_hierarchy):
        assert paper_hierarchy.path_communities(5) == [C1, C4, C6]

    def test_lca_matches_example2(self, paper_hierarchy):
        assert paper_hierarchy.lca(0, 6) == C3
        assert paper_hierarchy.lca(0, 1) == C0
        assert paper_hierarchy.lca(0, 5) == C4
        assert paper_hierarchy.lca(0, 9) == C6
        assert paper_hierarchy.lca(4, 5) == C1

    def test_lca_with_community_argument(self, paper_hierarchy):
        assert paper_hierarchy.lca(0, C1) == C4
        assert paper_hierarchy.lca(C0, C2) == C3
        assert paper_hierarchy.lca(5, C3) == C4

    def test_lca_self(self, paper_hierarchy):
        assert paper_hierarchy.lca(3, 3) == 3
        assert paper_hierarchy.lca(C4, C4) == C4

    def test_contains(self, paper_hierarchy):
        assert paper_hierarchy.contains(C3, 7)
        assert not paper_hierarchy.contains(C3, 4)
        assert paper_hierarchy.contains(C6, 9)

    def test_is_ancestor(self, paper_hierarchy):
        assert paper_hierarchy.is_ancestor(C6, C0)
        assert paper_hierarchy.is_ancestor(C4, C4)
        assert not paper_hierarchy.is_ancestor(C0, C4)
        assert not paper_hierarchy.is_ancestor(C1, C2)

    def test_ancestors_order(self, paper_hierarchy):
        assert list(paper_hierarchy.ancestors(C0)) == [C3, C4, C6]
        assert list(paper_hierarchy.ancestors(C0, include_self=True)) == [C0, C3, C4, C6]

    def test_is_leaf(self, paper_hierarchy):
        assert paper_hierarchy.is_leaf(3)
        assert not paper_hierarchy.is_leaf(C0)

    def test_parent_children_consistency(self, paper_hierarchy):
        for vertex in range(paper_hierarchy.n_vertices):
            for child in paper_hierarchy.children(vertex):
                assert paper_hierarchy.parent(child) == vertex

    def test_internal_vertices(self, paper_hierarchy):
        internal = list(paper_hierarchy.internal_vertices())
        assert internal == [C0, C1, C2, C5, C3, C4, C6]

    def test_total_leaf_depth(self, paper_hierarchy):
        # Leaf depths (root = 1): v0..v3 under C0 -> 5; v6, v7 under C2
        # (itself under C3) -> 5; v4, v5 under C1 -> 4; v8, v9 under C5 -> 3.
        assert paper_hierarchy.total_leaf_depth() == 4 * 5 + 2 * 5 + 2 * 4 + 2 * 3

    def test_members_are_slices_of_one_permutation(self, paper_hierarchy):
        order = paper_hierarchy.members(paper_hierarchy.root)
        assert sorted(order) == list(range(10))


class TestValidation:
    def test_multiple_roots_rejected(self):
        with pytest.raises(HierarchyError, match="root"):
            CommunityHierarchy.from_parents(2, [-1, -1])

    def test_leaf_with_children_rejected(self):
        # Vertex 1 (a leaf) is the parent of vertex 0.
        with pytest.raises(HierarchyError):
            CommunityHierarchy.from_parents(2, [1, -1])

    def test_childless_internal_rejected(self):
        # Vertex 2 is internal (id >= n_leaves) but nothing points to it.
        with pytest.raises(HierarchyError, match="no children"):
            CommunityHierarchy.from_parents(2, [3, 3, 3, -1])

    def test_bad_vertex_query(self, paper_hierarchy):
        with pytest.raises(HierarchyError):
            paper_hierarchy.depth(99)

    def test_contains_non_leaf_rejected(self, paper_hierarchy):
        with pytest.raises(HierarchyError):
            paper_hierarchy.contains(C6, C0)


class TestFlatPartitions:
    def test_partition_at_size_covers_all_leaves(self, paper_hierarchy):
        for max_size in (1, 2, 4, 6, 10):
            partition = paper_hierarchy.partition_at_size(max_size)
            covered = sorted(
                int(v) for p in partition for v in paper_hierarchy.members(p)
            )
            assert covered == list(range(10))
            assert all(paper_hierarchy.size(p) <= max_size for p in partition)

    def test_partition_at_size_maximal(self, paper_hierarchy):
        # With max_size = 6, C3 (size 6) is kept whole rather than split.
        partition = paper_hierarchy.partition_at_size(6)
        assert C3 in partition

    def test_partition_at_size_one_is_leaves(self, paper_hierarchy):
        assert paper_hierarchy.partition_at_size(1) == list(range(10))

    def test_partition_at_size_n_is_root(self, paper_hierarchy):
        assert paper_hierarchy.partition_at_size(10) == [paper_hierarchy.root]

    def test_partition_at_depth(self, paper_hierarchy):
        # Depth 2: C4 and C5 cover everything.
        assert paper_hierarchy.partition_at_depth(2) == sorted([C4, C5])

    def test_partition_at_depth_covers(self, paper_hierarchy):
        for depth in (1, 2, 3, 4):
            partition = paper_hierarchy.partition_at_depth(depth)
            covered = sorted(
                int(v) for p in partition for v in paper_hierarchy.members(p)
            )
            assert covered == list(range(10))

    def test_invalid_args(self, paper_hierarchy):
        with pytest.raises(HierarchyError):
            paper_hierarchy.partition_at_size(0)
        with pytest.raises(HierarchyError):
            paper_hierarchy.partition_at_depth(0)

    def test_partition_modularity_sane(self, paper_graph, paper_hierarchy):
        from repro.graph.metrics import modularity

        partition = paper_hierarchy.partition_at_size(4)
        blocks = [list(paper_hierarchy.members(p)) for p in partition]
        assert modularity(paper_graph, blocks) > 0


class TestLayout:
    def test_subtree_ranges_nested(self, paper_hierarchy):
        # Children's member sets partition the parent's member set.
        for vertex in paper_hierarchy.internal_vertices():
            kids = paper_hierarchy.children(vertex)
            combined = sorted(
                int(v) for child in kids for v in paper_hierarchy.members(child)
            )
            assert combined == sorted(int(v) for v in paper_hierarchy.members(vertex))

    def test_deep_hierarchy_no_recursion_error(self):
        # A maximally skewed (caterpillar) dendrogram with 3000 leaves.
        n = 3000
        merges = [(0, 1)]
        for leaf in range(2, n):
            merges.append((n + leaf - 2, leaf))
        h = CommunityHierarchy.from_merges(n, merges)
        assert h.size(h.root) == n
        assert h.depth(0) == n  # deepest leaf
        assert h.lca(0, n - 1) == h.root

    def test_memory_bytes_positive(self, paper_hierarchy):
        assert paper_hierarchy.memory_bytes() > 0

    def test_repr(self, paper_hierarchy):
        assert "leaves=10" in repr(paper_hierarchy)
