"""Unit tests for NN-chain agglomerative clustering."""

import numpy as np
import pytest

from repro.errors import DisconnectedGraphError
from repro.graph.graph import AttributedGraph
from repro.hierarchy.linkage import SingleLinkage, UnweightedAverageLinkage
from repro.hierarchy.nnchain import agglomerative_hierarchy


class TestBasicShapes:
    def test_two_nodes(self):
        g = AttributedGraph(2, [(0, 1)])
        h = agglomerative_hierarchy(g)
        assert h.n_vertices == 3
        assert h.size(h.root) == 2

    def test_binary_dendrogram_vertex_count(self, paper_graph):
        h = agglomerative_hierarchy(paper_graph)
        assert h.n_vertices == 2 * paper_graph.n - 1

    def test_every_leaf_covered(self, paper_graph):
        h = agglomerative_hierarchy(paper_graph)
        assert sorted(int(v) for v in h.members(h.root)) == list(range(paper_graph.n))

    def test_strictly_growing_sizes_up_the_tree(self, paper_graph):
        h = agglomerative_hierarchy(paper_graph)
        for vertex in h.internal_vertices():
            for child in h.children(vertex):
                assert h.size(child) < h.size(vertex)

    def test_single_node_rejected(self):
        g = AttributedGraph(1, [])
        with pytest.raises(DisconnectedGraphError):
            agglomerative_hierarchy(g)


class TestMergeOrder:
    def test_two_cliques_merge_internally_first(self, two_cliques_graph):
        h = agglomerative_hierarchy(two_cliques_graph)
        # The two K4s should each form a community before the final merge:
        # the root's children partition the graph into the cliques.
        kids = h.children(h.root)
        kid_sets = sorted(sorted(int(v) for v in h.members(c)) for c in kids)
        assert kid_sets == [[0, 1, 2, 3], [4, 5, 6, 7]]

    def test_weighted_edges_steer_merges(self):
        # Triangle 0-1-2 with a heavy edge (0, 2): that pair merges first.
        g = AttributedGraph(3, [(0, 1), (1, 2), (0, 2)],
                            edge_weights={(0, 2): 10.0})
        h = agglomerative_hierarchy(g)
        first = 3  # first merge vertex id
        assert sorted(int(v) for v in h.members(first)) == [0, 2]

    def test_star_center_absorbs_leaves_one_by_one(self, star_graph):
        h = agglomerative_hierarchy(star_graph)
        # No two leaves share an edge, so every merge involves the cluster
        # containing the center: the dendrogram is a caterpillar of depth
        # n - 1.
        assert h.depth(h.root) == 1
        max_leaf_depth = max(h.depth(v) for v in range(star_graph.n))
        assert max_leaf_depth == star_graph.n

    def test_deterministic(self, paper_graph):
        h1 = agglomerative_hierarchy(paper_graph)
        h2 = agglomerative_hierarchy(paper_graph)
        assert [h1.parent(v) for v in range(h1.n_vertices)] == [
            h2.parent(v) for v in range(h2.n_vertices)
        ]


class TestReducibleGreedyEquivalence:
    def test_matches_naive_greedy_average_linkage(self):
        # NN-chain must produce the same merge *heights* as the O(n^3)
        # greedy "always merge the globally most similar pair" algorithm
        # for a reducible linkage. We compare the multiset of merge
        # similarities, which is invariant to tie-order permutations.
        rng = np.random.default_rng(11)
        for _ in range(5):
            n = 12
            edges = []
            weights = {}
            for u in range(n):
                for v in range(u + 1, n):
                    if rng.random() < 0.45:
                        edges.append((u, v))
                        weights[(u, v)] = float(rng.integers(1, 100))
            g = AttributedGraph(n, edges, edge_weights=weights)
            if not g.is_connected():
                continue
            fast = agglomerative_hierarchy(g)
            fast_sims = _merge_similarities(g, fast)
            naive_sims = _naive_greedy_similarities(g)
            assert np.allclose(sorted(fast_sims), sorted(naive_sims))


def _merge_similarities(graph, hierarchy):
    """Average-linkage similarity of each merge in a dendrogram."""
    sims = []
    for vertex in hierarchy.internal_vertices():
        kids = hierarchy.children(vertex)
        assert len(kids) == 2
        a_members = set(int(v) for v in hierarchy.members(kids[0]))
        b_members = set(int(v) for v in hierarchy.members(kids[1]))
        w = 0.0
        for u in a_members:
            row = graph.neighbors(u)
            wrow = graph.neighbor_weights(u)
            for x, ew in zip(row, wrow):
                if int(x) in b_members:
                    w += float(ew)
        sims.append(w / (len(a_members) * len(b_members)))
    return sims


def _naive_greedy_similarities(graph):
    """O(n^3) reference: merge the globally best pair each step."""
    clusters = {v: {v} for v in range(graph.n)}
    sims = []

    def similarity(a, b):
        w = 0.0
        for u in clusters[a]:
            row = graph.neighbors(u)
            wrow = graph.neighbor_weights(u)
            for x, ew in zip(row, wrow):
                if int(x) in clusters[b]:
                    w += float(ew)
        return w / (len(clusters[a]) * len(clusters[b]))

    next_id = graph.n
    while len(clusters) > 1:
        ids = sorted(clusters)
        best = None
        for i, a in enumerate(ids):
            for b in ids[i + 1:]:
                s = similarity(a, b)
                if best is None or s > best[0]:
                    best = (s, a, b)
        s, a, b = best
        sims.append(s)
        clusters[next_id] = clusters.pop(a) | clusters.pop(b)
        next_id += 1
    return sims


class TestDisconnected:
    def test_error_mode(self):
        g = AttributedGraph(4, [(0, 1), (2, 3)])
        with pytest.raises(DisconnectedGraphError):
            agglomerative_hierarchy(g, on_disconnected="error")

    def test_merge_mode_stacks_components(self):
        g = AttributedGraph(5, [(0, 1), (1, 2), (3, 4)])
        h = agglomerative_hierarchy(g, on_disconnected="merge")
        assert h.size(h.root) == 5

    def test_isolated_nodes(self):
        g = AttributedGraph(4, [(0, 1)])
        h = agglomerative_hierarchy(g, on_disconnected="merge")
        assert h.size(h.root) == 4

    def test_bad_mode_rejected(self, paper_graph):
        with pytest.raises(ValueError):
            agglomerative_hierarchy(paper_graph, on_disconnected="explode")


class TestLinkages:
    def test_single_linkage_runs(self, paper_graph):
        h = agglomerative_hierarchy(paper_graph, linkage=SingleLinkage())
        assert h.size(h.root) == paper_graph.n

    def test_average_is_default(self, paper_graph):
        default = agglomerative_hierarchy(paper_graph)
        explicit = agglomerative_hierarchy(paper_graph, linkage=UnweightedAverageLinkage())
        assert [default.parent(v) for v in range(default.n_vertices)] == [
            explicit.parent(v) for v in range(explicit.n_vertices)
        ]
