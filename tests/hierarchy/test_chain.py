"""Unit tests for CommunityChain."""

import numpy as np
import pytest

from repro.errors import HierarchyError
from repro.hierarchy.chain import CommunityChain

from tests.conftest import C0, C3, C4, C6


class TestFromHierarchy:
    def test_paper_chain_for_v0(self, paper_hierarchy):
        chain = CommunityChain.from_hierarchy(paper_hierarchy, 0)
        assert len(chain) == 4
        assert list(chain.sizes) == [4, 6, 8, 10]
        assert sorted(chain.members(0)) == [0, 1, 2, 3]
        assert sorted(chain.members(3)) == list(range(10))

    def test_depths_from_hierarchy(self, paper_hierarchy):
        chain = CommunityChain.from_hierarchy(paper_hierarchy, 0)
        assert [chain.depth(i) for i in range(4)] == [4, 3, 2, 1]

    def test_node_levels(self, paper_hierarchy):
        chain = CommunityChain.from_hierarchy(paper_hierarchy, 0)
        # v0..v3 in C0 (level 0); v6, v7 enter at C3 (level 1);
        # v4, v5 at C4 (level 2); v8, v9 only at the root (level 3).
        assert [chain.level_of(v) for v in range(10)] == [
            0, 0, 0, 0, 2, 2, 1, 1, 3, 3
        ]

    def test_validates_nesting(self, paper_hierarchy):
        chain = CommunityChain.from_hierarchy(paper_hierarchy, 0)
        chain.validate_nesting()  # must not raise

    def test_every_leaf_gets_a_chain(self, paper_hierarchy):
        for q in range(10):
            chain = CommunityChain.from_hierarchy(paper_hierarchy, q)
            assert chain.level_of(q) == 0
            chain.validate_nesting()

    def test_non_leaf_query_rejected(self, paper_hierarchy):
        with pytest.raises(HierarchyError):
            CommunityChain.from_hierarchy(paper_hierarchy, C0)


class TestFromMemberLists:
    def test_basic(self):
        chain = CommunityChain.from_member_lists(
            6, 2, [[2, 3], [1, 2, 3], [0, 1, 2, 3, 4, 5]]
        )
        assert len(chain) == 3
        assert chain.level_of(2) == 0
        assert chain.level_of(1) == 1
        assert chain.level_of(5) == 2
        chain.validate_nesting()

    def test_outside_nodes(self):
        chain = CommunityChain.from_member_lists(6, 2, [[2, 3], [1, 2, 3]])
        assert chain.level_of(5) == CommunityChain.OUTSIDE
        assert chain.level_of(0) == CommunityChain.OUTSIDE

    def test_synthetic_depths_descend(self):
        chain = CommunityChain.from_member_lists(4, 0, [[0, 1], [0, 1, 2, 3]])
        assert chain.depth(0) > chain.depth(1)

    def test_query_not_in_deepest_rejected(self):
        with pytest.raises(HierarchyError):
            CommunityChain.from_member_lists(4, 0, [[1, 2], [0, 1, 2, 3]])

    def test_non_growing_sizes_rejected(self):
        with pytest.raises(HierarchyError, match="strictly grow"):
            CommunityChain.from_member_lists(4, 0, [[0, 1], [0, 2]])

    def test_non_nested_detected_by_validator(self):
        chain = CommunityChain.from_member_lists(6, 0, [[0, 1], [0, 2, 3]])
        with pytest.raises(HierarchyError, match="does not contain"):
            chain.validate_nesting()

    def test_duplicate_members_collapse(self):
        chain = CommunityChain.from_member_lists(4, 0, [[0, 0, 1], [0, 1, 2]])
        assert list(chain.sizes) == [2, 3]


class TestPrefix:
    def test_prefix_truncates(self, paper_hierarchy):
        chain = CommunityChain.from_hierarchy(paper_hierarchy, 0)
        prefix = chain.prefix(2)
        assert len(prefix) == 2
        assert list(prefix.sizes) == [4, 6]
        # Nodes only present above the cut become OUTSIDE.
        assert prefix.level_of(4) == CommunityChain.OUTSIDE
        assert prefix.level_of(8) == CommunityChain.OUTSIDE
        assert prefix.level_of(6) == 1

    def test_prefix_keeps_depths(self, paper_hierarchy):
        chain = CommunityChain.from_hierarchy(paper_hierarchy, 0)
        prefix = chain.prefix(2)
        assert [prefix.depth(i) for i in range(2)] == [4, 3]

    def test_full_prefix_is_identity(self, paper_hierarchy):
        chain = CommunityChain.from_hierarchy(paper_hierarchy, 0)
        prefix = chain.prefix(len(chain))
        assert np.array_equal(prefix.node_levels, chain.node_levels)

    def test_bad_length_rejected(self, paper_hierarchy):
        chain = CommunityChain.from_hierarchy(paper_hierarchy, 0)
        with pytest.raises(HierarchyError):
            chain.prefix(0)
        with pytest.raises(HierarchyError):
            chain.prefix(99)

    def test_prefix_does_not_mutate_original(self, paper_hierarchy):
        chain = CommunityChain.from_hierarchy(paper_hierarchy, 0)
        before = chain.node_levels.copy()
        chain.prefix(1)
        assert np.array_equal(chain.node_levels, before)


class TestRepr:
    def test_repr_mentions_query(self, paper_hierarchy):
        chain = CommunityChain.from_hierarchy(paper_hierarchy, 0)
        assert "q=0" in repr(chain)
