"""Unit tests for hierarchy rebalancing."""

import numpy as np
import pytest

from repro.graph.graph import AttributedGraph
from repro.hierarchy.balance import collapse_chains, rebalanced_hierarchy
from repro.hierarchy.chain import CommunityChain
from repro.hierarchy.dendrogram import CommunityHierarchy
from repro.hierarchy.nnchain import agglomerative_hierarchy


def caterpillar(n: int) -> CommunityHierarchy:
    """A maximally skewed dendrogram over n leaves."""
    merges = [(0, 1)]
    for leaf in range(2, n):
        merges.append((n + leaf - 2, leaf))
    return CommunityHierarchy.from_merges(n, merges)


class TestCollapseChains:
    def test_caterpillar_becomes_one_multiway(self):
        h = caterpillar(10)
        multiway = collapse_chains(h)
        # Apart from the first merge (balanced 1+1), the whole chain is
        # absorbed into one multiway vertex.
        assert len(multiway) <= 2
        flattened = max(multiway, key=len)
        assert len(flattened) >= 9

    def test_balanced_tree_untouched(self):
        # A perfectly balanced 8-leaf tree has no chain steps.
        merges = [(0, 1), (2, 3), (4, 5), (6, 7), (8, 9), (10, 11), (12, 13)]
        h = CommunityHierarchy.from_merges(8, merges)
        multiway = collapse_chains(h)
        assert len(multiway) == 7
        assert all(len(children) == 2 for children in multiway)

    def test_invalid_alpha(self, paper_hierarchy):
        with pytest.raises(ValueError):
            collapse_chains(paper_hierarchy, alpha=0.6)
        with pytest.raises(ValueError):
            collapse_chains(paper_hierarchy, alpha=0.0)


class TestRebalancedHierarchy:
    def test_same_leaves(self, paper_graph):
        h = agglomerative_hierarchy(paper_graph)
        b = rebalanced_hierarchy(h)
        assert b.n_leaves == h.n_leaves
        assert sorted(int(v) for v in b.members(b.root)) == list(range(paper_graph.n))

    def test_caterpillar_depth_reduced_to_log(self):
        n = 256
        h = caterpillar(n)
        b = rebalanced_hierarchy(h)
        # Huffman over ~n uniform leaves: depth O(log n) per leaf.
        assert b.total_leaf_depth() < 3 * n * np.log2(n)
        assert h.total_leaf_depth() > n * n / 4  # the caterpillar baseline

    def test_never_increases_total_depth_much(self, paper_graph):
        h = agglomerative_hierarchy(paper_graph)
        b = rebalanced_hierarchy(h)
        assert b.total_leaf_depth() <= h.total_leaf_depth() + paper_graph.n

    def test_star_graph(self, star_graph):
        h = agglomerative_hierarchy(star_graph)
        b = rebalanced_hierarchy(h)
        assert b.total_leaf_depth() < h.total_leaf_depth()

    def test_valid_binary_dendrogram(self, paper_graph):
        h = agglomerative_hierarchy(paper_graph)
        b = rebalanced_hierarchy(h)
        for vertex in b.internal_vertices():
            assert len(b.children(vertex)) == 2

    def test_chains_usable_downstream(self, paper_graph):
        h = agglomerative_hierarchy(paper_graph)
        b = rebalanced_hierarchy(h)
        for q in range(paper_graph.n):
            chain = CommunityChain.from_hierarchy(b, q)
            chain.validate_nesting()

    def test_himor_buildable_on_rebalanced(self, paper_graph):
        from repro.core.himor import HimorIndex

        h = agglomerative_hierarchy(paper_graph)
        b = rebalanced_hierarchy(h)
        index = HimorIndex.build(paper_graph, b, theta=20, rng=0)
        for v in range(paper_graph.n):
            assert len(index.ranks_of(v)) == len(b.path_communities(v))

    def test_skewed_dataset_improves(self):
        from repro.datasets.registry import load_dataset

        data = load_dataset("retweet", scale=0.3, seed=7)
        h = agglomerative_hierarchy(data.graph)
        b = rebalanced_hierarchy(h)
        assert b.total_leaf_depth() < 0.8 * h.total_leaf_depth()

    def test_single_leaf_passthrough(self):
        h = CommunityHierarchy.from_parents(1, [-1])
        assert rebalanced_hierarchy(h) is h
