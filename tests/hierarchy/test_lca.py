"""Unit tests for the Euler-tour sparse-table LCA index."""

import numpy as np
import pytest

from repro.errors import HierarchyError
from repro.hierarchy.dendrogram import CommunityHierarchy
from repro.hierarchy.lca import LcaIndex


def naive_lca(hierarchy: CommunityHierarchy, a: int, b: int) -> int:
    ancestors_a = [a, *hierarchy.ancestors(a)]
    ancestors_b = set([b, *hierarchy.ancestors(b)])
    for vertex in ancestors_a:
        if vertex in ancestors_b:
            return vertex
    raise AssertionError("no common ancestor")


class TestLcaIndex:
    def test_matches_naive_on_paper_tree(self, paper_hierarchy):
        index = LcaIndex(paper_hierarchy)
        for a in range(paper_hierarchy.n_vertices):
            for b in range(paper_hierarchy.n_vertices):
                assert index.lca(a, b) == naive_lca(paper_hierarchy, a, b)

    def test_matches_naive_on_random_binary_trees(self):
        rng = np.random.default_rng(5)
        for _ in range(10):
            n = int(rng.integers(3, 40))
            # Random merge sequence over available clusters.
            available = list(range(n))
            merges = []
            next_id = n
            while len(available) > 1:
                i, j = rng.choice(len(available), size=2, replace=False)
                a, b = available[int(i)], available[int(j)]
                available = [c for c in available if c not in (a, b)]
                merges.append((a, b))
                available.append(next_id)
                next_id += 1
            h = CommunityHierarchy.from_merges(n, merges)
            index = LcaIndex(h)
            pairs = rng.integers(0, h.n_vertices, size=(60, 2))
            for a, b in pairs:
                assert index.lca(int(a), int(b)) == naive_lca(h, int(a), int(b))

    def test_symmetry(self, paper_hierarchy):
        index = LcaIndex(paper_hierarchy)
        for a, b in [(0, 9), (3, 5), (2, 7)]:
            assert index.lca(a, b) == index.lca(b, a)

    def test_lca_is_ancestor_of_both(self, paper_hierarchy):
        index = LcaIndex(paper_hierarchy)
        for a in range(10):
            for b in range(10):
                lca = index.lca(a, b)
                assert paper_hierarchy.contains(lca, a) or lca == a
                assert paper_hierarchy.contains(lca, b) or lca == b

    def test_out_of_range_rejected(self, paper_hierarchy):
        index = LcaIndex(paper_hierarchy)
        with pytest.raises(HierarchyError):
            index.lca(0, 99)

    def test_skewed_tree(self):
        n = 500
        merges = [(0, 1)]
        for leaf in range(2, n):
            merges.append((n + leaf - 2, leaf))
        h = CommunityHierarchy.from_merges(n, merges)
        index = LcaIndex(h)
        # Leaves 0 and 1 meet at the first merge vertex (the deepest).
        assert index.lca(0, 1) == n
        # Leaf k joined at merge vertex n + k - 1 for k >= 2.
        assert index.lca(0, 100) == n + 99
        assert index.lca(57, 400) == n + 399
