"""Unit tests for linkage functions."""

import pytest

from repro.hierarchy.linkage import (
    SingleLinkage,
    TotalWeightLinkage,
    UnweightedAverageLinkage,
    linkage_by_name,
)


class TestUnweightedAverage:
    def test_similarity_normalizes_by_sizes(self):
        lk = UnweightedAverageLinkage()
        assert lk.similarity(6.0, 2, 3) == 1.0
        assert lk.similarity(6.0, 1, 1) == 6.0

    def test_combine_sums(self):
        lk = UnweightedAverageLinkage()
        assert lk.combine(2.0, 3.0) == 5.0


class TestSingle:
    def test_similarity_is_weight(self):
        lk = SingleLinkage()
        assert lk.similarity(4.0, 10, 20) == 4.0

    def test_combine_max(self):
        lk = SingleLinkage()
        assert lk.combine(2.0, 3.0) == 3.0


class TestTotalWeight:
    def test_similarity_is_weight(self):
        lk = TotalWeightLinkage()
        assert lk.similarity(4.0, 10, 20) == 4.0

    def test_combine_sums(self):
        lk = TotalWeightLinkage()
        assert lk.combine(2.0, 3.0) == 5.0


class TestRegistry:
    def test_lookup(self):
        assert isinstance(linkage_by_name("unweighted_average"), UnweightedAverageLinkage)
        assert isinstance(linkage_by_name("single"), SingleLinkage)
        assert isinstance(linkage_by_name("total_weight"), TotalWeightLinkage)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown linkage"):
            linkage_by_name("ward")
