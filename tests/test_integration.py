"""End-to-end integration tests across subsystems.

These run the complete pipelines on small synthetic datasets and verify
the cross-cutting claims of the paper at small scale: answers are genuine
characteristic communities (validated by the high-sample oracle), LORE
produces attribute-denser communities than the non-attributed variant, and
CODL with its index agrees with the unindexed evaluation pipeline.
"""

import numpy as np
import pytest

from repro import (
    CODL,
    CODR,
    CODU,
    CODLMinus,
    CODQuery,
    generate_queries,
    load_dataset,
)
from repro.eval.measures import is_characteristic, measure_community


@pytest.fixture(scope="module")
def small_cora():
    return load_dataset("cora", scale=0.25, seed=7)


@pytest.fixture(scope="module")
def queries(small_cora):
    return generate_queries(small_cora.graph, count=6, rng=3)


class TestEndToEnd:
    def test_codl_answers_are_characteristic(self, small_cora, queries):
        graph = small_cora.graph
        pipeline = CODL(graph, theta=40, seed=11)
        oracle_rng = np.random.default_rng(5)
        checked = 0
        confirmed = 0
        for query in queries:
            result = pipeline.discover(CODQuery(query.node, query.attribute, 5))
            if not result.found:
                continue
            checked += 1
            if is_characteristic(
                graph, result.members, query.node, 5,
                samples_per_node=150, rng=oracle_rng,
            ):
                confirmed += 1
        assert checked >= 1
        # Sampling noise allows occasional borderline misses, but the bulk
        # must verify.
        assert confirmed >= 0.6 * checked

    def test_all_pipelines_agree_on_found_rate_direction(self, small_cora, queries):
        graph = small_cora.graph
        found = {}
        for cls in (CODU, CODR, CODLMinus, CODL):
            pipeline = cls(graph, theta=30, seed=11)
            found[cls.method_name] = sum(
                1
                for q in queries
                if pipeline.discover(CODQuery(q.node, q.attribute, 5)).found
            )
        # Every pipeline answers at least one query at k = 5.
        assert all(count >= 1 for count in found.values())

    def test_attribute_density_codl_vs_codu(self, small_cora, queries):
        """LORE's attribute awareness: averaged over queries, CODL's
        communities are at least as attribute-dense as CODU's."""
        graph = small_cora.graph
        codu = CODU(graph, theta=30, seed=11)
        codl = CODL(graph, theta=30, seed=11)
        phi_u, phi_l = [], []
        for q in queries:
            ru = codu.discover(CODQuery(q.node, q.attribute, 5))
            rl = codl.discover(CODQuery(q.node, q.attribute, 5))
            phi_u.append(measure_community(graph, ru.members, q.attribute)
                         .attribute_density)
            phi_l.append(measure_community(graph, rl.members, q.attribute)
                         .attribute_density)
        assert np.mean(phi_l) >= np.mean(phi_u) - 0.10

    def test_repeatability_with_seeds(self, small_cora, queries):
        graph = small_cora.graph
        a = CODL(graph, theta=20, seed=42)
        b = CODL(graph, theta=20, seed=42)
        for q in queries[:3]:
            ra = a.discover(CODQuery(q.node, q.attribute, 5))
            rb = b.discover(CODQuery(q.node, q.attribute, 5))
            assert ra.size == rb.size

    def test_himor_roundtrip_preserves_answers(self, small_cora, tmp_path):
        from repro.core.himor import HimorIndex

        graph = small_cora.graph
        pipeline = CODL(graph, theta=30, seed=11)
        index = pipeline.index
        path = tmp_path / "index.json"
        index.save(path)
        loaded = HimorIndex.load(path)
        for q in range(0, graph.n, 17):
            assert np.array_equal(loaded.ranks_of(q), index.ranks_of(q))

    def test_retweet_pipeline_runs(self):
        data = load_dataset("retweet", scale=0.2, seed=7)
        queries = generate_queries(data.graph, count=3, rng=3)
        pipeline = CODL(data.graph, theta=15, seed=11)
        for q in queries:
            result = pipeline.discover(CODQuery(q.node, q.attribute, 5))
            assert result.elapsed >= 0
