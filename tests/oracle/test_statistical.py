"""Statistical oracle: RR estimates vs exact possible-world enumeration.

On graphs tiny enough to enumerate every possible world, Theorem 1 gives
the exact spread ``sigma_C(q)``; the scaled RR count
``count * |V| / Theta`` is a mean of Theta i.i.d. Bernoulli indicators
scaled by ``|V|``, so it must land within a few binomial standard errors
of the exact value. Tolerances are 4 sigma — a deterministic seed keeps
this from flaking while still catching any systematic bias (e.g. a
sampler that forgets to flip edges toward already-active nodes).
"""

import math

import numpy as np
import pytest

from repro.core.compressed import compressed_cod
from repro.graph.graph import AttributedGraph
from repro.hierarchy.chain import CommunityChain
from repro.influence.arena import sample_arena
from repro.influence.models import UniformIC, WeightedCascade

from tests.oracle.reference import enumerate_exact_spread

THETA = 40_000


def _tolerance(sigma: float, n: int, theta: int) -> float:
    """4 binomial standard errors of the scaled RR estimator."""
    p = sigma / n
    return 4.0 * n * math.sqrt(p * (1.0 - p) / theta) + 1e-9


def _tiny_graphs() -> list[tuple[str, AttributedGraph]]:
    return [
        ("path4", AttributedGraph(4, [(0, 1), (1, 2), (2, 3)])),
        ("star5", AttributedGraph(5, [(0, 1), (0, 2), (0, 3), (0, 4)])),
        ("triangle+tail", AttributedGraph(5, [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)])),
        ("square+chord", AttributedGraph(4, [(0, 1), (1, 2), (2, 3), (0, 3), (0, 2)])),
    ]


@pytest.mark.parametrize(
    "name,graph", _tiny_graphs(), ids=[name for name, _ in _tiny_graphs()]
)
@pytest.mark.parametrize(
    "model", [WeightedCascade(), UniformIC(0.4)], ids=["wc", "uic"]
)
def test_global_spread_matches_enumeration(name, graph, model):
    arena = sample_arena(graph, THETA, model=model, rng=1234)
    counts = arena.influence_counts()
    for q in range(graph.n):
        exact = enumerate_exact_spread(graph, q, model=model)
        estimate = counts.get(q, 0) * graph.n / THETA
        assert abs(estimate - exact) <= _tolerance(exact, graph.n, THETA), (
            f"{name} q={q}: estimate {estimate:.4f} vs exact {exact:.4f}"
        )


def test_community_spread_matches_enumeration():
    """Theorem 2: induced RR counts estimate the *restricted* spread."""
    graph = AttributedGraph(5, [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)])
    model = UniformIC(0.5)
    q = 1
    chain = CommunityChain.from_member_lists(
        graph.n, q, [[0, 1, 2], [0, 1, 2, 3], [0, 1, 2, 3, 4]]
    )
    evaluation = compressed_cod(
        graph,
        chain,
        k=1,
        rr_graphs=sample_arena(graph, THETA, model=model, rng=99),
        n_samples=THETA,
    )
    for level in range(len(chain)):
        members = set(int(v) for v in chain.members(level))
        exact = enumerate_exact_spread(graph, q, model=model, restrict_to=members)
        estimate = evaluation.query_influence(level)
        assert abs(estimate - exact) <= _tolerance(exact, graph.n, THETA), (
            f"level {level}: estimate {estimate:.4f} vs exact {exact:.4f}"
        )


def test_estimates_are_unbiased_across_seeds():
    """The estimator's error changes sign across seeds (no systematic bias)."""
    graph = AttributedGraph(4, [(0, 1), (1, 2), (2, 3), (0, 3)])
    model = WeightedCascade()
    exact = enumerate_exact_spread(graph, 0, model=model)
    errors = []
    for seed in range(12):
        arena = sample_arena(graph, 4_000, model=model, rng=seed)
        estimate = arena.influence_counts().get(0, 0) * graph.n / 4_000
        errors.append(estimate - exact)
    assert min(errors) < 0 < max(errors)
    assert abs(float(np.mean(errors))) <= _tolerance(exact, graph.n, 12 * 4_000)
