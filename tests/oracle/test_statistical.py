"""Statistical oracle: RR estimates vs exact possible-world enumeration.

On graphs tiny enough to enumerate every possible world, Theorem 1 gives
the exact spread ``sigma_C(q)``; the scaled RR count
``count * |V| / Theta`` is a mean of Theta i.i.d. Bernoulli indicators
scaled by ``|V|``, so it must land within a few binomial standard errors
of the exact value. Tolerances are 4 sigma — a deterministic seed keeps
this from flaking while still catching any systematic bias (e.g. a
sampler that forgets to flip edges toward already-active nodes).
"""

import math

import numpy as np
import pytest

from repro.core.compressed import compressed_cod
from repro.graph.graph import AttributedGraph
from repro.hierarchy.chain import CommunityChain
from repro.influence.arena import sample_arena
from repro.influence.models import UniformIC, WeightedCascade

from tests.oracle.reference import enumerate_exact_spread

THETA = 40_000


def _tolerance(sigma: float, n: int, theta: int) -> float:
    """4 binomial standard errors of the scaled RR estimator."""
    p = sigma / n
    return 4.0 * n * math.sqrt(p * (1.0 - p) / theta) + 1e-9


def _tiny_graphs() -> list[tuple[str, AttributedGraph]]:
    return [
        ("path4", AttributedGraph(4, [(0, 1), (1, 2), (2, 3)])),
        ("star5", AttributedGraph(5, [(0, 1), (0, 2), (0, 3), (0, 4)])),
        ("triangle+tail", AttributedGraph(5, [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)])),
        ("square+chord", AttributedGraph(4, [(0, 1), (1, 2), (2, 3), (0, 3), (0, 2)])),
    ]


@pytest.mark.parametrize(
    "name,graph", _tiny_graphs(), ids=[name for name, _ in _tiny_graphs()]
)
@pytest.mark.parametrize(
    "model", [WeightedCascade(), UniformIC(0.4)], ids=["wc", "uic"]
)
def test_global_spread_matches_enumeration(name, graph, model):
    arena = sample_arena(graph, THETA, model=model, rng=1234)
    counts = arena.influence_counts()
    for q in range(graph.n):
        exact = enumerate_exact_spread(graph, q, model=model)
        estimate = counts.get(q, 0) * graph.n / THETA
        assert abs(estimate - exact) <= _tolerance(exact, graph.n, THETA), (
            f"{name} q={q}: estimate {estimate:.4f} vs exact {exact:.4f}"
        )


def test_community_spread_matches_enumeration():
    """Theorem 2: induced RR counts estimate the *restricted* spread."""
    graph = AttributedGraph(5, [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)])
    model = UniformIC(0.5)
    q = 1
    chain = CommunityChain.from_member_lists(
        graph.n, q, [[0, 1, 2], [0, 1, 2, 3], [0, 1, 2, 3, 4]]
    )
    evaluation = compressed_cod(
        graph,
        chain,
        k=1,
        rr_graphs=sample_arena(graph, THETA, model=model, rng=99),
        n_samples=THETA,
    )
    for level in range(len(chain)):
        members = set(int(v) for v in chain.members(level))
        exact = enumerate_exact_spread(graph, q, model=model, restrict_to=members)
        estimate = evaluation.query_influence(level)
        assert abs(estimate - exact) <= _tolerance(exact, graph.n, THETA), (
            f"level {level}: estimate {estimate:.4f} vs exact {exact:.4f}"
        )


def test_estimates_are_unbiased_across_seeds():
    """The estimator's error changes sign across seeds (no systematic bias)."""
    graph = AttributedGraph(4, [(0, 1), (1, 2), (2, 3), (0, 3)])
    model = WeightedCascade()
    exact = enumerate_exact_spread(graph, 0, model=model)
    errors = []
    for seed in range(12):
        arena = sample_arena(graph, 4_000, model=model, rng=seed)
        estimate = arena.influence_counts().get(0, 0) * graph.n / 4_000
        errors.append(estimate - exact)
    assert min(errors) < 0 < max(errors)
    assert abs(float(np.mean(errors))) <= _tolerance(exact, graph.n, 12 * 4_000)


# --------------------------------------------------------------------------
# Fast-vs-compatible two-sample equivalence harness.
#
# `sample_arena_fast` / `sample_arena_seeded_fast` are explicitly *not*
# bit-identical to the compatible sampler — they reorder and batch the
# Bernoulli trials — so their oracle is statistical: both samplers must
# draw from the same RR-graph distribution. We compare, per seeded
# (graph, model) case:
#
#   * per-node RR coverage frequencies (two-proportion z-tests),
#   * the RR-set size distribution (two-sample Kolmogorov–Smirnov),
#   * HFS level histograms over a fixed chain (two-proportion z-tests).
#
# Tolerance rationale
# -------------------
# All seeds are fixed, so every assertion is deterministic — thresholds
# choose which *realized* deviation would have failed, they do not set a
# flake rate. They are still sized like hypothesis tests so a systematic
# bug cannot hide inside them:
#
#   * z-tests use |z| <= 4.75. Across the full grid we run roughly 500
#     node/level comparisons; under the null the expected maximum of ~500
#     standard normals is ~3.3 sigma, and P(any |z| > 4.75) ~ 1e-3. A
#     sampler that, say, drops one node's incoming trials shifts that
#     node's coverage by far more than 4.75 standard errors at N = 6000
#     (e.g. a 20% relative coverage error on p = 0.3 is ~34 sigma).
#   * the KS statistic uses the classical two-sample bound
#     D <= c(alpha) * sqrt((n1 + n2) / (n1 * n2)) with alpha = 1e-3,
#     c(alpha) = sqrt(ln(2 / alpha) / 2) ~ 1.949 (scipy-free; KS on a
#     discrete size distribution is conservative, which only widens the
#     real margin).
#
# Twenty-plus cases (10 graph seeds x 2 models, plus the seeded-fast
# arm) keep one lucky agreement from masking a distribution bug that
# only shows on some topology.
# --------------------------------------------------------------------------

from repro.influence.fastsample import (  # noqa: E402
    sample_arena_fast,
    sample_arena_seeded_fast,
)

from tests.oracle.reference import random_case_graph  # noqa: E402

N_TWO_SAMPLE = 6_000
Z_MAX = 4.75
KS_ALPHA = 1e-3

_CASE_SEEDS = range(10)
_CASE_MODELS = [("wc", WeightedCascade), ("uic", lambda: UniformIC(0.3))]
_TWO_SAMPLE_CASES = [
    (f"{mname}-g{seed}", seed, factory)
    for seed in _CASE_SEEDS
    for mname, factory in _CASE_MODELS
]


def _coverage(arena, n: int) -> np.ndarray:
    return np.bincount(arena.nodes, minlength=n) / arena.n_samples


def _max_coverage_z(a, b, n: int) -> float:
    pa, pb = _coverage(a, n), _coverage(b, n)
    pooled = (pa * a.n_samples + pb * b.n_samples) / (a.n_samples + b.n_samples)
    se = np.sqrt(
        pooled * (1.0 - pooled) * (1.0 / a.n_samples + 1.0 / b.n_samples)
    )
    z = np.abs(pa - pb) / np.maximum(se, 1e-12)
    return float(z[pooled > 0].max(initial=0.0))


def _ks_statistic(x: np.ndarray, y: np.ndarray) -> float:
    grid = np.unique(np.concatenate([x, y]))
    fx = np.searchsorted(np.sort(x), grid, side="right") / len(x)
    fy = np.searchsorted(np.sort(y), grid, side="right") / len(y)
    return float(np.abs(fx - fy).max())


def _ks_bound(n1: int, n2: int, alpha: float = KS_ALPHA) -> float:
    return math.sqrt(math.log(2.0 / alpha) / 2.0) * math.sqrt(
        (n1 + n2) / (n1 * n2)
    )


def _per_sample_level_counts(
    arena, node_levels: np.ndarray, n_levels: int
) -> np.ndarray:
    """``(n_samples, n_levels + 1)`` entry counts per HFS level."""
    levels = arena.hfs_levels(node_levels, n_levels)
    key = arena.entry_samples * (n_levels + 1) + levels
    return np.bincount(
        key, minlength=arena.n_samples * (n_levels + 1)
    ).reshape(arena.n_samples, n_levels + 1)


@pytest.mark.parametrize(
    "name,seed,factory",
    _TWO_SAMPLE_CASES,
    ids=[name for name, _, _ in _TWO_SAMPLE_CASES],
)
def test_fast_matches_compatible_two_sample(name, seed, factory):
    """Coverage, size, and HFS-level agreement on one seeded case."""
    graph = random_case_graph(seed)
    compat = sample_arena(graph, N_TWO_SAMPLE, model=factory(), rng=seed)
    fast = sample_arena_fast(
        graph, N_TWO_SAMPLE, model=factory(), rng=seed + 10_000
    )

    # Per-node RR coverage frequencies.
    assert _max_coverage_z(compat, fast, graph.n) <= Z_MAX

    # RR-set size distribution.
    sizes_c = np.diff(compat.node_offsets)
    sizes_f = np.diff(fast.node_offsets)
    assert _ks_statistic(sizes_c, sizes_f) <= _ks_bound(
        N_TWO_SAMPLE, N_TWO_SAMPLE
    )

    # HFS level histograms over a fixed three-level chain (nodes binned by
    # id; the sentinel bin n_levels = "unreachable inside the chain" is
    # compared too — it is where a reachability bug would surface).
    # Entries *within* one sample are correlated, so the independent unit
    # is the sample: compare the per-sample count of entries at each level
    # with a CLT z-test using empirical variances.
    node_levels = np.arange(graph.n, dtype=np.int64) % 3
    per_c = _per_sample_level_counts(compat, node_levels, 3)
    per_f = _per_sample_level_counts(fast, node_levels, 3)
    se = np.sqrt(
        per_c.var(axis=0) / len(per_c) + per_f.var(axis=0) / len(per_f)
    )
    z = np.abs(per_c.mean(axis=0) - per_f.mean(axis=0)) / np.maximum(
        se, 1e-12
    )
    assert float(z.max()) <= Z_MAX


@pytest.mark.parametrize("seed", [0, 3, 6])
def test_seeded_fast_matches_compatible_coverage(seed):
    """The hash-keyed seeded-fast stream draws the same distribution."""
    graph = random_case_graph(seed)
    compat = sample_arena(graph, N_TWO_SAMPLE, rng=seed)
    fast = sample_arena_seeded_fast(
        graph, count=N_TWO_SAMPLE, base_seed=seed + 77
    )
    assert _max_coverage_z(compat, fast, graph.n) <= Z_MAX
    assert _ks_statistic(
        np.diff(compat.node_offsets), np.diff(fast.node_offsets)
    ) <= _ks_bound(N_TWO_SAMPLE, N_TWO_SAMPLE)


def test_fast_spread_matches_enumeration():
    """The fast sampler also satisfies the *absolute* oracle (Theorem 1)."""
    for mname, factory in _CASE_MODELS:
        for gname, graph in _tiny_graphs()[:2]:
            arena = sample_arena_fast(graph, THETA, model=factory(), rng=5)
            counts = arena.influence_counts()
            for q in range(graph.n):
                exact = enumerate_exact_spread(graph, q, model=factory())
                estimate = counts.get(q, 0) * graph.n / THETA
                assert abs(estimate - exact) <= _tolerance(
                    exact, graph.n, THETA
                ), f"{mname}/{gname} q={q}"
