"""The differential-testing oracle: a deliberately naive RR stack.

Everything here is written for obviousness, not speed, and is *frozen* —
it must not be "optimized" or rewired to share code with
``repro.influence``. The production arena engine is tested by comparing
it, seed for seed, against these implementations:

* :func:`reference_rr_graphs` — the dict-based sampler exactly as the
  paper describes it (and as ``repro.influence.rr`` originally shipped),
  consuming the RNG one explored node at a time in LIFO order. Any
  production sampler claiming stream compatibility must reproduce its
  output bit for bit.
* :func:`brute_reachable` — Definition-3 induced reachability recomputed
  from scratch with a plain BFS.
* :func:`brute_force_cod` — Algorithm 1's *specification*: for every
  chain level, recount which samples reach each node inside that
  community and take top-k thresholds by sorting. No HFS, no buckets, no
  incremental pass.
* :func:`enumerate_exact_spread` — closed-form ``sigma_g(q)`` on tiny
  graphs by summing over every possible world (Theorem 1's left side).
"""

from __future__ import annotations

import hashlib
from itertools import product

import numpy as np

from repro.graph.graph import AttributedGraph
from repro.influence.models import InfluenceModel, WeightedCascade
from repro.utils.rng import ensure_rng


def reference_rr_graph(
    graph: AttributedGraph,
    model: InfluenceModel,
    rng: np.random.Generator,
    source: int,
    allowed: "set[int] | None" = None,
) -> dict[int, list[int]]:
    """One RR graph as a dict, naive transcription of Definition 2."""
    adjacency: dict[int, list[int]] = {source: []}
    frontier = [source]
    while frontier:
        v = frontier.pop()
        fired = model.reverse_sample(graph, v, rng)
        targets: list[int] = []
        for u in fired:
            u = int(u)
            if allowed is not None and u not in allowed:
                continue
            targets.append(u)
            if u not in adjacency:
                adjacency[u] = []
                frontier.append(u)
        adjacency[v] = targets
    return adjacency


def reference_rr_graphs(
    graph: AttributedGraph,
    count: int,
    model: "InfluenceModel | None" = None,
    rng: "int | np.random.Generator | None" = None,
    allowed: "set[int] | None" = None,
) -> list[tuple[int, dict[int, list[int]]]]:
    """``count`` samples as ``(source, adjacency)`` pairs.

    Sources are pre-drawn in one vectorized call — the stream contract
    every production sampler must honour.
    """
    model = model or WeightedCascade()
    rng = ensure_rng(rng)
    if allowed is not None:
        pool = np.asarray(sorted(allowed), dtype=np.int64)
        sources = pool[rng.integers(0, len(pool), size=count)]
    else:
        sources = rng.integers(0, graph.n, size=count)
    return [
        (int(s), reference_rr_graph(graph, model, rng, int(s), allowed=allowed))
        for s in sources
    ]


def brute_reachable(
    adjacency: dict[int, list[int]], source: int, allowed: "set[int]"
) -> set[int]:
    """Definition 3 by plain BFS, no shortcuts."""
    if source not in allowed:
        return set()
    seen = {source}
    queue = [source]
    while queue:
        v = queue.pop(0)
        for u in adjacency.get(v, []):
            if u in allowed and u not in seen:
                seen.add(u)
                queue.append(u)
    return seen


def brute_force_cod(
    n: int,
    q: int,
    member_sets: list[set[int]],
    samples: list[tuple[int, dict[int, list[int]]]],
    k_values: tuple[int, ...],
) -> tuple[list[int], list[list[int]]]:
    """Algorithm 1's answer recomputed per level from first principles.

    For each chain level: count, for every node, the samples in which it
    is reachable inside that community (``brute_reachable``), then read
    the query's count and the k-th largest counts. Returns
    ``(query_counts, thresholds)`` shaped like ``CompressedEvaluation``.
    """
    query_counts: list[int] = []
    thresholds: list[list[int]] = []
    for members in member_sets:
        counts: dict[int, int] = {}
        for source, adjacency in samples:
            for v in brute_reachable(adjacency, source, members):
                counts[v] = counts.get(v, 0) + 1
        ordered = sorted(counts.values(), reverse=True)
        query_counts.append(counts.get(q, 0))
        thresholds.append(
            [ordered[kv - 1] if kv <= len(ordered) else 0 for kv in k_values]
        )
    return query_counts, thresholds


def influence_counts_of(
    samples: list[tuple[int, dict[int, list[int]]]],
) -> dict[int, int]:
    """Plain RR-membership counts over reference samples."""
    counts: dict[int, int] = {}
    for _, adjacency in samples:
        for v in adjacency:
            counts[v] = counts.get(v, 0) + 1
    return counts


def enumerate_exact_spread(
    graph: AttributedGraph,
    seed_node: int,
    model: "InfluenceModel | None" = None,
    restrict_to: "set[int] | None" = None,
) -> float:
    """Exact ``sigma_C(q)`` by enumerating every possible world.

    Each *directed* edge ``(u -> v)`` lives with probability
    ``model.forward_probability(graph, u, v)`` independently; the spread
    is the expectation of the forward-reachable set size. Exponential in
    the directed edge count — keep graphs tiny (``2m <= ~16``).
    """
    model = model or WeightedCascade()
    arcs = []
    for u, v in graph.edges():
        arcs.append((u, v, model.forward_probability(graph, u, v)))
        arcs.append((v, u, model.forward_probability(graph, v, u)))
    if len(arcs) > 22:
        raise ValueError(f"{len(arcs)} arcs is too many to enumerate")
    allowed = restrict_to if restrict_to is not None else set(range(graph.n))
    total = 0.0
    for pattern in product((False, True), repeat=len(arcs)):
        prob = 1.0
        live: dict[int, list[int]] = {}
        for present, (u, v, p) in zip(pattern, arcs):
            prob *= p if present else 1.0 - p
            if present:
                live.setdefault(u, []).append(v)
        if prob == 0.0:
            continue
        seen = {seed_node} if seed_node in allowed else set()
        queue = list(seen)
        while queue:
            x = queue.pop()
            for y in live.get(x, []):
                if y in allowed and y not in seen:
                    seen.add(y)
                    queue.append(y)
        total += prob * len(seen)
    return total


def digest_samples(samples: "list") -> str:
    """Canonical SHA-256 digest of a batch of RR graphs.

    Accepts reference ``(source, adjacency)`` pairs or any object with
    ``.source``/``.adjacency`` (``RRGraph``, ``RRView``); the digest
    covers sources, RR-set insertion order, and every adjacency list, so
    any silent change to the sample stream changes the hex."""
    h = hashlib.sha256()
    stream: list[int] = []
    for item in samples:
        if isinstance(item, tuple):
            source, adjacency = item
        else:
            source, adjacency = item.source, item.adjacency
        stream.append(int(source))
        stream.append(len(adjacency))
        for v, targets in adjacency.items():
            stream.append(int(v))
            stream.append(len(targets))
            stream.extend(int(u) for u in targets)
    h.update(np.asarray(stream, dtype=np.int64).tobytes())
    return h.hexdigest()


def random_case_graph(seed: int) -> AttributedGraph:
    """A small deterministic random connected graph for oracle cases."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(8, 24))
    edges = {(i - 1, i) for i in range(1, n)}
    for _ in range(int(rng.integers(n, 3 * n))):
        u, v = int(rng.integers(0, n)), int(rng.integers(0, n))
        if u != v:
            edges.add((min(u, v), max(u, v)))
    attrs = [[int(rng.integers(0, 3))] for _ in range(n)]
    return AttributedGraph(n, sorted(edges), attributes=attrs)
