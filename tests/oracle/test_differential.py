"""Differential tests: arena engine vs legacy sampler vs the naive oracle.

Every test here is seed-for-seed: the arena sampler, the legacy dict
sampler, and the frozen reference sampler in ``reference.py`` all consume
the same RNG stream, so their outputs must be *identical*, not merely
statistically close. 42 deterministic random graphs x 5 queries = 210
(graph, query) cases for the COD comparison, plus per-graph sample-level
comparisons across all three diffusion models.
"""

import numpy as np
import pytest

from repro.core.compressed import compressed_cod
from repro.core.himor import HimorIndex
from repro.hierarchy.chain import CommunityChain
from repro.hierarchy.nnchain import agglomerative_hierarchy
from repro.influence.arena import sample_arena
from repro.influence.models import LinearThreshold, UniformIC, WeightedCascade
from repro.influence.rr import sample_rr_graphs

from tests.oracle.reference import (
    brute_force_cod,
    influence_counts_of,
    random_case_graph,
    reference_rr_graphs,
)

GRAPH_SEEDS = list(range(42))
QUERIES_PER_GRAPH = 5
MODELS = [WeightedCascade(), UniformIC(0.3), LinearThreshold()]


def _model_for(seed: int):
    return MODELS[seed % len(MODELS)]


def _queries_for(graph, seed: int) -> list[int]:
    rng = np.random.default_rng(10_000 + seed)
    return sorted(int(q) for q in rng.choice(graph.n, size=QUERIES_PER_GRAPH,
                                             replace=False))


@pytest.mark.parametrize("seed", GRAPH_SEEDS)
class TestSampleEquivalence:
    """Arena and legacy samplers reproduce the reference stream exactly."""

    def test_arena_matches_reference(self, seed):
        graph = random_case_graph(seed)
        model = _model_for(seed)
        count = 3 * graph.n
        expected = reference_rr_graphs(graph, count, model=model, rng=seed)
        arena = sample_arena(graph, count, model=model, rng=seed)
        assert arena.n_samples == count
        for view, (ref_source, ref_adjacency) in zip(arena, expected):
            assert view.source == ref_source
            got = view.adjacency
            # Same discovery order, same keys, same fired-target lists.
            assert list(got) == list(ref_adjacency)
            assert got == ref_adjacency

    def test_legacy_matches_reference(self, seed):
        graph = random_case_graph(seed)
        model = _model_for(seed)
        count = 3 * graph.n
        expected = reference_rr_graphs(graph, count, model=model, rng=seed)
        legacy = list(sample_rr_graphs(graph, count, model=model, rng=seed))
        for rr, (ref_source, ref_adjacency) in zip(legacy, expected):
            assert rr.source == ref_source
            assert list(rr.adjacency) == list(ref_adjacency)
            assert rr.adjacency == ref_adjacency

    def test_restricted_sampling_matches_reference(self, seed):
        graph = random_case_graph(seed)
        model = _model_for(seed)
        rng = np.random.default_rng(20_000 + seed)
        allowed = set(
            int(v) for v in rng.choice(graph.n, size=max(2, graph.n // 2),
                                       replace=False)
        )
        count = 2 * graph.n
        expected = reference_rr_graphs(
            graph, count, model=model, rng=seed, allowed=allowed
        )
        arena = sample_arena(graph, count, model=model, rng=seed, allowed=allowed)
        for view, (ref_source, ref_adjacency) in zip(arena, expected):
            assert view.source == ref_source
            assert view.adjacency == ref_adjacency
            assert set(view.adjacency) <= allowed

    def test_influence_counts_match_reference(self, seed):
        graph = random_case_graph(seed)
        model = _model_for(seed)
        count = 4 * graph.n
        expected = influence_counts_of(
            reference_rr_graphs(graph, count, model=model, rng=seed)
        )
        arena = sample_arena(graph, count, model=model, rng=seed)
        assert arena.influence_counts() == expected


@pytest.mark.parametrize("seed", GRAPH_SEEDS)
def test_compressed_cod_three_way(seed):
    """Arena HFS == legacy dict HFS == brute-force recount, per query.

    42 graphs x 5 queries = 210 seeded (graph, query) cases, each checked
    on query counts, every top-k threshold, and the qualification verdict.
    """
    graph = random_case_graph(seed)
    model = _model_for(seed)
    hierarchy = agglomerative_hierarchy(graph)
    count = 4 * graph.n
    k_values = [1, 2, 5]

    samples = reference_rr_graphs(graph, count, model=model, rng=seed)
    arena = sample_arena(graph, count, model=model, rng=seed)
    legacy = list(sample_rr_graphs(graph, count, model=model, rng=seed))

    for q in _queries_for(graph, seed):
        chain = CommunityChain.from_hierarchy(hierarchy, q)
        via_arena = compressed_cod(
            graph, chain, k=k_values, rr_graphs=arena, n_samples=count
        )
        via_legacy = compressed_cod(
            graph, chain, k=k_values, rr_graphs=legacy, n_samples=count
        )
        member_sets = [set(int(v) for v in chain.members(h))
                       for h in range(len(chain))]
        brute_counts, brute_thresholds = brute_force_cod(
            graph.n, q, member_sets, samples, tuple(k_values)
        )

        assert via_arena.query_counts == via_legacy.query_counts == brute_counts
        assert via_arena.thresholds == via_legacy.thresholds == brute_thresholds
        for level in range(len(chain)):
            for k in k_values:
                assert via_arena.qualifies(level, k) == via_legacy.qualifies(level, k)


@pytest.mark.parametrize("seed", GRAPH_SEEDS[::6])
def test_himor_matches_legacy(seed):
    """HIMOR ranks from the arena traversal equal the dict traversal's."""
    graph = random_case_graph(seed)
    model = _model_for(seed)
    hierarchy = agglomerative_hierarchy(graph)
    count = 4 * graph.n

    arena = sample_arena(graph, count, model=model, rng=seed)
    legacy = list(sample_rr_graphs(graph, count, model=model, rng=seed))
    via_arena = HimorIndex.build(graph, hierarchy, rr_graphs=arena)
    via_legacy = HimorIndex.build(graph, hierarchy, rr_graphs=legacy)

    for v in range(graph.n):
        assert via_arena.ranks_of(v).tolist() == via_legacy.ranks_of(v).tolist()
