"""Golden digests pinning the RR sample stream across releases.

The compressed evaluator, HIMOR, and the serving layer all assume that a
seed fully determines the sample set. These digests freeze the exact
stream for the paper's 10-node graph at seed 7: if a refactor of the
sampler (vectorization, reordering, a new fast path) changes a single
fired edge, the hex changes and this test names the model it changed
under. Both the arena engine and the legacy dict sampler must match the
same digest — they share one RNG-stream contract.

If a change is *intentional* (a new stream contract), recompute the hexes
with ``tests/oracle/reference.digest_samples`` and say so loudly in the
changelog — every persisted artifact keyed by seed is invalidated.
"""

import pytest

from repro.graph.graph import AttributedGraph
from repro.influence.arena import sample_arena
from repro.influence.models import LinearThreshold, UniformIC, WeightedCascade
from repro.influence.rr import sample_rr_graphs

from tests.conftest import PAPER_ATTRIBUTES, PAPER_EDGES
from tests.oracle.reference import digest_samples

SEED = 7
COUNT = 50

GOLDEN = {
    "wc": "c580c601563020fec9c836ebb3ebe61e8e6c9389b52d9addb242da39432b8492",
    "uic": "409e1e5078ec3647df968a952456a35355a15627c208d202dffab71b48fc3562",
    "lt": "b2e95f9be881a883d4a1db55cbb24598bbbd8562d53ff9356d0969b1537f7d54",
}

MODELS = {
    "wc": WeightedCascade,
    "uic": lambda: UniformIC(0.3),
    "lt": LinearThreshold,
}


def _graph() -> AttributedGraph:
    attrs = [PAPER_ATTRIBUTES[v] for v in range(10)]
    return AttributedGraph(10, PAPER_EDGES, attributes=attrs)


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_arena_stream_is_pinned(name):
    arena = sample_arena(_graph(), COUNT, model=MODELS[name](), rng=SEED)
    assert digest_samples(list(arena)) == GOLDEN[name]


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_legacy_stream_is_pinned(name):
    legacy = list(sample_rr_graphs(_graph(), COUNT, model=MODELS[name](), rng=SEED))
    assert digest_samples(legacy) == GOLDEN[name]


def test_digest_is_order_sensitive():
    """The digest covers sources, discovery order, and fired edges."""
    arena = sample_arena(_graph(), COUNT, rng=SEED)
    views = list(arena)
    assert digest_samples(views) != digest_samples(views[::-1])


# --------------------------------------------------------------------------
# Fast-path digests. The vectorized samplers are *stream-incompatible* by
# design — their hexes intentionally differ from GOLDEN — but they are
# still seed-stable: the same seed must reproduce the same samples across
# releases, because seeded pools, incremental repair, and resume-equals-
# fresh replay all key persisted artifacts on it. If a kernel change
# moves one of these hexes, that is a new fast stream contract: recompute
# and call it out in the changelog exactly as for GOLDEN.
# --------------------------------------------------------------------------

from repro.influence.fastsample import (  # noqa: E402
    sample_arena_fast,
    sample_arena_seeded_fast,
)

GOLDEN_FAST = {
    "wc": "43659832d4b872fba74ebb130e76b711c3dfeb2f2ef4fd04bda12e33373d5c46",
    "uic": "c1ccb22fbe396b4eb0da3d2919e334d1a24ce2f8ecdd78d77d51ed0b724577fe",
}

GOLDEN_SEEDED_FAST = {
    "wc": "5e0504a14adced1f914638458089e0f2b9c9ae67016ff986c5520f9236110b73",
    "uic": "a3253ee675e465b3319cedb0036f9ec88a4a649ef7f3935d721b5554a1b312fc",
}


@pytest.mark.parametrize("name", sorted(GOLDEN_FAST))
def test_fast_stream_is_pinned(name):
    # NB: for the RNG-stream fast sampler, `chunk_size` participates in
    # the stream (a chunk boundary reorders RNG consumption), so the
    # pinned hex covers the *default* chunking only.
    arena = sample_arena_fast(_graph(), COUNT, model=MODELS[name](), rng=SEED)
    assert digest_samples(list(arena)) == GOLDEN_FAST[name]


@pytest.mark.parametrize("name", sorted(GOLDEN_SEEDED_FAST))
def test_seeded_fast_stream_is_pinned(name):
    arena = sample_arena_seeded_fast(
        _graph(), count=COUNT, model=MODELS[name](), base_seed=SEED
    )
    assert digest_samples(list(arena)) == GOLDEN_SEEDED_FAST[name]
    # Hash-keyed trials make the seeded stream chunk-*invariant*: every
    # trial is a pure function of (seed, sample, node, slot), so chunk
    # boundaries cannot move it.
    chunked = sample_arena_seeded_fast(
        _graph(), count=COUNT, model=MODELS[name](), base_seed=SEED,
        chunk_size=7,
    )
    assert digest_samples(list(chunked)) == GOLDEN_SEEDED_FAST[name]


def test_fast_stream_differs_from_compatible():
    """Stream incompatibility is intentional and this documents it."""
    for name in GOLDEN_FAST:
        assert GOLDEN_FAST[name] != GOLDEN[name]
        assert GOLDEN_SEEDED_FAST[name] != GOLDEN_FAST[name]


def test_fast_falls_back_to_compatible_for_lt():
    """LinearThreshold has no closed-form trial probability, so the fast
    entry point delegates to the compatible sampler — same stream, same
    golden hex."""
    arena = sample_arena_fast(_graph(), COUNT, model=LinearThreshold(), rng=SEED)
    assert digest_samples(list(arena)) == GOLDEN["lt"]
