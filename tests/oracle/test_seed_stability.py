"""Golden digests pinning the RR sample stream across releases.

The compressed evaluator, HIMOR, and the serving layer all assume that a
seed fully determines the sample set. These digests freeze the exact
stream for the paper's 10-node graph at seed 7: if a refactor of the
sampler (vectorization, reordering, a new fast path) changes a single
fired edge, the hex changes and this test names the model it changed
under. Both the arena engine and the legacy dict sampler must match the
same digest — they share one RNG-stream contract.

If a change is *intentional* (a new stream contract), recompute the hexes
with ``tests/oracle/reference.digest_samples`` and say so loudly in the
changelog — every persisted artifact keyed by seed is invalidated.
"""

import pytest

from repro.graph.graph import AttributedGraph
from repro.influence.arena import sample_arena
from repro.influence.models import LinearThreshold, UniformIC, WeightedCascade
from repro.influence.rr import sample_rr_graphs

from tests.conftest import PAPER_ATTRIBUTES, PAPER_EDGES
from tests.oracle.reference import digest_samples

SEED = 7
COUNT = 50

GOLDEN = {
    "wc": "c580c601563020fec9c836ebb3ebe61e8e6c9389b52d9addb242da39432b8492",
    "uic": "409e1e5078ec3647df968a952456a35355a15627c208d202dffab71b48fc3562",
    "lt": "b2e95f9be881a883d4a1db55cbb24598bbbd8562d53ff9356d0969b1537f7d54",
}

MODELS = {
    "wc": WeightedCascade,
    "uic": lambda: UniformIC(0.3),
    "lt": LinearThreshold,
}


def _graph() -> AttributedGraph:
    attrs = [PAPER_ATTRIBUTES[v] for v in range(10)]
    return AttributedGraph(10, PAPER_EDGES, attributes=attrs)


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_arena_stream_is_pinned(name):
    arena = sample_arena(_graph(), COUNT, model=MODELS[name](), rng=SEED)
    assert digest_samples(list(arena)) == GOLDEN[name]


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_legacy_stream_is_pinned(name):
    legacy = list(sample_rr_graphs(_graph(), COUNT, model=MODELS[name](), rng=SEED))
    assert digest_samples(legacy) == GOLDEN[name]


def test_digest_is_order_sensitive():
    """The digest covers sources, discovery order, and fired edges."""
    arena = sample_arena(_graph(), COUNT, rng=SEED)
    views = list(arena)
    assert digest_samples(views) != digest_samples(views[::-1])
