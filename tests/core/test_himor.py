"""Unit tests for the HIMOR index and Algorithm 3."""

import numpy as np
import pytest

from repro.core.himor import HimorIndex, himor_cod
from repro.core.lore import lore_chain
from repro.errors import IndexError_, QueryError
from repro.influence.estimator import estimate_influences_in_community

from tests.conftest import C0, C1, C3, C4, C6, DB


@pytest.fixture()
def paper_index(paper_graph, paper_hierarchy):
    return HimorIndex.build(paper_graph, paper_hierarchy, theta=400, rng=0)


class TestConstruction:
    def test_rank_arrays_aligned_with_paths(self, paper_index, paper_hierarchy):
        for v in range(10):
            ranks = paper_index.ranks_of(v)
            assert len(ranks) == len(paper_hierarchy.path_communities(v))
            assert all(1 <= r <= 10 for r in ranks)

    def test_rank_in_named_community(self, paper_index):
        # v4 in C1 = {4, 5}: rank must be 1 or 2.
        assert paper_index.rank_in(4, C1) in (1, 2)

    def test_rank_in_non_ancestor_rejected(self, paper_index):
        with pytest.raises(QueryError):
            paper_index.rank_in(8, C0)

    def test_mismatched_graph_rejected(self, paper_hierarchy, triangle_graph):
        with pytest.raises(IndexError_):
            HimorIndex.build(triangle_graph, paper_hierarchy)

    def test_ranks_match_per_community_oracle(self, paper_graph, paper_hierarchy,
                                              paper_index):
        # Every (node, ancestor) rank must agree with a high-sample
        # restricted estimate, away from tie boundaries.
        rng = np.random.default_rng(1)
        for q in (0, 4, 8):
            path = paper_hierarchy.path_communities(q)
            for position, vertex in enumerate(path):
                members = paper_hierarchy.members(vertex)
                oracle = estimate_influences_in_community(
                    paper_graph, members, 500 * len(members), rng=rng
                )
                got = int(paper_index.ranks_of(q)[position])
                want = oracle.rank(q)
                assert abs(got - want) <= 1, (q, vertex, got, want)

    def test_memory_bytes(self, paper_index, paper_hierarchy):
        # One 8-byte entry per (leaf, ancestor) pair.
        expected_entries = sum(
            len(paper_hierarchy.path_communities(v)) for v in range(10)
        )
        assert paper_index.memory_bytes() == expected_entries * 8


class TestIndexScan:
    def test_largest_qualifying_ancestor_root_first(self, paper_index):
        # With k = 10 every community qualifies; the scan must return the
        # root (largest).
        assert paper_index.largest_qualifying_ancestor(0, 10) == C6

    def test_floor_restricts_scan(self, paper_index):
        # Restricting to ancestors of C4 can only return C4 or C6.
        result = paper_index.largest_qualifying_ancestor(0, 10, floor_vertex=C4)
        assert result == C6

    def test_k_one_returns_none_or_valid(self, paper_index, paper_hierarchy):
        result = paper_index.largest_qualifying_ancestor(9, 1)
        if result is not None:
            assert paper_hierarchy.contains(result, 9)
            assert paper_index.rank_in(9, result) <= 1

    def test_invalid_k(self, paper_index):
        with pytest.raises(QueryError):
            paper_index.largest_qualifying_ancestor(0, 0)

    def test_invalid_floor(self, paper_index):
        with pytest.raises(QueryError):
            paper_index.largest_qualifying_ancestor(8, 2, floor_vertex=C0)


class TestPersistence:
    def test_save_load_roundtrip(self, paper_index, tmp_path):
        path = tmp_path / "index.json"
        paper_index.save(path)
        loaded = HimorIndex.load(path)
        assert loaded.theta == paper_index.theta
        assert loaded.n_samples == paper_index.n_samples
        for v in range(10):
            assert np.array_equal(loaded.ranks_of(v), paper_index.ranks_of(v))

    def test_malformed_rejected(self, tmp_path):
        path = tmp_path / "index.json"
        path.write_text('{"theta": 1}')
        with pytest.raises(IndexError_):
            HimorIndex.load(path)


class TestHimorCod:
    def test_consistent_with_index(self, paper_graph, paper_hierarchy, paper_index):
        lore = lore_chain(paper_graph, paper_hierarchy, 0, DB)
        members, evaluation = himor_cod(
            paper_graph, paper_index, lore, k=10, rng=2
        )
        # k = 10: the root qualifies via the index, no fallback needed.
        assert evaluation is None
        assert sorted(int(v) for v in members) == list(range(10))

    def test_fallback_path(self, paper_graph, paper_hierarchy, paper_index):
        # Query v9 with k = 1: if no ancestor of C_l qualifies, the
        # fallback must run inside C_l (or return None when C_l has no
        # reclustered interior).
        lore = lore_chain(paper_graph, paper_hierarchy, 9, DB)
        members, evaluation = himor_cod(
            paper_graph, paper_index, lore, k=1, theta=200, rng=3
        )
        if members is not None:
            member_set = set(int(v) for v in members)
            assert 9 in member_set

    def test_answer_contains_query(self, paper_graph, paper_hierarchy, paper_index):
        for q in range(10):
            lore = lore_chain(paper_graph, paper_hierarchy, q, DB)
            members, _ = himor_cod(
                paper_graph, paper_index, lore, k=3, theta=100, rng=4
            )
            if members is not None:
                assert q in set(int(v) for v in members)


class TestIncrementalRepair:
    """Delta repair over an arena repair's removed/added samples."""

    THETA = 6
    SEED = 17

    def build_pair(self, paper_graph, paper_hierarchy):
        from repro.dynamic.updates import EdgeUpdate, apply_updates
        from repro.influence.arena import repair_arena, sample_arena_seeded

        new_graph = apply_updates(paper_graph, [EdgeUpdate(2, 3, add=True)])
        arena = sample_arena_seeded(
            paper_graph, count=self.THETA * paper_graph.n, base_seed=self.SEED
        )
        index = HimorIndex.build(
            paper_graph, paper_hierarchy, theta=self.THETA, rr_graphs=arena,
            sample_mode="per-sample",
        )
        rep = repair_arena(arena, new_graph, {2, 3}, base_seed=self.SEED)
        return new_graph, index, rep

    def test_repair_matches_rebuild_on_repaired_pool(
        self, paper_graph, paper_hierarchy
    ):
        from repro.core.himor import graph_checksum

        new_graph, index, rep = self.build_pair(paper_graph, paper_hierarchy)
        assert index.has_buckets
        report = index.repair(rep.removed, rep.added,
                              graph_sha=graph_checksum(new_graph))
        assert report["changed_buckets"] >= 1
        assert report["repaired_subtrees"] >= report["changed_buckets"] > 0

        # Oracle: a from-scratch build over the *repaired* arena under the
        # same (unchanged) hierarchy must yield identical ranks.
        oracle = HimorIndex.build(
            new_graph, paper_hierarchy, theta=self.THETA, rr_graphs=rep.arena,
            sample_mode="per-sample",
        )
        for v in range(paper_graph.n):
            assert np.array_equal(index.ranks_of(v), oracle.ranks_of(v)), v
        assert index.graph_sha == graph_checksum(new_graph)

    def test_lopsided_delta_rejected(self, paper_graph, paper_hierarchy):
        _, index, rep = self.build_pair(paper_graph, paper_hierarchy)
        with pytest.raises(IndexError_, match="lopsided"):
            index.repair(rep.removed, rep.added.take([0]))

    def test_foreign_removed_samples_rejected(self, paper_graph,
                                              paper_hierarchy):
        # Subtracting samples the index never charged must not silently
        # corrupt the buckets: if a charge would go negative, repair fails.
        from repro.influence.arena import sample_arena_seeded

        _, index, rep = self.build_pair(paper_graph, paper_hierarchy)
        foreign = sample_arena_seeded(
            paper_graph, indices=range(1000, 1000 + rep.added.n_samples),
            base_seed=99,
        )
        with pytest.raises(IndexError_, match="negative"):
            index.repair(foreign, rep.added)

    def test_bucketless_index_cannot_repair(self, paper_graph,
                                            paper_hierarchy, tmp_path):
        _, index, rep = self.build_pair(paper_graph, paper_hierarchy)
        index._buckets = None  # legacy artifact shape
        with pytest.raises(IndexError_, match="no HFS buckets"):
            index.repair(rep.removed, rep.added)

    def test_buckets_survive_save_load(self, paper_graph, paper_hierarchy,
                                       tmp_path):
        from repro.core.himor import graph_checksum

        new_graph, index, rep = self.build_pair(paper_graph, paper_hierarchy)
        path = tmp_path / "himor.json"
        index.save(path)
        loaded = HimorIndex.load(path)
        assert loaded.has_buckets
        assert loaded.graph_sha == graph_checksum(paper_graph)
        loaded.repair(rep.removed, rep.added,
                      graph_sha=graph_checksum(new_graph))
        index.repair(rep.removed, rep.added,
                     graph_sha=graph_checksum(new_graph))
        for v in range(paper_graph.n):
            assert np.array_equal(loaded.ranks_of(v), index.ranks_of(v))


class TestGraphChecksum:
    def test_sensitive_to_edges_blind_to_attributes(self, paper_graph):
        from repro.core.himor import graph_checksum
        from repro.dynamic.updates import AttrUpdate, EdgeUpdate, apply_updates

        base = graph_checksum(paper_graph)
        assert base == graph_checksum(paper_graph)
        structural = apply_updates(paper_graph, [EdgeUpdate(2, 3)])
        assert graph_checksum(structural) != base
        attr_only = apply_updates(paper_graph, [AttrUpdate(0, 7)])
        assert graph_checksum(attr_only) == base
