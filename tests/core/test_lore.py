"""Unit tests for LORE (Algorithm 2), anchored on the paper's Examples 5-6."""

import numpy as np
import pytest

from repro.core.lore import (
    lore_chain,
    reclustering_scores,
    select_reclustering_community,
)
from repro.errors import QueryError
from repro.graph.weighting import AttributeWeighting

from tests.conftest import C0, C3, C4, C6, DB


class TestReclusteringScores:
    def test_paper_example6_scores(self, paper_graph, paper_hierarchy):
        # H(v0) = [C0, C3, C4, C6]; Example 6: r(C3) = 1/2, r(C4) = 7/8.
        scores = reclustering_scores(paper_graph, paper_hierarchy, 0, DB)
        assert scores[0] == pytest.approx(0.0)          # r(C0): no DB edge inside
        assert scores[1] == pytest.approx(1 / 2)        # r(C3)
        assert scores[2] == pytest.approx(7 / 8)        # r(C4)
        assert scores[3] == pytest.approx(7 / 10)       # r(C6): no extra DB edges

    def test_off_path_lca_edges_ignored(self, paper_graph, paper_hierarchy):
        # (4, 5) is DB-DB with lca C1, not an ancestor of v0 — it must not
        # contribute. The exact Example-6 values above already prove this;
        # here check the same from v4's perspective, where it does count.
        scores_v4 = reclustering_scores(paper_graph, paper_hierarchy, 4, DB)
        # H(v4) = [C1, C4, C6]; (4,5) has lca C1, dep 3.
        # r(C1) = 3/2; r(C4) = (3 + 2*2)/8 = 7/8; r(C6) = 7/10.
        assert scores_v4[0] == pytest.approx(3 / 2)
        assert scores_v4[1] == pytest.approx(7 / 8)
        assert scores_v4[2] == pytest.approx(7 / 10)

    def test_count_variant_drops_depth_weighting(self, paper_graph, paper_hierarchy):
        scores = reclustering_scores(
            paper_graph, paper_hierarchy, 0, DB, depth_weighted=False
        )
        # Counts instead of depth sums: r(C3) = 1/6, r(C4) = 3/8, r(C6) = 3/10.
        assert scores[1] == pytest.approx(1 / 6)
        assert scores[2] == pytest.approx(3 / 8)
        assert scores[3] == pytest.approx(3 / 10)

    def test_attribute_without_edges_gives_zeros(self, paper_graph, paper_hierarchy):
        # ML nodes: 0, 1, 6, 8, 9. ML-ML edges: (0,1), (0,6), (6,8)...
        # use DB from v8's perspective: no DB edge has an lca on v8's path
        # except through the root.
        scores = reclustering_scores(paper_graph, paper_hierarchy, 8, DB)
        # H(v8) = [C5, C6]; DB-DB edges with lca C6: none (all inside C4).
        assert scores[0] == pytest.approx(0.0)
        assert scores[1] == pytest.approx(0.0)


class TestSelection:
    def test_example6_selects_c4(self, paper_graph, paper_hierarchy):
        scores = reclustering_scores(paper_graph, paper_hierarchy, 0, DB)
        path = paper_hierarchy.path_communities(0)
        vertex, level = select_reclustering_community(scores, path)
        assert vertex == C4
        assert level == 2

    def test_deepest_level_excluded(self, paper_graph, paper_hierarchy):
        # Even if level 0 had the max score, selection starts at level 1.
        scores = np.array([99.0, 0.5, 0.2, 0.1])
        path = paper_hierarchy.path_communities(0)
        vertex, level = select_reclustering_community(scores, path)
        assert level == 1
        assert vertex == C3

    def test_single_community_path(self):
        vertex, level = select_reclustering_community(np.array([0.0]), [42])
        assert (vertex, level) == (42, 0)

    def test_tie_prefers_deepest(self, paper_hierarchy):
        scores = np.array([0.0, 0.5, 0.5, 0.5])
        path = paper_hierarchy.path_communities(0)
        _, level = select_reclustering_community(scores, path)
        assert level == 1


class TestLoreChain:
    def test_example6_structure(self, paper_graph, paper_hierarchy):
        result = lore_chain(paper_graph, paper_hierarchy, 0, DB)
        assert result.c_ell_vertex == C4
        chain = result.chain
        chain.validate_nesting()
        # The chain ends with C4 (size 8) then the root (size 10).
        assert list(chain.sizes[-2:]) == [8, 10]
        assert chain.q == 0
        # Reclustered communities strictly inside C4 precede it.
        assert all(s < 8 for s in chain.sizes[: result.c_ell_chain_level])
        assert result.c_ell_chain_level >= 1

    def test_scores_attached(self, paper_graph, paper_hierarchy):
        result = lore_chain(paper_graph, paper_hierarchy, 0, DB)
        assert result.scores[2] == pytest.approx(7 / 8)

    def test_reclustering_respects_attribute_weights(self, paper_graph, paper_hierarchy):
        # With a huge beta, the DB-DB edges (2,4), (3,5) dominate the local
        # clustering of C4, so some reclustered ancestor of v3 pairs it
        # with v5 before the ML nodes.
        strong = AttributeWeighting(beta=100.0, scheme="both_endpoints")
        result = lore_chain(paper_graph, paper_hierarchy, 3, DB, weighting=strong)
        deepest = set(int(v) for v in result.chain.members(0))
        assert deepest in ({3, 5}, {3, 7}, {3, 5, 7})

    def test_missing_attribute_raises(self, paper_graph, paper_hierarchy):
        with pytest.raises(Exception):
            lore_chain(paper_graph, paper_hierarchy, 0, 99)

    def test_all_nodes_produce_valid_chains(self, paper_graph, paper_hierarchy):
        for q in range(10):
            result = lore_chain(paper_graph, paper_hierarchy, q, DB)
            result.chain.validate_nesting()
            assert result.chain.sizes[-1] == 10

    def test_precomputed_weighted_graph(self, paper_graph, paper_hierarchy):
        from repro.graph.weighting import attribute_weighted_graph

        weighted = attribute_weighted_graph(paper_graph, DB)
        a = lore_chain(paper_graph, paper_hierarchy, 0, DB)
        b = lore_chain(paper_graph, paper_hierarchy, 0, DB, weighted_graph=weighted)
        assert list(a.chain.sizes) == list(b.chain.sizes)


class TestEq2VsEq3:
    """The O(|E|) recursion (Eq. 3) must equal the direct Definition-4
    evaluation (Eq. 2) computed from scratch."""

    def direct_scores(self, graph, hierarchy, q, attribute):
        path = hierarchy.path_communities(q)
        level_of = {vertex: i for i, vertex in enumerate(path)}
        scores = []
        for i, community in enumerate(path):
            total = 0
            for u, v in graph.attribute_edges(attribute):
                lca = hierarchy.lca(u, v)
                level = level_of.get(lca)
                if level is not None and level <= i:
                    total += hierarchy.depth(lca)
            scores.append(total / hierarchy.size(community))
        return scores

    def test_equivalence_on_paper_graph(self, paper_graph, paper_hierarchy):
        for q in range(10):
            fast = reclustering_scores(paper_graph, paper_hierarchy, q, DB)
            slow = self.direct_scores(paper_graph, paper_hierarchy, q, DB)
            assert np.allclose(fast, slow)
